//! # pb-model — Roofline performance model and machine probes
//!
//! The analytical half of the PB-SpGEMM paper (Sec. II): given the
//! compression factor of a multiplication and the bytes needed to store a
//! nonzero, the arithmetic intensity of an SpGEMM algorithm is bounded, and
//! multiplying by the machine's STREAM bandwidth bounds the attainable
//! FLOPS.
//!
//! * [`roofline`] — Equations 1, 3 and 4 and the attainable-performance
//!   curves of Fig. 3.
//! * [`stream`] — a rayon-parallel STREAM benchmark (Copy/Scale/Add/Triad,
//!   Table V) used to measure the bandwidth `β` that feeds the model.
//! * [`access`] — the per-matrix access-pattern model of Table II and the
//!   memory-traffic estimates behind the practical AI bounds.
//! * [`machine`] — hardware description (Table IV) read from the running
//!   system.
//! * [`numa`] — local vs. far memory probes standing in for the paper's
//!   dual-socket NUMA measurements (Table VII); this environment has a
//!   single NUMA domain, so "far" memory is emulated by strided access.
//! * [`cachesim`] — an LRU set-associative cache simulator that replays the
//!   access streams Table II reasons about, so the "A is read d times by
//!   column SpGEMM / once by the outer product" claim is validated rather
//!   than assumed.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod access;
pub mod cachesim;
pub mod machine;
pub mod numa;
pub mod roofline;
pub mod stream;

pub use access::{access_table, AccessRow, AlgorithmClass, TrafficEstimate};
pub use cachesim::{CacheConfig, CacheSim, TrafficReport};
pub use machine::MachineInfo;
pub use numa::{NumaConfig, NumaProbe};
pub use roofline::{RooflineModel, RooflinePoint};
pub use stream::{StreamConfig, StreamResult};

/// The paper's per-nonzero storage constant `b` in bytes: two 4-byte indices
/// plus one 8-byte value (COO format).
pub const BYTES_PER_NONZERO: usize = 16;
