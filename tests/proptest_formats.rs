//! Property-based tests of the sparse-matrix substrate: format conversions
//! are lossless, transposition is an involution, Matrix Market I/O round
//! trips, and the statistics module is internally consistent.

use proptest::prelude::*;

use pb_spgemm_suite::prelude::*;
use pb_spgemm_suite::sparse::io::{read_matrix_market_from, write_matrix_market_to};
use pb_spgemm_suite::sparse::permute::{permute_rows, Permutation};
use pb_spgemm_suite::sparse::stats::{flop_csr, flop_outer, flop_rows, symbolic_nnz};

/// Strategy: an arbitrary COO matrix (may contain duplicate coordinates).
fn coo_matrix(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Coo<f64>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(nrows, ncols)| {
        let entry = (0..nrows, 0..ncols, -100.0f64..100.0f64);
        proptest::collection::vec(entry, 0..=max_nnz)
            .prop_map(move |entries| Coo::from_entries(nrows, ncols, entries).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// COO -> CSR -> COO -> dense equals COO -> dense (duplicates summed).
    #[test]
    fn coo_csr_roundtrip_preserves_values(coo in coo_matrix(60, 300)) {
        let dense = coo.to_dense();
        let csr = coo.to_csr();
        prop_assert!(csr.to_dense().approx_eq(&dense, 1e-9));
        prop_assert!(csr.to_coo().to_dense().approx_eq(&dense, 1e-9));
        prop_assert!(csr.validate().is_ok());
        prop_assert!(csr.has_sorted_indices());
        prop_assert!(!csr.has_duplicates());
    }

    /// CSR <-> CSC conversions agree with each other and with the dense view.
    #[test]
    fn csr_csc_conversions_agree(coo in coo_matrix(50, 250)) {
        let dense = coo.to_dense();
        let csr = coo.to_csr();
        let csc = coo.to_csc();
        prop_assert!(csc.to_dense().approx_eq(&dense, 1e-9));
        // Structure is identical; values may differ in the last bits because
        // duplicate coordinates are accumulated in row-major vs column-major
        // order depending on the conversion path.
        let via_csr = csr.to_csc();
        prop_assert_eq!(via_csr.colptr(), csc.colptr());
        prop_assert_eq!(via_csr.rowidx(), csc.rowidx());
        prop_assert!(via_csr.to_dense().approx_eq(&csc.to_dense(), 1e-9));
        let back = csc.to_csr();
        prop_assert_eq!(back.rowptr(), csr.rowptr());
        prop_assert_eq!(back.colidx(), csr.colidx());
        prop_assert!(back.to_dense().approx_eq(&dense, 1e-9));
    }

    /// Transposing twice is the identity; the transpose swaps coordinates.
    #[test]
    fn transpose_is_an_involution(coo in coo_matrix(50, 250)) {
        let csr = coo.to_csr();
        let t = csr.transpose();
        prop_assert_eq!(t.shape(), (csr.ncols(), csr.nrows()));
        prop_assert_eq!(t.transpose(), csr.clone());
        for (r, c, v) in csr.iter() {
            prop_assert_eq!(t.get(c as usize, r as usize), Some(v));
        }
    }

    /// Matrix Market write -> read round-trips exactly (structure and value).
    #[test]
    fn matrix_market_roundtrip(coo in coo_matrix(40, 200)) {
        // Canonicalise first: the writer emits raw triplets, and duplicate
        // coordinates would be double-counted on re-read.
        let canonical = coo.to_csr().to_coo();
        let mut buffer = Vec::new();
        write_matrix_market_to(&mut buffer, &canonical).unwrap();
        let (back, _) = read_matrix_market_from(buffer.as_slice()).unwrap();
        prop_assert_eq!(back.shape(), canonical.shape());
        prop_assert!(back.to_dense().approx_eq(&canonical.to_dense(), 1e-9));
    }

    /// The three flop formulations (row-wise, per-row sum, outer-product)
    /// agree, and nnz(C) from the symbolic pass matches the real product.
    #[test]
    fn flop_and_symbolic_counts_agree(coo in coo_matrix(40, 200)) {
        // Square the matrix on its smaller dimension so shapes match.
        let csr = coo.to_csr();
        let n = csr.nrows().min(csr.ncols());
        let square = Coo::from_entries(
            n, n,
            csr.iter()
                .filter(|&(r, c, _)| (r as usize) < n && (c as usize) < n)
                .map(|(r, c, v)| (r as usize, c as usize, v))
                .collect(),
        ).unwrap().to_csr();

        let f1 = flop_csr(&square, &square);
        let f2: u64 = flop_rows(&square, &square).iter().sum();
        let f3 = flop_outer(&square.to_csc(), &square);
        prop_assert_eq!(f1, f2);
        prop_assert_eq!(f1, f3);

        let c = pb_spgemm_suite::sparse::reference::multiply_csr(&square, &square);
        prop_assert_eq!(symbolic_nnz(&square, &square), c.nnz());
        prop_assert!(f1 >= c.nnz() as u64);
    }

    /// Row permutation is invertible and preserves the multiset of values.
    #[test]
    fn row_permutation_roundtrip(coo in coo_matrix(40, 200), seed in 0u64..500) {
        let csr = coo.to_csr();
        let mut order: Vec<u32> = (0..csr.nrows() as u32).collect();
        let mut rng = pb_spgemm_suite::gen::Xoshiro256pp::new(seed);
        rng.shuffle(&mut order);
        let perm = Permutation::from_vec(order).unwrap();
        let permuted = permute_rows(&csr, &perm);
        prop_assert_eq!(permuted.nnz(), csr.nnz());
        let back = permute_rows(&permuted, &perm.inverse());
        prop_assert_eq!(back, csr);
    }

    /// Semiring laws hold for the f64 plus-times semiring on arbitrary
    /// values (up to floating-point associativity on addition, which we test
    /// with exactly representable integers).
    #[test]
    fn semiring_laws_plus_times(a in -1000i32..1000, b in -1000i32..1000, c in -1000i32..1000) {
        type S = PlusTimes<i64>;
        let (a, b, c) = (a as i64, b as i64, c as i64);
        prop_assert_eq!(S::add(a, b), S::add(b, a));
        prop_assert_eq!(S::add(S::add(a, b), c), S::add(a, S::add(b, c)));
        prop_assert_eq!(S::mul(S::mul(a, b), c), S::mul(a, S::mul(b, c)));
        prop_assert_eq!(S::mul(a, S::zero()), S::zero());
        prop_assert_eq!(S::add(a, S::zero()), a);
        // Distributivity.
        prop_assert_eq!(S::mul(a, S::add(b, c)), S::add(S::mul(a, b), S::mul(a, c)));
    }
}
