//! Span-based tracing spine: per-thread ring buffers, Chrome-trace export,
//! and log-bucketed latency histograms.
//!
//! [`PhaseStats`](crate::PhaseStats) answers *how much* each phase cost in
//! aggregate; this module answers *when*: a time-resolved view of every
//! multiply, planner decision, workspace checkout and serve-request stage,
//! cheap enough to leave compiled into production binaries.
//!
//! # Design
//!
//! * **One relaxed atomic when disabled.**  Every emission site first calls
//!   [`enabled`], which is a single `Relaxed` load plus a branch.  With
//!   tracing off (the default) instrumentation costs one predictable
//!   never-taken branch — no locks, no TLS access, no allocation.
//! * **Per-thread rings, lock-free writes.**  Each emitting thread owns a
//!   fixed-capacity ring of 32-byte events (four `u64` words stored through
//!   relaxed atomics).  Only the owner writes; a monotonic head published
//!   with `Release` ordering lets [`snapshot`] copy concurrently without
//!   locks and discard any slot that may have been overwritten mid-copy, so
//!   a reader never observes a torn event.  When the ring wraps, the oldest
//!   events are dropped and a per-ring drop counter is bumped.
//! * **Correlation ids.**  A thread-local current correlation id (scoped via
//!   [`corr_scope`]/[`with_corr`]) is stamped onto every event, letting the
//!   serve layer tie all spans of one request — across reactor and worker
//!   threads — back to the request's protocol `id`.
//! * **Exports.**  [`TraceSnapshot::to_chrome_json`] renders the Chrome
//!   trace-event format (loadable in Perfetto / `chrome://tracing`);
//!   [`validate_chrome_trace`] re-parses and structurally checks such a
//!   trace (used by tests and CI).  [`LatencyHistogram`] is the lock-free
//!   powers-of-√2 histogram backing `pb_serve_request_seconds` exposition.
//!
//! # Environment
//!
//! * `PB_TRACE` — `1`/`true`/`on`/`yes` enables tracing at first use.
//! * `PB_TRACE_EVENTS` — per-thread ring capacity in events (default
//!   8192, clamped to `[16, 4194304]`), read when a thread's ring is
//!   created.

use std::cell::{Cell, OnceCell};
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Environment variable enabling tracing at startup (`1`/`true`/`on`/`yes`).
pub const TRACE_ENV: &str = "PB_TRACE";

/// Environment variable sizing each thread's event ring (events per thread).
pub const TRACE_EVENTS_ENV: &str = "PB_TRACE_EVENTS";

/// Default per-thread ring capacity when [`TRACE_EVENTS_ENV`] is unset.
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// Smallest accepted ring capacity.
pub const MIN_RING_CAPACITY: usize = 16;

/// Largest accepted ring capacity.
pub const MAX_RING_CAPACITY: usize = 1 << 22;

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);
static CAPACITY: AtomicUsize = AtomicUsize::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();

thread_local! {
    static LOCAL_RING: OnceCell<Arc<Ring>> = const { OnceCell::new() };
    static CORR: Cell<u64> = const { Cell::new(0) };
}

/// Returns whether tracing is currently enabled.
///
/// The hot disabled path is exactly one `Relaxed` atomic load plus a
/// branch; the cold first call resolves [`TRACE_ENV`] once.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_OFF => false,
        STATE_ON => true,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var(TRACE_ENV)
        .map(|v| truthy(&v))
        .unwrap_or(false);
    if CAPACITY.load(Ordering::Relaxed) == 0 {
        CAPACITY.store(capacity_from_env(), Ordering::Relaxed);
    }
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Returns whether `value` spells an enabled [`TRACE_ENV`] setting.
pub fn truthy(value: &str) -> bool {
    matches!(
        value.trim().to_ascii_lowercase().as_str(),
        "1" | "true" | "on" | "yes"
    )
}

fn capacity_from_env() -> usize {
    std::env::var(TRACE_EVENTS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_RING_CAPACITY)
        .clamp(MIN_RING_CAPACITY, MAX_RING_CAPACITY)
}

/// Turns tracing on or off process-wide.
///
/// Spans already open keep their guards and still emit their `End` events,
/// so per-thread begin/end streams stay balanced across a toggle.
pub fn set_enabled(on: bool) {
    if CAPACITY.load(Ordering::Relaxed) == 0 {
        CAPACITY.store(capacity_from_env(), Ordering::Relaxed);
    }
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Sets the capacity used for rings created *after* this call (existing
/// rings keep their size).  Clamped to
/// [`MIN_RING_CAPACITY`]`..=`[`MAX_RING_CAPACITY`].
pub fn set_ring_capacity(capacity: usize) {
    CAPACITY.store(
        capacity.clamp(MIN_RING_CAPACITY, MAX_RING_CAPACITY),
        Ordering::Relaxed,
    );
}

/// Nanoseconds since the process-wide trace epoch (first trace activity).
#[inline]
pub fn now_nanos() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Span names
// ---------------------------------------------------------------------------

/// Every span / instant the repo emits, as a dense id stored in 16 bits.
///
/// The taxonomy (see `docs/OBSERVABILITY.md`) groups names by layer:
/// engine entry points, the five PB phases, planner decisions, workspace
/// lifecycle, serve-request stages and graph-builder kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum SpanName {
    /// `SpGemm::multiply*` on CSR inputs.
    EngineMultiply = 0,
    /// `SpGemm::multiply_csc*` (pre-converted A).
    EngineMultiplyCsc = 1,
    /// Masked multiply funnel.
    EngineMasked = 2,
    /// Planner kernel selection (`Planner::decide`).
    PlannerDecide = 3,
    /// Planner feedback (`Planner::observe`).
    PlannerObserve = 4,
    /// Symbolic phase: FLOP counting and bin layout.
    PhaseSymbolic = 5,
    /// Expand phase: outer products streamed into bins.
    PhaseExpand = 6,
    /// Sort phase: per-bin key sort.
    PhaseSort = 7,
    /// Compress phase: duplicate-key reduction.
    PhaseCompress = 8,
    /// Assemble phase: CSR construction.
    PhaseAssemble = 9,
    /// Masked pipeline's bin filtering pass.
    PhaseMask = 10,
    /// Workspace lease checkout (`arg` = 1 on a pooled hit, 0 otherwise).
    WorkspaceCheckout = 11,
    /// Workspace lease check-in (buffers returned to the pool).
    WorkspaceCheckin = 12,
    /// Workspace decay event (`arg` = bytes released).
    WorkspaceDecay = 13,
    /// Lease taken without a pooled workspace.
    WorkspaceBypass = 14,
    /// Serve reactor accepted a connection.
    ServeAccept = 15,
    /// Serve reactor parsed one protocol line.
    ServeParse = 16,
    /// Time a job waited in the worker queue (`Complete`, `arg` = wait ns).
    ServeQueueWait = 17,
    /// One request handled end-to-end on a worker.
    ServeRequest = 18,
    /// Same-key multiply requests joined into one engine call.
    ServeBatchJoin = 19,
    /// The engine call a serve request resolved to.
    ServeEngineCall = 20,
    /// Serialization + socket write of a response line.
    ServeRespond = 21,
    /// Markov-clustering builder kernel.
    GraphMcl = 22,
    /// Betweenness-centrality builder kernel.
    GraphBc = 23,
    /// All-pairs shortest paths builder kernel.
    GraphApsp = 24,
    /// Breadth-first search builder kernel.
    GraphBfs = 25,
    /// Triangle-counting builder kernel.
    GraphTriangles = 26,
    /// Whole out-of-core tiled multiply (`SpGemm::multiply_tiled`).
    TiledMultiply = 27,
    /// Flop-balanced boundary computation and tile cutting.
    TiledPartition = 28,
    /// One per-tile engine multiply inside the tiled pipeline.
    TiledTileMultiply = 29,
    /// Hierarchical-PB accumulation of one output tile's partials.
    TiledAccumulate = 30,
    /// A tile evicted from the store to the scratch file (`arg` = bytes).
    TiledSpill = 31,
    /// A spilled tile mapped back in from scratch (`arg` = bytes).
    TiledFetch = 32,
    /// Final row-stripe assembly of the output matrix.
    TiledAssemble = 33,
}

impl SpanName {
    /// All span names, in id order.
    pub const ALL: [SpanName; 34] = [
        SpanName::EngineMultiply,
        SpanName::EngineMultiplyCsc,
        SpanName::EngineMasked,
        SpanName::PlannerDecide,
        SpanName::PlannerObserve,
        SpanName::PhaseSymbolic,
        SpanName::PhaseExpand,
        SpanName::PhaseSort,
        SpanName::PhaseCompress,
        SpanName::PhaseAssemble,
        SpanName::PhaseMask,
        SpanName::WorkspaceCheckout,
        SpanName::WorkspaceCheckin,
        SpanName::WorkspaceDecay,
        SpanName::WorkspaceBypass,
        SpanName::ServeAccept,
        SpanName::ServeParse,
        SpanName::ServeQueueWait,
        SpanName::ServeRequest,
        SpanName::ServeBatchJoin,
        SpanName::ServeEngineCall,
        SpanName::ServeRespond,
        SpanName::GraphMcl,
        SpanName::GraphBc,
        SpanName::GraphApsp,
        SpanName::GraphBfs,
        SpanName::GraphTriangles,
        SpanName::TiledMultiply,
        SpanName::TiledPartition,
        SpanName::TiledTileMultiply,
        SpanName::TiledAccumulate,
        SpanName::TiledSpill,
        SpanName::TiledFetch,
        SpanName::TiledAssemble,
    ];

    /// The event name written to Chrome traces.
    pub fn label(self) -> &'static str {
        match self {
            SpanName::EngineMultiply => "engine.multiply",
            SpanName::EngineMultiplyCsc => "engine.multiply_csc",
            SpanName::EngineMasked => "engine.masked",
            SpanName::PlannerDecide => "planner.decide",
            SpanName::PlannerObserve => "planner.observe",
            SpanName::PhaseSymbolic => "phase.symbolic",
            SpanName::PhaseExpand => "phase.expand",
            SpanName::PhaseSort => "phase.sort",
            SpanName::PhaseCompress => "phase.compress",
            SpanName::PhaseAssemble => "phase.assemble",
            SpanName::PhaseMask => "phase.mask",
            SpanName::WorkspaceCheckout => "workspace.checkout",
            SpanName::WorkspaceCheckin => "workspace.checkin",
            SpanName::WorkspaceDecay => "workspace.decay",
            SpanName::WorkspaceBypass => "workspace.bypass",
            SpanName::ServeAccept => "serve.accept",
            SpanName::ServeParse => "serve.parse",
            SpanName::ServeQueueWait => "serve.queue_wait",
            SpanName::ServeRequest => "serve.request",
            SpanName::ServeBatchJoin => "serve.batch_join",
            SpanName::ServeEngineCall => "serve.engine_call",
            SpanName::ServeRespond => "serve.respond",
            SpanName::GraphMcl => "graph.mcl",
            SpanName::GraphBc => "graph.bc",
            SpanName::GraphApsp => "graph.apsp",
            SpanName::GraphBfs => "graph.bfs",
            SpanName::GraphTriangles => "graph.triangles",
            SpanName::TiledMultiply => "tiled.multiply",
            SpanName::TiledPartition => "tiled.partition",
            SpanName::TiledTileMultiply => "tiled.tile_multiply",
            SpanName::TiledAccumulate => "tiled.accumulate",
            SpanName::TiledSpill => "tiled.spill",
            SpanName::TiledFetch => "tiled.fetch",
            SpanName::TiledAssemble => "tiled.assemble",
        }
    }

    /// The Chrome-trace category (`cat`) this name belongs to.
    pub fn category(self) -> &'static str {
        match self {
            SpanName::EngineMultiply | SpanName::EngineMultiplyCsc | SpanName::EngineMasked => {
                "engine"
            }
            SpanName::PlannerDecide | SpanName::PlannerObserve => "planner",
            SpanName::PhaseSymbolic
            | SpanName::PhaseExpand
            | SpanName::PhaseSort
            | SpanName::PhaseCompress
            | SpanName::PhaseAssemble
            | SpanName::PhaseMask => "phase",
            SpanName::WorkspaceCheckout
            | SpanName::WorkspaceCheckin
            | SpanName::WorkspaceDecay
            | SpanName::WorkspaceBypass => "workspace",
            SpanName::ServeAccept
            | SpanName::ServeParse
            | SpanName::ServeQueueWait
            | SpanName::ServeRequest
            | SpanName::ServeBatchJoin
            | SpanName::ServeEngineCall
            | SpanName::ServeRespond => "serve",
            SpanName::GraphMcl
            | SpanName::GraphBc
            | SpanName::GraphApsp
            | SpanName::GraphBfs
            | SpanName::GraphTriangles => "graph",
            SpanName::TiledMultiply
            | SpanName::TiledPartition
            | SpanName::TiledTileMultiply
            | SpanName::TiledAccumulate
            | SpanName::TiledSpill
            | SpanName::TiledFetch
            | SpanName::TiledAssemble => "tiled",
        }
    }

    fn from_u16(id: u16) -> Option<SpanName> {
        SpanName::ALL.get(id as usize).copied()
    }
}

/// What an event marks: the opening or closing edge of a span, a point
/// event, or a whole span recorded at once with its duration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Span opening edge.
    Begin = 0,
    /// Span closing edge.
    End = 1,
    /// Point-in-time marker.
    Instant = 2,
    /// A completed span: `nanos` is the end, `arg` the duration in ns.
    Complete = 3,
}

impl EventKind {
    fn from_u8(raw: u8) -> Option<EventKind> {
        match raw {
            0 => Some(EventKind::Begin),
            1 => Some(EventKind::End),
            2 => Some(EventKind::Instant),
            3 => Some(EventKind::Complete),
            _ => None,
        }
    }
}

/// One decoded trace event (stored as 32 bytes — four `u64` words — in the
/// per-thread ring).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the trace epoch ([`now_nanos`] clock).  For
    /// [`EventKind::Complete`] this is the *end* of the span.
    pub nanos: u64,
    /// Correlation id active when the event was emitted (0 = none).
    pub corr: u64,
    /// Free-form payload; duration in ns for [`EventKind::Complete`].
    pub arg: u64,
    /// Which span/marker this event belongs to.
    pub name: SpanName,
    /// Edge/point kind.
    pub kind: EventKind,
}

// ---------------------------------------------------------------------------
// Rings
// ---------------------------------------------------------------------------

const WORDS: usize = 4;

struct Ring {
    words: Box<[AtomicU64]>,
    capacity: usize,
    /// Events ever written; the next write goes to `head % capacity`.
    /// Published with `Release` after the slot's words are stored.
    head: AtomicU64,
    dropped: AtomicU64,
    tid: u64,
    thread_name: String,
}

impl Ring {
    fn new(capacity: usize, tid: u64, thread_name: String) -> Ring {
        let words = (0..capacity * WORDS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ring {
            words,
            capacity,
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            tid,
            thread_name,
        }
    }

    /// Owner-thread-only append.  Slot words are plain relaxed stores; the
    /// `Release` head publication orders them for any concurrent snapshot.
    fn push(&self, w0: u64, w1: u64, w2: u64, w3: u64) {
        let cap = self.capacity as u64;
        let head = self.head.load(Ordering::Relaxed);
        let base = ((head % cap) as usize) * WORDS;
        self.words[base].store(w0, Ordering::Relaxed);
        self.words[base + 1].store(w1, Ordering::Relaxed);
        self.words[base + 2].store(w2, Ordering::Relaxed);
        self.words[base + 3].store(w3, Ordering::Relaxed);
        if head >= cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        self.head.store(head + 1, Ordering::Release);
    }

    /// Concurrent-safe copy of the live window.  Any slot the writer may
    /// have touched during the copy is discarded, so no returned event can
    /// be torn.
    fn read(&self) -> (Vec<TraceEvent>, u64) {
        let cap = self.capacity as u64;
        let head_before = self.head.load(Ordering::Acquire);
        let lo = head_before.saturating_sub(cap);
        let mut raw = Vec::with_capacity((head_before - lo) as usize);
        for seq in lo..head_before {
            let base = ((seq % cap) as usize) * WORDS;
            raw.push([
                self.words[base].load(Ordering::Relaxed),
                self.words[base + 1].load(Ordering::Relaxed),
                self.words[base + 2].load(Ordering::Relaxed),
                self.words[base + 3].load(Ordering::Relaxed),
            ]);
        }
        // The writer may be mid-write to sequence `head_after`, which
        // overwrites `head_after - cap`: only sequences strictly above
        // that are guaranteed intact.
        let head_after = self.head.load(Ordering::Acquire);
        let valid_from = (head_after + 1).saturating_sub(cap);
        let skip = valid_from.saturating_sub(lo).min(raw.len() as u64) as usize;
        let events = raw[skip..]
            .iter()
            .filter_map(|w| decode(w[0], w[1], w[2], w[3]))
            .collect();
        (events, self.dropped.load(Ordering::Relaxed))
    }
}

fn decode(w0: u64, w1: u64, w2: u64, w3: u64) -> Option<TraceEvent> {
    let name = SpanName::from_u16((w3 & 0xffff) as u16)?;
    let kind = EventKind::from_u8(((w3 >> 16) & 0xff) as u8)?;
    Some(TraceEvent {
        nanos: w0,
        corr: w1,
        arg: w2,
        name,
        kind,
    })
}

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn register_ring() -> Arc<Ring> {
    let mut rings = registry().lock().unwrap();
    let tid = rings.len() as u64 + 1;
    let capacity = match CAPACITY.load(Ordering::Relaxed) {
        0 => capacity_from_env(),
        cap => cap,
    };
    let name = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("thread-{tid}"));
    let ring = Arc::new(Ring::new(capacity, tid, name));
    rings.push(Arc::clone(&ring));
    ring
}

#[inline]
fn emit(name: SpanName, kind: EventKind, corr: u64, arg: u64) {
    let nanos = now_nanos();
    let w3 = (name as u64) | ((kind as u64) << 16);
    // `try_with` so late emissions during thread teardown are dropped
    // instead of panicking.
    let _ = LOCAL_RING.try_with(|cell| {
        cell.get_or_init(register_ring).push(nanos, corr, arg, w3);
    });
}

// ---------------------------------------------------------------------------
// Emission API
// ---------------------------------------------------------------------------

/// RAII span: emits `Begin` on creation (when tracing is enabled) and the
/// matching `End` on drop.  Thread-confined, so per-thread begin/end
/// streams always nest.
#[derive(Debug)]
pub struct SpanGuard {
    name: SpanName,
    corr: u64,
    live: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.live {
            // Emit unconditionally (no enabled() re-check) so a mid-span
            // disable cannot strand an unbalanced Begin.
            emit(self.name, EventKind::End, self.corr, 0);
        }
    }
}

/// Opens a span; the returned guard closes it on drop.
#[inline]
pub fn span(name: SpanName) -> SpanGuard {
    span_with_arg(name, 0)
}

/// Opens a span whose `Begin` event carries `arg`.
#[inline]
pub fn span_with_arg(name: SpanName, arg: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            corr: 0,
            live: false,
            _not_send: PhantomData,
        };
    }
    let corr = current_corr();
    emit(name, EventKind::Begin, corr, arg);
    SpanGuard {
        name,
        corr,
        live: true,
        _not_send: PhantomData,
    }
}

/// Emits a point event carrying `arg`.
#[inline]
pub fn instant(name: SpanName, arg: u64) {
    if !enabled() {
        return;
    }
    emit(name, EventKind::Instant, current_corr(), arg);
}

/// Records a span that just finished and lasted `duration_nanos` — used
/// when the opening edge happened on another thread (e.g. queue wait).
#[inline]
pub fn complete(name: SpanName, duration_nanos: u64) {
    if !enabled() {
        return;
    }
    emit(name, EventKind::Complete, current_corr(), duration_nanos);
}

// ---------------------------------------------------------------------------
// Correlation context
// ---------------------------------------------------------------------------

/// Restores the previous thread-local correlation id on drop.
#[derive(Debug)]
pub struct CorrGuard {
    prev: u64,
    _not_send: PhantomData<*const ()>,
}

impl Drop for CorrGuard {
    fn drop(&mut self) {
        let _ = CORR.try_with(|c| c.set(self.prev));
    }
}

/// Sets the current thread's correlation id until the guard drops.
#[inline]
pub fn corr_scope(corr: u64) -> CorrGuard {
    let prev = CORR.try_with(|c| c.replace(corr)).unwrap_or(0);
    CorrGuard {
        prev,
        _not_send: PhantomData,
    }
}

/// Runs `f` with `corr` as the current correlation id.
#[inline]
pub fn with_corr<R>(corr: u64, f: impl FnOnce() -> R) -> R {
    let _guard = corr_scope(corr);
    f()
}

/// The correlation id events on this thread are currently stamped with
/// (0 = none).
#[inline]
pub fn current_corr() -> u64 {
    CORR.try_with(Cell::get).unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Snapshots and Chrome export
// ---------------------------------------------------------------------------

/// The retained events of one thread's ring at snapshot time.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// Stable small id assigned at ring registration (used as Chrome `tid`).
    pub tid: u64,
    /// The emitting thread's name at registration time.
    pub thread_name: String,
    /// Events overwritten by ring wraparound since the thread began
    /// tracing.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// A point-in-time copy of every registered thread ring.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// One entry per thread that has ever emitted an event.
    pub threads: Vec<ThreadTrace>,
}

/// Copies the current contents of every thread's ring (lock-free with
/// respect to emitters; never returns a torn event).
pub fn snapshot() -> TraceSnapshot {
    let rings: Vec<Arc<Ring>> = registry().lock().unwrap().clone();
    let threads = rings
        .iter()
        .map(|ring| {
            let (events, dropped) = ring.read();
            ThreadTrace {
                tid: ring.tid,
                thread_name: ring.thread_name.clone(),
                dropped,
                events,
            }
        })
        .collect();
    TraceSnapshot { threads }
}

fn push_json_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_micros(out: &mut String, nanos: u64) {
    let _ = write!(out, "{}.{:03}", nanos / 1_000, nanos % 1_000);
}

impl TraceSnapshot {
    /// Total number of retained events across all threads.
    pub fn len(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Whether no thread retained any event.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the snapshot as Chrome trace-event JSON (one line, compact),
    /// loadable in Perfetto or `chrome://tracing`.
    ///
    /// Span edges become `B`/`E` pairs, instants become `i`, and
    /// cross-thread completions become `X` events whose `ts` is backdated
    /// by their duration.  A metadata event names each thread.
    pub fn to_chrome_json(&self) -> String {
        let pid = std::process::id();
        let mut out = String::with_capacity(128 + self.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let push_sep = |out: &mut String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
        };
        for thread in &self.threads {
            push_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"args\":{{\"name\":",
                thread.tid
            );
            push_json_escaped(&mut out, &thread.thread_name);
            out.push_str("}}");
            for ev in &thread.events {
                push_sep(&mut out, &mut first);
                out.push_str("{\"name\":\"");
                out.push_str(ev.name.label());
                out.push_str("\",\"cat\":\"");
                out.push_str(ev.name.category());
                let _ = write!(out, "\",\"pid\":{pid},\"tid\":{},\"ts\":", thread.tid);
                match ev.kind {
                    EventKind::Begin => {
                        push_micros(&mut out, ev.nanos);
                        out.push_str(",\"ph\":\"B\"");
                    }
                    EventKind::End => {
                        push_micros(&mut out, ev.nanos);
                        out.push_str(",\"ph\":\"E\"");
                    }
                    EventKind::Instant => {
                        push_micros(&mut out, ev.nanos);
                        out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
                    }
                    EventKind::Complete => {
                        push_micros(&mut out, ev.nanos.saturating_sub(ev.arg));
                        out.push_str(",\"ph\":\"X\",\"dur\":");
                        push_micros(&mut out, ev.arg);
                    }
                }
                if ev.corr != 0 || (ev.arg != 0 && ev.kind != EventKind::Complete) {
                    out.push_str(",\"args\":{");
                    let mut inner_first = true;
                    if ev.corr != 0 {
                        let _ = write!(out, "\"corr\":{}", ev.corr);
                        inner_first = false;
                    }
                    if ev.arg != 0 && ev.kind != EventKind::Complete {
                        if !inner_first {
                            out.push(',');
                        }
                        let _ = write!(out, "\"arg\":{}", ev.arg);
                    }
                    out.push('}');
                }
                out.push('}');
            }
        }
        out.push_str("]}");
        out
    }
}

/// Summary returned by a successful [`validate_chrome_trace`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Total trace events, metadata included.
    pub events: usize,
    /// Distinct `tid`s carrying at least one non-metadata event.
    pub threads: usize,
    /// `B`/`E` span pairs plus `X` completions.
    pub spans: usize,
    /// `i` point events.
    pub instants: usize,
    /// Spans still open when the snapshot was taken (in-flight work — a
    /// live server exporting its own trace always has at least one).
    pub open_spans: usize,
    /// `E` events whose `B` was dropped by ring wraparound before the
    /// snapshot (the retained stream is a suffix of the emitted one).
    pub orphan_ends: usize,
}

/// Structurally validates Chrome trace-event JSON: well-formed, non-empty,
/// per-thread timestamps monotonic, and begin/end nesting consistent (an
/// `E` closing a span must name the innermost open one) on every thread.
/// Returns counts on success.
///
/// Two snapshot artifacts are tolerated and *counted* rather than
/// rejected, because a ring-buffer snapshot of a live process produces
/// them by construction: spans still open at snapshot time
/// ([`ChromeTraceSummary::open_spans`]) and `E` events whose `B` was
/// overwritten by ring wraparound ([`ChromeTraceSummary::orphan_ends`]).
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceSummary, String> {
    let value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = value
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    if events.is_empty() {
        return Err("trace contains no events".to_string());
    }
    // (pid, tid) -> (last timestamp seen, stack of open span names).
    let mut per_thread: Vec<((u64, u64), f64, Vec<String>)> = Vec::new();
    let mut threads_with_events = std::collections::BTreeSet::new();
    let mut spans = 0usize;
    let mut instants = 0usize;
    let mut orphan_ends = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_string();
        let pid = ev
            .get("pid")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = ev
            .get("tid")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        if ph == "M" {
            continue;
        }
        threads_with_events.insert((pid, tid));
        let ts = ev
            .get("ts")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let slot = match per_thread.iter_mut().find(|(key, _, _)| *key == (pid, tid)) {
            Some(slot) => slot,
            None => {
                per_thread.push(((pid, tid), f64::NEG_INFINITY, Vec::new()));
                per_thread.last_mut().unwrap()
            }
        };
        match ph {
            "B" | "E" | "i" => {
                if ts < slot.1 {
                    return Err(format!(
                        "event {i} ({name}): ts {ts} precedes {} on tid {tid}",
                        slot.1
                    ));
                }
                slot.1 = ts;
                match ph {
                    "B" => slot.2.push(name),
                    "E" => match slot.2.pop() {
                        Some(open) if open != name => {
                            return Err(format!(
                                "event {i}: E for {name} but {open} is open on tid {tid}"
                            ));
                        }
                        Some(_) => spans += 1,
                        // The ring dropped this span's B: the retained
                        // stream is a suffix of the emitted one.
                        None => orphan_ends += 1,
                    },
                    _ => instants += 1,
                }
            }
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("event {i} ({name}): X without dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {i} ({name}): negative dur"));
                }
                // X events are backdated by their duration; their *end*
                // must respect thread order.
                let end = ts + dur;
                if end < slot.1 {
                    return Err(format!(
                        "event {i} ({name}): X ends at {end} before {} on tid {tid}",
                        slot.1
                    ));
                }
                slot.1 = end;
                spans += 1;
            }
            other => return Err(format!("event {i} ({name}): unknown ph {other:?}")),
        }
    }
    let open_spans = per_thread.iter().map(|(_, _, stack)| stack.len()).sum();
    Ok(ChromeTraceSummary {
        events: events.len(),
        threads: threads_with_events.len(),
        spans,
        instants,
        open_spans,
        orphan_ends,
    })
}

/// Renders an indented per-thread span tree of all events carrying `corr`
/// — the slow-request log body.
pub fn render_span_tree(snapshot: &TraceSnapshot, corr: u64) -> String {
    let mut out = String::new();
    for thread in &snapshot.threads {
        let events: Vec<&TraceEvent> = thread.events.iter().filter(|e| e.corr == corr).collect();
        if events.is_empty() {
            continue;
        }
        let _ = writeln!(out, "[{}] ({})", thread.thread_name, thread.tid);
        // (line index, begin nanos) of every open span, for duration
        // backfill when its End arrives.
        let mut lines: Vec<String> = Vec::new();
        let mut stack: Vec<(usize, u64)> = Vec::new();
        for ev in events {
            let indent = "  ".repeat(stack.len() + 1);
            match ev.kind {
                EventKind::Begin => {
                    lines.push(format!("{indent}{}", ev.name.label()));
                    stack.push((lines.len() - 1, ev.nanos));
                }
                EventKind::End => {
                    if let Some((idx, begin)) = stack.pop() {
                        let dur = ev.nanos.saturating_sub(begin);
                        let _ = write!(lines[idx], " {}", format_duration(dur));
                    }
                }
                EventKind::Instant => {
                    lines.push(format!("{indent}@ {} (arg {})", ev.name.label(), ev.arg));
                }
                EventKind::Complete => {
                    lines.push(format!(
                        "{indent}{} {}",
                        ev.name.label(),
                        format_duration(ev.arg)
                    ));
                }
            }
        }
        for (idx, _) in stack {
            let _ = write!(lines[idx], " (unfinished)");
        }
        for line in lines {
            let _ = writeln!(out, "{line}");
        }
    }
    if out.is_empty() {
        out.push_str("(no spans recorded for this request)\n");
    }
    out
}

fn format_duration(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

// ---------------------------------------------------------------------------
// Latency histograms
// ---------------------------------------------------------------------------

/// Number of finite buckets in a [`LatencyHistogram`] (one more holds
/// overflow, rendered as `+Inf`).
pub const LATENCY_BUCKETS: usize = 48;

const fn bound_nanos(k: usize) -> u64 {
    // Powers of √2 starting at 1µs: even ranks are exact doublings of
    // 1000ns, odd ranks of 1414ns (≈ 1000·√2).
    if k.is_multiple_of(2) {
        1_000u64 << (k / 2)
    } else {
        1_414u64 << (k / 2)
    }
}

/// Upper bucket bounds in nanoseconds, ascending powers of √2 from 1µs.
pub const BUCKET_BOUNDS_NANOS: [u64; LATENCY_BUCKETS] = {
    let mut bounds = [0u64; LATENCY_BUCKETS];
    let mut k = 0;
    while k < LATENCY_BUCKETS {
        bounds[k] = bound_nanos(k);
        k += 1;
    }
    bounds
};

/// Lock-free log-bucketed (powers of √2) latency histogram.
///
/// All mutation is relaxed-atomic increments, so any number of threads may
/// record concurrently; [`LatencyHistogram::snapshot`] takes a racy-but-
/// consistent-enough copy for exposition.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS + 1],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// A zeroed histogram (usable in statics).
    pub const fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; LATENCY_BUCKETS + 1],
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// Records one observation of `nanos`.
    pub fn record_nanos(&self, nanos: u64) {
        let idx = BUCKET_BOUNDS_NANOS.partition_point(|&b| nanos > b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Copies the current counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts; the final entry is the
    /// overflow (`+Inf`) bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed latencies in nanoseconds.
    pub sum_nanos: u64,
}

impl HistogramSnapshot {
    /// Upper bound of finite bucket `k` in seconds.
    pub fn upper_bound_seconds(k: usize) -> f64 {
        BUCKET_BOUNDS_NANOS[k] as f64 * 1e-9
    }

    /// The upper bound (seconds) of the bucket containing quantile `q`
    /// (`0.0..=1.0`), or `None` when empty.  Overflow observations report
    /// twice the largest finite bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(if k < LATENCY_BUCKETS {
                    Self::upper_bound_seconds(k)
                } else {
                    Self::upper_bound_seconds(LATENCY_BUCKETS - 1) * 2.0
                });
            }
        }
        Some(Self::upper_bound_seconds(LATENCY_BUCKETS - 1) * 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_event_is_32_bytes() {
        assert_eq!(WORDS * std::mem::size_of::<AtomicU64>(), 32);
    }

    #[test]
    fn event_words_round_trip() {
        for name in SpanName::ALL {
            for kind in [
                EventKind::Begin,
                EventKind::End,
                EventKind::Instant,
                EventKind::Complete,
            ] {
                let w3 = (name as u64) | ((kind as u64) << 16);
                let ev = decode(7, 42, 9000, w3).expect("decodes");
                assert_eq!(ev.name, name);
                assert_eq!(ev.kind, kind);
                assert_eq!((ev.nanos, ev.corr, ev.arg), (7, 42, 9000));
            }
        }
        assert!(decode(0, 0, 0, 0xffff).is_none(), "unknown name rejected");
    }

    #[test]
    fn bucket_bounds_are_sqrt2_spaced_and_ascending() {
        for k in 0..LATENCY_BUCKETS - 1 {
            let ratio = BUCKET_BOUNDS_NANOS[k + 1] as f64 / BUCKET_BOUNDS_NANOS[k] as f64;
            assert!(
                (ratio - std::f64::consts::SQRT_2).abs() < 0.01,
                "bucket {k}: ratio {ratio}"
            );
        }
        assert_eq!(BUCKET_BOUNDS_NANOS[0], 1_000);
        assert_eq!(BUCKET_BOUNDS_NANOS[2], 2_000);
    }

    #[test]
    fn histogram_records_into_correct_buckets() {
        let h = LatencyHistogram::new();
        h.record_nanos(500); // <= 1µs -> bucket 0
        h.record_nanos(1_000); // == bound 0 -> bucket 0
        h.record_nanos(1_001); // -> bucket 1
        h.record_nanos(u64::MAX); // -> overflow
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[LATENCY_BUCKETS], 1);
        assert_eq!(snap.count, 4);
    }

    #[test]
    fn histogram_quantiles_hit_bucket_bounds() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record_nanos(900); // bucket 0 (≤ 1µs)
        }
        h.record_nanos(3_000_000); // ~3ms
        let snap = h.snapshot();
        let p50 = snap.quantile(0.5).unwrap();
        assert!((p50 - 1e-6).abs() < 1e-12, "p50 {p50}");
        let p999 = snap.quantile(0.999).unwrap();
        assert!(p999 > 2e-3 && p999 < 6e-3, "p99.9 {p999}");
        let empty = LatencyHistogram::new().snapshot();
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn chrome_json_validates_for_a_synthetic_snapshot() {
        let snap = TraceSnapshot {
            threads: vec![ThreadTrace {
                tid: 7,
                thread_name: "test \"quoted\"".to_string(),
                dropped: 0,
                events: vec![
                    TraceEvent {
                        nanos: 1_000,
                        corr: 5,
                        arg: 0,
                        name: SpanName::EngineMultiply,
                        kind: EventKind::Begin,
                    },
                    TraceEvent {
                        nanos: 1_500,
                        corr: 5,
                        arg: 3,
                        name: SpanName::PlannerDecide,
                        kind: EventKind::Instant,
                    },
                    TraceEvent {
                        nanos: 2_000,
                        corr: 5,
                        arg: 400,
                        name: SpanName::ServeQueueWait,
                        kind: EventKind::Complete,
                    },
                    TraceEvent {
                        nanos: 9_000,
                        corr: 5,
                        arg: 0,
                        name: SpanName::EngineMultiply,
                        kind: EventKind::End,
                    },
                ],
            }],
        };
        let json = snap.to_chrome_json();
        let summary = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(summary.threads, 1);
        assert_eq!(summary.spans, 2); // one B/E pair + one X
        assert_eq!(summary.instants, 1);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        // Non-monotonic timestamps.
        let bad = "{\"traceEvents\":[\
            {\"name\":\"x\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":5.0},\
            {\"name\":\"x\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":1.0}]}";
        assert!(validate_chrome_trace(bad).is_err());
        // E naming something other than the innermost open span.
        let bad = "{\"traceEvents\":[\
            {\"name\":\"outer\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":1.0},\
            {\"name\":\"inner\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":2.0},\
            {\"name\":\"outer\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":3.0}]}";
        assert!(validate_chrome_trace(bad).is_err());
    }

    #[test]
    fn validator_counts_snapshot_artifacts_instead_of_rejecting_them() {
        // An E whose B rotated out of the ring: tolerated, counted.
        let orphan = "{\"traceEvents\":[\
            {\"name\":\"x\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":1.0},\
            {\"name\":\"y\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":2.0}]}";
        let summary = validate_chrome_trace(orphan).expect("orphan E is a snapshot artifact");
        assert_eq!(summary.orphan_ends, 1);
        assert_eq!(summary.open_spans, 0);
        // A span still in flight when the snapshot was taken: same.
        let open =
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":1.0}]}";
        let summary = validate_chrome_trace(open).expect("open span is a snapshot artifact");
        assert_eq!(summary.open_spans, 1);
        assert_eq!(summary.orphan_ends, 0);
        assert_eq!(summary.spans, 0);
    }

    #[test]
    fn span_tree_renders_nesting_and_durations() {
        let snap = TraceSnapshot {
            threads: vec![ThreadTrace {
                tid: 1,
                thread_name: "worker-0".to_string(),
                dropped: 0,
                events: vec![
                    TraceEvent {
                        nanos: 0,
                        corr: 9,
                        arg: 0,
                        name: SpanName::ServeRequest,
                        kind: EventKind::Begin,
                    },
                    TraceEvent {
                        nanos: 100,
                        corr: 9,
                        arg: 0,
                        name: SpanName::ServeEngineCall,
                        kind: EventKind::Begin,
                    },
                    TraceEvent {
                        nanos: 2_000_100,
                        corr: 9,
                        arg: 0,
                        name: SpanName::ServeEngineCall,
                        kind: EventKind::End,
                    },
                    TraceEvent {
                        nanos: 2_500_000,
                        corr: 9,
                        arg: 0,
                        name: SpanName::ServeRequest,
                        kind: EventKind::End,
                    },
                ],
            }],
        };
        let tree = render_span_tree(&snap, 9);
        assert!(tree.contains("serve.request 2.500ms"), "{tree}");
        assert!(tree.contains("    serve.engine_call 2.000ms"), "{tree}");
        assert!(render_span_tree(&snap, 12345).contains("no spans"));
    }

    #[test]
    fn truthy_accepts_the_documented_spellings() {
        for v in ["1", "true", "ON", " yes "] {
            assert!(truthy(v), "{v}");
        }
        for v in ["0", "false", "off", "", "2"] {
            assert!(!truthy(v), "{v}");
        }
    }
}
