//! Roofline report: measure the machine's STREAM bandwidth, run PB-SpGEMM
//! on ER matrices, and compare the achieved MFLOPS against the paper's
//! model predictions (Sec. II and Fig. 7).
//!
//! ```bash
//! cargo run --release --example roofline_report
//! ```

use pb_spgemm_suite::model::stream::{run as run_stream, StreamConfig};
use pb_spgemm_suite::prelude::*;

fn main() {
    // 1. Measure beta.  The arrays must be much larger than the last-level
    //    cache or the "bandwidth" would be a cache bandwidth; pass --full for
    //    the STREAM-default 128 MiB arrays, otherwise use 32 MiB ones.
    let full = std::env::args().any(|a| a == "--full");
    let stream_cfg = if full {
        StreamConfig::default()
    } else {
        StreamConfig {
            elements: 1 << 22,
            ntimes: 3,
            threads: None,
        }
    };
    let stream = run_stream(&stream_cfg);
    let beta = stream.beta_gbps();
    let model = RooflineModel::new(beta);
    println!(
        "STREAM: copy {:.1} / scale {:.1} / add {:.1} / triad {:.1} GB/s",
        stream.copy, stream.scale, stream.add, stream.triad
    );
    println!("Roofline bandwidth beta = {beta:.1} GB/s\n");

    // 2. Run PB-SpGEMM on ER matrices of growing size and compare against
    //    the model.
    println!(
        "{:<16} {:>8} {:>6} {:>12} {:>14} {:>14} {:>10}",
        "workload", "flop(M)", "cf", "MFLOPS", "Eq.4 bound", "Eq.1 peak", "bw (GB/s)"
    );
    for (scale, ef) in [(12u32, 8u32), (13, 8), (14, 8), (14, 16)] {
        let a = erdos_renyi_square(scale, ef, scale as u64);
        let (_, profile) = SpGemm::pb().multiply_with_profile::<PlusTimes<f64>>(&a, &a);
        let cf = profile.cf();
        let achieved_mflops = profile.gflops() * 1e3;
        let lower = model.outer_predicted_gflops(cf) * 1e3;
        let peak = model.peak_gflops(cf) * 1e3;
        println!(
            "{:<16} {:>8.1} {:>6.2} {:>12.0} {:>14.0} {:>14.0} {:>10.1}",
            format!("ER s={scale} ef={ef}"),
            profile.flop as f64 / 1e6,
            cf,
            achieved_mflops,
            lower,
            peak,
            profile.overall_bandwidth_gbps(),
        );
    }

    println!(
        "\ninterpretation: the paper's claim is that PB-SpGEMM lands at or above the Eq. 4\n\
         prediction (beta * cf / ((3 + 2 cf) * 16)) and below the Eq. 1 peak, because every\n\
         phase streams memory at close to the STREAM bandwidth."
    );
}
