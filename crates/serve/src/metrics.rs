//! The `/metrics`-style text endpoint.
//!
//! Renders server counters, per-op request-latency histograms, catalog
//! occupancy, aggregated workspace telemetry, the latest multiply's
//! [`PhaseStats`](pb_spgemm::PhaseStats) (planner decision, ISA dispatch,
//! NUMA routing) and planner progress in the conventional text exposition
//! format: every family is announced with `# HELP` and `# TYPE` lines,
//! label values are escaped per the format's rules, and histograms emit
//! cumulative `_bucket{le=…}` series plus `_sum`/`_count`.  The `metrics`
//! op returns this text in the `text` field of a normal JSON response, so
//! the protocol stays one-line-per-message.  The vendored
//! [`exposition`](crate::exposition) parser round-trips this output — the
//! conformance test in that module keeps the two in sync.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use pb_spgemm::{HistogramSnapshot, LatencyHistogram, Workspace, LATENCY_BUCKETS};

use crate::catalog::Catalog;

/// Monotonic server-side counters (every field is a `_total` metric).
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Requests accepted, by outcome.
    pub requests: AtomicU64,
    /// Requests answered with `ok: false` (parse errors included).
    pub errors: AtomicU64,
    /// Multiply requests answered from a shared batch execution (batch
    /// members beyond the first).
    pub batched: AtomicU64,
    /// Largest multiply batch executed so far.
    pub max_batch: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Out-of-core (tiled) multiplies executed.
    pub ooc_multiplies: AtomicU64,
    /// Bytes tiled multiplies spilled to scratch files.
    pub ooc_spill_bytes: AtomicU64,
    /// Peak tile-store resident bytes any tiled multiply reached.
    pub ooc_high_water: AtomicU64,
}

impl ServerCounters {
    /// Records the size of one executed multiply batch.
    pub fn record_batch(&self, size: usize) {
        if size > 1 {
            self.batched.fetch_add(size as u64 - 1, Ordering::Relaxed);
        }
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }
}

/// Every request op carrying a latency histogram, in exposition order.
/// These are the only values the `op` label ever takes — fixed strings
/// from [`Request::op_name`](crate::Request::op_name), never client text.
pub const OP_NAMES: [&str; 13] = [
    "ping", "store", "gen", "load", "multiply", "mcl", "bc", "apsp", "evict", "list", "metrics",
    "trace", "shutdown",
];

/// One lock-free latency histogram per request op, recorded by the workers
/// around each handled request and rendered as the
/// `pb_serve_request_seconds` histogram family.
#[derive(Debug)]
pub struct OpLatencies {
    hists: [LatencyHistogram; OP_NAMES.len()],
}

impl Default for OpLatencies {
    fn default() -> Self {
        OpLatencies {
            hists: [const { LatencyHistogram::new() }; OP_NAMES.len()],
        }
    }
}

impl OpLatencies {
    /// Records one handled request of op `op` taking `nanos`.  Unknown op
    /// names are ignored (cannot happen for parsed requests).
    pub fn record(&self, op: &str, nanos: u64) {
        if let Some(idx) = OP_NAMES.iter().position(|&n| n == op) {
            self.hists[idx].record_nanos(nanos);
        }
    }

    /// Snapshot of every op that has recorded at least one observation.
    pub fn snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        OP_NAMES
            .iter()
            .zip(self.hists.iter())
            .map(|(&name, h)| (name, h.snapshot()))
            .filter(|(_, s)| s.count > 0)
            .collect()
    }
}

/// Escapes a label value per the text exposition format: backslash, double
/// quote and newline must be backslash-escaped inside `label="…"`.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Emits the `# HELP` / `# TYPE` header of one metric family.
fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn sample(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "{name} {value}");
}

fn sample_f64(out: &mut String, name: &str, value: f64) {
    let _ = writeln!(out, "{name} {value:.6}");
}

/// One counter family: header plus its single sample.
fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    family(out, name, "counter", help);
    sample(out, name, value);
}

/// One gauge family: header plus its single sample.
fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    family(out, name, "gauge", help);
    sample(out, name, value);
}

/// Formats a bucket bound in seconds the way the `le` label wants it.
fn le_label(seconds: f64) -> String {
    format!("{seconds}")
}

/// Renders one op's histogram as cumulative buckets plus sum and count.
fn histogram_series(out: &mut String, base: &str, op: &str, snap: &HistogramSnapshot) {
    let op = escape_label(op);
    let mut cumulative = 0u64;
    for (k, &n) in snap.buckets.iter().enumerate() {
        cumulative += n;
        let le = if k < LATENCY_BUCKETS {
            le_label(HistogramSnapshot::upper_bound_seconds(k))
        } else {
            "+Inf".to_string()
        };
        let _ = writeln!(out, "{base}_bucket{{op=\"{op}\",le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(
        out,
        "{base}_sum{{op=\"{op}\"}} {:.9}",
        snap.sum_nanos as f64 * 1e-9
    );
    let _ = writeln!(out, "{base}_count{{op=\"{op}\"}} {}", snap.count);
}

/// Renders the whole metrics page.  `catalog` is read under its lock by the
/// caller; counters and latency histograms are lock-free.
pub fn render(counters: &ServerCounters, latencies: &OpLatencies, catalog: &Catalog) -> String {
    let mut out = String::with_capacity(8192);

    // Server request counters.
    counter(
        &mut out,
        "pb_serve_requests_total",
        "Requests answered (ok and error responses).",
        counters.requests.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pb_serve_errors_total",
        "Requests answered with ok=false (parse errors included).",
        counters.errors.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pb_serve_batched_requests_total",
        "Multiply requests answered from a shared batch execution.",
        counters.batched.load(Ordering::Relaxed),
    );
    gauge(
        &mut out,
        "pb_serve_max_batch",
        "Largest multiply batch executed so far.",
        counters.max_batch.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pb_serve_connections_total",
        "Connections accepted.",
        counters.connections.load(Ordering::Relaxed),
    );

    // Per-op request handling latency (worker-side: queue wait excluded).
    let series = latencies.snapshots();
    if !series.is_empty() {
        family(
            &mut out,
            "pb_serve_request_seconds",
            "histogram",
            "Worker-side request handling latency by op.",
        );
        for (op, snap) in &series {
            histogram_series(&mut out, "pb_serve_request_seconds", op, snap);
        }
    }

    // Catalog occupancy.
    gauge(
        &mut out,
        "pb_serve_catalog_entries",
        "Resident catalog entries.",
        catalog.len() as u64,
    );
    gauge(
        &mut out,
        "pb_serve_catalog_bytes_used",
        "Bytes of resident matrices.",
        catalog.bytes_used() as u64,
    );
    gauge(
        &mut out,
        "pb_serve_catalog_bytes_budget",
        "Catalog byte budget.",
        catalog.budget_bytes() as u64,
    );
    counter(
        &mut out,
        "pb_serve_catalog_evictions_total",
        "LRU evictions forced by the byte budget.",
        catalog.evictions(),
    );

    // Out-of-core tiled-multiply telemetry.
    counter(
        &mut out,
        "pb_ooc_multiplies_total",
        "Out-of-core tiled multiplies executed.",
        counters.ooc_multiplies.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pb_ooc_spill_bytes_total",
        "Bytes tiled multiplies spilled to scratch files.",
        counters.ooc_spill_bytes.load(Ordering::Relaxed),
    );
    gauge(
        &mut out,
        "pb_ooc_resident_high_water_bytes",
        "Peak tile-store resident bytes any tiled multiply reached.",
        counters.ooc_high_water.load(Ordering::Relaxed),
    );

    // Combined resident footprint: catalog matrices + pooled workspace
    // buffers + the OOC tile-store high water.  The catalog budget bounds
    // the first term, the per-workspace decay policy the second, and the
    // per-multiply OOC budget the third — three separate knobs, summed
    // here so one gauge answers "how much does this process hold".
    gauge(
        &mut out,
        "pb_serve_resident_bytes_combined",
        "Catalog + pooled workspace + OOC tile-store resident bytes.",
        catalog.bytes_used() as u64
            + catalog.sum_workspaces(Workspace::resident_bytes)
            + counters.ooc_high_water.load(Ordering::Relaxed),
    );

    // Workspace telemetry aggregated over every resident entry, including
    // the decay policy's counters.
    counter(
        &mut out,
        "pb_workspace_leases_total",
        "Workspace leases taken by resident engines.",
        catalog.sum_workspaces(Workspace::leases),
    );
    counter(
        &mut out,
        "pb_workspace_hits_total",
        "Leases served entirely from pooled buffers.",
        catalog.sum_workspaces(Workspace::total_hits),
    );
    counter(
        &mut out,
        "pb_workspace_bytes_allocated_total",
        "Bytes workspaces allocated fresh.",
        catalog.sum_workspaces(Workspace::total_bytes_allocated),
    );
    counter(
        &mut out,
        "pb_workspace_bytes_reused_total",
        "Bytes served from pooled workspace buffers.",
        catalog.sum_workspaces(Workspace::total_bytes_reused),
    );
    counter(
        &mut out,
        "pb_workspace_bytes_released_total",
        "Bytes released by workspace decay.",
        catalog.sum_workspaces(Workspace::total_bytes_released),
    );
    counter(
        &mut out,
        "pb_workspace_decay_events_total",
        "Workspace decay events.",
        catalog.sum_workspaces(Workspace::decay_events),
    );

    // Planner progress (shared across every entry engine).
    if let Some(profile) = catalog.sink().latest() {
        let planner_name = escape_label(profile.stats.planned_algorithm.name());
        family(
            &mut out,
            "pb_planner_last_decision",
            "gauge",
            "Kernel the planner chose for the latest multiply.",
        );
        let _ = writeln!(
            out,
            "pb_planner_last_decision{{kernel=\"{planner_name}\"}} 1"
        );
        family(
            &mut out,
            "pb_spgemm_last_cf",
            "gauge",
            "Compression factor of the latest multiply.",
        );
        sample_f64(&mut out, "pb_spgemm_last_cf", profile.cf());
        family(
            &mut out,
            "pb_spgemm_last_gflops",
            "gauge",
            "Throughput of the latest multiply.",
        );
        sample_f64(&mut out, "pb_spgemm_last_gflops", profile.gflops());
        gauge(
            &mut out,
            "pb_spgemm_last_flop",
            "Useful flops of the latest multiply.",
            profile.flop,
        );
        gauge(
            &mut out,
            "pb_spgemm_last_numa_domains",
            "NUMA domains the latest multiply routed across.",
            profile.stats.numa_domains as u64,
        );
        gauge(
            &mut out,
            "pb_spgemm_last_bytes_allocated",
            "Workspace bytes the latest multiply allocated fresh.",
            profile.stats.bytes_allocated,
        );
        gauge(
            &mut out,
            "pb_spgemm_last_bytes_reused",
            "Workspace bytes the latest multiply reused.",
            profile.stats.bytes_reused,
        );
        let isa = escape_label(profile.stats.isa.isa.name());
        family(
            &mut out,
            "pb_simd_dispatch",
            "gauge",
            "ISA level the latest multiply's kernels dispatched to.",
        );
        let _ = writeln!(out, "pb_simd_dispatch{{isa=\"{isa}\"}} 1");
    }

    // Host-wide active ISA (what the dispatcher would pick right now).
    let active = escape_label(pb_spgemm::simd::active().name());
    family(
        &mut out,
        "pb_simd_active",
        "gauge",
        "ISA level the dispatcher would pick right now.",
    );
    let _ = writeln!(out, "pb_simd_active{{isa=\"{active}\"}} 1");

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_spgemm::Algorithm;

    #[test]
    fn renders_required_families() {
        let counters = ServerCounters::default();
        counters.requests.fetch_add(3, Ordering::Relaxed);
        counters.record_batch(4);
        let latencies = OpLatencies::default();
        latencies.record("multiply", 2_000_000);
        let catalog = Catalog::new(1 << 20, Algorithm::Pb);
        let text = render(&counters, &latencies, &catalog);
        for family in [
            "pb_serve_requests_total 3",
            "pb_serve_errors_total 0",
            "pb_serve_batched_requests_total 3",
            "pb_serve_max_batch 4",
            "pb_serve_catalog_entries 0",
            "pb_serve_catalog_bytes_budget 1048576",
            "pb_serve_catalog_evictions_total 0",
            "pb_workspace_bytes_released_total 0",
            "pb_workspace_decay_events_total 0",
            "pb_ooc_multiplies_total 0",
            "pb_ooc_spill_bytes_total 0",
            "pb_ooc_resident_high_water_bytes 0",
            "pb_serve_resident_bytes_combined 0",
            "pb_simd_active{isa=",
            "# TYPE pb_serve_requests_total counter",
            "# HELP pb_serve_request_seconds ",
            "# TYPE pb_serve_request_seconds histogram",
            "pb_serve_request_seconds_bucket{op=\"multiply\",le=\"+Inf\"} 1",
            "pb_serve_request_seconds_count{op=\"multiply\"} 1",
        ] {
            assert!(text.contains(family), "missing `{family}` in:\n{text}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_count() {
        let latencies = OpLatencies::default();
        // One observation under 1µs, one huge one in the overflow bucket.
        latencies.record("ping", 10);
        latencies.record("ping", u64::MAX / 4);
        let (_, snap) = latencies
            .snapshots()
            .into_iter()
            .find(|(op, _)| *op == "ping")
            .unwrap();
        let mut out = String::new();
        histogram_series(&mut out, "x", "ping", &snap);
        let inf = out
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .expect("+Inf bucket");
        assert!(inf.ends_with(" 2"), "{inf}");
        assert!(out.contains("x_count{op=\"ping\"} 2"));
        // The first bucket already holds the sub-microsecond observation.
        let first = out.lines().next().unwrap();
        assert!(first.ends_with(" 1"), "{first}");
    }

    #[test]
    fn label_escaping_covers_the_format_specials() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
    }

    #[test]
    fn unknown_ops_are_ignored() {
        let latencies = OpLatencies::default();
        latencies.record("not-an-op", 1);
        assert!(latencies.snapshots().is_empty());
    }
}
