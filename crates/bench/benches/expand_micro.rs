//! Criterion micro-benchmarks of the expand-phase ablations: reserved
//! (unsafe, paper design) vs thread-local flushing, range vs modulo bin
//! mapping, and the effect of the local-bin width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pb_gen::erdos_renyi_square;
use pb_spgemm::{BinMapping, ExpandStrategy, PbConfig, SpGemm};

fn bench_expand_strategies(c: &mut Criterion) {
    let a = erdos_renyi_square(12, 8, 11);
    let a_csc = a.to_csc();
    let mut group = c.benchmark_group("expand_strategy");
    group.sample_size(10);
    for (name, strategy) in [
        ("reserved", ExpandStrategy::Reserved),
        ("thread_local", ExpandStrategy::ThreadLocal),
    ] {
        for (map_name, mapping) in [("range", BinMapping::Range), ("modulo", BinMapping::Modulo)] {
            let engine = SpGemm::pb().config(
                PbConfig::default()
                    .with_expand(strategy)
                    .with_bin_mapping(mapping),
            );
            group.bench_function(BenchmarkId::new(name, map_name), |bench| {
                bench.iter(|| black_box(engine.multiply_csc(&a_csc, &a)));
            });
        }
    }
    group.finish();
}

fn bench_local_bin_width(c: &mut Criterion) {
    let a = erdos_renyi_square(12, 8, 12);
    let a_csc = a.to_csc();
    let mut group = c.benchmark_group("local_bin_width");
    group.sample_size(10);
    for width in [64usize, 256, 512, 2048] {
        let engine = SpGemm::pb().config(PbConfig::default().with_local_bin_bytes(width));
        group.bench_function(BenchmarkId::from_parameter(width), |bench| {
            bench.iter(|| black_box(engine.multiply_csc(&a_csc, &a)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_expand_strategies, bench_local_bin_width);
criterion_main!(benches);
