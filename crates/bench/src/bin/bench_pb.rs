//! Emits the machine-readable PB-SpGEMM performance baseline.
//!
//! ```text
//! cargo run --release -p pb-bench --bin bench_pb [-- <output-path>]
//! ```
//!
//! Sweeps PB-SpGEMM over thread counts (1, 2, 4, ... up to the pool's
//! size, which honours `PB_RAYON_THREADS`) on the quickstart-scale R-MAT
//! workload and writes `BENCH_pb.json` (or the given path).  Also prints a
//! small human-readable table.

use pb_bench::baseline::run_pb_baseline;
use pb_bench::{fmt, print_table, Table};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pb.json".to_string());
    let reps = if pb_bench::quick_mode() { 1 } else { 3 };
    let max_threads = rayon::current_num_threads();

    let doc = run_pb_baseline(max_threads, reps);

    let mut table = Table::new(
        format!(
            "PB-SpGEMM baseline — {} (flop {:.1}M, cf {:.2}, host cores {})",
            doc.workload,
            doc.flop as f64 / 1e6,
            doc.cf,
            doc.host_cores
        ),
        &["threads", "effective", "seconds", "GFLOPS", "speedup"],
    );
    for p in &doc.sweep {
        table.push_row(vec![
            p.threads_requested.to_string(),
            p.threads_effective.to_string(),
            fmt(p.seconds, 6),
            fmt(p.gflops, 3),
            fmt(p.speedup_vs_1t, 2),
        ]);
    }
    print_table(&table);

    let json = serde_json::to_string_pretty(&doc).expect("serialize baseline");
    std::fs::write(&out_path, json + "\n").expect("write baseline JSON");
    println!("wrote {out_path} (best speedup {:.2}x)", doc.best_speedup);
}
