//! The [`Kernel`] trait: one uniform calling convention for every SpGEMM
//! implementation in the workspace.
//!
//! The paper's evaluation pits PB-SpGEMM against the column-SpGEMM
//! baselines on identical workloads; a planner that *chooses* between them
//! at run time needs to dispatch to any of them through one signature.
//! `Kernel` is that signature: CSR operands in, CSR product out, generic
//! over the semiring exactly like the PB path (fixing the old asymmetry
//! where `Baseline::multiply` was `f64`-only while `multiply_with` was
//! generic).
//!
//! This crate implements the trait for [`Baseline`]; the `pb-spgemm` crate
//! implements it for its unified `SpGemm` engine, which is how a planned
//! kernel runs through a persistent `Workspace` lease when the underlying
//! algorithm supports one (the PB pipeline does; the column baselines keep
//! thread-private accumulators and need none).

use pb_sparse::semiring::{Numeric, PlusTimes, Semiring};
use pb_sparse::Csr;

use crate::Baseline;

/// A SpGEMM implementation that multiplies CSR operands under an arbitrary
/// semiring.
///
/// The `S::Elem: Default` bound exists for implementations that must
/// transpose an operand internally (the PB engine converts `A` to CSC, the
/// outer-product heap baseline likewise); pure row-wise kernels ignore it.
pub trait Kernel {
    /// Human-readable kernel name, used in reports and planner telemetry.
    fn kernel_name(&self) -> &'static str;

    /// Computes `C = A·B` on CSR operands under the semiring `S`.
    fn multiply_with<S: Semiring>(&self, a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem>
    where
        S::Elem: Default;

    /// Computes `C = A·B` with ordinary `+`/`×` over a numeric type.
    fn multiply<T: Numeric + Default>(&self, a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
        Kernel::multiply_with::<PlusTimes<T>>(self, a, b)
    }
}

impl Kernel for Baseline {
    fn kernel_name(&self) -> &'static str {
        self.name()
    }

    fn multiply_with<S: Semiring>(&self, a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem>
    where
        S::Elem: Default,
    {
        Baseline::multiply_with::<S>(self, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::erdos_renyi_square;
    use pb_sparse::reference::{csr_approx_eq, multiply_csr};
    use pb_sparse::semiring::OrAnd;

    #[test]
    fn trait_dispatch_matches_inherent_methods() {
        let a = erdos_renyi_square(7, 4, 5);
        let expected = multiply_csr(&a, &a);
        for alg in Baseline::all() {
            let k: &dyn Fn() -> Csr<f64> = &|| Kernel::multiply(alg, &a, &a);
            assert!(
                csr_approx_eq(&k(), &expected, 1e-9),
                "{}",
                alg.kernel_name()
            );
            assert_eq!(alg.kernel_name(), alg.name());
        }
    }

    #[test]
    fn trait_is_generic_over_semirings() {
        let a = erdos_renyi_square(6, 4, 8).map_values(|_| true);
        let expected = pb_sparse::reference::multiply_csr_with::<OrAnd>(&a, &a);
        for alg in Baseline::all() {
            let c = Kernel::multiply_with::<OrAnd>(alg, &a, &a);
            assert_eq!(c.rowptr(), expected.rowptr(), "{}", alg.kernel_name());
            assert_eq!(c.colidx(), expected.colidx(), "{}", alg.kernel_name());
        }
    }
}
