//! Persistent, NUMA-aware workspace for repeated multiplies.
//!
//! PB-SpGEMM is bandwidth-bound, and its flagship applications — Markov
//! clustering's repeated `M·M` iterations, masked graph kernels, any service
//! multiplying many matrices of similar shape back-to-back — pay the same
//! allocation bill on every call: the expand phase's global tuple buffer
//! (`flop` tuples), the LSD radix sort's scratch, and the per-bin /
//! per-row staging vectors are all allocated from the heap, first-touched by
//! whichever worker happens to run, and freed again a few milliseconds
//! later.  A [`Workspace`] turns that steady-state traffic into zero: it
//! owns the buffers across multiplies, sized high-water-mark style, so a
//! repeat of a similar shape reuses every byte instead of re-allocating it.
//!
//! # What is pooled
//!
//! | buffer | phase | size | notes |
//! |---|---|---|---|
//! | tuple buffer | expand | `flop` entries | becomes [`BinnedTuples::entries`] |
//! | sort scratch | sort | `flop + domains·max_bin` entries | per-domain slabs, see below |
//! | bin offsets | expand | `nbins + 1` words | becomes [`BinnedTuples::bin_offsets`] |
//! | compressed lengths | expand | `nbins` words | becomes [`BinnedTuples::compressed_len`] |
//! | row counts | assemble | `nrows` words | pass-1 staging, recycled after the prefix sum |
//!
//! The CSR output arrays (`rowptr`/`colidx`/`values`) are *returned to the
//! caller* inside the product and therefore cannot be pooled.
//!
//! # NUMA-aware sort scratch
//!
//! The sort phase claims whole bins freely (a bin's buffer interleaves
//! every domain's sub-segments, so no bin→domain assignment could make the
//! *data* reads local — see [`crate::sort`]), but the LSD radix sort's
//! scratch stream is under our control: the workspace carves the scratch
//! buffer into one slab per NUMA domain, first-touched (zero-initialised)
//! by workers of the owning domain via
//! [`with_domain_boundaries`](rayon::ParIter::with_domain_boundaries), and
//! a worker sorting a bin leases its scratch from *its own domain's* slab
//! through a per-slab bump cursor.  On a real NUMA host half of the sort
//! phase's memory streams (the scratch reads and writes) therefore stay
//! socket-local — closing the "domain-aware first-touch for sort scratch"
//! item the expand-phase partitioning (PR 4) left open.
//!
//! Each slab carries a `max_bin` margin on top of its even share of the
//! flop, which guarantees a lease can never fail in *every* slab (see
//! [`scratch_target_len`]), so the spill chain own-slab → other slabs
//! terminates without heap fallback in steady state; a heap fallback path
//! still exists for safety and is *counted* when it fires.
//!
//! # Concurrency
//!
//! A `Workspace` is shared behind an [`Arc`] (a [`PbConfig`] clone shares
//! the handle, exactly like the [`AutoTune`](crate::config::AutoTune)
//! policy).  One multiply checks the pooled buffers out, works on them
//! exclusively, and checks them back in; a *concurrent* multiply through
//! another clone finds the slot empty and falls back to fresh allocation
//! for that call (counted as a bypass) — correctness never depends on the
//! pool, only the amortisation does.
//!
//! # Telemetry
//!
//! Every multiply reports `bytes_allocated` / `bytes_reused` /
//! `workspace_hits` in its [`PhaseStats`](crate::profile::PhaseStats), and
//! the workspace accumulates the same counters across its lifetime
//! ([`Workspace::total_bytes_reused`] etc.), so the amortisation is
//! measured, not assumed: a steady-state repeat of the same shape shows
//! `bytes_allocated == 0` with every acquisition a hit.
//!
//! # Decay
//!
//! High-water sizing alone is a one-way ratchet: one giant multiply pins
//! the peak footprint forever, which is fine for a single MCL run and a
//! slow memory leak in a resident service holding an engine (and so a
//! workspace) per catalog entry.  The workspace therefore *decays*:
//! after [`DECAY_AFTER_LOW_LEASES`] consecutive check-ins whose multiply
//! used less than **half** of the pooled capacity (entries + sort scratch,
//! measured in bytes), the two big buffers step down to half their
//! capacity — never below the largest use observed in the current
//! low-usage window, so the very next repeat still fits without
//! re-allocating.  The step mirrors
//! [`AutoTune`](crate::config::AutoTune)'s halving step-down, and every
//! freed byte is counted in [`Workspace::total_bytes_released`] (with the
//! shrink events in [`Workspace::decay_events`]), so bounded footprint is
//! as measurable as zero-allocation steady state.
//!
//! [`BinnedTuples::entries`]: crate::bins::BinnedTuples::entries
//! [`BinnedTuples::bin_offsets`]: crate::bins::BinnedTuples::bin_offsets
//! [`BinnedTuples::compressed_len`]: crate::bins::BinnedTuples::compressed_len
//! [`PbConfig`]: crate::config::PbConfig

use std::any::Any;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use rayon::prelude::*;

use crate::bins::{BinnedTuples, Entry};
use crate::profile::StatsCollector;

/// A reusable arena of PB-SpGEMM working memory, shared across multiplies.
///
/// Create one with [`Workspace::new`], wrap it in an [`Arc`] and attach it
/// to a configuration with
/// [`PbConfig::with_workspace`](crate::config::PbConfig::with_workspace)
/// (or via [`SpGemm::workspace`](crate::SpGemm::workspace));
/// every profiled or unprofiled multiply through that configuration then
/// draws its expand buffer, sort scratch and staging vectors from the
/// workspace instead of the heap.  The buffers are type-specialised to the
/// value type of the first multiply; multiplying a different element type
/// through the same workspace simply rebuilds them (counted as allocation).
pub struct Workspace {
    /// The pooled buffers of the last finished multiply, type-erased so one
    /// `Workspace` serves any value type.
    slot: Mutex<Slot>,
    bytes_allocated: AtomicU64,
    bytes_reused: AtomicU64,
    hits: AtomicU64,
    leases: AtomicU64,
    bypasses: AtomicU64,
    bytes_released: AtomicU64,
    decay_events: AtomicU64,
    pool_bytes: AtomicU64,
}

/// Consecutive low-usage (< half capacity) check-ins before the pooled
/// buffers step down to half their capacity — the workspace face of
/// [`AutoTune`](crate::config::AutoTune)'s step-down policy (one step
/// halves, and a single high-usage multiply resets the streak).
pub const DECAY_AFTER_LOW_LEASES: u64 = 4;

impl std::fmt::Debug for Workspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workspace")
            .field("bytes_allocated", &self.total_bytes_allocated())
            .field("bytes_reused", &self.total_bytes_reused())
            .field("hits", &self.total_hits())
            .field("leases", &self.leases())
            .field("bypasses", &self.bypasses())
            .finish()
    }
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}

/// Check-out state of the workspace's single buffer slot.
#[derive(Default)]
struct Slot {
    /// Whether a multiply currently holds the buffers.
    checked_out: bool,
    /// The pooled buffers (`None` before the first multiply finished, or
    /// while they are checked out).
    pool: Option<Box<dyn Any + Send>>,
    /// Consecutive check-ins that used less than half of the pooled
    /// capacity (the decay streak).
    low_streak: u64,
    /// Largest entries use (in entries) seen in the current streak window —
    /// the decay floor, so a shrink never evicts capacity the ongoing
    /// traffic still touches.
    peak_entries_used: usize,
    /// Largest sort-scratch use (in entries) seen in the current window.
    peak_scratch_used: usize,
}

impl Slot {
    fn reset_decay(&mut self) {
        self.low_streak = 0;
        self.peak_entries_used = 0;
        self.peak_scratch_used = 0;
    }
}

/// How much of the pooled capacity the finishing multiply actually used,
/// reported by [`WorkspaceLease::release`] so the decay policy can compare
/// use against capacity.
#[derive(Debug, Clone, Copy, Default)]
struct Usage {
    /// Tuples written into the expand buffer (== this multiply's flop).
    entries_used: usize,
    /// Sort-scratch entries requested via `prepare_scratch` (0 when the
    /// sort needed no scratch).
    scratch_used: usize,
}

impl Workspace {
    /// Creates an empty workspace; the first multiply through it populates
    /// the buffers (all of that multiply's traffic counts as allocated).
    pub fn new() -> Self {
        Workspace {
            slot: Mutex::new(Slot::default()),
            bytes_allocated: AtomicU64::new(0),
            bytes_reused: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            leases: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            bytes_released: AtomicU64::new(0),
            decay_events: AtomicU64::new(0),
            pool_bytes: AtomicU64::new(0),
        }
    }

    /// Total bytes of workspace-managed buffers newly allocated (or grown)
    /// across all multiplies through this workspace.
    pub fn total_bytes_allocated(&self) -> u64 {
        self.bytes_allocated.load(Ordering::Relaxed)
    }

    /// Total bytes served from recycled buffers without touching the heap.
    pub fn total_bytes_reused(&self) -> u64 {
        self.bytes_reused.load(Ordering::Relaxed)
    }

    /// Buffer acquisitions served entirely from recycled capacity.
    pub fn total_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Multiplies that checked the pooled buffers out of this workspace.
    pub fn leases(&self) -> u64 {
        self.leases.load(Ordering::Relaxed)
    }

    /// Multiplies that found the buffers checked out by a concurrent
    /// multiply and fell back to fresh allocation for that call.
    pub fn bypasses(&self) -> u64 {
        self.bypasses.load(Ordering::Relaxed)
    }

    /// Total bytes of pooled capacity returned to the allocator by the
    /// decay policy (see the module docs) across this workspace's lifetime.
    pub fn total_bytes_released(&self) -> u64 {
        self.bytes_released.load(Ordering::Relaxed)
    }

    /// Number of decay steps (capacity halvings) the workspace has applied.
    pub fn decay_events(&self) -> u64 {
        self.decay_events.load(Ordering::Relaxed)
    }

    /// Bytes of pooled capacity currently parked in this workspace's slot
    /// (recomputed at every check-in, after the decay policy ran).
    ///
    /// This is the *per-workspace* resident figure: the decay policy bounds
    /// it per arena, while the out-of-core tile budget
    /// ([`tiled`](crate::tiled)) bounds a *per-multiply* tile cache — two
    /// independent knobs.  The serve metrics sum this across the catalog and
    /// add the catalog's matrix bytes to expose the combined resident
    /// high-water of the process.
    pub fn resident_bytes(&self) -> u64 {
        self.pool_bytes.load(Ordering::Relaxed)
    }

    /// Checks the pooled buffers out.  `None` means the slot is busy — a
    /// concurrent multiply holds the buffers — and the caller should run on
    /// fresh throwaway buffers instead (a *bypass*).  An idle slot always
    /// yields a pool, empty on the first use or after a value-type change
    /// (the old buffers cannot be reinterpreted safely).
    fn checkout<V: Send + 'static>(&self) -> Option<PoolOf<V>> {
        let mut slot = self.slot.lock().expect("workspace lock poisoned");
        if slot.checked_out {
            self.bypasses.fetch_add(1, Ordering::Relaxed);
            crate::trace::instant(crate::trace::SpanName::WorkspaceBypass, 0);
            return None;
        }
        slot.checked_out = true;
        self.leases.fetch_add(1, Ordering::Relaxed);
        let (pool, reused) = match slot.pool.take().map(|boxed| boxed.downcast::<PoolOf<V>>()) {
            Some(Ok(pool)) => (*pool, 1u64),
            Some(Err(_)) | None => {
                // First use or a value-type change: the decay window is
                // about the *new* buffers, so any old streak is stale.
                slot.reset_decay();
                (PoolOf::empty(), 0)
            }
        };
        crate::trace::instant(crate::trace::SpanName::WorkspaceCheckout, reused);
        Some(pool)
    }

    /// Returns the buffers after a multiply, applies the decay policy
    /// against the reported `usage`, and frees the slot.
    fn checkin<V: Send + 'static>(&self, mut pool: PoolOf<V>, usage: Usage) {
        let mut slot = self.slot.lock().expect("workspace lock poisoned");
        self.decay(&mut slot, &mut pool, usage);
        let entry_bytes = std::mem::size_of::<Entry<V>>();
        let capacity = (pool.entries.capacity() + pool.scratch.len()) * entry_bytes;
        self.pool_bytes.store(capacity as u64, Ordering::Relaxed);
        slot.checked_out = false;
        slot.pool = Some(Box::new(pool));
        crate::trace::instant(crate::trace::SpanName::WorkspaceCheckin, 0);
    }

    /// One observation of the decay policy: a check-in that used less than
    /// half of the pooled (entries + scratch) capacity extends the low
    /// streak; [`DECAY_AFTER_LOW_LEASES`] of those in a row halve both big
    /// buffers, floored at the window's peak use so the ongoing traffic
    /// pattern keeps fitting allocation-free.
    fn decay<V>(&self, slot: &mut Slot, pool: &mut PoolOf<V>, usage: Usage) {
        let entry_bytes = std::mem::size_of::<Entry<V>>();
        let cap_entries = pool.entries.capacity();
        let cap_scratch = pool.scratch.len();
        let used = (usage.entries_used + usage.scratch_used) * entry_bytes;
        let capacity = (cap_entries + cap_scratch) * entry_bytes;
        if capacity == 0 || used * 2 >= capacity {
            slot.reset_decay();
            return;
        }
        // Only low leases extend the window: the floor is the peak use of
        // the *sustained small* traffic, not of the burst that grew the
        // buffers in the first place.
        slot.peak_entries_used = slot.peak_entries_used.max(usage.entries_used);
        slot.peak_scratch_used = slot.peak_scratch_used.max(usage.scratch_used);
        slot.low_streak += 1;
        if slot.low_streak < DECAY_AFTER_LOW_LEASES {
            return;
        }
        // Step down: halve each buffer, never below the window's peak use.
        let mut released = 0usize;
        let new_entries = (cap_entries / 2).max(slot.peak_entries_used);
        if new_entries < cap_entries {
            released += (cap_entries - new_entries) * entry_bytes;
            // The buffer is empty between multiplies, so a shrink is a
            // plain re-allocation, never a copy.
            pool.entries = Vec::with_capacity(new_entries);
        }
        let new_scratch = (cap_scratch / 2).max(slot.peak_scratch_used);
        if new_scratch < cap_scratch {
            released += (cap_scratch - new_scratch) * entry_bytes;
            pool.scratch.truncate(new_scratch);
            pool.scratch.shrink_to_fit();
        }
        if released > 0 {
            self.bytes_released
                .fetch_add(released as u64, Ordering::Relaxed);
            self.decay_events.fetch_add(1, Ordering::Relaxed);
            crate::trace::instant(crate::trace::SpanName::WorkspaceDecay, released as u64);
        }
        slot.reset_decay();
    }

    /// Frees the slot without returning buffers (a multiply that panicked
    /// mid-pipeline; the buffers died with it, the workspace stays usable).
    fn abandon(&self) {
        self.slot
            .lock()
            .expect("workspace lock poisoned")
            .checked_out = false;
    }

    fn record(&self, allocated: u64, reused: u64, hit: bool) {
        if allocated > 0 {
            self.bytes_allocated.fetch_add(allocated, Ordering::Relaxed);
        }
        if reused > 0 {
            self.bytes_reused.fetch_add(reused, Ordering::Relaxed);
        }
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The type-specialised buffers of one workspace.
struct PoolOf<V> {
    /// Expand-phase global tuple buffer (capacity is the high-water flop).
    entries: Vec<Entry<V>>,
    /// Sort-phase scratch; `len()` is the high-water scratch size and every
    /// slot is initialised, so slices can be handed out safely.
    scratch: Vec<Entry<V>>,
    /// `bin_offsets` staging (`nbins + 1` words).
    bin_offsets: Vec<usize>,
    /// `compressed_len` staging (`nbins` words).
    compressed_len: Vec<usize>,
    /// Assemble pass-1 per-row counters (`nrows` words).
    row_counts: Vec<usize>,
}

impl<V> PoolOf<V> {
    fn empty() -> Self {
        PoolOf {
            entries: Vec::new(),
            scratch: Vec::new(),
            bin_offsets: Vec::new(),
            compressed_len: Vec::new(),
            row_counts: Vec::new(),
        }
    }
}

/// The exclusive working set of one multiply: buffers checked out of a
/// shared [`Workspace`] (or fresh, throwaway ones when no workspace is
/// configured — both paths run the *same* pipeline code, so reuse can never
/// change the product).
pub struct WorkspaceLease<V: Send + 'static> {
    pool: PoolOf<V>,
    /// The workspace the buffers must be returned to; `None` for fresh
    /// (no-workspace) and bypass leases, which just drop their buffers.
    origin: Option<Arc<Workspace>>,
    /// Sort-scratch entries this multiply asked for (decay telemetry).
    scratch_used: usize,
}

impl<V: Send + 'static> Drop for WorkspaceLease<V> {
    fn drop(&mut self) {
        // Reached without `release` only when the pipeline panicked: free
        // the slot so later multiplies lease instead of bypassing forever.
        if let Some(ws) = self.origin.take() {
            ws.abandon();
        }
    }
}

impl<V: Send + 'static> std::fmt::Debug for WorkspaceLease<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkspaceLease")
            .field("pooled", &self.origin.is_some())
            .finish()
    }
}

/// Telemetry outcome of one buffer acquisition.
struct Acquire {
    allocated: u64,
    reused: u64,
    hit: bool,
}

impl<V: Copy + Send + Sync + 'static> WorkspaceLease<V> {
    /// Checks buffers out of `workspace`, or starts from empty throwaway
    /// buffers when none is configured (or a concurrent multiply holds the
    /// workspace's buffers — the bypass path).
    pub fn acquire(workspace: Option<Arc<Workspace>>) -> Self {
        match workspace {
            Some(ws) => match ws.checkout::<V>() {
                Some(pool) => WorkspaceLease {
                    pool,
                    origin: Some(ws),
                    scratch_used: 0,
                },
                None => WorkspaceLease {
                    pool: PoolOf::empty(),
                    origin: None,
                    scratch_used: 0,
                },
            },
            None => WorkspaceLease {
                pool: PoolOf::empty(),
                origin: None,
                scratch_used: 0,
            },
        }
    }

    fn record(&self, stats: &StatsCollector, a: Acquire) {
        stats.record_workspace(a.allocated, a.reused, a.hit);
        if let Some(ws) = &self.origin {
            ws.record(a.allocated, a.reused, a.hit);
        }
    }

    /// Whether this lease is backed by a [`Workspace`] (buffers persist
    /// across multiplies).  Fresh and bypass leases return `false`; the
    /// pipeline uses this to skip amortised-only work — notably the
    /// upfront zero-fill of the NUMA-slabbed sort scratch, which would be
    /// pure overhead on buffers that die with this one multiply.
    pub fn is_pooled(&self) -> bool {
        self.origin.is_some()
    }

    /// The expand phase's uninitialised global tuple buffer: length 0,
    /// capacity at least `flop` entries (recycled when the high-water mark
    /// allows, freshly allocated — and counted — otherwise).
    pub fn take_entries_uninit(
        &mut self,
        flop: usize,
        stats: &StatsCollector,
    ) -> Vec<MaybeUninit<Entry<V>>> {
        let v = self.take_entries_vec(flop, stats);
        debug_assert!(v.is_empty());
        // SAFETY: `Entry<V>` and `MaybeUninit<Entry<V>>` have identical
        // layout, and the vector is empty, so no element is reinterpreted.
        let mut v = std::mem::ManuallyDrop::new(v);
        unsafe {
            Vec::from_raw_parts(
                v.as_mut_ptr() as *mut MaybeUninit<Entry<V>>,
                0,
                v.capacity(),
            )
        }
    }

    /// Like [`WorkspaceLease::take_entries_uninit`], but as a plain (empty,
    /// pre-reserved) vector for the ThreadLocal expand strategy.
    pub fn take_entries_vec(&mut self, flop: usize, stats: &StatsCollector) -> Vec<Entry<V>> {
        let mut v = std::mem::take(&mut self.pool.entries);
        v.clear();
        let bytes = (flop * std::mem::size_of::<Entry<V>>()) as u64;
        if v.capacity() >= flop {
            self.record(
                stats,
                Acquire {
                    allocated: 0,
                    reused: bytes,
                    hit: true,
                },
            );
        } else {
            // Growing would memcpy nothing (the vector is empty) but still
            // re-allocates the whole buffer: count it all as allocated.
            v = Vec::with_capacity(flop);
            self.record(
                stats,
                Acquire {
                    allocated: bytes,
                    reused: 0,
                    hit: false,
                },
            );
        }
        v
    }

    /// `bin_offsets` staging seeded from the symbolic phase's offsets.
    pub fn take_bin_offsets(&mut self, src: &[usize], stats: &StatsCollector) -> Vec<usize> {
        let mut v = self.take_bin_offsets_empty(src.len(), stats);
        v.extend_from_slice(src);
        v
    }

    /// Empty `bin_offsets` staging with capacity for `capacity` words, for
    /// callers that build the offsets incrementally (the ThreadLocal expand
    /// strategy).
    pub fn take_bin_offsets_empty(
        &mut self,
        capacity: usize,
        stats: &StatsCollector,
    ) -> Vec<usize> {
        let mut v = std::mem::take(&mut self.pool.bin_offsets);
        self.record(stats, fill_usize(&mut v, capacity));
        v
    }

    /// `compressed_len` staging filled from an iterator of per-bin lengths.
    pub fn take_compressed_len(
        &mut self,
        lens: impl ExactSizeIterator<Item = usize>,
        stats: &StatsCollector,
    ) -> Vec<usize> {
        let mut v = self.take_compressed_len_empty(lens.len(), stats);
        v.extend(lens);
        v
    }

    /// Empty `compressed_len` staging with capacity for `capacity` words
    /// (ThreadLocal expand builds it per bin).
    pub fn take_compressed_len_empty(
        &mut self,
        capacity: usize,
        stats: &StatsCollector,
    ) -> Vec<usize> {
        let mut v = std::mem::take(&mut self.pool.compressed_len);
        self.record(stats, fill_usize(&mut v, capacity));
        v
    }

    /// Assemble pass-1 staging: an empty `Vec<usize>` with capacity for
    /// `nrows` counters (the assemble pass resizes and zeroes it).
    pub fn take_row_counts(&mut self, nrows: usize, stats: &StatsCollector) -> Vec<usize> {
        let mut v = std::mem::take(&mut self.pool.row_counts);
        self.record(stats, fill_usize(&mut v, nrows));
        v
    }

    /// Recycles the assemble staging after the prefix-sum pass consumed it.
    pub fn put_row_counts(&mut self, mut counts: Vec<usize>) {
        counts.clear();
        self.pool.row_counts = counts;
    }

    /// Ensures the sort scratch holds at least `target_len` initialised
    /// entries, zero-filling any newly allocated memory with `zero` from the
    /// workers of the owning NUMA domain (`with_domain_boundaries`), so the
    /// slab pages are first-touched domain-locally.  `target_len == 0`
    /// (sorts that need no scratch) is a no-op that reports no traffic.
    pub fn prepare_scratch(
        &mut self,
        target_len: usize,
        domains: usize,
        zero: Entry<V>,
        stats: &StatsCollector,
    ) {
        if target_len == 0 {
            return;
        }
        self.scratch_used = self.scratch_used.max(target_len);
        let bytes = (target_len * std::mem::size_of::<Entry<V>>()) as u64;
        if self.pool.scratch.len() >= target_len {
            self.record(
                stats,
                Acquire {
                    allocated: 0,
                    reused: bytes,
                    hit: true,
                },
            );
            return;
        }
        // Growing in place would memcpy the old prefix onto freshly-touched
        // pages from the *calling* thread, defeating the per-domain
        // first-touch; allocate anew and initialise domain-routed instead.
        self.pool.scratch = alloc_scratch_first_touch(target_len, domains, zero);
        self.record(
            stats,
            Acquire {
                allocated: bytes,
                reused: 0,
                hit: false,
            },
        );
    }

    /// The per-domain bump slabs over the prepared scratch, for one sort
    /// phase.  Call [`WorkspaceLease::prepare_scratch`] first.
    pub fn scratch_slabs(&mut self, domains: usize) -> ScratchSlabs<'_, V> {
        ScratchSlabs::new(&mut self.pool.scratch, domains)
    }

    /// Returns every buffer the pipeline threaded through [`BinnedTuples`]
    /// to the pool and checks the pool back into the originating workspace
    /// (fresh and bypass leases simply drop everything).
    pub fn release(mut self, tuples: BinnedTuples<V>) {
        let BinnedTuples {
            mut entries,
            mut bin_offsets,
            mut compressed_len,
            ..
        } = tuples;
        let usage = Usage {
            entries_used: entries.len(),
            scratch_used: self.scratch_used,
        };
        entries.clear();
        bin_offsets.clear();
        compressed_len.clear();
        self.pool.entries = entries;
        self.pool.bin_offsets = bin_offsets;
        self.pool.compressed_len = compressed_len;
        if let Some(ws) = self.origin.take() {
            ws.checkin(std::mem::replace(&mut self.pool, PoolOf::empty()), usage);
        }
    }
}

/// Clears `v` and ensures capacity for `needed` words, reporting the
/// acquisition telemetry.
fn fill_usize(v: &mut Vec<usize>, needed: usize) -> Acquire {
    v.clear();
    let bytes = (needed * std::mem::size_of::<usize>()) as u64;
    if v.capacity() >= needed {
        Acquire {
            allocated: 0,
            reused: bytes,
            hit: true,
        }
    } else {
        *v = Vec::with_capacity(needed);
        Acquire {
            allocated: bytes,
            reused: 0,
            hit: false,
        }
    }
}

/// Scratch length that guarantees allocation-free sort-phase leases: an
/// even per-domain share of the flop plus one `max_bin` margin per slab.
///
/// The margin makes the spill chain total: suppose a lease of `n ≤ max_bin`
/// entries failed in every slab.  Each slab's unusable remainder is then
/// `< n`, so the reserved total exceeds `flop + domains·max_bin −
/// domains·n ≥ flop` — but reservations never exceed the flop (every bin is
/// leased at most once and the bins sum to the flop), a contradiction.
pub fn scratch_target_len(flop: usize, domains: usize, max_bin: usize) -> usize {
    flop + domains.max(1) * max_bin
}

/// Even cumulative slab boundaries of `len` scratch entries over `domains`
/// (`domains + 1` values from 0 to `len`).
fn slab_boundaries(len: usize, domains: usize) -> Vec<usize> {
    let domains = domains.max(1);
    (0..=domains).map(|d| len * d / domains).collect()
}

/// `*mut` wrapper so disjoint ranges of one buffer can be written from the
/// pool's threads (same discipline as the expand phase's `SharedBuf`).
struct SharedMut<T>(*mut T);
unsafe impl<T: Send> Send for SharedMut<T> {}
unsafe impl<T: Send> Sync for SharedMut<T> {}

/// Allocates `len` scratch entries and zero-initialises each domain's slab
/// from that domain's own pool workers (first touch = domain-local pages on
/// a first-touch NUMA policy).  Falls back to a plain parallel fill on
/// single-domain pools.
fn alloc_scratch_first_touch<V: Copy + Send + Sync>(
    len: usize,
    domains: usize,
    zero: Entry<V>,
) -> Vec<Entry<V>> {
    let mut raw: Vec<MaybeUninit<Entry<V>>> = Vec::with_capacity(len);
    // SAFETY: MaybeUninit slots require no initialisation.
    unsafe { raw.set_len(len) };
    let bounds = slab_boundaries(len, domains);
    {
        let ptr = SharedMut(raw.as_mut_ptr());
        let fill = |i: usize| {
            // Capture the Sync wrapper, not the bare pointer field (edition
            // 2021 disjoint capture would otherwise grab the non-Sync
            // `*mut` directly).
            let base = &ptr;
            // SAFETY: every index in 0..len is written exactly once — the
            // parallel iterator hands each index to one closure call — and
            // the buffer outlives the loop.
            unsafe { (*base.0.add(i)).write(zero) };
        };
        if domains > 1 {
            (0..len)
                .into_par_iter()
                .with_domain_boundaries(bounds)
                .for_each(fill);
        } else {
            (0..len).into_par_iter().for_each(fill);
        }
    }
    // SAFETY: all `len` slots were initialised above; `MaybeUninit<Entry<V>>`
    // and `Entry<V>` have identical layout.
    unsafe {
        let mut raw = std::mem::ManuallyDrop::new(raw);
        Vec::from_raw_parts(raw.as_mut_ptr() as *mut Entry<V>, len, raw.capacity())
    }
}

/// Per-domain bump-allocated scratch slabs for one sort phase.
///
/// A worker sorting a bin leases exactly the bin's length, preferentially
/// from its own domain's slab (keeping the scratch stream socket-local),
/// spilling to the other slabs only when its own is full; the margin built
/// into [`scratch_target_len`] guarantees the spill chain succeeds, and a
/// heap fallback (counted into the stats by the caller) backs even that.
pub struct ScratchSlabs<'a, V> {
    base: SharedMut<Entry<V>>,
    /// Cumulative slab boundaries (`slabs + 1` entries).
    bounds: Vec<usize>,
    /// Next free offset inside each slab.
    cursors: Vec<AtomicUsize>,
    _buf: std::marker::PhantomData<&'a mut [Entry<V>]>,
}

impl<V> std::fmt::Debug for ScratchSlabs<'_, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchSlabs")
            .field("bounds", &self.bounds)
            .finish()
    }
}

// SAFETY: leases hand out disjoint ranges (CAS-reserved), so concurrent
// workers never alias; `Entry<V>` is Send when V is.
unsafe impl<V: Send> Send for ScratchSlabs<'_, V> {}
unsafe impl<V: Send> Sync for ScratchSlabs<'_, V> {}

impl<'a, V: Copy + Send> ScratchSlabs<'a, V> {
    fn new(scratch: &'a mut [Entry<V>], domains: usize) -> Self {
        let bounds = slab_boundaries(scratch.len(), domains);
        let cursors = bounds[..bounds.len() - 1]
            .iter()
            .map(|&b| AtomicUsize::new(b))
            .collect();
        ScratchSlabs {
            base: SharedMut(scratch.as_mut_ptr()),
            bounds,
            cursors,
            _buf: std::marker::PhantomData,
        }
    }

    /// Leases `n` initialised scratch entries, trying the calling worker's
    /// own domain slab first.  `None` only when every slab lacks a
    /// contiguous `n`-entry run (impossible under [`scratch_target_len`]
    /// sizing; the caller then falls back to the heap and counts it).
    pub fn lease(&self, n: usize) -> Option<&'a mut [Entry<V>]> {
        let slabs = self.cursors.len();
        if n == 0 || slabs == 0 {
            return None;
        }
        let own = rayon::current_domain().min(slabs - 1);
        for k in 0..slabs {
            let s = (own + k) % slabs;
            let end = self.bounds[s + 1];
            let cursor = &self.cursors[s];
            let mut cur = cursor.load(Ordering::Relaxed);
            loop {
                if cur + n > end {
                    break;
                }
                match cursor.compare_exchange_weak(
                    cur,
                    cur + n,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: [cur, cur + n) was reserved by the CAS, is
                        // inside the slab (cur + n <= end <= len), and every
                        // entry was initialised at allocation; disjointness
                        // of reservations makes the &mut exclusive.
                        return Some(unsafe {
                            std::slice::from_raw_parts_mut(self.base.0.add(cur), n)
                        });
                    }
                    Err(seen) => cur = seen,
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zero() -> Entry<f64> {
        Entry { key: 0, val: 0.0 }
    }

    #[test]
    fn lease_reuses_buffers_and_counts_bytes() {
        let ws = Arc::new(Workspace::new());
        let stats = StatsCollector::new();

        // First multiply: everything allocates.
        let mut lease = WorkspaceLease::<f64>::acquire(Some(ws.clone()));
        let entries = lease.take_entries_vec(1000, &stats);
        assert!(entries.capacity() >= 1000);
        lease.prepare_scratch(500, 2, zero(), &stats);
        let offsets = lease.take_bin_offsets(&[0, 10, 20], &stats);
        let lens = lease.take_compressed_len([10usize, 10].into_iter(), &stats);
        let counts = lease.take_row_counts(64, &stats);
        assert!(counts.capacity() >= 64);
        lease.put_row_counts(counts);
        let tuples = BinnedTuples {
            entries,
            bin_offsets: offsets,
            compressed_len: lens,
            layout: crate::bins::BinLayout::new(4, 4, 1, crate::config::BinMapping::Range),
        };
        lease.release(tuples);

        let first = stats.snapshot();
        assert!(first.bytes_allocated > 0);
        assert_eq!(ws.total_bytes_allocated(), first.bytes_allocated);
        assert_eq!(ws.leases(), 1, "an idle workspace always leases");
        assert_eq!(ws.bypasses(), 0);

        // Second multiply of the same sizes: zero allocation, all hits.
        let stats = StatsCollector::new();
        let mut lease = WorkspaceLease::<f64>::acquire(Some(ws.clone()));
        let entries = lease.take_entries_vec(1000, &stats);
        lease.prepare_scratch(500, 2, zero(), &stats);
        let offsets = lease.take_bin_offsets(&[0, 10, 20], &stats);
        let lens = lease.take_compressed_len([10usize, 10].into_iter(), &stats);
        let counts = lease.take_row_counts(64, &stats);
        lease.put_row_counts(counts);
        let tuples = BinnedTuples {
            entries,
            bin_offsets: offsets,
            compressed_len: lens,
            layout: crate::bins::BinLayout::new(4, 4, 1, crate::config::BinMapping::Range),
        };
        lease.release(tuples);

        let second = stats.snapshot();
        assert_eq!(second.bytes_allocated, 0, "steady state allocates nothing");
        assert!(second.bytes_reused > 0);
        assert_eq!(second.workspace_hits, 5, "all five buffers hit");
        assert_eq!(ws.leases(), 2);
        assert_eq!(ws.total_hits(), 5);
    }

    #[test]
    fn concurrent_checkout_bypasses_and_abandon_frees_the_slot() {
        let ws = Arc::new(Workspace::new());
        let held = WorkspaceLease::<f64>::acquire(Some(ws.clone()));
        // While the first lease holds the slot, a second acquire bypasses.
        let bypass = WorkspaceLease::<f64>::acquire(Some(ws.clone()));
        assert!(bypass.origin.is_none());
        assert_eq!(ws.bypasses(), 1);
        drop(bypass);
        // Dropping the holder without release (a panicking multiply) frees
        // the slot for the next acquire.
        drop(held);
        let next = WorkspaceLease::<f64>::acquire(Some(ws.clone()));
        assert!(next.origin.is_some());
        assert_eq!(ws.leases(), 2);
    }

    #[test]
    fn value_type_change_rebuilds_the_pool() {
        let ws = Arc::new(Workspace::new());
        let stats = StatsCollector::new();
        let mut lease = WorkspaceLease::<f64>::acquire(Some(ws.clone()));
        let v = lease.take_entries_vec(100, &stats);
        let tuples = BinnedTuples {
            entries: v,
            bin_offsets: Vec::new(),
            compressed_len: Vec::new(),
            layout: crate::bins::BinLayout::new(4, 4, 1, crate::config::BinMapping::Range),
        };
        lease.release(tuples);

        // A bool-valued multiply cannot reuse f64 buffers: it rebuilds.
        let stats = StatsCollector::new();
        let mut lease = WorkspaceLease::<bool>::acquire(Some(ws.clone()));
        let v = lease.take_entries_vec(100, &stats);
        assert!(v.capacity() >= 100);
        let s = stats.snapshot();
        assert!(s.bytes_allocated > 0);
        assert_eq!(s.workspace_hits, 0);
    }

    #[test]
    fn missing_workspace_is_a_pure_fresh_path() {
        let stats = StatsCollector::new();
        let mut lease = WorkspaceLease::<f64>::acquire(None);
        let v = lease.take_entries_vec(256, &stats);
        assert!(v.capacity() >= 256);
        let s = stats.snapshot();
        assert_eq!(s.bytes_reused, 0);
        assert!(s.bytes_allocated > 0);
        assert_eq!(s.workspace_hits, 0);
    }

    #[test]
    fn scratch_slabs_lease_disjoint_ranges_and_spill() {
        let stats = StatsCollector::new();
        let mut lease = WorkspaceLease::<f64>::acquire(None);
        // 100 entries over 2 slabs of 50.
        lease.prepare_scratch(100, 2, zero(), &stats);
        let slabs = lease.scratch_slabs(2);
        let a = slabs.lease(40).expect("fits in slab 0");
        let b = slabs.lease(40).expect("spills to slab 1");
        let c = slabs.lease(10).expect("remainder of slab 0");
        assert_eq!((a.len(), b.len(), c.len()), (40, 40, 10));
        // Writing through the leases must not alias.
        a.iter_mut().for_each(|e| e.key = 1);
        b.iter_mut().for_each(|e| e.key = 2);
        c.iter_mut().for_each(|e| e.key = 3);
        assert!(a.iter().all(|e| e.key == 1));
        assert!(b.iter().all(|e| e.key == 2));
        assert!(c.iter().all(|e| e.key == 3));
        // 90 + 40 leased; no contiguous 30 remains anywhere.
        assert!(slabs.lease(30).is_none(), "exhausted slabs refuse");
        assert!(slabs.lease(5).is_some(), "but small leases still fit");
    }

    #[test]
    fn scratch_margin_guarantees_worst_case_bins() {
        // One giant bin (nbins = 1): target = flop + domains * flop, so a
        // full-flop lease always fits in some slab even with 4 slabs.
        let flop = 1000usize;
        let target = scratch_target_len(flop, 4, flop);
        let stats = StatsCollector::new();
        let mut lease = WorkspaceLease::<f64>::acquire(None);
        lease.prepare_scratch(target, 4, zero(), &stats);
        let slabs = lease.scratch_slabs(4);
        assert!(slabs.lease(flop).is_some());
    }

    #[test]
    fn slab_boundaries_cover_the_buffer() {
        assert_eq!(slab_boundaries(100, 4), vec![0, 25, 50, 75, 100]);
        assert_eq!(slab_boundaries(10, 3), vec![0, 3, 6, 10]);
        assert_eq!(slab_boundaries(0, 2), vec![0, 0, 0]);
        assert_eq!(slab_boundaries(7, 1), vec![0, 7]);
    }

    /// Drives one synthetic multiply through the workspace: `flop` tuples
    /// in the expand buffer, `scratch` sort-scratch entries.
    fn synthetic_multiply(ws: &Arc<Workspace>, flop: usize, scratch: usize) -> crate::PhaseStats {
        let stats = StatsCollector::new();
        let mut lease = WorkspaceLease::<f64>::acquire(Some(ws.clone()));
        let mut entries = lease.take_entries_vec(flop, &stats);
        entries.resize(flop, zero());
        if scratch > 0 {
            lease.prepare_scratch(scratch, 1, zero(), &stats);
        }
        let tuples = BinnedTuples {
            entries,
            bin_offsets: Vec::new(),
            compressed_len: Vec::new(),
            layout: crate::bins::BinLayout::new(4, 4, 1, crate::config::BinMapping::Range),
        };
        lease.release(tuples);
        stats.snapshot()
    }

    #[test]
    fn decay_shrinks_after_consecutive_low_leases() {
        let ws = Arc::new(Workspace::new());
        // One giant multiply pins the high-water mark...
        synthetic_multiply(&ws, 10_000, 10_000);
        assert_eq!(ws.decay_events(), 0);
        // ...then sustained small traffic uses < half of it.
        for i in 0..DECAY_AFTER_LOW_LEASES {
            assert_eq!(ws.decay_events(), 0, "no decay before the streak fills");
            let _ = synthetic_multiply(&ws, 1_000, 1_000);
            let _ = i;
        }
        assert_eq!(ws.decay_events(), 1, "streak of low leases steps down");
        let released = ws.total_bytes_released();
        // Both buffers halved: 5000 + 5000 entries freed.
        assert_eq!(
            released,
            (10_000 * std::mem::size_of::<Entry<f64>>()) as u64
        );
        // The floor keeps the ongoing small shape allocation-free.
        let s = synthetic_multiply(&ws, 1_000, 1_000);
        assert_eq!(
            s.bytes_allocated, 0,
            "decayed capacity still fits the traffic"
        );
        assert!(s.bytes_reused > 0);
    }

    #[test]
    fn high_usage_resets_the_decay_streak() {
        let ws = Arc::new(Workspace::new());
        synthetic_multiply(&ws, 8_000, 0);
        for _ in 0..DECAY_AFTER_LOW_LEASES - 1 {
            synthetic_multiply(&ws, 1_000, 0);
        }
        // A full-capacity multiply lands mid-streak: the streak restarts.
        synthetic_multiply(&ws, 8_000, 0);
        for _ in 0..DECAY_AFTER_LOW_LEASES - 1 {
            synthetic_multiply(&ws, 1_000, 0);
        }
        assert_eq!(ws.decay_events(), 0, "interrupted streak must not decay");
        synthetic_multiply(&ws, 1_000, 0);
        assert_eq!(ws.decay_events(), 1);
    }

    #[test]
    fn steady_same_size_traffic_never_decays() {
        let ws = Arc::new(Workspace::new());
        for _ in 0..4 * DECAY_AFTER_LOW_LEASES {
            synthetic_multiply(&ws, 4_096, 2_048);
        }
        assert_eq!(ws.decay_events(), 0);
        assert_eq!(ws.total_bytes_released(), 0);
    }

    #[test]
    fn decay_converges_to_the_working_set_and_stops() {
        let ws = Arc::new(Workspace::new());
        synthetic_multiply(&ws, 8_000, 0);
        // 3000-entry traffic: one step down (8000 -> 4000) makes usage
        // 6000/4000 ≥ half, so exactly one decay ever fires.
        for _ in 0..8 * DECAY_AFTER_LOW_LEASES {
            synthetic_multiply(&ws, 3_000, 0);
        }
        assert_eq!(ws.decay_events(), 1, "decay stops at the working set");
        assert_eq!(
            ws.total_bytes_released(),
            (4_000 * std::mem::size_of::<Entry<f64>>()) as u64
        );
        // And the post-decay steady state is still allocation-free.
        let s = synthetic_multiply(&ws, 3_000, 0);
        assert_eq!(s.bytes_allocated, 0);
    }

    #[test]
    fn workspace_debug_and_default() {
        let ws = Workspace::default();
        let dbg = format!("{ws:?}");
        assert!(dbg.contains("bytes_allocated"));
    }
}
