//! Figs. 7a/7b (and Fig. 8): PB-SpGEMM vs column SpGEMM baselines on
//! Erdős–Rényi matrices across scales and edge factors, plus the sustained
//! bandwidth of every PB-SpGEMM phase.
//!
//! Pass `--bandwidth` to print only the bandwidth table (Fig. 7b).

use pb_bench::figures::{performance_vs_scale, MatrixFamily};
use pb_bench::{print_table, quick_mode, repetitions, write_json};

fn main() {
    // `--smoke` shrinks the workloads to CI size (sets PB_BENCH_QUICK).
    pb_bench::smoke_from_args();
    let bandwidth_only = std::env::args().any(|a| a == "--bandwidth");
    let fig = performance_vs_scale(MatrixFamily::Er, quick_mode(), repetitions());
    if !bandwidth_only {
        print_table(&fig.performance);
    }
    print_table(&fig.bandwidth);
    write_json("fig7_er", &fig.measurements);
    println!(
        "expected shape (paper Figs. 7/8): PB-SpGEMM is stable across scale and edge factor and \
         faster than the column algorithms for these cf<4 workloads; its phase bandwidths sit \
         near the machine's STREAM bandwidth (compare with table5_stream)."
    );
}
