//! PageRank on the three SpMV kernels — where propagation blocking started.
//!
//! Propagation blocking was introduced for PageRank's SpMV (Beamer et al.,
//! IPDPS 2017) before PB-SpGEMM generalised it to matrix–matrix products.
//! This example runs the same PageRank power iteration on the row-parallel
//! CSR kernel, the column-scatter kernel and the propagation-blocking kernel
//! and reports per-engine time and the resulting ranking.
//!
//! ```bash
//! cargo run --release --example pagerank_propagation_blocking
//! ```

use std::time::Instant;

use pb_spgemm_suite::prelude::*;

fn main() {
    // A scale-14 R-MAT digraph (~16K vertices) with the Graph500 skew.
    let a: Csr<f64> = rmat_square(14, 16, 3).map_values(|_| 1.0);
    println!(
        "graph: {} vertices, {} directed edges\n",
        a.nrows(),
        a.nnz()
    );

    let mut reference: Option<Vec<f64>> = None;
    println!(
        "{:<14} {:>10} {:>7} {:>12}",
        "engine", "time (ms)", "iters", "residual"
    );
    for &engine in SpmvEngine::all() {
        let config = PageRankConfig::default()
            .with_engine(engine)
            .with_tolerance(1e-9);
        let start = Instant::now();
        let result = pagerank(&a, &config);
        let elapsed = start.elapsed();
        println!(
            "{:<14} {:>10.1} {:>7} {:>12.2e}",
            engine.name(),
            elapsed.as_secs_f64() * 1e3,
            result.iterations,
            result.residual
        );

        match &reference {
            None => reference = Some(result.scores),
            Some(expected) => {
                let max_diff = result
                    .scores
                    .iter()
                    .zip(expected)
                    .map(|(p, q)| (p - q).abs())
                    .fold(0.0f64, f64::max);
                assert!(
                    max_diff < 1e-7,
                    "{} diverges from the first engine",
                    engine.name()
                );
            }
        }
    }

    // Show the most central vertices according to the converged scores.
    let scores = reference.expect("at least one engine ran");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&x, &y| scores[y].partial_cmp(&scores[x]).unwrap());
    println!("\ntop 10 vertices by PageRank:");
    for &v in order.iter().take(10) {
        println!("  vertex {v:>6}  score {:.6}", scores[v]);
    }
}
