//! Service configuration: defaults, environment overrides, and validation.
//!
//! A resident service must reject a bad environment instead of dying mid-
//! traffic, so every knob parses into a typed [`PbError`] — the same
//! fallible surface `SpGemm::try_from_env` uses.

use pb_spgemm::{Algorithm, PbError};

/// Address the server binds when `PB_SERVE_ADDR` is unset (port 0 = let the
/// kernel pick, which is what the in-process tests and benches want).
pub const DEFAULT_ADDR: &str = "127.0.0.1:0";

/// Catalog byte budget when `PB_SERVE_BUDGET_MB` is unset.
pub const DEFAULT_BUDGET_MB: usize = 256;

/// Worker threads when `PB_SERVE_WORKERS` is unset.
pub const DEFAULT_WORKERS: usize = 2;

/// Longest protocol line (in MiB) accepted when `PB_SERVE_MAX_LINE_MB` is
/// unset.  A client streaming bytes without a newline past this bound gets
/// an error response and is disconnected — otherwise a single connection
/// could grow the reactor's buffer without limit, bypassing the catalog
/// byte budget that bounds every other allocation.
pub const DEFAULT_MAX_LINE_MB: usize = 256;

/// Environment variable overriding the bind address.
pub const ADDR_ENV: &str = "PB_SERVE_ADDR";

/// Environment variable overriding the catalog byte budget (in MiB).
pub const BUDGET_ENV: &str = "PB_SERVE_BUDGET_MB";

/// Environment variable overriding the worker-thread count.
pub const WORKERS_ENV: &str = "PB_SERVE_WORKERS";

/// Environment variable overriding the maximum protocol line length (MiB).
pub const MAX_LINE_ENV: &str = "PB_SERVE_MAX_LINE_MB";

/// Environment variable enabling the slow-request log: any request handled
/// slower than this many milliseconds is reported on stderr together with
/// its span tree (when tracing is on).  Unset = no slow log.
pub const SLOW_MS_ENV: &str = "PB_SERVE_SLOW_MS";

/// Environment variable enabling the `load` op: the directory matrix files
/// may be loaded from.  Unset = the op is disabled (a server must opt in
/// to reading the filesystem on client request).
pub const LOAD_DIR_ENV: &str = "PB_SERVE_LOAD_DIR";

/// Configuration of one [`Server`](crate::Server) instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// `host:port` the TCP listener binds.
    pub addr: String,
    /// Catalog byte budget; storing past it evicts least-recently-used
    /// entries.
    pub budget_bytes: usize,
    /// Number of request-executing worker threads.
    pub workers: usize,
    /// Default algorithm for catalog engines (requests may override
    /// per-call).
    pub algorithm: Algorithm,
    /// Longest protocol line accepted before the connection is dropped
    /// with an error (bounds per-connection buffer growth).
    pub max_line_bytes: usize,
    /// Handling-latency threshold (milliseconds) above which a request is
    /// logged to stderr with its trace span tree; `None` disables the log.
    pub slow_ms: Option<u64>,
    /// Directory the `load` op may read matrix files from; `None` disables
    /// the op entirely (the service never touches the filesystem on client
    /// request unless the operator allowlisted a directory).
    pub load_dir: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: DEFAULT_ADDR.to_string(),
            budget_bytes: DEFAULT_BUDGET_MB << 20,
            workers: DEFAULT_WORKERS,
            algorithm: Algorithm::Auto,
            max_line_bytes: DEFAULT_MAX_LINE_MB << 20,
            slow_ms: None,
            load_dir: None,
        }
    }
}

impl ServeConfig {
    /// Builds the configuration from the environment, validating every
    /// `PB_*` knob the service depends on (including `PB_ALGORITHM`,
    /// `PB_SIMD` and `PB_NUMA_DOMAINS` via [`pb_spgemm::validate_env`]) —
    /// a typed error instead of a panic on any malformed value.
    pub fn from_env() -> Result<Self, PbError> {
        pb_spgemm::validate_env()?;
        let mut config = ServeConfig::default();
        if let Ok(addr) = std::env::var(ADDR_ENV) {
            if addr.trim().is_empty() || !addr.contains(':') {
                return Err(PbError::InvalidEnv {
                    var: ADDR_ENV,
                    value: addr,
                    expected: "a host:port bind address",
                });
            }
            config.addr = addr.trim().to_string();
        }
        if let Ok(mb) = std::env::var(BUDGET_ENV) {
            match mb.trim().parse::<usize>() {
                Ok(n) if n >= 1 => config.budget_bytes = n << 20,
                _ => {
                    return Err(PbError::InvalidEnv {
                        var: BUDGET_ENV,
                        value: mb,
                        expected: "a positive catalog budget in MiB",
                    })
                }
            }
        }
        if let Ok(w) = std::env::var(WORKERS_ENV) {
            match w.trim().parse::<usize>() {
                Ok(n) if n >= 1 => config.workers = n,
                _ => {
                    return Err(PbError::InvalidEnv {
                        var: WORKERS_ENV,
                        value: w,
                        expected: "a positive worker count",
                    })
                }
            }
        }
        if let Ok(mb) = std::env::var(MAX_LINE_ENV) {
            match mb.trim().parse::<usize>() {
                Ok(n) if n >= 1 => config.max_line_bytes = n << 20,
                _ => {
                    return Err(PbError::InvalidEnv {
                        var: MAX_LINE_ENV,
                        value: mb,
                        expected: "a positive line limit in MiB",
                    })
                }
            }
        }
        if let Ok(ms) = std::env::var(SLOW_MS_ENV) {
            match ms.trim().parse::<u64>() {
                Ok(n) => config.slow_ms = Some(n),
                _ => {
                    return Err(PbError::InvalidEnv {
                        var: SLOW_MS_ENV,
                        value: ms,
                        expected: "a slow-request threshold in milliseconds",
                    })
                }
            }
        }
        if let Ok(dir) = std::env::var(LOAD_DIR_ENV) {
            let trimmed = dir.trim();
            if trimmed.is_empty() || !std::path::Path::new(trimmed).is_dir() {
                return Err(PbError::InvalidEnv {
                    var: LOAD_DIR_ENV,
                    value: dir,
                    expected: "an existing directory to serve matrix files from",
                });
            }
            config.load_dir = Some(std::path::PathBuf::from(trimmed));
        }
        if let Some(alg) = Algorithm::from_env()? {
            config.algorithm = alg;
        }
        Ok(config)
    }

    /// Sets the bind address.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the catalog byte budget directly.
    pub fn budget_bytes(mut self, bytes: usize) -> Self {
        self.budget_bytes = bytes;
        self
    }

    /// Sets the worker-thread count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the default engine algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the maximum accepted protocol line length in bytes.
    pub fn max_line_bytes(mut self, bytes: usize) -> Self {
        self.max_line_bytes = bytes.max(1);
        self
    }

    /// Sets the slow-request log threshold in milliseconds (`None` off).
    pub fn slow_ms(mut self, ms: Option<u64>) -> Self {
        self.slow_ms = ms;
        self
    }

    /// Allowlists a directory for the `load` op (`None` disables it).
    pub fn load_dir(mut self, dir: Option<std::path::PathBuf>) -> Self {
        self.load_dir = dir;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert_eq!(c.addr, DEFAULT_ADDR);
        assert_eq!(c.budget_bytes, DEFAULT_BUDGET_MB << 20);
        assert!(c.workers >= 1);
        assert_eq!(c.algorithm, Algorithm::Auto);
        assert_eq!(c.max_line_bytes, DEFAULT_MAX_LINE_MB << 20);
        assert_eq!(c.slow_ms, None);
        assert_eq!(c.load_dir, None);
    }

    #[test]
    fn builder_setters_apply() {
        let c = ServeConfig::default()
            .addr("0.0.0.0:9000")
            .budget_bytes(1 << 20)
            .workers(4)
            .algorithm(Algorithm::Pb)
            .max_line_bytes(4096)
            .slow_ms(Some(250))
            .load_dir(Some(std::env::temp_dir()));
        assert_eq!(c.addr, "0.0.0.0:9000");
        assert_eq!(c.load_dir, Some(std::env::temp_dir()));
        assert_eq!(c.budget_bytes, 1 << 20);
        assert_eq!(c.workers, 4);
        assert_eq!(c.algorithm, Algorithm::Pb);
        assert_eq!(c.max_line_bytes, 4096);
        assert_eq!(c.slow_ms, Some(250));
    }
}
