//! A multi-threaded, API-compatible stand-in for the [rayon] crate.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so the real rayon cannot be fetched.  This crate implements
//! the subset of rayon's API the workspace uses — `par_iter`,
//! `par_iter_mut`, `into_par_iter`, `par_chunks(_mut)`, the two-closure
//! `fold`/`reduce` combinators, `ThreadPoolBuilder`/`ThreadPool::install`,
//! `join`, `scope`, the `par_sort_unstable*` family and
//! `current_num_threads` — on a real work-sharing thread pool built on
//! `std::thread`:
//!
//! * a **lazily-initialized global pool** of `available_parallelism()`
//!   workers (overridable with the `PB_RAYON_THREADS` environment
//!   variable);
//! * **dedicated pools** via [`ThreadPoolBuilder::num_threads`] +
//!   [`ThreadPool::install`], which scope the effective thread count for
//!   everything (including nested operations) run inside `install`;
//! * parallel iterators that split work into ~4× `num_threads` blocks
//!   claimed by pool participants through an atomic cursor
//!   (work-stealing-lite) — see [`iter`] for the execution model;
//! * truly parallel [`join`]/[`scope`] with panic propagation, and a parallel
//!   quicksort behind `par_sort_unstable*`;
//! * **NUMA-domain awareness** (a vendored addition, see [`domains`]): every
//!   pool worker carries a stable domain id ([`current_domain`]), pools know
//!   their domain count ([`current_num_domains`], forcible via
//!   `PB_NUMA_DOMAINS` and discoverable from sysfs, with best-effort CPU
//!   affinity on real multi-node hosts), and
//!   [`iter::ParIter::with_domain_boundaries`] routes blocks of a parallel
//!   operation to the workers of their owning domain, stealing cross-domain
//!   only as a liveness fallback.
//!
//! Semantics match rayon closely enough for a drop-in swap via
//! `[workspace.dependencies]`: `collect` preserves item order, `fold`
//! produces one accumulator per block (exactly one on a single-thread
//! pool), reductions combine block results in item order, and a panic in
//! any parallel closure propagates to the caller after the operation
//! drains.  Differences from real rayon are documented on the individual
//! items (notably: adaptor closures need `Clone + Send`, terminal closures
//! need `Sync`, and `scope` runs spawned tasks in parallel waves).
//!
//! [rayon]: https://docs.rs/rayon

pub mod domains;
pub mod iter;
pub mod pool;

pub use domains::{
    default_domains, domain_for_worker, forced_domains, parse_cpulist, sysfs_domains, DOMAINS_ENV,
};
pub use iter::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut, Producer};
pub use pool::{
    current_domain, current_num_domains, current_num_threads, join, scope, Scope, ThreadPool,
    ThreadPoolBuildError, ThreadPoolBuilder,
};

/// The traits callers import with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// A pool with real workers for tests, regardless of the host's core
    /// count or PB_RAYON_THREADS.
    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn map_collect_preserves_order() {
        let expected: Vec<i32> = (0..1000).map(|x| x * 2).collect();
        let v: Vec<i32> = (0..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, expected);
        // And under a real multi-thread pool.
        let v: Vec<i32> = pool(4).install(|| (0..1000).into_par_iter().map(|x| x * 2).collect());
        assert_eq!(v, expected);
    }

    #[test]
    fn fold_then_reduce_matches_sequential_sum() {
        for threads in [1, 2, 4, 8] {
            let total = pool(threads).install(|| {
                (0..10_000u64)
                    .into_par_iter()
                    .fold(|| 0u64, |acc, x| acc + x)
                    .reduce(|| 0u64, |a, b| a + b)
            });
            assert_eq!(total, 49_995_000, "threads = {threads}");
        }
    }

    #[test]
    fn fold_uses_multiple_segments_on_a_parallel_pool() {
        let segments: Vec<u64> = pool(4).install(|| {
            (0..10_000u64)
                .into_par_iter()
                .fold(|| 0u64, |acc, _| acc + 1)
                .collect()
        });
        assert!(
            segments.len() > 1,
            "a 4-thread pool should fold in more than one segment"
        );
        assert_eq!(segments.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn work_actually_runs_on_multiple_threads() {
        let p = pool(4);
        assert_eq!(p.current_num_threads(), 4);
        let ids = Mutex::new(std::collections::HashSet::new());
        p.install(|| {
            (0..1024usize).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                // Give other participants a chance to claim blocks.
                std::thread::yield_now();
            })
        });
        let distinct = ids.lock().unwrap().len();
        assert!(
            distinct >= 2,
            "expected at least 2 distinct executing threads, saw {distinct}"
        );
    }

    #[test]
    fn slice_traits_work_through_vec() {
        let mut v = vec![3, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, [1, 2, 3]);
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, [2, 4, 6]);
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, [2, 3, 4]);
    }

    #[test]
    fn par_sort_matches_std_sort() {
        let mut rng = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let original: Vec<u64> = (0..50_000).map(|_| next()).collect();
        let mut expected = original.clone();
        expected.sort_unstable();
        for threads in [1, 4] {
            let mut v = original.clone();
            pool(threads).install(|| v.par_sort_unstable());
            assert_eq!(v, expected, "threads = {threads}");
            let mut v = original.clone();
            pool(threads).install(|| v.par_sort_unstable_by(|a, b| b.cmp(a)));
            let mut rev = expected.clone();
            rev.reverse();
            assert_eq!(v, rev, "descending, threads = {threads}");
            let mut v = original.clone();
            pool(threads).install(|| v.par_sort_unstable_by_key(|&x| x));
            assert_eq!(v, expected, "by_key, threads = {threads}");
        }
    }

    #[test]
    fn chunks_zip_enumerate_map_init_filter() {
        let p = pool(4);
        // par_chunks_mut + enumerate
        let mut v = vec![0usize; 1000];
        p.install(|| {
            v.par_chunks_mut(64).enumerate().for_each(|(ci, chunk)| {
                for x in chunk.iter_mut() {
                    *x = ci;
                }
            })
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i / 64);
        }
        // zip over par_iter_mut
        let mut a = vec![0f64; 512];
        let b: Vec<f64> = (0..512).map(|i| i as f64).collect();
        p.install(|| {
            a.par_iter_mut()
                .zip(b.par_iter())
                .for_each(|(ai, &bi)| *ai = 2.0 * bi)
        });
        assert!(a.iter().enumerate().all(|(i, &x)| x == 2.0 * i as f64));
        // map_init: scratch state is reused within a block
        let inits = AtomicUsize::new(0);
        let out: Vec<usize> = p.install(|| {
            (0..256usize)
                .into_par_iter()
                .map_init(
                    || {
                        inits.fetch_add(1, Ordering::Relaxed);
                        vec![0u8; 16]
                    },
                    |scratch, i| {
                        scratch[0] = scratch[0].wrapping_add(1);
                        i * 3
                    },
                )
                .collect()
        });
        assert_eq!(out, (0..256).map(|i| i * 3).collect::<Vec<_>>());
        assert!(inits.load(Ordering::Relaxed) <= 16, "one init per block");
        // filter + sum + count + min/max
        let total: usize =
            p.install(|| (0..1000usize).into_par_iter().filter(|x| x % 2 == 0).sum());
        assert_eq!(total, (0..1000).filter(|x| x % 2 == 0).sum::<usize>());
        assert_eq!(p.install(|| (0..1000usize).into_par_iter().count()), 1000);
        assert_eq!(p.install(|| (5..99u32).into_par_iter().min()), Some(5));
        assert_eq!(p.install(|| (5..99u32).into_par_iter().max()), Some(98));
        assert!(p.install(|| (0..100u32).into_par_iter().all(|x| x < 100)));
        assert!(p.install(|| (0..100u32).into_par_iter().any(|x| x == 57)));
    }

    #[test]
    fn pool_install_scopes_the_thread_count() {
        let p = pool(3);
        assert_eq!(p.install(current_num_threads), 3);
        // Nested install restores the outer pool.
        let inner = pool(2);
        let (outer_before, inner_seen, outer_after) = p.install(|| {
            let before = current_num_threads();
            let seen = inner.install(current_num_threads);
            (before, seen, current_num_threads())
        });
        assert_eq!((outer_before, inner_seen, outer_after), (3, 2, 3));
    }

    #[test]
    fn join_runs_both_and_propagates_panics() {
        let p = pool(4);
        let (a, b) = p.install(|| join(|| (0..100u64).sum::<u64>(), || (100..200u64).sum::<u64>()));
        assert_eq!(a, 4950);
        assert_eq!(b, 14950);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| join(|| 1, || panic!("boom in join B")))
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn parallel_panics_propagate_and_leave_the_pool_usable() {
        let p = pool(4);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| {
                (0..1000usize).into_par_iter().for_each(|i| {
                    if i == 500 {
                        panic!("boom at 500");
                    }
                })
            })
        }));
        assert!(caught.is_err());
        // The pool survives and still computes correctly.
        let sum: usize = p.install(|| (0..100usize).into_par_iter().sum());
        assert_eq!(sum, 4950);
    }

    #[test]
    fn scope_runs_spawned_tasks_including_nested_spawns() {
        let counter = AtomicUsize::new(0);
        pool(4).install(|| {
            scope(|s| {
                for _ in 0..8 {
                    s.spawn(|s| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        s.spawn(|_| {
                            counter.fetch_add(10, Ordering::Relaxed);
                        });
                    });
                }
            })
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8 + 80);
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let total: usize = pool(2).install(|| {
            (0..16usize)
                .into_par_iter()
                .map(|i| (0..100usize).into_par_iter().map(|j| i + j).sum::<usize>())
                .sum()
        });
        let expected: usize = (0..16)
            .map(|i| (0..100).map(|j| i + j).sum::<usize>())
            .sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn reduce_with_and_comparators() {
        let p = pool(4);
        assert_eq!(
            p.install(|| (1..101u64).into_par_iter().reduce_with(|a, b| a + b)),
            Some(5050)
        );
        let empty: Vec<u64> = Vec::new();
        assert_eq!(
            p.install(|| empty.into_par_iter().reduce_with(|a, b| a + b)),
            None
        );
        let v = [3.5f64, -1.0, 9.25, 0.0];
        let max = p.install(|| v.par_iter().copied().reduce(|| f64::MIN, f64::max));
        assert_eq!(max, 9.25);
        assert_eq!(
            p.install(|| v.par_iter().min_by(|a, b| a.partial_cmp(b).unwrap())),
            Some(&-1.0)
        );
        assert_eq!(
            p.install(|| v.par_iter().max_by(|a, b| a.partial_cmp(b).unwrap())),
            Some(&9.25)
        );
    }

    #[test]
    fn domain_boundaries_preserve_results_and_order() {
        let p = ThreadPoolBuilder::new()
            .num_threads(4)
            .domains(2)
            .build()
            .unwrap();
        assert_eq!(p.current_num_domains(), 2);
        let expected: Vec<usize> = (0..10_000).map(|x| x * 3).collect();
        let v: Vec<usize> = p.install(|| {
            (0..10_000usize)
                .into_par_iter()
                .with_domain_boundaries(vec![0, 5_000, 10_000])
                .map(|x| x * 3)
                .collect()
        });
        assert_eq!(v, expected);
        // Uneven, touching and empty ranges are all fine.
        let v: Vec<usize> = p.install(|| {
            (0..1000usize)
                .into_par_iter()
                .with_domain_boundaries(vec![0, 0, 997, 1000])
                .map(|x| x * 3)
                .collect()
        });
        assert_eq!(v, expected[..1000]);
        // Fold still covers every item exactly once.
        let total: usize = p.install(|| {
            (0..10_000usize)
                .into_par_iter()
                .with_domain_boundaries(vec![0, 2_500, 10_000])
                .fold(|| 0usize, |acc, x| acc + x)
                .sum()
        });
        assert_eq!(total, (0..10_000).sum::<usize>());
    }

    #[test]
    fn malformed_domain_boundaries_fall_back_to_the_plain_schedule() {
        let p = ThreadPoolBuilder::new()
            .num_threads(4)
            .domains(2)
            .build()
            .unwrap();
        for bad in [
            vec![0, 700],           // single domain: nothing to route
            vec![0, 900, 800],      // not ascending
            vec![0, 400, 999],      // does not span the item range
            vec![1, 500, 1000],     // does not start at 0
            vec![0, 250, 500, 750], // short of the end
        ] {
            let v: Vec<usize> = p.install(|| {
                (0..1000usize)
                    .into_par_iter()
                    .with_domain_boundaries(bad.clone())
                    .map(|x| x + 1)
                    .collect()
            });
            assert_eq!(v, (1..=1000).collect::<Vec<_>>(), "boundaries {bad:?}");
        }
    }

    #[test]
    fn workers_report_stable_domain_ids() {
        let p = ThreadPoolBuilder::new()
            .num_threads(4)
            .domains(2)
            .build()
            .unwrap();
        // The submitting thread is always domain 0.
        assert_eq!(current_domain(), 0);
        let seen = Mutex::new(std::collections::HashMap::new());
        p.install(|| {
            (0..4096usize).into_par_iter().for_each(|_| {
                let id = std::thread::current().id();
                let d = current_domain();
                let mut map = seen.lock().unwrap();
                let prev = map.insert(id, d);
                assert!(prev.is_none() || prev == Some(d), "domain id changed");
                std::thread::yield_now();
            })
        });
        let map = seen.lock().unwrap();
        // Every observed domain id is valid for a 2-domain pool.
        assert!(map.values().all(|&d| d < 2));
        // Domains are clamped to the thread count.
        let tiny = ThreadPoolBuilder::new()
            .num_threads(1)
            .domains(8)
            .build()
            .unwrap();
        assert_eq!(tiny.current_num_domains(), 1);
    }

    #[test]
    fn pool_builder_reports_real_thread_counts() {
        let p = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(p.install(|| 42), 42);
        assert_eq!(p.requested_threads(), 4);
        // The pool is real: it reports the count that actually executes.
        assert_eq!(p.current_num_threads(), 4);
    }
}
