//! Criterion micro-benchmarks of the expand-phase ablations: reserved
//! (unsafe, paper design) vs thread-local flushing, range vs modulo bin
//! mapping, the effect of the local-bin width, and the flush-prefetch
//! ablation (forced-scalar dispatch disables the destination-line prefetch,
//! so scalar-vs-best isolates its contribution on the same workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pb_gen::erdos_renyi_square;
use pb_spgemm::{simd, BinMapping, ExpandStrategy, PbConfig, SpGemm};

fn bench_expand_strategies(c: &mut Criterion) {
    let a = erdos_renyi_square(12, 8, 11);
    let a_csc = a.to_csc();
    let mut group = c.benchmark_group("expand_strategy");
    group.sample_size(10);
    for (name, strategy) in [
        ("reserved", ExpandStrategy::Reserved),
        ("thread_local", ExpandStrategy::ThreadLocal),
    ] {
        for (map_name, mapping) in [("range", BinMapping::Range), ("modulo", BinMapping::Modulo)] {
            let engine = SpGemm::pb().config(
                PbConfig::default()
                    .with_expand(strategy)
                    .with_bin_mapping(mapping),
            );
            group.bench_function(BenchmarkId::new(name, map_name), |bench| {
                bench.iter(|| black_box(engine.multiply_csc(&a_csc, &a)));
            });
        }
    }
    group.finish();
}

fn bench_local_bin_width(c: &mut Criterion) {
    let a = erdos_renyi_square(12, 8, 12);
    let a_csc = a.to_csc();
    let mut group = c.benchmark_group("local_bin_width");
    group.sample_size(10);
    for width in [64usize, 256, 512, 2048] {
        let engine = SpGemm::pb().config(PbConfig::default().with_local_bin_bytes(width));
        group.bench_function(BenchmarkId::from_parameter(width), |bench| {
            bench.iter(|| black_box(engine.multiply_csc(&a_csc, &a)));
        });
    }
    group.finish();
}

/// Flush-prefetch ablation: the whole multiply with the bin-flush copy
/// prefetching destination lines (any SIMD level) vs not (forced scalar).
fn bench_flush_prefetch(c: &mut Criterion) {
    let a = erdos_renyi_square(12, 8, 13);
    let a_csc = a.to_csc();
    let mut group = c.benchmark_group("flush_prefetch");
    group.sample_size(10);
    for isa in simd::Isa::supported() {
        let engine = SpGemm::pb().config(PbConfig::default().with_simd(isa));
        group.bench_function(BenchmarkId::from_parameter(isa.name()), |bench| {
            bench.iter(|| black_box(engine.multiply_csc(&a_csc, &a)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_expand_strategies,
    bench_local_bin_width,
    bench_flush_prefetch
);
criterion_main!(benches);
