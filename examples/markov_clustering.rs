//! A miniature Markov-Cluster-Algorithm (MCL) driver — the paper's flagship
//! application (HipMCL, cited in Sec. I) spends almost all of its time in
//! SpGEMM during the *expansion* step.
//!
//! The loop implemented here is the textbook MCL iteration:
//!
//! 1. **Expansion**   `M ← M²`           (PB-SpGEMM)
//! 2. **Inflation**   `M ← M.^r`, column-renormalised
//! 3. **Pruning**     drop entries below a threshold
//!
//! after which vertices are grouped into clusters by the connected
//! components of the converging matrix.
//!
//! ```bash
//! cargo run --release --example markov_clustering
//! ```

use pb_spgemm_suite::gen::{block_diagonal, Xoshiro256pp};
use pb_spgemm_suite::prelude::*;
use pb_spgemm_suite::sparse::permute::{permute_symmetric, Permutation};

/// Column-normalises a matrix so every non-empty column sums to one.
fn normalise_columns(m: &Csr<f64>) -> Csr<f64> {
    let mut col_sums = vec![0.0f64; m.ncols()];
    for (_, c, v) in m.iter() {
        col_sums[c as usize] += v;
    }
    let entries: Vec<(usize, usize, f64)> = m
        .iter()
        .map(|(r, c, v)| {
            let s = col_sums[c as usize];
            (r as usize, c as usize, if s > 0.0 { v / s } else { 0.0 })
        })
        .collect();
    Coo::from_entries(m.nrows(), m.ncols(), entries)
        .unwrap()
        .to_csr()
}

/// One MCL iteration: expansion (SpGEMM), inflation, pruning.
fn mcl_step(m: &Csr<f64>, inflation: f64, prune_threshold: f64, engine: &SpGemm) -> Csr<f64> {
    let expanded = engine.multiply(m, m);
    let inflated = expanded.map_values(|v| v.powf(inflation));
    let normalised = normalise_columns(&inflated);
    normalise_columns(&normalised.prune(|_, _, v| v >= prune_threshold))
}

/// Union-find over column indices: two vertices belong to the same cluster
/// when some row of the converged matrix links them.
fn clusters(m: &Csr<f64>) -> Vec<usize> {
    let n = m.ncols();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for r in 0..m.nrows() {
        let (cols, _) = m.row(r);
        if let Some(&first) = cols.first() {
            let root = find(&mut parent, first as usize);
            for &c in &cols[1..] {
                let other = find(&mut parent, c as usize);
                parent[other] = root;
            }
        }
    }
    (0..n).map(|v| find(&mut parent, v)).collect()
}

fn main() {
    // Ground truth: 8 dense communities of 64 vertices each, vertex ids
    // shuffled so the structure is not visible in the ordering.
    let ncommunities = 8usize;
    let community_size = 64usize;
    let n = ncommunities * community_size;
    let base = block_diagonal(ncommunities, community_size, 3);
    let mut rng = Xoshiro256pp::new(17);
    let mut order: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut order);
    let perm = Permutation::from_vec(order).unwrap();
    let graph = permute_symmetric(&base, &perm);

    println!("input graph: {n} vertices in {ncommunities} hidden communities of {community_size}");

    // MCL iterations (the SpGEMM inside mcl_step is PB-SpGEMM).
    let engine = SpGemm::pb();
    let mut m = normalise_columns(&graph);
    for iter in 0..6 {
        let t = std::time::Instant::now();
        m = mcl_step(&m, 2.0, 1e-4, &engine);
        println!(
            "iteration {}: nnz = {:6}, step took {:.1} ms",
            iter + 1,
            m.nnz(),
            t.elapsed().as_secs_f64() * 1e3
        );
    }

    // Cluster extraction + comparison against the planted communities.
    let labels = clusters(&m);
    let distinct: std::collections::BTreeSet<usize> = labels.iter().copied().collect();
    println!("clusters found: {}", distinct.len());
    assert_eq!(
        distinct.len(),
        ncommunities,
        "expected one cluster per planted community"
    );

    let inv = perm.inverse();
    for community in 0..ncommunities {
        let mut seen = std::collections::BTreeSet::new();
        for v in 0..community_size {
            let original_vertex = community * community_size + v;
            let position_after_shuffle = inv.as_slice()[original_vertex] as usize;
            seen.insert(labels[position_after_shuffle]);
        }
        assert_eq!(
            seen.len(),
            1,
            "community {community} was split across clusters"
        );
    }
    println!("MCL via PB-SpGEMM recovered the planted communities ✔");
}
