//! Propagation bins: the row→bin mapping, packed sort keys and the binned
//! tuple container shared by the expand, sort, compress and assemble phases.
//!
//! A *bin* holds the expanded tuples whose output row falls into the bin's
//! row set.  With the default [`BinMapping::Range`] mapping each bin covers
//! a contiguous range of `rows_per_bin` rows, which lets the sort key store
//! only the row's offset inside the bin (`log2(rows_per_bin)` bits) next to
//! the column index — the paper's "squeeze keys into fewer bytes"
//! optimisation (Sec. III-D) that reduces the number of radix passes.

use pb_sparse::stats::bits_needed;
use pb_sparse::Index;

use crate::config::BinMapping;

/// One expanded tuple: the packed `(row, col)` key and the multiplied value.
///
/// This is the in-memory representation of one entry of `Ĉ`; for `f64`
/// values it occupies 16 bytes, matching the paper's per-tuple byte count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry<V> {
    /// Packed sort key (see [`BinLayout::pack`]).
    pub key: u64,
    /// The multiplied value `A(i,k)·B(k,j)`.
    pub val: V,
}

/// Geometry of the propagation bins for one multiplication.
///
/// With [`BinMapping::Range`] and [`BinMapping::Modulo`] the mapping is a
/// closed-form function of the row index.  With [`BinMapping::Balanced`] the
/// bins cover contiguous row ranges whose boundaries were chosen by the
/// symbolic phase to equalise the flop per bin; the boundaries are stored in
/// [`BinLayout::row_starts`] (shared via `Arc`, so cloning a layout is
/// cheap).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinLayout {
    /// Rows of the output matrix.
    pub nrows: usize,
    /// Columns of the output matrix.
    pub ncols: usize,
    /// Number of global bins.
    pub nbins: usize,
    /// Row→bin mapping strategy.
    pub mapping: BinMapping,
    /// Rows covered by each bin under the `Range` mapping (last bin may
    /// cover fewer).  Unused by the `Balanced` mapping.
    pub rows_per_bin: usize,
    /// Bits used for the column index inside the packed key.
    pub col_bits: u32,
    /// Bits used for the (local or global) row index inside the packed key.
    pub row_bits: u32,
    /// Bin boundaries for the `Balanced` mapping: bin `b` covers rows
    /// `row_starts[b]..row_starts[b + 1]` (`nbins + 1` entries).  `None` for
    /// the closed-form mappings.
    pub row_starts: Option<std::sync::Arc<[Index]>>,
}

impl BinLayout {
    /// Computes the layout for an output matrix of the given shape.
    ///
    /// For [`BinMapping::Balanced`] this constructor produces *uniform*
    /// boundaries (equivalent to `Range`); the flop-balanced boundaries come
    /// from [`BinLayout::balanced`], which the symbolic phase calls once it
    /// knows the per-row flop distribution.
    pub fn new(nrows: usize, ncols: usize, nbins: usize, mapping: BinMapping) -> Self {
        let nbins = nbins.clamp(1, nrows.max(1));
        let rows_per_bin = nrows.div_ceil(nbins).max(1);
        if mapping == BinMapping::Balanced {
            let starts: Vec<Index> = (0..=nbins)
                .map(|b| (b * rows_per_bin).min(nrows) as Index)
                .collect();
            return Self::balanced(nrows, ncols, starts);
        }
        // With the Range mapping the row part of the key only needs to cover
        // the offset inside a bin; with Modulo it must cover the full row
        // index.
        let row_span = match mapping {
            BinMapping::Range => rows_per_bin,
            BinMapping::Modulo | BinMapping::Balanced => nrows.max(1),
        };
        let col_bits = bits_needed(ncols.saturating_sub(1) as u64);
        let row_bits = bits_needed(row_span.saturating_sub(1) as u64);
        assert!(
            col_bits + row_bits <= 64,
            "packed key does not fit in 64 bits ({row_bits} row bits + {col_bits} column bits)"
        );
        BinLayout {
            nrows,
            ncols,
            nbins,
            mapping,
            rows_per_bin,
            col_bits,
            row_bits,
            row_starts: None,
        }
    }

    /// Builds a [`BinMapping::Balanced`] layout from explicit bin boundaries.
    ///
    /// `row_starts` must start at 0, end at `nrows`, and be non-decreasing;
    /// bin `b` covers rows `row_starts[b]..row_starts[b + 1]`.
    pub fn balanced(nrows: usize, ncols: usize, row_starts: Vec<Index>) -> Self {
        assert!(row_starts.len() >= 2, "at least one bin is required");
        assert_eq!(row_starts[0], 0, "the first bin must start at row 0");
        assert_eq!(
            *row_starts.last().unwrap() as usize,
            nrows,
            "the last bin must end at nrows"
        );
        assert!(
            row_starts.windows(2).all(|w| w[0] <= w[1]),
            "bin boundaries must be non-decreasing"
        );
        let nbins = row_starts.len() - 1;
        let max_span = row_starts
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(1)
            .max(1);
        let col_bits = bits_needed(ncols.saturating_sub(1) as u64);
        let row_bits = bits_needed(max_span.saturating_sub(1) as u64);
        assert!(
            col_bits + row_bits <= 64,
            "packed key does not fit in 64 bits ({row_bits} row bits + {col_bits} column bits)"
        );
        BinLayout {
            nrows,
            ncols,
            nbins,
            mapping: BinMapping::Balanced,
            rows_per_bin: nrows.div_ceil(nbins).max(1),
            col_bits,
            row_bits,
            row_starts: Some(row_starts.into()),
        }
    }

    /// The balanced-mapping boundary table.
    #[inline]
    fn starts(&self) -> &[Index] {
        self.row_starts
            .as_deref()
            .expect("Balanced layouts always carry their boundary table")
    }

    /// Number of bins actually used (bins can be empty but never exceed the
    /// number of rows).
    #[inline]
    pub fn nbins(&self) -> usize {
        self.nbins
    }

    /// First row covered by `bin` (contiguous mappings only).
    #[inline]
    pub fn bin_row_start(&self, bin: usize) -> usize {
        match self.mapping {
            BinMapping::Range => bin * self.rows_per_bin,
            BinMapping::Balanced => self.starts()[bin] as usize,
            BinMapping::Modulo => panic!("the Modulo mapping has no contiguous bin start"),
        }
    }

    /// The bin that receives tuples of output row `row`.
    #[inline]
    pub fn bin_of(&self, row: Index) -> usize {
        match self.mapping {
            BinMapping::Range => (row as usize) / self.rows_per_bin,
            BinMapping::Modulo => (row as usize) % self.nbins,
            BinMapping::Balanced => {
                let starts = self.starts();
                // starts[b] <= row < starts[b + 1]
                starts.partition_point(|&s| s <= row).saturating_sub(1)
            }
        }
    }

    /// Packs `(row, col)` into the sort key used inside `row`'s bin.
    ///
    /// Keys within one bin sort in `(row, col)` order; keys from different
    /// bins are never compared.
    #[inline]
    pub fn pack(&self, row: Index, col: Index) -> u64 {
        self.pack_row(row) | col as u64
    }

    /// Pre-shifted row part of the key for `row`; OR it with a column index
    /// to obtain the full key.  Hoisting this out of the inner expand loop
    /// avoids one division (or boundary search) per tuple.
    #[inline]
    pub fn pack_row(&self, row: Index) -> u64 {
        let row_part = match self.mapping {
            BinMapping::Range => (row as usize % self.rows_per_bin) as u64,
            BinMapping::Modulo => row as u64,
            BinMapping::Balanced => {
                let start = self.starts()[self.bin_of(row)];
                (row - start) as u64
            }
        };
        row_part << self.col_bits
    }

    /// Recovers `(row, col)` from a packed key, given the bin it came from.
    #[inline]
    pub fn unpack(&self, bin: usize, key: u64) -> (Index, Index) {
        let col = (key & ((1u64 << self.col_bits) - 1)) as Index;
        let row_part = key >> self.col_bits;
        let row = match self.mapping {
            BinMapping::Range => (bin * self.rows_per_bin) as u64 + row_part,
            BinMapping::Modulo => row_part,
            BinMapping::Balanced => self.starts()[bin] as u64 + row_part,
        };
        (row as Index, col)
    }

    /// Number of significant bytes of the packed keys — the number of radix
    /// passes the sort needs.
    #[inline]
    pub fn key_bytes(&self) -> u32 {
        (self.row_bits + self.col_bits).div_ceil(8)
    }

    /// Number of rows mapped to `bin`.
    pub fn bin_row_count(&self, bin: usize) -> usize {
        match self.mapping {
            BinMapping::Range => {
                let start = bin * self.rows_per_bin;
                if start >= self.nrows {
                    0
                } else {
                    (self.nrows - start).min(self.rows_per_bin)
                }
            }
            BinMapping::Modulo => {
                if bin >= self.nbins || self.nrows == 0 {
                    0
                } else {
                    (self.nrows - bin).div_ceil(self.nbins)
                }
            }
            BinMapping::Balanced => {
                let starts = self.starts();
                (starts[bin + 1] - starts[bin]) as usize
            }
        }
    }
}

/// The expanded matrix `Ĉ`, partitioned into propagation bins.
///
/// `entries[bin_offsets[b]..bin_offsets[b+1]]` are the tuples of bin `b`;
/// after compression only the first `compressed_len[b]` of them are live.
#[derive(Debug)]
pub struct BinnedTuples<V> {
    /// All expanded tuples, grouped by bin.
    pub entries: Vec<Entry<V>>,
    /// Prefix offsets of each bin inside `entries` (`nbins + 1` values).
    pub bin_offsets: Vec<usize>,
    /// Number of live tuples per bin after compression (equals the bin size
    /// right after expansion).
    pub compressed_len: Vec<usize>,
    /// Bin geometry.
    pub layout: BinLayout,
}

impl<V> BinnedTuples<V> {
    /// Total number of expanded tuples (the multiplication's flop).
    pub fn flop(&self) -> usize {
        *self.bin_offsets.last().unwrap_or(&0)
    }

    /// Total number of live tuples after compression.
    pub fn compressed_total(&self) -> usize {
        self.compressed_len.iter().sum()
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.layout.nbins
    }

    /// The live tuples of bin `b` (all tuples before compression, the merged
    /// ones after).
    pub fn bin(&self, b: usize) -> &[Entry<V>] {
        &self.entries[self.bin_offsets[b]..self.bin_offsets[b] + self.compressed_len[b]]
    }

    /// Size in bytes of one stored tuple.
    pub fn tuple_bytes() -> usize {
        std::mem::size_of::<Entry<V>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_mapping_assigns_contiguous_blocks() {
        let l = BinLayout::new(100, 50, 4, BinMapping::Range);
        assert_eq!(l.rows_per_bin, 25);
        assert_eq!(l.bin_of(0), 0);
        assert_eq!(l.bin_of(24), 0);
        assert_eq!(l.bin_of(25), 1);
        assert_eq!(l.bin_of(99), 3);
        assert_eq!((0..4).map(|b| l.bin_row_count(b)).sum::<usize>(), 100);
    }

    #[test]
    fn modulo_mapping_round_robins() {
        let l = BinLayout::new(10, 10, 4, BinMapping::Modulo);
        assert_eq!(l.bin_of(0), 0);
        assert_eq!(l.bin_of(5), 1);
        assert_eq!(l.bin_of(7), 3);
        // 10 rows over 4 bins: 3 + 3 + 2 + 2.
        let counts: Vec<usize> = (0..4).map(|b| l.bin_row_count(b)).collect();
        assert_eq!(counts, vec![3, 3, 2, 2]);
        assert_eq!(counts.iter().sum::<usize>(), 10);
    }

    #[test]
    fn pack_unpack_roundtrip_range() {
        let l = BinLayout::new(1 << 20, 1 << 20, 1024, BinMapping::Range);
        // 1M rows over 1024 bins -> 1024 rows per bin -> 10 row bits,
        // 20 column bits: 30-bit keys, i.e. 4 radix bytes (the paper's
        // "squeeze into 4-byte keys" example).
        assert_eq!(l.rows_per_bin, 1024);
        assert_eq!(l.row_bits, 10);
        assert_eq!(l.col_bits, 20);
        assert_eq!(l.key_bytes(), 4);
        for &(r, c) in &[
            (0u32, 0u32),
            (123_456, 7),
            (1_048_575, 1_048_575),
            (524_288, 99_999),
        ] {
            let bin = l.bin_of(r);
            let key = l.pack(r, c);
            assert_eq!(l.unpack(bin, key), (r, c));
            assert_eq!(
                l.pack_row(r) | c as u64,
                key,
                "pack_row must agree with pack"
            );
        }
    }

    #[test]
    fn pack_unpack_roundtrip_modulo() {
        let l = BinLayout::new(5000, 3000, 7, BinMapping::Modulo);
        for &(r, c) in &[(0u32, 0u32), (4999, 2999), (1234, 5), (4321, 2998)] {
            let bin = l.bin_of(r);
            let key = l.pack(r, c);
            assert_eq!(l.unpack(bin, key), (r, c));
        }
        // Modulo cannot compress the row part.
        assert_eq!(l.row_bits, bits_needed(4999));
    }

    #[test]
    fn keys_sort_in_row_major_order_within_a_bin() {
        let l = BinLayout::new(64, 64, 8, BinMapping::Range);
        // Rows 8..16 share bin 1; their keys must sort by (row, col).
        let mut keys: Vec<(u64, (Index, Index))> = Vec::new();
        for r in 8..16u32 {
            for c in [0u32, 5, 63] {
                keys.push((l.pack(r, c), (r, c)));
            }
        }
        let mut sorted = keys.clone();
        sorted.sort_unstable_by_key(|&(k, _)| k);
        let coords: Vec<_> = sorted.iter().map(|&(_, rc)| rc).collect();
        let mut expected: Vec<_> = keys.iter().map(|&(_, rc)| rc).collect();
        expected.sort_unstable();
        assert_eq!(coords, expected);
    }

    #[test]
    fn single_bin_and_tiny_matrices() {
        let l = BinLayout::new(1, 1, 1, BinMapping::Range);
        assert_eq!(l.bin_of(0), 0);
        assert_eq!(l.unpack(0, l.pack(0, 0)), (0, 0));
        assert_eq!(l.key_bytes(), 1);

        let l = BinLayout::new(10, 10, 100, BinMapping::Range);
        assert_eq!(l.nbins, 10, "nbins is clamped to the number of rows");
    }

    #[test]
    fn key_bytes_shrink_with_more_bins() {
        let few = BinLayout::new(1 << 20, 1 << 10, 2, BinMapping::Range);
        let many = BinLayout::new(1 << 20, 1 << 10, 4096, BinMapping::Range);
        assert!(many.key_bytes() < few.key_bytes());
        // Modulo mapping gains nothing from more bins.
        let modulo = BinLayout::new(1 << 20, 1 << 10, 4096, BinMapping::Modulo);
        assert_eq!(
            modulo.key_bytes(),
            BinLayout::new(1 << 20, 1 << 10, 2, BinMapping::Modulo).key_bytes()
        );
    }

    #[test]
    fn balanced_layout_roundtrips_and_counts_rows() {
        // Bins: [0, 3), [3, 4), [4, 10) — a narrow bin around a heavy row.
        let l = BinLayout::balanced(10, 100, vec![0, 3, 4, 10]);
        assert_eq!(l.nbins(), 3);
        assert_eq!(l.mapping, BinMapping::Balanced);
        assert_eq!(l.bin_of(0), 0);
        assert_eq!(l.bin_of(2), 0);
        assert_eq!(l.bin_of(3), 1);
        assert_eq!(l.bin_of(4), 2);
        assert_eq!(l.bin_of(9), 2);
        assert_eq!(
            (0..3).map(|b| l.bin_row_count(b)).collect::<Vec<_>>(),
            vec![3, 1, 6]
        );
        assert_eq!(l.bin_row_start(2), 4);
        for &(r, c) in &[(0u32, 0u32), (2, 99), (3, 50), (9, 1)] {
            let bin = l.bin_of(r);
            let key = l.pack(r, c);
            assert_eq!(l.unpack(bin, key), (r, c));
            assert_eq!(l.pack_row(r) | c as u64, key);
        }
        // The widest bin spans 6 rows, so only 3 row bits are needed.
        assert_eq!(l.row_bits, 3);
    }

    #[test]
    fn balanced_keys_sort_in_row_major_order_within_a_bin() {
        let l = BinLayout::balanced(16, 16, vec![0, 5, 6, 16]);
        let mut keys: Vec<(u64, (Index, Index))> = Vec::new();
        for r in 6..16u32 {
            for c in [0u32, 3, 15] {
                keys.push((l.pack(r, c), (r, c)));
            }
        }
        let mut sorted = keys.clone();
        sorted.sort_unstable_by_key(|&(k, _)| k);
        let coords: Vec<_> = sorted.iter().map(|&(_, rc)| rc).collect();
        let mut expected: Vec<_> = keys.iter().map(|&(_, rc)| rc).collect();
        expected.sort_unstable();
        assert_eq!(coords, expected);
    }

    #[test]
    fn balanced_fallback_from_new_is_uniform() {
        let l = BinLayout::new(100, 50, 4, BinMapping::Balanced);
        assert_eq!(l.mapping, BinMapping::Balanced);
        assert_eq!(l.nbins(), 4);
        assert_eq!((0..4).map(|b| l.bin_row_count(b)).sum::<usize>(), 100);
        assert_eq!(l.bin_of(0), 0);
        assert_eq!(l.bin_of(99), 3);
        let key = l.pack(67, 13);
        assert_eq!(l.unpack(l.bin_of(67), key), (67, 13));
    }

    #[test]
    #[should_panic(expected = "start at row 0")]
    fn balanced_boundaries_must_start_at_zero() {
        let _ = BinLayout::balanced(10, 10, vec![1, 10]);
    }

    #[test]
    #[should_panic(expected = "end at nrows")]
    fn balanced_boundaries_must_cover_all_rows() {
        let _ = BinLayout::balanced(10, 10, vec![0, 5]);
    }

    #[test]
    fn binned_tuples_accessors() {
        let layout = BinLayout::new(4, 4, 2, BinMapping::Range);
        let bt = BinnedTuples {
            entries: vec![
                Entry { key: 1, val: 1.0 },
                Entry { key: 2, val: 2.0 },
                Entry { key: 0, val: 3.0 },
            ],
            bin_offsets: vec![0, 2, 3],
            compressed_len: vec![2, 1],
            layout,
        };
        assert_eq!(bt.flop(), 3);
        assert_eq!(bt.compressed_total(), 3);
        assert_eq!(bt.nbins(), 2);
        assert_eq!(bt.bin(0).len(), 2);
        assert_eq!(bt.bin(1)[0].val, 3.0);
        assert_eq!(BinnedTuples::<f64>::tuple_bytes(), 16);
    }
}
