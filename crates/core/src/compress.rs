//! Compression phase (Sec. III-E): merge sorted duplicates in place.
//!
//! After sorting, tuples with the same `(row, col)` key sit next to each
//! other within their bin.  A two-pointer scan walks each bin once: `p1`
//! reads every tuple, `p2` points at the last merged tuple; equal keys are
//! accumulated into `p2`, new keys advance `p2`.  The scan is in place, so
//! the compressed bin occupies a prefix of its original segment and no extra
//! memory traffic is generated.
//!
//! Parallelism is *per bin* by default: the bins are disjoint slices, so the
//! pool's threads each compress whole bins concurrently.  With the paper's
//! bin sizing (`nbins ≈ flop·bytes/L2`) there are far more bins than threads
//! whenever the input is large — but small products, explicit single-bin
//! configurations, and skewed inputs can leave *fewer* (or far fatter) bins
//! than threads, serialising the phase exactly when the sort phase already
//! scales.  For that regime ([`CompressSplit::Auto`]/`Always`) an oversized
//! bin is **split at key boundaries** into chunks: the chunk borders are
//! advanced past any run of equal keys, every chunk is compressed in place
//! concurrently by the same two-pointer scan, and the surviving prefixes are
//! compacted back together.  Because no `(row, col)` key spans two chunks
//! and each chunk merges its duplicates left-to-right exactly as the
//! sequential scan would, the split schedule is **bit-identical** to the
//! unsplit one — only the compaction `memmove` (touching `nnz(C)` of the
//! split bins, in cache-line-sized runs) is extra traffic, paid only where
//! it buys in-bin parallelism.

use pb_sparse::semiring::Semiring;
use rayon::prelude::*;

use crate::bins::{BinnedTuples, Entry};
use crate::config::CompressSplit;
use crate::profile::StatsCollector;

/// A bin smaller than this is never worth splitting across threads — the
/// same regime boundary as the sort phase's
/// [`PAR_BIN_MIN`](crate::sort::PAR_BIN_MIN), shared so the two phases
/// cannot silently diverge on when in-bin parallelism pays.
pub const SPLIT_MIN_TUPLES: usize = crate::sort::PAR_BIN_MIN;

/// Compresses every (sorted) bin in place, updating
/// [`BinnedTuples::compressed_len`].
///
/// `split` selects the in-bin parallel schedule for oversized bins; every
/// bin actually split is counted into `stats`
/// ([`PhaseStats::split_bins`](crate::profile::PhaseStats::split_bins)).
pub fn compress_bins<S: Semiring>(
    tuples: &mut BinnedTuples<S::Elem>,
    split: CompressSplit,
    stats: &StatsCollector,
) {
    let nbins = tuples.nbins();
    let threads = rayon::current_num_threads();
    let split_enabled = match split {
        CompressSplit::Never => false,
        CompressSplit::Always => true,
        // Only when per-bin parallelism cannot keep the pool busy.
        CompressSplit::Auto => nbins < threads,
    };
    // Aim for enough chunks to occupy the pool without shattering the bin.
    let chunk_target = 2 * threads.max(1);

    // Split borrows instead of a staging clone of the offsets: they stay
    // readable while the entry buffer is carved into per-bin slices.
    let BinnedTuples {
        entries,
        bin_offsets: offsets,
        compressed_len,
        ..
    } = tuples;
    let mut slices: Vec<&mut [Entry<S::Elem>]> = Vec::with_capacity(nbins);
    let mut rest: &mut [Entry<S::Elem>] = entries;
    for b in 0..nbins {
        let len = offsets[b + 1] - offsets[b];
        let (seg, r) = rest.split_at_mut(len);
        slices.push(seg);
        rest = r;
    }

    // Not domain-routed, for the same reason the sort phase isn't: every
    // bin's buffer interleaves all domains' sub-segments, so free claiming
    // costs no locality and keeps the load balancing.  The per-bin results
    // are collected in bin order — each bin's domain chunks sit adjacent in
    // fixed domain order inside it — so the compressed output is
    // bit-identical to the single-domain schedule no matter which worker
    // compressed which bin.
    let lens: Vec<usize> = slices
        .into_par_iter()
        .map(|seg| {
            if split_enabled && seg.len() >= SPLIT_MIN_TUPLES {
                compress_slice_split::<S>(seg, chunk_target, stats)
            } else {
                compress_slice::<S>(seg)
            }
        })
        .collect();
    // In place, so the (possibly workspace-pooled) vector is kept.
    compressed_len.clear();
    compressed_len.extend(lens);
}

/// Two-pointer in-place merge of one sorted bin; returns the number of
/// surviving (merged) tuples.
pub fn compress_slice<S: Semiring>(seg: &mut [Entry<S::Elem>]) -> usize {
    if seg.is_empty() {
        return 0;
    }
    debug_assert!(
        seg.windows(2).all(|w| w[0].key <= w[1].key),
        "bin must be sorted"
    );
    let mut write = 0usize;
    for read in 1..seg.len() {
        if seg[read].key == seg[write].key {
            seg[write].val = S::add(seg[write].val, seg[read].val);
        } else {
            write += 1;
            seg[write] = seg[read];
        }
    }
    write + 1
}

/// Compresses one oversized sorted bin with in-bin parallelism: the bin is
/// split into at most `chunks` key-aligned chunks, each chunk is compressed
/// in place concurrently, and the surviving prefixes are compacted together.
///
/// Bit-identical to [`compress_slice`]: chunk borders never separate equal
/// keys, and within a chunk duplicates are accumulated in the same
/// left-to-right order.  Returns the number of surviving tuples; the split
/// is recorded into `stats` when it actually happens (heavily duplicated
/// bins can collapse to a single chunk, which falls back to the sequential
/// scan).
pub fn compress_slice_split<S: Semiring>(
    seg: &mut [Entry<S::Elem>],
    chunks: usize,
    stats: &StatsCollector,
) -> usize {
    let len = seg.len();
    if len == 0 {
        return 0;
    }
    // Place chunk borders at the nearest key change at or after the even
    // split points, so no run of equal keys spans two chunks.
    let mut bounds: Vec<usize> = Vec::with_capacity(chunks.max(1) + 1);
    bounds.push(0);
    for c in 1..chunks.max(1) {
        let mut p = len * c / chunks;
        if p <= *bounds.last().unwrap() {
            continue;
        }
        while p < len && seg[p].key == seg[p - 1].key {
            p += 1;
        }
        if p > *bounds.last().unwrap() && p < len {
            bounds.push(p);
        }
    }
    bounds.push(len);
    let nchunks = bounds.len() - 1;
    if nchunks < 2 {
        return compress_slice::<S>(seg);
    }
    stats.record_split_bin(nchunks);

    // Carve the chunk sub-slices (disjoint by construction) and compress
    // each one concurrently.
    let mut chunk_slices: Vec<&mut [Entry<S::Elem>]> = Vec::with_capacity(nchunks);
    let mut rest: &mut [Entry<S::Elem>] = seg;
    for w in bounds.windows(2) {
        let (chunk, r) = rest.split_at_mut(w[1] - w[0]);
        chunk_slices.push(chunk);
        rest = r;
    }
    let lens: Vec<usize> = chunk_slices
        .into_par_iter()
        .map(|chunk| compress_slice::<S>(chunk))
        .collect();

    // Compact the surviving prefixes into one contiguous prefix of the bin.
    // Destinations never overtake sources (write <= bounds[i]), so the
    // forward copy is safe and each surviving tuple moves at most once.
    let mut write = lens[0];
    for (i, &n) in lens.iter().enumerate().skip(1) {
        let start = bounds[i];
        if start != write {
            seg.copy_within(start..start + n, write);
        }
        write += n;
    }
    write
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::BinLayout;
    use crate::config::BinMapping;
    use pb_gen::Xoshiro256pp;
    use pb_sparse::semiring::{MinPlus, PlusTimes};

    type S = PlusTimes<f64>;

    fn entries(pairs: &[(u64, f64)]) -> Vec<Entry<f64>> {
        pairs.iter().map(|&(key, val)| Entry { key, val }).collect()
    }

    #[test]
    fn merges_runs_of_equal_keys() {
        let mut seg = entries(&[(1, 1.0), (1, 2.0), (2, 3.0), (5, 4.0), (5, 0.5), (5, 0.25)]);
        let n = compress_slice::<S>(&mut seg);
        assert_eq!(n, 3);
        assert_eq!(seg[0], Entry { key: 1, val: 3.0 });
        assert_eq!(seg[1], Entry { key: 2, val: 3.0 });
        assert_eq!(seg[2], Entry { key: 5, val: 4.75 });
    }

    #[test]
    fn no_duplicates_is_a_noop() {
        let original = entries(&[(1, 1.0), (2, 2.0), (9, 3.0)]);
        let mut seg = original.clone();
        let n = compress_slice::<S>(&mut seg);
        assert_eq!(n, 3);
        assert_eq!(&seg[..n], &original[..]);
    }

    #[test]
    fn all_duplicates_collapse_to_one() {
        let mut seg = entries(&[(7, 1.0); 50]);
        let n = compress_slice::<S>(&mut seg);
        assert_eq!(n, 1);
        assert_eq!(seg[0].val, 50.0);
    }

    #[test]
    fn empty_and_singleton() {
        let mut empty: Vec<Entry<f64>> = Vec::new();
        assert_eq!(compress_slice::<S>(&mut empty), 0);
        let mut one = entries(&[(3, 1.5)]);
        assert_eq!(compress_slice::<S>(&mut one), 1);
        assert_eq!(one[0].val, 1.5);
    }

    #[test]
    fn respects_the_semiring_add() {
        // Under min-plus, merging keeps the minimum.
        let mut seg = entries(&[(4, 7.0), (4, 2.0), (4, 9.0)]);
        let n = compress_slice::<MinPlus>(&mut seg);
        assert_eq!(n, 1);
        assert_eq!(seg[0].val, 2.0);
    }

    #[test]
    fn compress_bins_updates_lengths_per_bin() {
        let layout = BinLayout::new(8, 8, 2, BinMapping::Range);
        let mut tuples = BinnedTuples {
            entries: entries(&[(0, 1.0), (0, 1.0), (3, 2.0), (1, 5.0), (1, 5.0), (1, 5.0)]),
            bin_offsets: vec![0, 3, 6],
            compressed_len: vec![3, 3],
            layout,
        };
        compress_bins::<S>(&mut tuples, CompressSplit::Auto, &StatsCollector::new());
        assert_eq!(tuples.compressed_len, vec![2, 1]);
        assert_eq!(tuples.compressed_total(), 3);
        assert_eq!(tuples.bin(0)[0].val, 2.0);
        assert_eq!(tuples.bin(1)[0].val, 15.0);
    }

    /// A sorted run with duplicate multiplicities drawn from a seeded RNG.
    fn sorted_duplicated(n: usize, seed: u64) -> Vec<Entry<f64>> {
        let mut rng = Xoshiro256pp::new(seed);
        let mut out = Vec::with_capacity(n);
        let mut key = 0u64;
        while out.len() < n {
            key += 1 + (rng.next_u64() % 3);
            // 1..=8 duplicates of this key, values that make order matter
            // (floats are summed in index order by the sequential oracle).
            let dups = 1 + (rng.next_u64() % 8) as usize;
            for d in 0..dups.min(n - out.len()) {
                out.push(Entry {
                    key,
                    val: (d as f64 + 1.0) * 0.1 + key as f64,
                });
            }
        }
        out
    }

    #[test]
    fn split_compress_is_bit_identical_to_sequential() {
        for seed in [1u64, 2, 3] {
            let original = sorted_duplicated(10_000, seed);
            let mut expected = original.clone();
            let n_expected = compress_slice::<S>(&mut expected);
            for chunks in [2usize, 3, 7, 16] {
                let mut seg = original.clone();
                let stats = StatsCollector::new();
                let n = compress_slice_split::<S>(&mut seg, chunks, &stats);
                assert_eq!(n, n_expected, "seed {seed} chunks {chunks}");
                // Bit-for-bit: same keys AND same float values (not approx).
                assert_eq!(
                    &seg[..n],
                    &expected[..n_expected],
                    "seed {seed} chunks {chunks}"
                );
                let s = stats.snapshot();
                assert_eq!(s.split_bins, 1);
                assert!(s.split_chunks >= 2 && s.split_chunks <= chunks);
            }
        }
    }

    #[test]
    fn split_never_separates_equal_keys() {
        // One giant run of a single key: every candidate border lands inside
        // the run and must be pushed past it, collapsing to one chunk — the
        // sequential fallback — and still merging to a single tuple.
        let mut seg = entries(&[(42, 1.0); 5000]);
        let stats = StatsCollector::new();
        let n = compress_slice_split::<S>(&mut seg, 8, &stats);
        assert_eq!(n, 1);
        assert_eq!(seg[0].val, 5000.0);
        assert_eq!(
            stats.snapshot().split_bins,
            0,
            "degenerate split not counted"
        );
    }

    #[test]
    fn split_handles_empty_and_tiny_segments() {
        let mut empty: Vec<Entry<f64>> = Vec::new();
        assert_eq!(
            compress_slice_split::<S>(&mut empty, 4, &StatsCollector::new()),
            0
        );
        let mut tiny = entries(&[(1, 1.0), (1, 2.0), (2, 3.0)]);
        let n = compress_slice_split::<S>(&mut tiny, 4, &StatsCollector::new());
        assert_eq!(n, 2);
        assert_eq!(tiny[0].val, 3.0);
    }

    #[test]
    fn compress_bins_split_modes_agree() {
        // One big sorted bin; Always must split it (recording stats) and
        // produce exactly what Never produces.
        let data = sorted_duplicated(SPLIT_MIN_TUPLES + 1000, 9);
        let layout = BinLayout::new(1 << 20, 1 << 20, 1, BinMapping::Range);
        let build = |entries: Vec<Entry<f64>>| BinnedTuples {
            bin_offsets: vec![0, entries.len()],
            compressed_len: vec![entries.len()],
            entries,
            layout: layout.clone(),
        };
        let mut unsplit = build(data.clone());
        compress_bins::<S>(&mut unsplit, CompressSplit::Never, &StatsCollector::new());
        let mut split = build(data);
        let stats = StatsCollector::new();
        compress_bins::<S>(&mut split, CompressSplit::Always, &stats);
        assert_eq!(split.compressed_len, unsplit.compressed_len);
        assert_eq!(split.bin(0), unsplit.bin(0));
        assert_eq!(stats.snapshot().split_bins, 1);
    }
}
