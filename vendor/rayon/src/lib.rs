//! A sequential, API-compatible stand-in for the [rayon] crate.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so the real rayon cannot be fetched. This shim mirrors the
//! subset of rayon's API the workspace uses — `par_iter`, `par_iter_mut`,
//! `into_par_iter`, `par_chunks`/`par_chunks_mut`, the two-closure
//! `fold`/`reduce` combinators, `ThreadPoolBuilder`/`ThreadPool::install`,
//! `join`, `scope` and `current_num_threads` — but executes everything on
//! the calling thread. Semantics (ordering of `collect`, fold-segment
//! behaviour, reduce identities) match rayon with a single "segment", so
//! swapping the real crate back in via `[workspace.dependencies]` is a
//! drop-in change.
//!
//! [rayon]: https://docs.rs/rayon

use std::marker::PhantomData;

/// The shim's parallel-iterator wrapper. All "parallel" combinators are
/// inherent methods that delegate to the wrapped sequential [`Iterator`].
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Wraps a sequential iterator. (Named to avoid colliding with
    /// `FromIterator::from_iter`, which this inherent method is not.)
    pub fn from_sequential(inner: I) -> Self {
        ParIter(inner)
    }

    /// Unwraps back into the underlying sequential iterator.
    pub fn into_inner(self) -> I {
        self.0
    }

    /// Hint only; the shim ignores splitting granularity.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Hint only; the shim ignores splitting granularity.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    /// Maps each item through `f`.
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Keeps only items for which `f` returns true.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// Combined filter and map.
    pub fn filter_map<U, F: FnMut(I::Item) -> Option<U>>(
        self,
        f: F,
    ) -> ParIter<std::iter::FilterMap<I, F>> {
        ParIter(self.0.filter_map(f))
    }

    /// Maps each item to an iterable and flattens (eager, like rayon's
    /// order-preserving `flat_map` with one segment).
    pub fn flat_map<U, PI, F>(self, mut f: F) -> ParIter<std::vec::IntoIter<U>>
    where
        PI: IntoParallelIterator<Item = U>,
        F: FnMut(I::Item) -> PI,
    {
        let mut out = Vec::new();
        for item in self.0 {
            out.extend(f(item).into_par_iter().0);
        }
        ParIter(out.into_iter())
    }

    /// Maps with per-"thread" scratch state; the shim initializes the
    /// state once and reuses it for every item.
    pub fn map_init<T, U, INIT, F>(self, init: INIT, map_op: F) -> ParIter<MapInit<I, T, F>>
    where
        INIT: Fn() -> T,
        F: FnMut(&mut T, I::Item) -> U,
    {
        ParIter(MapInit {
            inner: self.0,
            state: init(),
            map_op,
        })
    }

    /// Pairs each item with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Zips with another (into-)parallel iterator.
    pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> ParIter<std::iter::Zip<I, Z::Iter>> {
        ParIter(self.0.zip(other.into_par_iter().0))
    }

    /// Chains another (into-)parallel iterator after this one.
    pub fn chain<C: IntoParallelIterator<Item = I::Item>>(
        self,
        other: C,
    ) -> ParIter<std::iter::Chain<I, C::Iter>> {
        ParIter(self.0.chain(other.into_par_iter().0))
    }

    /// Copies items out of references.
    pub fn copied<'a, T: 'a + Copy>(self) -> ParIter<std::iter::Copied<I>>
    where
        I: Iterator<Item = &'a T>,
    {
        ParIter(self.0.copied())
    }

    /// Clones items out of references.
    pub fn cloned<'a, T: 'a + Clone>(self) -> ParIter<std::iter::Cloned<I>>
    where
        I: Iterator<Item = &'a T>,
    {
        ParIter(self.0.cloned())
    }

    /// Calls `f` on every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Rayon-style fold: produces one accumulator per "segment". The shim
    /// runs a single segment, so this yields exactly one accumulator.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    /// Rayon-style reduce with an identity constructor.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Reduces without an identity; `None` on an empty iterator.
    pub fn reduce_with<F>(self, op: F) -> Option<I::Item>
    where
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.reduce(op)
    }

    /// Collects into any [`FromIterator`] container (rayon's
    /// `FromParallelIterator` mirrors this for the types the workspace uses).
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Minimum item, if any.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// Maximum item, if any.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Minimum by a comparison function.
    pub fn min_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        compare: F,
    ) -> Option<I::Item> {
        self.0.min_by(compare)
    }

    /// Maximum by a comparison function.
    pub fn max_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        compare: F,
    ) -> Option<I::Item> {
        self.0.max_by(compare)
    }

    /// True if `f` holds for every item.
    pub fn all<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
        let mut iter = self.0;
        let f = f;
        iter.all(f)
    }

    /// True if `f` holds for any item.
    pub fn any<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
        let mut iter = self.0;
        let f = f;
        iter.any(f)
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.0.count()
    }
}

/// Iterator adapter backing [`ParIter::map_init`].
pub struct MapInit<I, T, F> {
    inner: I,
    state: T,
    map_op: F,
}

impl<I: Iterator, T, U, F: FnMut(&mut T, I::Item) -> U> Iterator for MapInit<I, T, F> {
    type Item = U;
    fn next(&mut self) -> Option<U> {
        let item = self.inner.next()?;
        Some((self.map_op)(&mut self.state, item))
    }
}

/// Conversion into a (shim) parallel iterator; mirrors rayon's trait of the
/// same name.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item;
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<I: Iterator> IntoParallelIterator for ParIter<I> {
    type Item = I::Item;
    type Iter = I;
    fn into_par_iter(self) -> ParIter<I> {
        self
    }
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Iter = std::ops::Range<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self)
    }
}

impl<T> IntoParallelIterator for std::ops::RangeInclusive<T>
where
    std::ops::RangeInclusive<T>: Iterator<Item = T>,
{
    type Item = T;
    type Iter = std::ops::RangeInclusive<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self)
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

impl<'a, T> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.iter())
    }
}

impl<'a, T> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.iter())
    }
}

impl<'a, T> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.iter_mut())
    }
}

impl<'a, T> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.iter_mut())
    }
}

/// `par_iter`/`par_chunks` on shared slices (and, via deref, `Vec`s and
/// arrays); mirrors rayon's `ParallelSlice`.
pub trait ParallelSlice<T> {
    /// Shared "parallel" iterator over the elements.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// "Parallel" iterator over contiguous chunks of `chunk_size`.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
}

/// `par_iter_mut`/`par_chunks_mut`/`par_sort*` on mutable slices; mirrors
/// rayon's `ParallelSliceMut`.
pub trait ParallelSliceMut<T> {
    /// Mutable "parallel" iterator over the elements.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// Mutable "parallel" iterator over contiguous chunks of `chunk_size`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    /// Unstable sort (sequential in the shim).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Unstable sort by key (sequential in the shim).
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
    /// Unstable sort by comparator (sequential in the shim).
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable()
    }
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.sort_unstable_by_key(f)
    }
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F) {
        self.sort_unstable_by(compare)
    }
}

/// Runs both closures (sequentially in the shim) and returns both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (oper_a(), oper_b())
}

/// A scope in which tasks can be spawned; the shim runs them immediately.
pub struct Scope<'scope> {
    _marker: PhantomData<&'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Runs `body` immediately on the calling thread.
    pub fn spawn<F: FnOnce(&Scope<'scope>)>(&self, body: F) {
        body(self)
    }
}

/// Creates a scope; the shim simply calls `f` with a scope handle.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    f(&Scope {
        _marker: PhantomData,
    })
}

/// Number of threads the "global pool" actually uses: always 1, because the
/// shim executes everything on the calling thread. Reporting the machine's
/// available parallelism here would make callers (e.g. benchmark metadata)
/// record thread counts that never execute.
pub fn current_num_threads() -> usize {
    1
}

/// Error type returned by [`ThreadPoolBuilder::build`]; never produced by
/// the shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error (rayon shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Mirrors `rayon::ThreadPoolBuilder`; configuration is recorded but the
/// resulting pool executes work on the calling thread.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the requested thread count (0 = automatic).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the (sequential) pool; infallible in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            num_threads: threads,
        })
    }
}

/// Mirrors `rayon::ThreadPool`; `install` runs the closure on the calling
/// thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` "inside" the pool (i.e. immediately, on this thread).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// The thread count work actually runs on: always 1 in the shim,
    /// regardless of what the builder recorded (see [`requested_threads`]
    /// for the configured value).
    ///
    /// [`requested_threads`]: ThreadPool::requested_threads
    pub fn current_num_threads(&self) -> usize {
        1
    }

    /// The thread count the builder was configured with; kept distinct from
    /// [`current_num_threads`](ThreadPool::current_num_threads) so callers
    /// can tell requested parallelism apart from the shim's sequential
    /// execution.
    pub fn requested_threads(&self) -> usize {
        self.num_threads
    }
}

/// The traits callers import with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<i32> = (0..10).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn fold_then_reduce_matches_sequential_sum() {
        let total = (0..100u64)
            .into_par_iter()
            .fold(|| 0u64, |acc, x| acc + x)
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn slice_traits_work_through_vec() {
        let mut v = vec![3, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, [1, 2, 3]);
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, [2, 4, 6]);
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, [2, 3, 4]);
    }

    #[test]
    fn pool_install_runs_closure() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 42), 42);
        // The builder records the request, but execution is sequential and
        // the pool reports the thread count that actually runs.
        assert_eq!(pool.requested_threads(), 4);
        assert_eq!(pool.current_num_threads(), 1);
    }
}
