//! In-cache sorting of the binned tuples (Sec. III-D of the paper).
//!
//! Every bin is sorted independently — bins never share a `(row, col)` key —
//! so threads pick up whole bins in parallel and sort them while the bin is
//! resident in cache.  The sort key is the packed `(row-in-bin, col)` integer
//! produced by [`BinLayout::pack`](crate::bins::BinLayout::pack); the number
//! of radix passes adapts to the number of significant key bytes, which is
//! the paper's key-compression optimisation (usually 4 bytes or fewer, so 4
//! passes instead of 8).
//!
//! Three sorters are provided:
//!
//! * [`SortAlgorithm::LsdRadix`] — least-significant-digit radix sort with a
//!   scratch buffer (default);
//! * [`SortAlgorithm::AmericanFlag`] — in-place MSD byte sort (McIlroy,
//!   Bostic & McIlroy), the variant the paper cites;
//! * [`SortAlgorithm::Comparison`] — `sort_unstable_by_key`, the correctness
//!   oracle and an ablation point.

use rayon::prelude::*;

use crate::bins::{BinnedTuples, Entry};
use crate::config::SortAlgorithm;
use crate::profile::StatsCollector;
use crate::workspace::ScratchSlabs;

/// A bin smaller than this is never worth splitting across threads.
pub const PAR_BIN_MIN: usize = 1 << 14;

/// Sorts every bin of the expanded matrix by its packed key, allocating
/// LSD-radix scratch per bin from the heap.
///
/// The pipeline itself runs [`sort_bins_slabbed`] instead, which leases the
/// scratch from the multiply's [`Workspace`](crate::Workspace) slabs; this
/// entry point serves direct callers (benchmarks, tests) that have no
/// workspace at hand.
pub fn sort_bins<V: Copy + Send + Sync>(
    tuples: &mut BinnedTuples<V>,
    algorithm: SortAlgorithm,
    stats: &StatsCollector,
) {
    sort_bins_impl(tuples, algorithm, stats, None)
}

/// Sorts every bin, leasing LSD-radix scratch from per-NUMA-domain slabs.
///
/// A worker sorting a bin draws scratch from *its own domain's* slab (see
/// [`ScratchSlabs::lease`]), so the sort phase's scratch streams stay
/// socket-local on a NUMA host even though the bins themselves are claimed
/// freely.  A lease that cannot be served (impossible under
/// [`scratch_target_len`](crate::workspace::scratch_target_len) sizing)
/// falls back to the heap and is *counted* into
/// [`PhaseStats::bytes_allocated`](crate::profile::PhaseStats::bytes_allocated).
pub fn sort_bins_slabbed<V: Copy + Send + Sync>(
    tuples: &mut BinnedTuples<V>,
    algorithm: SortAlgorithm,
    stats: &StatsCollector,
    slabs: &ScratchSlabs<'_, V>,
) {
    sort_bins_impl(tuples, algorithm, stats, Some(slabs))
}

/// Sorts every bin of the expanded matrix by its packed key.
///
/// Whole bins are distributed across the pool's threads.  When there are
/// *fewer* bins than threads (small products, or a single-bin
/// configuration) per-bin parallelism cannot keep the pool busy, so large
/// bins are additionally sorted with in-bin parallelism: one MSD byte
/// partition whose 256 buckets are then sorted concurrently (radix
/// algorithms), or a parallel comparison sort.  Every bin taking the in-bin
/// parallel path is counted into `stats`
/// ([`PhaseStats::par_sorted_bins`](crate::profile::PhaseStats::par_sorted_bins)).
fn sort_bins_impl<V: Copy + Send + Sync>(
    tuples: &mut BinnedTuples<V>,
    algorithm: SortAlgorithm,
    stats: &StatsCollector,
    slabs: Option<&ScratchSlabs<'_, V>>,
) {
    let key_bytes = tuples.layout.key_bytes() as usize;
    let nbins = tuples.layout.nbins;
    let split_within_bins = nbins < rayon::current_num_threads();

    // Split borrows: the offsets stay readable while the entry buffer is
    // carved into disjoint per-bin mutable slices (no staging clone).
    let BinnedTuples {
        entries,
        bin_offsets: offsets,
        ..
    } = tuples;
    let mut slices: Vec<&mut [Entry<V>]> = Vec::with_capacity(nbins);
    let mut rest: &mut [Entry<V>] = entries;
    let mut consumed = 0usize;
    for b in 0..nbins {
        let len = offsets[b + 1] - offsets[b];
        debug_assert_eq!(consumed, offsets[b]);
        let (seg, r) = rest.split_at_mut(len);
        slices.push(seg);
        rest = r;
        consumed += len;
    }

    // Bin claiming is deliberately *not* domain-routed: a bin's buffer
    // interleaves one sub-segment per domain (see `crate::symbolic`), so no
    // assignment of whole bins to domains could make the sort's *data*
    // reads local — every bin is a mixed-domain read regardless, and free
    // claiming keeps the phase's load balancing.  The scratch stream *is*
    // domain-local: each worker leases from its own domain's slab.
    slices.into_par_iter().for_each(|seg| {
        let scratch = lease_scratch(slabs, seg.len(), algorithm, stats);
        if split_within_bins && seg.len() >= PAR_BIN_MIN {
            stats.record_par_sorted_bin();
            par_sort_slice_in(seg, key_bytes, algorithm, scratch)
        } else {
            sort_slice_in(seg, key_bytes, algorithm, scratch)
        }
    });
}

/// Leases `len` scratch entries for one bin when the algorithm will use
/// them (LSD radix above the insertion-sort cutoff); counts the heap
/// fallback when the slabs cannot serve the lease.
fn lease_scratch<'s, V: Copy + Send>(
    slabs: Option<&ScratchSlabs<'s, V>>,
    len: usize,
    algorithm: SortAlgorithm,
    stats: &StatsCollector,
) -> Option<&'s mut [Entry<V>]> {
    if algorithm != SortAlgorithm::LsdRadix || len <= SMALL_SORT {
        return None;
    }
    let slabs = slabs?;
    let leased = slabs.lease(len);
    if leased.is_none() {
        // The sorter below will fall back to `to_vec`; account for it.
        stats.record_workspace((len * std::mem::size_of::<Entry<V>>()) as u64, 0, false);
    }
    leased
}

/// Sorts one large bin with in-bin parallelism (same result as
/// [`sort_slice`], different schedule).
///
/// For the radix algorithms the bin is partitioned once by its most
/// significant key byte — a sequential counting pass plus in-place cycle
/// permutation — and the 256 resulting buckets, which are already mutually
/// ordered, are finished independently in parallel with the configured
/// algorithm on the remaining bytes.  The comparison sort delegates to the
/// pool's parallel quicksort.
pub fn par_sort_slice<V: Copy + Send>(
    seg: &mut [Entry<V>],
    key_bytes: usize,
    algorithm: SortAlgorithm,
) {
    par_sort_slice_in(seg, key_bytes, algorithm, None)
}

/// One MSD bucket of a parallel in-bin sort, paired with its (optional)
/// piece of the bin's leased scratch.
type BucketTask<'a, V> = (&'a mut [Entry<V>], Option<&'a mut [Entry<V>]>);

/// [`par_sort_slice`] with optional pre-leased LSD scratch of at least
/// `seg.len()` entries; `None` (or the non-scratch algorithms) allocates as
/// before.
fn par_sort_slice_in<V: Copy + Send>(
    seg: &mut [Entry<V>],
    key_bytes: usize,
    algorithm: SortAlgorithm,
    scratch: Option<&mut [Entry<V>]>,
) {
    let key_bytes = key_bytes.clamp(1, 8);
    match algorithm {
        SortAlgorithm::Comparison => seg.par_sort_unstable_by_key(|e| e.key),
        SortAlgorithm::LsdRadix | SortAlgorithm::AmericanFlag => {
            if key_bytes == 1 {
                // Single significant byte: the MSD partition *is* the sort.
                flag_sort_level(seg, 0);
                return;
            }
            let top = (key_bytes - 1) as u32;
            let (starts, ends) = msd_partition(seg, top);
            // Carve the bucket sub-slices (disjoint by construction), and
            // the scratch into matching pieces when one was leased.
            let mut buckets: Vec<BucketTask<'_, V>> = Vec::with_capacity(256);
            let mut rest: &mut [Entry<V>] = seg;
            let mut scratch_rest: Option<&mut [Entry<V>]> = scratch;
            let mut consumed = 0usize;
            for bucket in 0..256 {
                let len = ends[bucket] - starts[bucket];
                let (b, r) = rest.split_at_mut(len);
                rest = r;
                let piece = match scratch_rest.take() {
                    Some(s) => {
                        let (piece, r) = s.split_at_mut(len);
                        scratch_rest = Some(r);
                        Some(piece)
                    }
                    None => None,
                };
                buckets.push((b, piece));
                consumed += len;
            }
            debug_assert_eq!(consumed, ends[255]);
            buckets.into_par_iter().for_each(|(b, piece)| {
                if b.len() > 1 {
                    match algorithm {
                        // Buckets share the top byte, so ordering the
                        // remaining low bytes completes the sort.
                        SortAlgorithm::LsdRadix => lsd_radix_sort_in(b, key_bytes - 1, piece),
                        _ => flag_sort_level(b, top - 1),
                    }
                }
            });
        }
    }
}

/// Sorts one bin's tuples by key with the selected algorithm.
pub fn sort_slice<V: Copy>(seg: &mut [Entry<V>], key_bytes: usize, algorithm: SortAlgorithm) {
    sort_slice_in(seg, key_bytes, algorithm, None)
}

/// [`sort_slice`] with optional pre-leased LSD scratch.
fn sort_slice_in<V: Copy>(
    seg: &mut [Entry<V>],
    key_bytes: usize,
    algorithm: SortAlgorithm,
    scratch: Option<&mut [Entry<V>]>,
) {
    match algorithm {
        SortAlgorithm::Comparison => seg.sort_unstable_by_key(|e| e.key),
        SortAlgorithm::LsdRadix => lsd_radix_sort_in(seg, key_bytes, scratch),
        SortAlgorithm::AmericanFlag => american_flag_sort(seg, key_bytes),
    }
}

/// Threshold below which radix sorters fall back to insertion sort.
/// `pub(crate)` so the pipeline can skip the scratch lease entirely for
/// products whose every bin insertion-sorts.
pub(crate) const SMALL_SORT: usize = 48;

fn insertion_sort<V: Copy>(seg: &mut [Entry<V>]) {
    for i in 1..seg.len() {
        let item = seg[i];
        let mut j = i;
        while j > 0 && seg[j - 1].key > item.key {
            seg[j] = seg[j - 1];
            j -= 1;
        }
        seg[j] = item;
    }
}

/// LSD radix sort: one stable counting-sort pass per significant key byte,
/// ping-ponging between the bin and a scratch buffer allocated here.
pub fn lsd_radix_sort<V: Copy>(seg: &mut [Entry<V>], key_bytes: usize) {
    lsd_radix_sort_in(seg, key_bytes, None)
}

/// [`lsd_radix_sort`] with an optional caller-provided scratch buffer of at
/// least `seg.len()` initialised entries (a workspace slab lease); `None`
/// allocates its own.
fn lsd_radix_sort_in<V: Copy>(
    seg: &mut [Entry<V>],
    key_bytes: usize,
    scratch: Option<&mut [Entry<V>]>,
) {
    if seg.len() <= SMALL_SORT {
        insertion_sort(seg);
        return;
    }
    match scratch {
        Some(scratch) => lsd_radix_passes(seg, key_bytes, &mut scratch[..seg.len()]),
        None => {
            let mut scratch: Vec<Entry<V>> = seg.to_vec();
            lsd_radix_passes(seg, key_bytes, &mut scratch);
        }
    }
}

/// The counting-sort passes shared by both scratch sources.
fn lsd_radix_passes<V: Copy>(seg: &mut [Entry<V>], key_bytes: usize, scratch: &mut [Entry<V>]) {
    debug_assert_eq!(seg.len(), scratch.len());
    let key_bytes = key_bytes.clamp(1, 8);
    // Tracks whether the current data lives in `seg` (true) or `scratch`.
    let mut data_in_seg = true;
    {
        let mut src: &mut [Entry<V>] = seg;
        let mut dst: &mut [Entry<V>] = scratch;
        for pass in 0..key_bytes {
            let shift = 8 * pass as u32;
            let mut counts = [0usize; 256];
            for e in src.iter() {
                counts[((e.key >> shift) & 0xFF) as usize] += 1;
            }
            // Skip passes where every key shares the same byte value.
            if counts.contains(&src.len()) {
                continue;
            }
            let mut offsets = [0usize; 256];
            let mut acc = 0usize;
            for (o, &c) in offsets.iter_mut().zip(&counts) {
                *o = acc;
                acc += c;
            }
            for e in src.iter() {
                let b = ((e.key >> shift) & 0xFF) as usize;
                dst[offsets[b]] = *e;
                offsets[b] += 1;
            }
            std::mem::swap(&mut src, &mut dst);
            data_in_seg = !data_in_seg;
        }
    }
    if !data_in_seg {
        seg.copy_from_slice(scratch);
    }
}

/// In-place MSD radix sort ("American flag sort"): permutes entries into 256
/// buckets of the most significant byte, then recurses into each bucket.
pub fn american_flag_sort<V: Copy>(seg: &mut [Entry<V>], key_bytes: usize) {
    let key_bytes = key_bytes.clamp(1, 8);
    flag_sort_level(seg, (key_bytes - 1) as u32);
}

/// Partitions `seg` into 256 buckets of key byte `byte` (in-place
/// cycle-following permutation); returns each bucket's `[start, end)`
/// boundaries.
fn msd_partition<V: Copy>(seg: &mut [Entry<V>], byte: u32) -> ([usize; 256], [usize; 256]) {
    let shift = 8 * byte;
    let mut counts = [0usize; 256];
    for e in seg.iter() {
        counts[((e.key >> shift) & 0xFF) as usize] += 1;
    }
    let mut starts = [0usize; 256];
    let mut ends = [0usize; 256];
    let mut acc = 0usize;
    for i in 0..256 {
        starts[i] = acc;
        acc += counts[i];
        ends[i] = acc;
    }
    // Cycle-following permutation: place every element into its bucket.
    let mut heads = starts;
    for bucket in 0..256 {
        while heads[bucket] < ends[bucket] {
            let mut e = seg[heads[bucket]];
            loop {
                let target = ((e.key >> shift) & 0xFF) as usize;
                if target == bucket {
                    break;
                }
                let dst = heads[target];
                heads[target] += 1;
                std::mem::swap(&mut seg[dst], &mut e);
            }
            seg[heads[bucket]] = e;
            heads[bucket] += 1;
        }
    }
    (starts, ends)
}

fn flag_sort_level<V: Copy>(seg: &mut [Entry<V>], byte: u32) {
    if seg.len() <= SMALL_SORT {
        insertion_sort(seg);
        return;
    }
    let (starts, ends) = msd_partition(seg, byte);
    if byte > 0 {
        for bucket in 0..256 {
            let (lo, hi) = (starts[bucket], ends[bucket]);
            if hi - lo > 1 {
                flag_sort_level(&mut seg[lo..hi], byte - 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::BinLayout;
    use crate::config::BinMapping;
    use pb_gen::Xoshiro256pp;

    fn random_entries(n: usize, key_bits: u32, seed: u64) -> Vec<Entry<u64>> {
        let mut rng = Xoshiro256pp::new(seed);
        (0..n)
            .map(|i| {
                let key = rng.next_u64() & ((1u64 << key_bits) - 1);
                Entry { key, val: i as u64 }
            })
            .collect()
    }

    fn is_sorted<V>(seg: &[Entry<V>]) -> bool {
        seg.windows(2).all(|w| w[0].key <= w[1].key)
    }

    #[test]
    fn all_sorters_agree_with_comparison_sort() {
        for &bits in &[8u32, 20, 31, 48, 63] {
            let original = random_entries(3000, bits, bits as u64);
            let key_bytes = (bits as usize).div_ceil(8);

            let mut expected = original.clone();
            expected.sort_by_key(|e| e.key);
            let expected_keys: Vec<u64> = expected.iter().map(|e| e.key).collect();

            for algo in [
                SortAlgorithm::LsdRadix,
                SortAlgorithm::AmericanFlag,
                SortAlgorithm::Comparison,
            ] {
                let mut data = original.clone();
                sort_slice(&mut data, key_bytes, algo);
                assert!(is_sorted(&data), "{algo:?} failed to sort {bits}-bit keys");
                let keys: Vec<u64> = data.iter().map(|e| e.key).collect();
                assert_eq!(
                    keys, expected_keys,
                    "{algo:?} produced a different permutation"
                );
            }
        }
    }

    #[test]
    fn radix_sorts_keep_key_value_pairs_together() {
        // Values encode the original key so any mismatch is detected.
        let mut rng = Xoshiro256pp::new(3);
        let original: Vec<Entry<u64>> = (0..5000)
            .map(|_| {
                let key = rng.next_u64() & 0xFFFF_FFFF;
                Entry {
                    key,
                    val: key ^ 0xDEAD_BEEF,
                }
            })
            .collect();
        for algo in [SortAlgorithm::LsdRadix, SortAlgorithm::AmericanFlag] {
            let mut data = original.clone();
            sort_slice(&mut data, 4, algo);
            assert!(data.iter().all(|e| e.val == e.key ^ 0xDEAD_BEEF));
        }
    }

    #[test]
    fn small_and_degenerate_inputs() {
        for algo in [
            SortAlgorithm::LsdRadix,
            SortAlgorithm::AmericanFlag,
            SortAlgorithm::Comparison,
        ] {
            let mut empty: Vec<Entry<f64>> = Vec::new();
            sort_slice(&mut empty, 4, algo);

            let mut one = vec![Entry { key: 7, val: 1.0 }];
            sort_slice(&mut one, 4, algo);
            assert_eq!(one[0].key, 7);

            let mut dup = vec![Entry { key: 5, val: 1.0 }; 100];
            sort_slice(&mut dup, 4, algo);
            assert!(is_sorted(&dup));

            let mut rev: Vec<Entry<u32>> = (0..200)
                .rev()
                .map(|k| Entry {
                    key: k as u64,
                    val: k,
                })
                .collect();
            sort_slice(&mut rev, 1, algo);
            assert!(is_sorted(&rev));
            assert_eq!(rev[0].val, 0);
        }
    }

    #[test]
    fn sort_bins_sorts_each_bin_independently() {
        // Three bins with interleaved keys; after sorting, each bin is
        // ordered but bins keep their own ranges.
        // 4 row bits + 4 column bits per key: one significant key byte.
        let layout = BinLayout::new(30, 16, 3, BinMapping::Range);
        assert_eq!(layout.key_bytes(), 1);
        let mut rng = Xoshiro256pp::new(9);
        let mut entries = Vec::new();
        let mut bin_offsets = vec![0usize];
        for _bin in 0..3 {
            for _ in 0..200 {
                entries.push(Entry {
                    key: rng.next_u64() & 0xFF,
                    val: 1.0f64,
                });
            }
            bin_offsets.push(entries.len());
        }
        let mut tuples = BinnedTuples {
            entries,
            bin_offsets: bin_offsets.clone(),
            compressed_len: vec![200, 200, 200],
            layout,
        };
        sort_bins(
            &mut tuples,
            SortAlgorithm::LsdRadix,
            &crate::profile::StatsCollector::new(),
        );
        for b in 0..3 {
            assert!(is_sorted(
                &tuples.entries[bin_offsets[b]..bin_offsets[b + 1]]
            ));
        }
    }

    #[test]
    fn par_sort_slice_agrees_with_sequential_sort() {
        for &bits in &[8u32, 20, 31, 48] {
            let original = random_entries(60_000, bits, 1000 + bits as u64);
            let key_bytes = (bits as usize).div_ceil(8);
            let mut expected = original.clone();
            expected.sort_by_key(|e| e.key);
            let expected_keys: Vec<u64> = expected.iter().map(|e| e.key).collect();
            for threads in [1usize, 2, 4] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                for algo in [
                    SortAlgorithm::LsdRadix,
                    SortAlgorithm::AmericanFlag,
                    SortAlgorithm::Comparison,
                ] {
                    let mut data = original.clone();
                    pool.install(|| par_sort_slice(&mut data, key_bytes, algo));
                    let keys: Vec<u64> = data.iter().map(|e| e.key).collect();
                    assert_eq!(
                        keys, expected_keys,
                        "{algo:?} with {threads} threads on {bits}-bit keys"
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_pass_count_handles_keys_wider_than_declared() {
        // Keys fit in 3 bytes; telling the sorter 3 bytes must be enough.
        let original = random_entries(2000, 24, 77);
        let mut a = original.clone();
        lsd_radix_sort(&mut a, 3);
        let mut b = original.clone();
        american_flag_sort(&mut b, 3);
        assert!(is_sorted(&a));
        assert!(is_sorted(&b));
    }
}
