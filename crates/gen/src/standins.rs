//! Synthetic stand-ins for the 12 SuiteSparse matrices of Table VI.
//!
//! The paper squares 12 real matrices from the SuiteSparse collection.  This
//! environment has no copy of the collection, so each matrix is replaced by
//! a synthetic stand-in whose *dimension*, *nnz*, *average degree* and
//! (approximately) *compression factor* match the original.  Those four
//! quantities are the only properties the paper's analysis depends on: they
//! determine `flop`, `nnz(C)`, `cf` and the bin occupancy of PB-SpGEMM.
//!
//! Three structural families cover the twelve matrices:
//!
//! * [`StandinClass::BandedRandom`] — finite-element / mesh matrices
//!   (`cant`, `hood`, `offshore`, …): a dense band around the diagonal plus
//!   a few random long-range entries.  The band width controls the
//!   compression factor of the square.
//! * [`StandinClass::PowerLaw`] — web/recommendation graphs (`web-Google`,
//!   `amazon0505`, `patents_main`): skewed row degrees and skewed column
//!   popularity.
//! * [`StandinClass::Er`] — matrices whose square has almost no collisions
//!   (`m133-b3`).
//!
//! Because the structural families are scale-free, a stand-in can be
//! generated at a fraction of the original size ([`standin_scaled`]) and
//! still exhibit approximately the same average degree and compression
//! factor — this is what the benchmark harness does on small machines.

use pb_sparse::{Csr, Index};
use rayon::prelude::*;

use crate::er::{erdos_renyi, ErConfig};
use crate::rng::Xoshiro256pp;
use crate::structured::{assemble_rows, banded_with_random};

/// Structural family used to synthesise a stand-in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StandinClass {
    /// Band of `band` entries around the diagonal plus `extra` random
    /// entries per row.
    BandedRandom {
        /// Entries in the diagonal band per row.
        band: usize,
        /// Additional uniformly random entries per row.
        extra: usize,
    },
    /// Power-law graph: row degrees and column popularity follow a Pareto
    /// distribution with shape `alpha` (smaller = more skewed).
    PowerLaw {
        /// Pareto shape parameter (≈1.5–3 for web-like graphs).
        alpha: f64,
    },
    /// Erdős–Rényi structure with `nnz_per_col` entries per column.
    Er {
        /// Nonzeros per column.
        nnz_per_col: usize,
    },
}

/// Description of one Table VI matrix and the stand-in that replaces it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StandinSpec {
    /// SuiteSparse matrix name.
    pub name: &'static str,
    /// Number of rows/columns of the original matrix.
    pub nrows: usize,
    /// Number of nonzeros of the original matrix.
    pub nnz: usize,
    /// Average nonzeros per row of the original (Table VI column `d`).
    pub d: f64,
    /// flop of squaring the original (Table VI, in millions).
    pub flop_millions: f64,
    /// nnz of the squared original (Table VI, in millions).
    pub nnz_c_millions: f64,
    /// Compression factor of squaring the original (Table VI column `cf`).
    pub cf: f64,
    /// Structural family of the stand-in.
    pub class: StandinClass,
}

/// Table VI of the paper, with a stand-in recipe for each matrix.
pub const STANDINS: &[StandinSpec] = &[
    StandinSpec {
        name: "2cubes_sphere",
        nrows: 101_492,
        nnz: 1_647_264,
        d: 16.23,
        flop_millions: 27.5,
        nnz_c_millions: 9.0,
        cf: 3.06,
        class: StandinClass::BandedRandom { band: 12, extra: 4 },
    },
    StandinSpec {
        name: "amazon0505",
        nrows: 410_236,
        nnz: 3_356_824,
        d: 8.18,
        flop_millions: 31.9,
        nnz_c_millions: 16.1,
        cf: 1.98,
        class: StandinClass::PowerLaw { alpha: 1.8 },
    },
    StandinSpec {
        name: "cage12",
        nrows: 130_228,
        nnz: 2_032_536,
        d: 15.61,
        flop_millions: 34.6,
        nnz_c_millions: 15.2,
        cf: 2.14,
        class: StandinClass::BandedRandom { band: 9, extra: 7 },
    },
    StandinSpec {
        name: "cant",
        nrows: 62_451,
        nnz: 4_007_383,
        d: 64.17,
        flop_millions: 269.5,
        nnz_c_millions: 17.4,
        cf: 15.45,
        class: StandinClass::BandedRandom { band: 62, extra: 2 },
    },
    StandinSpec {
        name: "hood",
        nrows: 220_542,
        nnz: 9_895_422,
        d: 44.87,
        flop_millions: 562.0,
        nnz_c_millions: 34.2,
        cf: 16.41,
        class: StandinClass::BandedRandom { band: 44, extra: 1 },
    },
    StandinSpec {
        name: "m133-b3",
        nrows: 200_200,
        nnz: 800_800,
        d: 4.00,
        flop_millions: 3.2,
        nnz_c_millions: 3.2,
        cf: 1.01,
        class: StandinClass::Er { nnz_per_col: 4 },
    },
    StandinSpec {
        name: "majorbasis",
        nrows: 160_000,
        nnz: 1_750_416,
        d: 10.94,
        flop_millions: 19.2,
        nnz_c_millions: 8.2,
        cf: 2.33,
        class: StandinClass::BandedRandom { band: 8, extra: 3 },
    },
    StandinSpec {
        name: "mc2depi",
        nrows: 525_825,
        nnz: 2_100_225,
        d: 3.99,
        flop_millions: 8.4,
        nnz_c_millions: 5.2,
        cf: 1.6,
        class: StandinClass::BandedRandom { band: 4, extra: 0 },
    },
    StandinSpec {
        name: "offshore",
        nrows: 259_789,
        nnz: 4_242_673,
        d: 16.33,
        flop_millions: 71.3,
        nnz_c_millions: 69.8,
        cf: 3.05,
        class: StandinClass::BandedRandom { band: 12, extra: 4 },
    },
    StandinSpec {
        name: "patents_main",
        nrows: 240_547,
        nnz: 560_943,
        d: 2.33,
        flop_millions: 2.6,
        nnz_c_millions: 2.3,
        cf: 1.14,
        class: StandinClass::PowerLaw { alpha: 2.5 },
    },
    StandinSpec {
        name: "scircuit",
        nrows: 170_998,
        nnz: 958_936,
        d: 5.61,
        flop_millions: 8.7,
        nnz_c_millions: 5.2,
        cf: 1.66,
        class: StandinClass::BandedRandom { band: 4, extra: 2 },
    },
    StandinSpec {
        name: "web-Google",
        nrows: 916_428,
        nnz: 5_105_039,
        d: 5.57,
        flop_millions: 60.7,
        nnz_c_millions: 29.7,
        cf: 2.04,
        class: StandinClass::PowerLaw { alpha: 1.5 },
    },
];

/// Names of all twelve Table VI matrices, in the paper's order.
pub fn standin_names() -> Vec<&'static str> {
    STANDINS.iter().map(|s| s.name).collect()
}

/// Looks up the stand-in specification for a Table VI matrix name.
pub fn spec(name: &str) -> Option<&'static StandinSpec> {
    STANDINS.iter().find(|s| s.name == name)
}

/// Generates the full-size stand-in for the named Table VI matrix.
///
/// # Panics
/// Panics if `name` is not one of the twelve Table VI matrices.
pub fn standin(name: &str, seed: u64) -> Csr<f64> {
    standin_scaled(name, 1.0, seed)
}

/// Generates a stand-in whose dimension is `fraction` of the original
/// (average degree and structure, and therefore the compression factor, are
/// preserved).  `fraction` is clamped to `(0, 1]`.
///
/// # Panics
/// Panics if `name` is not one of the twelve Table VI matrices.
pub fn standin_scaled(name: &str, fraction: f64, seed: u64) -> Csr<f64> {
    let spec = spec(name).unwrap_or_else(|| panic!("unknown Table VI matrix {name:?}"));
    let fraction = fraction.clamp(1e-6, 1.0);
    let nrows = ((spec.nrows as f64 * fraction) as usize).max(64);
    generate(spec, nrows, seed)
}

fn generate(spec: &StandinSpec, nrows: usize, seed: u64) -> Csr<f64> {
    match spec.class {
        StandinClass::BandedRandom { band, extra } => banded_with_random(nrows, band, extra, seed),
        StandinClass::PowerLaw { alpha } => powerlaw(nrows, spec.d, alpha, seed),
        StandinClass::Er { nnz_per_col } => erdos_renyi(&ErConfig {
            nrows,
            ncols: nrows,
            nnz_per_col,
            seed,
            random_values: true,
        }),
    }
}

/// Power-law graph generator: row degree and column popularity are both
/// Pareto distributed, mimicking web / citation / co-purchase graphs.
fn powerlaw(n: usize, avg_degree: f64, alpha: f64, seed: u64) -> Csr<f64> {
    // Mean of a Pareto(alpha) variable with minimum 1 is alpha/(alpha-1);
    // scale each sampled degree so that the average lands on `avg_degree`.
    let pareto_mean = alpha / (alpha - 1.0);
    let rows: Vec<(Vec<Index>, Vec<f64>)> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut rng = Xoshiro256pp::from_stream(seed, i as u64);
            let u = rng.next_f64().max(1e-12);
            let pareto = u.powf(-1.0 / alpha); // Pareto(alpha), min 1
            let degree =
                ((avg_degree * pareto / pareto_mean).round() as usize).clamp(1, n.min(4096));
            let mut cols: Vec<Index> = (0..degree)
                .map(|_| {
                    // Skew column popularity: low column indices are hubs.
                    let v = rng.next_f64();
                    ((v.powf(alpha) * n as f64) as usize).min(n - 1) as Index
                })
                .collect();
            cols.sort_unstable();
            cols.dedup();
            let vals: Vec<f64> = cols.iter().map(|_| rng.next_f64()).collect();
            (cols, vals)
        })
        .collect();
    assemble_rows(n, n, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_sparse::stats::{degree_gini, MultiplyStats};

    #[test]
    fn all_twelve_matrices_have_specs() {
        assert_eq!(STANDINS.len(), 12);
        assert_eq!(standin_names().len(), 12);
        for name in standin_names() {
            assert!(spec(name).is_some());
        }
        assert!(spec("not-a-matrix").is_none());
    }

    #[test]
    #[should_panic(expected = "unknown Table VI matrix")]
    fn unknown_name_panics() {
        let _ = standin("definitely-not-real", 0);
    }

    #[test]
    fn scaled_standins_preserve_average_degree() {
        for name in ["2cubes_sphere", "cant", "mc2depi", "scircuit"] {
            let s = spec(name).unwrap();
            let m = standin_scaled(name, 0.02, 1);
            let rel_err = (m.avg_degree() - s.d).abs() / s.d;
            assert!(
                rel_err < 0.35,
                "{name}: stand-in degree {} too far from paper degree {}",
                m.avg_degree(),
                s.d
            );
        }
    }

    #[test]
    fn scaled_standins_approximate_compression_factor() {
        // The compression factor drives the paper's PB-vs-hash crossover, so
        // the stand-ins must at least land in the right regime: cf < 4
        // matrices stay < 4, cf > 4 matrices stay > 4.
        for name in ["mc2depi", "majorbasis", "cant", "hood", "m133-b3"] {
            let s = spec(name).unwrap();
            let m = standin_scaled(name, 0.01, 2);
            let cf = MultiplyStats::compute(&m, &m).cf;
            if s.cf < 4.0 {
                assert!(
                    cf < 4.0,
                    "{name}: stand-in cf {cf} crossed the cf=4 regime boundary"
                );
            } else {
                assert!(
                    cf > 4.0,
                    "{name}: stand-in cf {cf} should be in the cf>4 regime"
                );
            }
            let ratio = cf / s.cf;
            assert!(
                (0.4..=2.5).contains(&ratio),
                "{name}: stand-in cf {cf} vs paper cf {} (ratio {ratio})",
                s.cf
            );
        }
    }

    #[test]
    fn powerlaw_standins_are_skewed() {
        let graph = standin_scaled("web-Google", 0.01, 3);
        let er = standin_scaled("m133-b3", 0.05, 3);
        assert!(
            degree_gini(&graph) > degree_gini(&er) + 0.1,
            "power-law stand-in should be more skewed than the ER stand-in"
        );
    }

    #[test]
    fn standins_are_deterministic() {
        let a = standin_scaled("scircuit", 0.01, 7);
        let b = standin_scaled("scircuit", 0.01, 7);
        assert_eq!(a, b);
        let c = standin_scaled("scircuit", 0.01, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn table_vi_statistics_are_internally_consistent() {
        for s in STANDINS {
            // d ~= nnz / n.
            let d = s.nnz as f64 / s.nrows as f64;
            assert!((d - s.d).abs() / s.d < 0.02, "{}: d mismatch", s.name);
            // cf ~= flop / nnz(C).  The paper's Table VI row for `offshore`
            // is internally inconsistent (71.3M flop / 69.8M output nonzeros
            // but cf reported as 3.05), so it is excluded from this check.
            if s.name != "offshore" {
                let cf = s.flop_millions / s.nnz_c_millions;
                assert!((cf - s.cf).abs() / s.cf < 0.10, "{}: cf mismatch", s.name);
            }
        }
    }
}
