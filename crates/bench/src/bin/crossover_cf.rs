//! Compression-factor crossover study (paper conclusions 5 and 6).
//!
//! The paper concludes that PB-SpGEMM wins whenever the compression factor
//! `cf = flop / nnz(C)` stays below ≈4 and that HashSpGEMM becomes the best
//! performer above it.  This binary sweeps the density of ER matrices — `cf`
//! grows with the edge factor — and reports runtime and MFLOPS for
//! PB-SpGEMM and the column baselines so the crossover point on the current
//! machine is visible.
//!
//! ```bash
//! cargo run --release -p pb-bench --bin crossover_cf
//! ```

use pb_bench::runner::{measure, Algorithm};
use pb_bench::workloads::er_matrix;
use pb_bench::{fmt, print_table, quick_mode, repetitions, write_json, Table};

fn main() {
    // `--smoke` shrinks the workloads to CI size (sets PB_BENCH_QUICK).
    pb_bench::smoke_from_args();
    let quick = quick_mode();
    let reps = repetitions();
    let scale = if quick { 11 } else { 13 };
    let edge_factors: &[u32] = if quick {
        &[2, 8, 24]
    } else {
        &[2, 4, 8, 16, 32]
    };
    let algorithms = Algorithm::paper_set();

    let mut headers = vec!["workload", "cf"];
    let names: Vec<String> = algorithms
        .iter()
        .map(|a| format!("{} ms", a.name()))
        .collect();
    headers.extend(names.iter().map(|s| s.as_str()));
    headers.push("PB/Hash");
    let mut table = Table::new(
        format!("Compression-factor crossover (ER scale {scale}, squaring)"),
        &headers,
    );

    let mut measurements = Vec::new();
    for &ef in edge_factors {
        let workload = er_matrix(scale, ef, 1000 + ef as u64);
        let mut row = vec![workload.name.clone(), fmt(workload.stats.cf, 2)];
        let mut pb_time = f64::NAN;
        let mut hash_time = f64::NAN;
        for algorithm in &algorithms {
            let m = measure(&workload, algorithm, reps, None);
            row.push(fmt(m.seconds * 1e3, 2));
            if m.algorithm == "PB-SpGEMM" {
                pb_time = m.seconds;
            }
            if m.algorithm == "HashSpGEMM" {
                hash_time = m.seconds;
            }
            measurements.push(m);
        }
        row.push(fmt(pb_time / hash_time, 2));
        table.push_row(row);
    }

    print_table(&table);
    write_json("crossover_cf", &measurements);
    println!(
        "expected shape (paper conclusions 5-6): the PB/Hash ratio is below 1 for the sparse \
         multiplications (cf < ~4) and drifts above 1 as the compression factor grows, because \
         the expand-sort-compress strategy must stream all flop tuples while the hash \
         accumulator only touches nnz(C) slots."
    );
}
