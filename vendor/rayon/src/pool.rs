//! The worker pool: lazily-initialized global pool, dedicated pools built by
//! [`ThreadPoolBuilder`], block-claiming task execution, `join` and `scope`.
//!
//! # Execution model
//!
//! A pool of `n` threads consists of `n - 1` parked worker threads plus the
//! submitting thread itself.  A parallel operation splits its work into
//! *blocks* (see [`crate::iter`]), publishes a `TaskState` describing them
//! to the pool's injector queue, and then participates in its own task:
//! every participant (submitter and any workers that pick the task up)
//! claims block indices with a relaxed `fetch_add` on a shared cursor and
//! runs them until the cursor passes the goal — work-stealing-lite.  The
//! submitter finally waits until *finished* blocks (not just claimed ones)
//! reach the goal, so all borrowed stack data outlives every access.
//!
//! Because the submitter always participates, a task completes even when
//! every worker is busy with other tasks; nested parallel operations on a
//! worker thread therefore cannot deadlock — the worker just runs the inner
//! task's blocks itself, and idle siblings help when available.
//!
//! # Panic propagation
//!
//! A panicking block is caught on the thread that ran it, the first payload
//! is stashed in the task, remaining blocks still run (rayon semantics), and
//! the payload is re-thrown on the submitting thread once the task is done.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A type-erased participant entry point: `job(i)` runs block `i` of the
/// task.  Points at a closure on the submitting thread's stack whose real
/// lifetime was erased in [`TaskState::new`]; see the safety invariant on
/// [`TaskState`].
type Job = dyn Fn(usize) + Sync + 'static;

/// One claimable range of block indices, owned by one NUMA domain.
///
/// The cursor starts at the range's first block and hands out indices with
/// an atomic RMW; an index at or past `end` means the range is drained (the
/// overshoot is harmless — ranges never refill).
pub(crate) struct ClaimRange {
    /// Next unclaimed block index of this range.
    next: AtomicUsize,
    /// One past the last block index of this range.
    end: usize,
    /// Blocks of this range fully executed — the foreign-domain progress
    /// signal the steal-patience logic watches (claims alone miss an owner
    /// grinding through a long block).
    completed: AtomicUsize,
}

/// How long a foreign domain's range may sit without visible progress
/// (no new claims, no completions) before a participant steals a block
/// from it.  Long enough that owners being merely time-sliced away (the
/// oversubscribed single-CPU case) keep their range; short enough that a
/// genuinely stalled domain — workers tied up in other tasks — delays the
/// operation by at most a scheduling hiccup.
const STEAL_PATIENCE: std::time::Duration = std::time::Duration::from_micros(200);

/// Shared state of one parallel operation.
///
/// # Safety invariant
///
/// `job` borrows the submitting call frame.  It is only ever invoked with a
/// block index `i < goal`, each index is handed out exactly once (every
/// range's `next` cursor is an atomic RMW and the ranges partition
/// `0..goal`), and the submitter does not return — keeping the frame alive —
/// until `done == goal`, i.e. until every participant that received a valid
/// index has finished running it.  Participants that lose the claim race
/// (index past a range's end) touch only this heap-allocated struct, never
/// `job`.
///
/// # Domain routing
///
/// A task usually has a single range covering `0..goal`.  Tasks submitted
/// with explicit domain boundaries (the expand phase's column partition)
/// carry one range per NUMA domain; a participant drains **its own
/// domain's range first**, and afterwards watches the other domains'
/// ranges, stealing a block only from a range that made no visible
/// progress (claims or completions) for [`STEAL_PATIENCE`].  Patience
/// matters: an owner that is alive but momentarily descheduled (the
/// oversubscribed single-CPU case) or mid-block keeps its range, so the
/// expand phase's flushes stay domain-local; a domain whose workers are
/// genuinely tied up elsewhere is taken over after at most a scheduling
/// hiccup, so the task can never stall (liveness).
pub(crate) struct TaskState {
    /// Unclaimed-block ranges, one per domain (one range = no routing).
    ranges: Vec<ClaimRange>,
    /// Number of blocks fully executed.
    done: AtomicUsize,
    /// Total number of blocks.
    goal: usize,
    /// Erased pointer to the submitter's block runner.
    job: *const Job,
    /// First panic payload raised by any block.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Completion flag + condvar the submitter waits on.
    complete: Mutex<bool>,
    complete_cv: Condvar,
}

// SAFETY: `job` is only dereferenced under the invariant documented on the
// struct; all other fields are Sync primitives.
unsafe impl Send for TaskState {}
unsafe impl Sync for TaskState {}

impl TaskState {
    fn new<'a>(goal: usize, job: &'a (dyn Fn(usize) + Sync + 'a)) -> Self {
        Self::with_bounds(&[0, goal], job)
    }

    /// Builds a task whose blocks are pre-partitioned into per-domain claim
    /// ranges at the given cumulative `bounds` (`D + 1` ascending indices,
    /// first 0; the last is the block count).
    fn with_bounds<'a>(bounds: &[usize], job: &'a (dyn Fn(usize) + Sync + 'a)) -> Self {
        debug_assert!(bounds.len() >= 2 && bounds[0] == 0);
        debug_assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        // SAFETY: this only erases the trait object's lifetime bound; both
        // sides are fat pointers of identical layout.  Validity of later
        // dereferences is upheld by the wait in `run_task` (see the
        // struct-level safety invariant).
        let job: *const Job = unsafe { std::mem::transmute(job) };
        TaskState {
            ranges: bounds
                .windows(2)
                .map(|w| ClaimRange {
                    next: AtomicUsize::new(w[0]),
                    end: w[1],
                    completed: AtomicUsize::new(0),
                })
                .collect(),
            done: AtomicUsize::new(0),
            goal: *bounds.last().unwrap(),
            job,
            panic: Mutex::new(None),
            complete: Mutex::new(false),
            complete_cv: Condvar::new(),
        }
    }

    /// True once every block has been claimed (not necessarily finished).
    fn exhausted(&self) -> bool {
        self.ranges
            .iter()
            .all(|r| r.next.load(Ordering::Relaxed) >= r.end)
    }

    /// Runs block `i` of `range` (claimed by the caller) and accounts it.
    fn run_block(&self, range: &ClaimRange, i: usize) {
        // SAFETY: `i < goal`, so the submitter is still blocked in
        // `run_task` waiting for this block; the frame `job` borrows is
        // alive.
        let job = unsafe { &*self.job };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(i))) {
            let mut slot = self.panic.lock().unwrap();
            slot.get_or_insert(payload);
        }
        range.completed.fetch_add(1, Ordering::Relaxed);
        // `Release` pairs with the `Acquire` read in `wait`: everything
        // this participant wrote while running the block (results, flushed
        // bins, ...) happens-before the submitter's return.
        if self.done.fetch_add(1, Ordering::Release) + 1 == self.goal {
            let mut flag = self.complete.lock().unwrap();
            *flag = true;
            self.complete_cv.notify_all();
        }
    }

    /// Claims and runs blocks of range `r` until its cursor is exhausted.
    fn drain_range(&self, r: usize) {
        let range = &self.ranges[r];
        loop {
            let i = range.next.fetch_add(1, Ordering::Relaxed);
            if i >= range.end {
                return;
            }
            self.run_block(range, i);
        }
    }

    /// Claims and runs blocks until none are left: the calling thread's own
    /// domain range eagerly, foreign ranges only behind [`STEAL_PATIENCE`]
    /// (see the struct-level domain-routing notes).
    fn participate(&self) {
        let nranges = self.ranges.len();
        let me = if nranges > 1 {
            current_domain().min(nranges - 1)
        } else {
            0
        };
        self.drain_range(me);
        if nranges <= 1 {
            return;
        }
        // Watch the foreign ranges: steal a block from a range only once it
        // shows no claim/completion progress for the patience window;
        // otherwise yield the CPU to its owners.  Ranges only drain, so
        // this loop terminates: every sweep either observes global
        // progress, forces some via a steal, or finds everything claimed.
        let mut watch: Vec<(usize, usize, std::time::Instant)> = self
            .ranges
            .iter()
            .map(|r| {
                (
                    r.next.load(Ordering::Relaxed),
                    r.completed.load(Ordering::Relaxed),
                    std::time::Instant::now(),
                )
            })
            .collect();
        let mut sweeps = 0usize;
        loop {
            let mut any_open = false;
            for offset in 1..nranges {
                let ri = (me + offset) % nranges;
                let range = &self.ranges[ri];
                let next = range.next.load(Ordering::Relaxed);
                if next >= range.end {
                    continue;
                }
                any_open = true;
                let completed = range.completed.load(Ordering::Relaxed);
                let (w_next, w_completed, w_since) = &mut watch[ri];
                if (*w_next, *w_completed) != (next, completed) {
                    (*w_next, *w_completed) = (next, completed);
                    *w_since = std::time::Instant::now();
                } else if w_since.elapsed() >= STEAL_PATIENCE {
                    let i = range.next.fetch_add(1, Ordering::Relaxed);
                    if i < range.end {
                        self.run_block(range, i);
                    }
                    *w_since = std::time::Instant::now();
                }
            }
            if !any_open {
                return;
            }
            // Back off from yielding to brief sleeps after a few sweeps:
            // on an oversubscribed host several watchers yielding in a
            // tight loop would steal the CPU from the very owners they are
            // waiting on.
            sweeps += 1;
            if sweeps < 4 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
    }

    /// Blocks until every block has finished executing.
    fn wait(&self) {
        if self.done.load(Ordering::Acquire) == self.goal {
            return;
        }
        let mut flag = self.complete.lock().unwrap();
        while !*flag {
            flag = self.complete_cv.wait(flag).unwrap();
        }
        drop(flag);
        // Unconditional `Acquire` re-load: the condvar mutex only
        // synchronizes the submitter with the *final* participant, but every
        // `fetch_add(1, Release)` is an RMW in the counter's release
        // sequence, so one Acquire read of the final value establishes
        // happens-before with *all* participants' block writes — without
        // this, a non-final worker's results could be read as stale data on
        // weakly-ordered hardware.
        let done = self.done.load(Ordering::Acquire);
        debug_assert_eq!(done, self.goal);
        let _ = done;
    }
}

/// Shared core of a pool: the injector queue and its workers' rendezvous.
pub(crate) struct PoolCore {
    /// Total thread count of the pool (workers + the submitting thread).
    nthreads: usize,
    /// NUMA domains the pool's workers are spread over (never more than
    /// `nthreads`); see [`crate::domains`].
    ndomains: usize,
    /// Tasks with potentially unclaimed blocks.
    queue: Mutex<Vec<Arc<TaskState>>>,
    /// Signalled when a task is published or shutdown is requested.
    work_cv: Condvar,
    /// Set by [`ThreadPool::drop`]; workers exit at the next wakeup.
    shutdown: AtomicBool,
}

impl PoolCore {
    /// Creates the core and spawns `nthreads - 1` workers, each carrying a
    /// stable domain id (and best-effort CPU affinity to its domain's cores
    /// when the domain count matches the real sysfs topology).
    fn start(nthreads: usize, ndomains: usize) -> (Arc<PoolCore>, Vec<JoinHandle<()>>) {
        let ndomains = ndomains.clamp(1, nthreads.max(1));
        let core = Arc::new(PoolCore {
            nthreads,
            ndomains,
            queue: Mutex::new(Vec::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        // Pin workers only when the pool's domains are the machine's real
        // NUMA nodes; a forced (emulated) topology partitions work and bins
        // but must not fight the scheduler over made-up core sets.
        let pin_sets =
            crate::domains::sysfs_domains().filter(|nodes| nodes.len() == ndomains && ndomains > 1);
        let handles = (1..nthreads)
            .map(|i| {
                let core = Arc::clone(&core);
                let domain = crate::domains::domain_for_worker(i, nthreads, ndomains);
                let cpus = pin_sets.as_ref().map(|nodes| nodes[domain].clone());
                std::thread::Builder::new()
                    .name(format!("pb-rayon-{i}"))
                    .spawn(move || {
                        WORKER_DOMAIN.with(|d| d.set(domain));
                        if let Some(cpus) = cpus {
                            // Best-effort: failure (locked-down container,
                            // unsupported target) costs locality, never
                            // correctness.
                            let _ = crate::domains::pin_current_thread(&cpus);
                        }
                        worker_loop(core)
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        (core, handles)
    }

    /// The pool's thread count (what [`current_num_threads`] reports).
    pub(crate) fn num_threads(&self) -> usize {
        self.nthreads
    }

    /// The pool's domain count (what [`current_num_domains`] reports).
    pub(crate) fn num_domains(&self) -> usize {
        self.ndomains
    }

    /// Runs `goal` blocks of `job` on the pool, participating inline.
    ///
    /// Returns after every block has executed; re-raises the first panic.
    pub(crate) fn run_task<'a>(
        self: &Arc<Self>,
        goal: usize,
        job: &'a (dyn Fn(usize) + Sync + 'a),
    ) {
        self.run_task_bounded(&[0, goal], job);
    }

    /// [`PoolCore::run_task`] with the blocks pre-partitioned into
    /// per-domain claim ranges at the cumulative `bounds` (see
    /// [`TaskState`]'s domain routing).
    pub(crate) fn run_task_bounded<'a>(
        self: &Arc<Self>,
        bounds: &[usize],
        job: &'a (dyn Fn(usize) + Sync + 'a),
    ) {
        let goal = *bounds.last().unwrap_or(&0);
        if goal == 0 {
            return;
        }
        // Nothing to gain from the queue with no workers or a single block:
        // run inline, in block order (panics propagate naturally).
        if self.nthreads <= 1 || goal == 1 {
            for i in 0..goal {
                job(i);
            }
            return;
        }
        let task = Arc::new(TaskState::with_bounds(bounds, job));
        self.publish(&task);
        task.participate();
        task.wait();
        self.retire(&task);
        let payload = task.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Publishes a task and wakes the workers.
    fn publish(&self, task: &Arc<TaskState>) {
        self.queue.lock().unwrap().push(Arc::clone(task));
        self.work_cv.notify_all();
    }

    /// Drops a task from the injector queue (idempotent).
    fn retire(&self, task: &Arc<TaskState>) {
        self.queue.lock().unwrap().retain(|t| !Arc::ptr_eq(t, task));
    }

    /// Starts `join`'s second closure as a 1-block task **without** waiting,
    /// so the caller can run the first closure concurrently.  The caller
    /// must `participate()` + `wait()` + `retire()` afterwards.
    fn spawn_task<'a>(self: &Arc<Self>, job: &'a (dyn Fn(usize) + Sync + 'a)) -> Arc<TaskState> {
        let task = Arc::new(TaskState::new(1, job));
        self.publish(&task);
        task
    }
}

/// Worker main loop: find a task with unclaimed blocks, help finish it.
fn worker_loop(core: Arc<PoolCore>) {
    CURRENT_POOL.with(|p| *p.borrow_mut() = Some(Arc::clone(&core)));
    loop {
        let task = {
            let mut queue = core.queue.lock().unwrap();
            loop {
                if core.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(t) = queue.iter().find(|t| !t.exhausted()) {
                    break Arc::clone(t);
                }
                queue = core.work_cv.wait(queue).unwrap();
            }
        };
        task.participate();
        if task.exhausted() {
            core.retire(&task);
        }
    }
}

thread_local! {
    /// The pool parallel operations on this thread submit to: the owning
    /// pool on worker threads, the installed pool inside
    /// [`ThreadPool::install`], the global pool otherwise.
    static CURRENT_POOL: std::cell::RefCell<Option<Arc<PoolCore>>> =
        const { std::cell::RefCell::new(None) };

    /// The NUMA domain this thread belongs to: set once at spawn for pool
    /// workers, 0 for every other thread (including submitters, which by
    /// the contiguous worker→domain mapping always sit in domain 0).
    static WORKER_DOMAIN: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// The stable NUMA domain id of the calling thread: its assigned domain on
/// pool worker threads, 0 everywhere else (the submitting thread of any
/// pool is worker slot 0, which the contiguous mapping puts in domain 0).
pub fn current_domain() -> usize {
    WORKER_DOMAIN.with(|d| d.get())
}

/// Number of NUMA domains of the current pool (the installed pool inside
/// [`ThreadPool::install`], the global pool otherwise).  Never exceeds
/// [`current_num_threads`]; 1 on single-domain hosts unless
/// `PB_NUMA_DOMAINS` forces more (see [`crate::domains`]).
pub fn current_num_domains() -> usize {
    current_pool().num_domains()
}

/// Default thread count: the `PB_RAYON_THREADS` environment variable if set
/// to a positive integer, otherwise [`std::thread::available_parallelism`].
fn default_threads() -> usize {
    if let Ok(v) = std::env::var("PB_RAYON_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The lazily-initialized global pool (never shut down; its workers are
/// process-lifetime daemons, exactly like rayon's global registry).
fn global_pool() -> &'static Arc<PoolCore> {
    static GLOBAL: OnceLock<Arc<PoolCore>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let (core, handles) = PoolCore::start(default_threads(), crate::domains::default_domains());
        for h in handles {
            drop(h); // detach
        }
        core
    })
}

/// The pool the calling thread currently submits to.
pub(crate) fn current_pool() -> Arc<PoolCore> {
    CURRENT_POOL
        .with(|p| p.borrow().clone())
        .unwrap_or_else(|| Arc::clone(global_pool()))
}

/// Number of threads of the current pool: the dedicated pool inside
/// [`ThreadPool::install`] (including on its worker threads), the global
/// pool otherwise.  The global size honours `PB_RAYON_THREADS`, falling back
/// to the machine's available parallelism.
pub fn current_num_threads() -> usize {
    current_pool().num_threads()
}

/// Restores the previously-installed pool on drop (panic-safe).
struct InstallGuard {
    previous: Option<Arc<PoolCore>>,
}

impl InstallGuard {
    fn enter(core: Arc<PoolCore>) -> InstallGuard {
        let previous = CURRENT_POOL.with(|p| p.borrow_mut().replace(core));
        InstallGuard { previous }
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT_POOL.with(|p| *p.borrow_mut() = self.previous.take());
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`]; never produced by
/// this implementation.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Mirrors `rayon::ThreadPoolBuilder`, extended with a NUMA-domain count
/// (a vendored addition; real rayon has no notion of domains).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
    domains: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count (0 = automatic: `PB_RAYON_THREADS` or the
    /// available parallelism).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Sets the NUMA-domain count the pool's workers are spread over
    /// (0 = automatic: `PB_NUMA_DOMAINS`, the sysfs node count, or 1).
    /// Clamped to the thread count at build time.
    pub fn domains(mut self, domains: usize) -> Self {
        self.domains = domains;
        self
    }

    /// Builds a dedicated pool: `n - 1` real worker threads plus the thread
    /// that calls [`ThreadPool::install`].
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        let domains = if self.domains == 0 {
            crate::domains::default_domains()
        } else {
            self.domains
        };
        let (core, workers) = PoolCore::start(threads, domains);
        Ok(ThreadPool { core, workers })
    }
}

/// A dedicated pool; mirrors `rayon::ThreadPool`.  Work submitted inside
/// [`install`](ThreadPool::install) runs on this pool's threads (plus the
/// installing thread).  Dropping the pool shuts its workers down.
pub struct ThreadPool {
    core: Arc<PoolCore>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.core.num_threads())
            .finish()
    }
}

impl ThreadPool {
    /// Runs `op` with this pool installed: every parallel operation `op`
    /// performs (directly or nested) executes on this pool's threads.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let _guard = InstallGuard::enter(Arc::clone(&self.core));
        op()
    }

    /// The number of threads work submitted to this pool runs on.
    pub fn current_num_threads(&self) -> usize {
        self.core.num_threads()
    }

    /// The number of NUMA domains this pool's workers are spread over.
    pub fn current_num_domains(&self) -> usize {
        self.core.num_domains()
    }

    /// The configured thread count; identical to
    /// [`current_num_threads`](ThreadPool::current_num_threads) now that the
    /// pool is real (kept for callers that told the two apart under the old
    /// sequential shim).
    pub fn requested_threads(&self) -> usize {
        self.core.num_threads()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::Relaxed);
        // Take the queue lock so no worker is between its shutdown check and
        // its condvar wait when we signal.
        drop(self.core.queue.lock().unwrap());
        self.core.work_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Cell written by at most one task participant; see [`TaskState`]'s
/// claiming discipline.
pub(crate) struct SyncSlot<T>(std::cell::UnsafeCell<Option<T>>);

// SAFETY: each slot is read/written only by the unique participant that
// claimed its block index (plus the submitter strictly before publication /
// after completion of the task).
unsafe impl<T: Send> Sync for SyncSlot<T> {}

impl<T> SyncSlot<T> {
    pub(crate) fn new(value: T) -> Self {
        SyncSlot(std::cell::UnsafeCell::new(Some(value)))
    }

    pub(crate) fn empty() -> Self {
        SyncSlot(std::cell::UnsafeCell::new(None))
    }

    /// Moves the value out (unique-claimant discipline).
    pub(crate) fn take(&self) -> Option<T> {
        // SAFETY: exclusive access per the struct invariant.
        unsafe { (*self.0.get()).take() }
    }

    /// Stores a value (unique-claimant discipline).
    pub(crate) fn put(&self, value: T) {
        // SAFETY: exclusive access per the struct invariant.
        unsafe { *self.0.get() = Some(value) }
    }

    pub(crate) fn into_inner(self) -> Option<T> {
        self.0.into_inner()
    }
}

/// Runs both closures, potentially in parallel: `oper_b` is published to the
/// current pool while the calling thread runs `oper_a`; whoever gets there
/// first (an idle worker, or the caller once `oper_a` is done) runs
/// `oper_b`.  Panics from either closure propagate to the caller.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = current_pool();
    if pool.num_threads() <= 1 {
        return (oper_a(), oper_b());
    }
    let b_fn = SyncSlot::new(oper_b);
    let b_out: SyncSlot<RB> = SyncSlot::empty();
    let runner = |_i: usize| {
        let f = b_fn.take().expect("join block claimed twice");
        b_out.put(f());
    };
    let task = pool.spawn_task(&runner);
    let ra = catch_unwind(AssertUnwindSafe(oper_a));
    // Claim B ourselves if no worker got to it, then wait it out so the
    // borrows above stay valid even when `oper_a` panicked.
    task.participate();
    task.wait();
    pool.retire(&task);
    let b_panic = task.panic.lock().unwrap().take();
    match ra {
        Err(payload) => resume_unwind(payload),
        Ok(ra) => {
            if let Some(payload) = b_panic {
                resume_unwind(payload);
            }
            (ra, b_out.into_inner().expect("join block never ran"))
        }
    }
}

/// A queued scope task (boxed so heterogeneous spawns share one list).
pub(crate) type ScopeJob<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// A scope in which tasks can be spawned; spawned tasks run in parallel
/// waves after the scope body returns and may themselves spawn more tasks.
pub struct Scope<'scope> {
    jobs: Mutex<Vec<ScopeJob<'scope>>>,
}

impl<'scope> std::fmt::Debug for Scope<'scope> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

impl<'scope> Scope<'scope> {
    /// Queues `body` to run within the scope.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.jobs.lock().unwrap().push(Box::new(body));
    }
}

/// Creates a scope: runs `f`, then executes everything it spawned (and
/// everything those tasks spawn, transitively) on the current pool before
/// returning.  Panics from spawned tasks propagate.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        jobs: Mutex::new(Vec::new()),
    };
    let result = f(&s);
    loop {
        let batch = std::mem::take(&mut *s.jobs.lock().unwrap());
        if batch.is_empty() {
            break;
        }
        crate::iter::run_boxed_jobs(batch, &s);
    }
    result
}
