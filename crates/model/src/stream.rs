//! A rayon-parallel STREAM benchmark (McCalpin), reproducing Table V.
//!
//! The four kernels touch three arrays much larger than the last-level
//! cache:
//!
//! | kernel | operation            | bytes per element |
//! |--------|----------------------|-------------------|
//! | Copy   | `c[i] = a[i]`        | 16 |
//! | Scale  | `b[i] = s·c[i]`      | 16 |
//! | Add    | `c[i] = a[i] + b[i]` | 24 |
//! | Triad  | `a[i] = b[i] + s·c[i]` | 24 |
//!
//! Each kernel runs `ntimes` times; the best rate is reported, exactly as
//! the reference STREAM benchmark does.  The resulting Triad/Add figure is
//! the `β` the Roofline model multiplies with.

use std::time::Instant;

use rayon::prelude::*;
use serde::Serialize;

/// Configuration of a STREAM run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Elements per array (default 2²⁴ doubles = 128 MiB per array).
    pub elements: usize,
    /// Repetitions per kernel; the best time is kept (default 5).
    pub ntimes: usize,
    /// Number of rayon threads; `None` uses the global pool.
    pub threads: Option<usize>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            elements: 1 << 24,
            ntimes: 5,
            threads: None,
        }
    }
}

impl StreamConfig {
    /// A faster configuration for smoke runs: 16 MiB arrays are still well
    /// beyond any L3 cache but keep the run under a second.
    pub fn quick() -> Self {
        StreamConfig {
            elements: 1 << 21,
            ntimes: 2,
            threads: None,
        }
    }

    /// A tiny configuration for unit tests only (arrays may fit in cache, so
    /// the resulting figure is not a memory bandwidth).
    pub fn tiny() -> Self {
        StreamConfig {
            elements: 1 << 16,
            ntimes: 1,
            threads: None,
        }
    }
}

/// Sustained bandwidth of the four STREAM kernels in GB/s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StreamResult {
    /// Copy kernel bandwidth (GB/s).
    pub copy: f64,
    /// Scale kernel bandwidth (GB/s).
    pub scale: f64,
    /// Add kernel bandwidth (GB/s).
    pub add: f64,
    /// Triad kernel bandwidth (GB/s).
    pub triad: f64,
}

impl StreamResult {
    /// The bandwidth figure used as `β` in the Roofline model: the Triad
    /// rate (the paper quotes Triad as the per-socket sustainable
    /// bandwidth).
    pub fn beta_gbps(&self) -> f64 {
        self.triad
    }

    /// The best rate across all four kernels.
    pub fn best_gbps(&self) -> f64 {
        self.copy.max(self.scale).max(self.add).max(self.triad)
    }
}

fn timed_best<F: FnMut()>(ntimes: usize, bytes: f64, mut kernel: F) -> f64 {
    // One untimed warm-up pass, as in the reference STREAM benchmark, so the
    // first timed iteration does not pay for page faults or a cold TLB.
    kernel();
    let mut best = f64::MAX;
    for _ in 0..ntimes.max(1) {
        let t = Instant::now();
        kernel();
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
    }
    bytes / best / 1e9
}

fn run_kernels(config: &StreamConfig) -> StreamResult {
    let n = config.elements.max(1024);
    let scalar = 3.0f64;
    let mut a = vec![1.0f64; n];
    let mut b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];

    let copy = timed_best(config.ntimes, 16.0 * n as f64, || {
        c.par_iter_mut()
            .zip(a.par_iter())
            .for_each(|(ci, &ai)| *ci = ai);
    });
    let scale = timed_best(config.ntimes, 16.0 * n as f64, || {
        b.par_iter_mut()
            .zip(c.par_iter())
            .for_each(|(bi, &ci)| *bi = scalar * ci);
    });
    let add = timed_best(config.ntimes, 24.0 * n as f64, || {
        c.par_iter_mut()
            .zip(a.par_iter().zip(b.par_iter()))
            .for_each(|(ci, (&ai, &bi))| *ci = ai + bi);
    });
    let triad = timed_best(config.ntimes, 24.0 * n as f64, || {
        a.par_iter_mut()
            .zip(b.par_iter().zip(c.par_iter()))
            .for_each(|(ai, (&bi, &ci))| *ai = bi + scalar * ci);
    });
    // Defeat dead-code elimination of the arrays.
    let checksum: f64 = a[0] + b[n / 2] + c[n - 1];
    assert!(checksum.is_finite());

    StreamResult {
        copy,
        scale,
        add,
        triad,
    }
}

/// Runs the STREAM benchmark with the given configuration.
pub fn run(config: &StreamConfig) -> StreamResult {
    match config.threads {
        Some(t) => rayon::ThreadPoolBuilder::new()
            .num_threads(t.max(1))
            .build()
            .expect("failed to build rayon pool")
            .install(|| run_kernels(config)),
        None => run_kernels(config),
    }
}

/// Runs STREAM with the default configuration (the Table V measurement).
pub fn measure() -> StreamResult {
    run(&StreamConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_positive_bandwidths() {
        let r = run(&StreamConfig::tiny());
        for v in [r.copy, r.scale, r.add, r.triad] {
            assert!(
                v.is_finite() && v > 0.0,
                "bandwidth must be positive, got {v}"
            );
            // Sanity: no machine moves more than 10 TB/s from DRAM-ish
            // buffers, and even a tiny VM should exceed 0.01 GB/s.
            assert!(v < 10_000.0 && v > 0.01);
        }
        assert!(r.beta_gbps() > 0.0);
        assert!(r.best_gbps() >= r.triad);
    }

    #[test]
    fn single_thread_run_works() {
        let cfg = StreamConfig {
            elements: 1 << 16,
            ntimes: 1,
            threads: Some(1),
        };
        let r = run(&cfg);
        assert!(r.copy > 0.0 && r.triad > 0.0);
    }

    #[test]
    fn default_config_is_larger_than_quick() {
        let d = StreamConfig::default();
        let q = StreamConfig::quick();
        assert!(d.elements > q.elements);
        assert!(d.ntimes >= q.ntimes);
        assert!(q.elements > StreamConfig::tiny().elements);
    }
}
