//! Algebraic multigrid setup: a hierarchy of Galerkin triple products.
//!
//! Builds the 5-point finite-difference Laplacian on a 2-D grid, then
//! repeatedly coarsens it: aggregation produces a piecewise-constant
//! prolongation `P` and the coarse operator is the Galerkin product
//! `Pᵀ·A·P` — two SpGEMMs per level, the classic scientific-computing use of
//! sparse matrix–matrix multiplication.
//!
//! ```bash
//! cargo run --release --example amg_galerkin
//! ```

use std::time::Instant;

use pb_spgemm_suite::graph::{coarsen, SpGemm};
use pb_spgemm_suite::prelude::*;
use pb_spgemm_suite::sparse::Coo;

/// 5-point Laplacian on a `k × k` grid (Dirichlet boundary).
fn laplacian_2d(k: usize) -> Csr<f64> {
    let n = k * k;
    let idx = |i: usize, j: usize| i * k + j;
    let mut entries = Vec::with_capacity(5 * n);
    for i in 0..k {
        for j in 0..k {
            let v = idx(i, j);
            entries.push((v, v, 4.0));
            if i > 0 {
                entries.push((v, idx(i - 1, j), -1.0));
            }
            if i + 1 < k {
                entries.push((v, idx(i + 1, j), -1.0));
            }
            if j > 0 {
                entries.push((v, idx(i, j - 1), -1.0));
            }
            if j + 1 < k {
                entries.push((v, idx(i, j + 1), -1.0));
            }
        }
    }
    Coo::from_entries(n, n, entries)
        .expect("grid indices are in bounds")
        .to_csr()
}

fn main() {
    let grid = 96usize; // 9216 unknowns on the finest level
    let mut a = laplacian_2d(grid);
    let engine = SpGemm::pb();

    println!(
        "AMG setup with {} on a {grid}x{grid} Poisson problem\n",
        engine.name()
    );
    println!(
        "{:<7} {:>9} {:>11} {:>8} {:>8} {:>10}",
        "level", "unknowns", "nnz", "avg nnz", "cf", "setup ms"
    );
    println!(
        "{:<7} {:>9} {:>11} {:>8.2} {:>8} {:>10}",
        0,
        a.nrows(),
        a.nnz(),
        a.avg_degree(),
        "-",
        "-"
    );

    let mut level = 0usize;
    while a.nrows() > 32 && level < 8 {
        level += 1;
        let stats = MultiplyStats::compute(&a, &a);
        let start = Instant::now();
        let coarse_level = coarsen(&a, &engine);
        let elapsed = start.elapsed();
        a = coarse_level.coarse;
        println!(
            "{:<7} {:>9} {:>11} {:>8.2} {:>8.2} {:>10.2}",
            level,
            a.nrows(),
            a.nnz(),
            a.avg_degree(),
            stats.cf,
            elapsed.as_secs_f64() * 1e3
        );
    }

    // Sanity: the coarsest operator is still symmetric with near-zero
    // interior row sums, i.e. the Galerkin products preserved the Laplacian
    // structure all the way down.
    assert!(ops::pattern_is_symmetric(&a));
    let nontrivial_rows = ops::row_sums(&a).iter().filter(|s| s.abs() > 1e-8).count();
    println!(
        "\ncoarsest operator: {} unknowns, {} rows carry boundary contributions",
        a.nrows(),
        nontrivial_rows
    );
}
