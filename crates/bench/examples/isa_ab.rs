//! Within-run A/B of the sort-phase ISA dispatch levels.
//!
//! Criterion's statistics are unusable on a noisy 1-core container, and
//! *cross-process* run-to-run drift on shared hosts dwarfs the effects under
//! test — so this harness interleaves every dispatch level in the *same*
//! process, round-robin, and reports the min-of-N per level.  Min-of-N over
//! interleaved rounds cancels ambient drift: every level sees the same
//! machine weather, and the minimum is the run least disturbed by it.
//!
//! Two surfaces are timed on corpus-shaped keys (19 significant bits, the
//! packed bin-key width the smoke corpus produces — narrow enough for the
//! fused planner's two-pass schedule):
//!
//! * the full library LSD sort ([`sort_slice_with`]) per level, verified
//!   bitwise against the scalar oracle first;
//! * the histogram kernels alone: the per-byte [`simd::byte_histogram`] and
//!   the fused sweep [`simd::fused_histograms`] under its planned schedule.
//!
//! Run with: `cargo run --release -p pb-bench --example isa_ab`

use std::time::Instant;

use pb_spgemm::sort::sort_slice_with;
use pb_spgemm::{simd, Entry, SortAlgorithm};

/// Corpus-shaped workload: 16 Ki entries (a mid-size L2 bin) of 19-bit
/// packed keys declared as 3 key bytes, exactly what the smoke corpus bins
/// produce.
fn workload(n: usize) -> Vec<Entry<f64>> {
    let mut state = 0x1234_5678_9abc_def0u64;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Entry {
                key: state >> 45, // top 19 bits: well-mixed, corpus-width
                val: 1.0,
            }
        })
        .collect()
}

const KEY_BYTES: usize = 3;
const ROUNDS: usize = 400;

fn main() {
    let data = workload(16 * 1024);
    let levels = simd::Isa::supported();

    // Bitwise identity first: timing a wrong kernel is worse than useless.
    let mut oracle = data.clone();
    sort_slice_with(
        &mut oracle,
        KEY_BYTES,
        SortAlgorithm::LsdRadix,
        simd::Isa::Scalar,
    );
    for &isa in &levels {
        let mut d = data.clone();
        sort_slice_with(&mut d, KEY_BYTES, SortAlgorithm::LsdRadix, isa);
        assert_eq!(d, oracle, "{isa} diverged from the scalar oracle");
    }

    // Full LSD sort per level, interleaved min-of-N.
    let mut sort_min = vec![f64::MAX; levels.len()];
    for _ in 0..ROUNDS {
        for (slot, &isa) in levels.iter().enumerate() {
            let mut d = data.clone();
            let t = Instant::now();
            sort_slice_with(&mut d, KEY_BYTES, SortAlgorithm::LsdRadix, isa);
            sort_min[slot] = sort_min[slot].min(t.elapsed().as_secs_f64());
            std::hint::black_box(&d);
        }
    }
    println!(
        "lsd sort, {} entries, {}-byte keys (min of {ROUNDS}):",
        data.len(),
        KEY_BYTES
    );
    for (slot, &isa) in levels.iter().enumerate() {
        println!("  {:8} {:8.1} us", isa.name(), sort_min[slot] * 1e6);
    }

    // Histogram kernels alone: one per-byte pass vs the whole fused sweep.
    let bits = simd::key_bits_scalar(&data);
    let plan = simd::plan_lsd(bits, simd::FUSED_MAX_DIGIT_BITS)
        .expect("corpus-width keys must be fusable");
    let mut byte_min = vec![f64::MAX; levels.len()];
    let mut fused_min = vec![f64::MAX; levels.len()];
    let mut tables: Box<simd::FusedTables> =
        Box::new([[0; simd::FUSED_RADIX]; simd::FUSED_MAX_PASSES]);
    for _ in 0..ROUNDS {
        for (slot, &isa) in levels.iter().enumerate() {
            let mut ctr = simd::KernelCounters::default();
            let t = Instant::now();
            let counts = simd::byte_histogram(isa, &data, 8, &mut ctr);
            byte_min[slot] = byte_min[slot].min(t.elapsed().as_secs_f64());
            std::hint::black_box(&counts);

            for row in tables.iter_mut() {
                row.fill(0);
            }
            let t = Instant::now();
            simd::fused_histograms(isa, &data, &plan, &mut tables, &mut ctr);
            fused_min[slot] = fused_min[slot].min(t.elapsed().as_secs_f64());
            std::hint::black_box(&tables);
        }
    }
    println!(
        "histograms ({bits}-bit keys -> {} passes of {} bits; min of {ROUNDS}):",
        plan.passes, plan.digit_bits
    );
    for (slot, &isa) in levels.iter().enumerate() {
        println!(
            "  {:8} one byte pass {:6.1} us | fused sweep {:6.1} us",
            isa.name(),
            byte_min[slot] * 1e6,
            fused_min[slot] * 1e6
        );
    }
}
