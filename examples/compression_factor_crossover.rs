//! The compression-factor crossover: when does PB-SpGEMM stop winning?
//!
//! The paper's conclusions 5 and 6 state that PB-SpGEMM beats the best
//! column-SpGEMM baselines when the compression factor `cf = flop / nnz(C)`
//! is below ≈4, and that HashSpGEMM takes over for larger `cf` (because the
//! expand–sort–compress strategy has to move all `flop` tuples through
//! memory while a hash accumulator touches only `nnz(C)` slots).  This
//! example sweeps the density of ER matrices — `cf` grows roughly with the
//! edge factor — and prints the runtime ratio so the crossover is visible.
//!
//! ```bash
//! cargo run --release --example compression_factor_crossover
//! ```

use std::time::Instant;

use pb_spgemm_suite::prelude::*;

fn time<F: FnMut() -> Csr<f64>>(mut f: F) -> (f64, Csr<f64>) {
    // One warm-up, then the median of three runs.
    let _ = f();
    let mut times = Vec::new();
    let mut out = None;
    for _ in 0..3 {
        let start = Instant::now();
        let c = f();
        times.push(start.elapsed().as_secs_f64());
        out = Some(c);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[1], out.expect("three runs produce a result"))
}

fn main() {
    let scale = 13u32; // 8K x 8K matrices
    println!("squaring ER matrices of scale {scale} with growing edge factor\n");
    println!(
        "{:<6} {:>10} {:>8} {:>12} {:>12} {:>10}",
        "ef", "flop", "cf", "PB (ms)", "Hash (ms)", "PB/Hash"
    );

    for ef in [2u32, 4, 8, 16, 32] {
        let a = erdos_renyi_square(scale, ef, 42);
        let stats = MultiplyStats::compute(&a, &a);
        let a_csc = a.to_csc();

        let pb = SpGemm::pb();
        let (t_pb, c_pb) = time(|| pb.multiply_csc(&a_csc, &a));
        let (t_hash, c_hash) = time(|| Baseline::Hash.multiply(&a, &a));
        assert!(reference::csr_approx_eq(&c_pb, &c_hash, 1e-9));

        println!(
            "{:<6} {:>10} {:>8.2} {:>12.1} {:>12.1} {:>10.2}",
            ef,
            stats.flop,
            stats.cf,
            t_pb * 1e3,
            t_hash * 1e3,
            t_pb / t_hash
        );
    }

    println!(
        "\nA ratio below 1.0 means PB-SpGEMM is faster; the paper predicts the \
         crossover around cf ≈ 4 (conclusions 5 and 6)."
    );
}
