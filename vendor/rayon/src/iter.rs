//! Parallel iterators: splittable producers, adaptors, and terminal
//! operations driven over the pool of [`crate::pool`].
//!
//! # How an operation executes
//!
//! Every parallel iterator bottoms out in a [`Producer`] — a splittable
//! description of work (an index range, a slice, a chunk sequence, a vector)
//! with an adaptor stack (`map`, `filter`, `zip`, ...) layered on top as
//! wrapper producers.  A terminal operation (`for_each`, `collect`,
//! `reduce`, ...) splits the producer into roughly `4 × num_threads` blocks
//! of near-equal length, and the pool's participants claim blocks with an
//! atomic cursor and run each block's items through a sequential iterator.
//! Per-block results are combined in block order, so order-sensitive
//! terminals (`collect`, `sum` over floats, `reduce`) are deterministic for
//! a fixed thread count and block count.

use crate::pool::{current_pool, SyncSlot};

// ---------------------------------------------------------------------------
// Producer: splittable work descriptions
// ---------------------------------------------------------------------------

/// A splittable source of items, mirroring rayon's internal `Producer`.
///
/// `len` is exact for indexed sources and an upper bound for filtering
/// adaptors (it is only used to choose split points).
pub trait Producer: Sized + Send {
    /// Item type produced.
    type Item;
    /// Sequential iterator over one block.
    type IntoIter: Iterator<Item = Self::Item>;

    /// Number of items (upper bound for filtering adaptors).
    fn len(&self) -> usize;
    /// True when no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Splits into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Converts this block into a sequential iterator.
    fn into_iter(self) -> Self::IntoIter;
}

/// Marker for producers whose `len` is *exact* and whose `split_at` index
/// equals an item position — the analogue of rayon's
/// `IndexedParallelIterator`.  `filter`/`filter_map` lose this property
/// (their `len` is only an upper bound), so position-sensitive adaptors
/// (`enumerate`, `zip`) are gated on it; accepting a filtered producer
/// there would silently mis-number items split across threads, where real
/// rayon rejects the combination at compile time.
pub trait IndexedProducer: Producer {}

/// Conversion into a parallel iterator; mirrors rayon's trait of the same
/// name.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item;
    /// Producer backing the iterator.
    type Producer: Producer<Item = Self::Item>;
    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Producer>;
}

impl<P: Producer> IntoParallelIterator for ParIter<P> {
    type Item = P::Item;
    type Producer = P;
    fn into_par_iter(self) -> ParIter<P> {
        self
    }
}

macro_rules! impl_range_producer {
    ($($t:ty),*) => {$(
        impl Producer for std::ops::Range<$t> {
            type Item = $t;
            type IntoIter = std::ops::Range<$t>;
            fn len(&self) -> usize {
                if self.end > self.start { (self.end - self.start) as usize } else { 0 }
            }
            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.start + index as $t;
                (self.start..mid, mid..self.end)
            }
            fn into_iter(self) -> Self::IntoIter {
                self
            }
        }

        impl IndexedProducer for std::ops::Range<$t> {}

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Producer = std::ops::Range<$t>;
            fn into_par_iter(self) -> ParIter<Self::Producer> {
                ParIter::new(self)
            }
        }
    )*};
}

impl_range_producer!(usize, u32, u64, i32, i64);

impl<'a, T: Sync> Producer for &'a [T] {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn len(&self) -> usize {
        (**self).len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        (*self).split_at(index)
    }
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a, T: Send> Producer for &'a mut [T] {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn len(&self) -> usize {
        (**self).len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        self.split_at_mut(index)
    }
    fn into_iter(self) -> Self::IntoIter {
        self.iter_mut()
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Producer = &'a [T];
    fn into_par_iter(self) -> ParIter<Self::Producer> {
        ParIter::new(self)
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Producer = &'a mut [T];
    fn into_par_iter(self) -> ParIter<Self::Producer> {
        ParIter::new(self)
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Producer = &'a [T];
    fn into_par_iter(self) -> ParIter<Self::Producer> {
        ParIter::new(self.as_slice())
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    type Producer = &'a mut [T];
    fn into_par_iter(self) -> ParIter<Self::Producer> {
        ParIter::new(self.as_mut_slice())
    }
}

/// Owning producer over a `Vec`; splits via `split_off` (one allocation and
/// memcpy per split — splits are `O(log blocks)` deep, so items move at most
/// a handful of times).
#[derive(Debug)]
pub struct VecProducer<T>(Vec<T>);

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.0.split_off(index);
        (self, VecProducer(tail))
    }
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Producer = VecProducer<T>;
    fn into_par_iter(self) -> ParIter<Self::Producer> {
        ParIter::new(VecProducer(self))
    }
}

/// Producer of contiguous shared chunks (`par_chunks`).
#[derive(Debug)]
pub struct ChunksProducer<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksProducer<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(mid);
        (
            ChunksProducer {
                slice: a,
                size: self.size,
            },
            ChunksProducer {
                slice: b,
                size: self.size,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.slice.chunks(self.size)
    }
}

/// Producer of contiguous mutable chunks (`par_chunks_mut`).
#[derive(Debug)]
pub struct ChunksMutProducer<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutProducer<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (
            ChunksMutProducer {
                slice: a,
                size: self.size,
            },
            ChunksMutProducer {
                slice: b,
                size: self.size,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.size)
    }
}

// ---------------------------------------------------------------------------
// Adaptor producers
// ---------------------------------------------------------------------------

/// `map` adaptor; the closure is cloned into each split half.
#[derive(Debug)]
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, F, U> Producer for Map<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> U + Clone + Send,
{
    type Item = U;
    type IntoIter = std::iter::Map<P::IntoIter, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Map {
                base: a,
                f: self.f.clone(),
            },
            Map { base: b, f: self.f },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.base.into_iter().map(self.f)
    }
}

/// `filter` adaptor (`len` becomes an upper bound).
#[derive(Debug)]
pub struct Filter<P, F> {
    base: P,
    f: F,
}

impl<P, F> Producer for Filter<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Clone + Send,
{
    type Item = P::Item;
    type IntoIter = std::iter::Filter<P::IntoIter, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Filter {
                base: a,
                f: self.f.clone(),
            },
            Filter { base: b, f: self.f },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.base.into_iter().filter(self.f)
    }
}

/// `filter_map` adaptor (`len` becomes an upper bound).
#[derive(Debug)]
pub struct FilterMap<P, F> {
    base: P,
    f: F,
}

impl<P, F, U> Producer for FilterMap<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> Option<U> + Clone + Send,
{
    type Item = U;
    type IntoIter = std::iter::FilterMap<P::IntoIter, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            FilterMap {
                base: a,
                f: self.f.clone(),
            },
            FilterMap { base: b, f: self.f },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        self.base.into_iter().filter_map(self.f)
    }
}

/// `map_init` adaptor: fresh scratch state per block, reused across the
/// block's items (rayon's per-split semantics).
#[derive(Debug)]
pub struct MapInit<P, INIT, F> {
    base: P,
    init: INIT,
    f: F,
}

/// Iterator of one [`MapInit`] block.
#[derive(Debug)]
pub struct MapInitIter<I, T, F> {
    inner: I,
    state: T,
    f: F,
}

impl<I: Iterator, T, U, F: Fn(&mut T, I::Item) -> U> Iterator for MapInitIter<I, T, F> {
    type Item = U;
    fn next(&mut self) -> Option<U> {
        let item = self.inner.next()?;
        Some((self.f)(&mut self.state, item))
    }
}

impl<P, INIT, T, F, U> Producer for MapInit<P, INIT, F>
where
    P: Producer,
    INIT: Fn() -> T + Clone + Send,
    F: Fn(&mut T, P::Item) -> U + Clone + Send,
{
    type Item = U;
    type IntoIter = MapInitIter<P::IntoIter, T, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            MapInit {
                base: a,
                init: self.init.clone(),
                f: self.f.clone(),
            },
            MapInit {
                base: b,
                init: self.init,
                f: self.f,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        MapInitIter {
            inner: self.base.into_iter(),
            state: (self.init)(),
            f: self.f,
        }
    }
}

/// `enumerate` adaptor; each split half knows its global starting index.
#[derive(Debug)]
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

/// Iterator of one [`Enumerate`] block.
#[derive(Debug)]
pub struct EnumerateIter<I> {
    inner: I,
    next_index: usize,
}

impl<I: Iterator> Iterator for EnumerateIter<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let index = self.next_index;
        self.next_index += 1;
        Some((index, item))
    }
}

impl<P: Producer> Producer for Enumerate<P> {
    type Item = (usize, P::Item);
    type IntoIter = EnumerateIter<P::IntoIter>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + index,
            },
        )
    }
    fn into_iter(self) -> Self::IntoIter {
        EnumerateIter {
            inner: self.base.into_iter(),
            next_index: self.offset,
        }
    }
}

/// `zip` adaptor; both sides split at the same index.
#[derive(Debug)]
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }
    fn into_iter(self) -> Self::IntoIter {
        self.a.into_iter().zip(self.b.into_iter())
    }
}

/// `copied` adaptor.
#[derive(Debug)]
pub struct Copied<P>(P);

impl<'a, T, P> Producer for Copied<P>
where
    T: Copy + Sync + 'a,
    P: Producer<Item = &'a T>,
{
    type Item = T;
    type IntoIter = std::iter::Copied<P::IntoIter>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at(index);
        (Copied(a), Copied(b))
    }
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter().copied()
    }
}

/// `cloned` adaptor.
#[derive(Debug)]
pub struct Cloned<P>(P);

impl<'a, T, P> Producer for Cloned<P>
where
    T: Clone + Sync + 'a,
    P: Producer<Item = &'a T>,
{
    type Item = T;
    type IntoIter = std::iter::Cloned<P::IntoIter>;
    fn len(&self) -> usize {
        self.0.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at(index);
        (Cloned(a), Cloned(b))
    }
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter().cloned()
    }
}

impl<T: Sync> IndexedProducer for &[T] {}
impl<T: Send> IndexedProducer for &mut [T] {}
impl<T: Send> IndexedProducer for VecProducer<T> {}
impl<'a, T: Sync> IndexedProducer for ChunksProducer<'a, T> {}
impl<'a, T: Send> IndexedProducer for ChunksMutProducer<'a, T> {}
impl<P, F, U> IndexedProducer for Map<P, F>
where
    P: IndexedProducer,
    F: Fn(P::Item) -> U + Clone + Send,
{
}
impl<P, INIT, T, F, U> IndexedProducer for MapInit<P, INIT, F>
where
    P: IndexedProducer,
    INIT: Fn() -> T + Clone + Send,
    F: Fn(&mut T, P::Item) -> U + Clone + Send,
{
}
impl<P: IndexedProducer> IndexedProducer for Enumerate<P> {}
impl<A: IndexedProducer, B: IndexedProducer> IndexedProducer for Zip<A, B> {}
impl<'a, T, P> IndexedProducer for Copied<P>
where
    T: Copy + Sync + 'a,
    P: IndexedProducer<Item = &'a T>,
{
}
impl<'a, T, P> IndexedProducer for Cloned<P>
where
    T: Clone + Sync + 'a,
    P: IndexedProducer<Item = &'a T>,
{
}

// ---------------------------------------------------------------------------
// The drive: block splitting + pool execution
// ---------------------------------------------------------------------------

/// Blocks per pool thread; a few per thread smooths load imbalance without
/// meaningful claiming overhead (the claim is one `fetch_add`).
const BLOCKS_PER_THREAD: usize = 4;

/// Blocks per pool thread for domain-partitioned operations
/// ([`ParIter::with_domain_boundaries`]).  Finer than
/// [`BLOCKS_PER_THREAD`] so a cross-domain steal (the liveness fallback
/// when a domain's owners stall) moves a small block and the remote
/// fraction of the work stays small — but only 2× finer, because every
/// extra block is an extra fold segment for the consumer (per-segment
/// scratch allocation, and end-of-segment partial flushes that dilute the
/// flush-size telemetry the autotuner reads).
const DOMAIN_BLOCKS_PER_THREAD: usize = 8;

/// Splits `producer` into at most `target` near-equal blocks of at least
/// `min_len` items each.
fn split_blocks<P: Producer>(producer: P, target: usize, min_len: usize) -> Vec<P> {
    let total = producer.len();
    let cap = total.div_ceil(target.max(1)).max(min_len).max(1);
    let mut blocks = Vec::with_capacity(target.max(1));
    let mut stack = vec![producer];
    while let Some(p) = stack.pop() {
        let len = p.len();
        if len <= cap {
            if len > 0 {
                blocks.push(p);
            }
            continue;
        }
        let (a, b) = p.split_at(len / 2);
        stack.push(b);
        stack.push(a);
    }
    // Depth-first left-to-right traversal with `a` pushed last keeps blocks
    // in item order, which order-sensitive terminals rely on.
    blocks
}

/// Runs `consume` over every block of `iter` on the current pool and
/// returns the per-block results in item order.
fn drive<P, R, F>(iter: ParIter<P>, consume: F) -> Vec<R>
where
    P: Producer,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let pool = current_pool();
    if pool.num_threads() <= 1 {
        // Sequential pool: one block, zero overhead, same single-segment
        // semantics the old sequential shim had.
        return vec![consume(iter.producer)];
    }
    // Domain boundaries only engage when well-formed (ascending item
    // indices covering exactly `0..len`) and actually multi-domain;
    // otherwise the plain schedule runs.
    let total = iter.producer.len();
    let bounds_ok = iter.domain_boundaries.as_deref().is_some_and(|b| {
        b.len() > 2
            && b[0] == 0
            && *b.last().unwrap() == total
            && b.windows(2).all(|w| w[0] <= w[1])
    });
    let (blocks, block_bounds) = if bounds_ok {
        let bounds = iter.domain_boundaries.as_deref().unwrap();
        let target = pool.num_threads() * DOMAIN_BLOCKS_PER_THREAD;
        let mut blocks = Vec::new();
        let mut block_bounds = Vec::with_capacity(bounds.len());
        block_bounds.push(0usize);
        let mut rest = iter.producer;
        let mut consumed = 0usize;
        for w in bounds.windows(2) {
            let len = w[1] - w[0];
            let (part, r) = rest.split_at(len);
            rest = r;
            consumed += len;
            if len > 0 {
                // Each domain gets a share of the block budget proportional
                // to its item count, at least one block.
                let share = (target * len).div_ceil(total.max(1)).max(1);
                blocks.extend(split_blocks(part, share, iter.min_len));
            }
            block_bounds.push(blocks.len());
        }
        debug_assert_eq!(consumed, total);
        (blocks, Some(block_bounds))
    } else {
        let blocks = split_blocks(
            iter.producer,
            pool.num_threads() * BLOCKS_PER_THREAD,
            iter.min_len,
        );
        (blocks, None)
    };
    let n = blocks.len();
    if n <= 1 {
        return blocks.into_iter().map(consume).collect();
    }
    let slots: Vec<SyncSlot<P>> = blocks.into_iter().map(SyncSlot::new).collect();
    let results: Vec<SyncSlot<R>> = (0..n).map(|_| SyncSlot::empty()).collect();
    let runner = |i: usize| {
        let block = slots[i].take().expect("block claimed twice");
        results[i].put(consume(block));
    };
    match block_bounds {
        Some(bounds) => pool.run_task_bounded(&bounds, &runner),
        None => pool.run_task(n, &runner),
    }
    results
        .into_iter()
        .map(|slot| slot.take().expect("block never produced a result"))
        .collect()
}

/// Executes boxed scope jobs in parallel (used by [`crate::pool::scope`]).
pub(crate) fn run_boxed_jobs<'scope>(
    jobs: Vec<crate::pool::ScopeJob<'scope>>,
    scope: &crate::pool::Scope<'scope>,
) {
    jobs.into_par_iter().for_each(|job| job(scope));
}

// ---------------------------------------------------------------------------
// ParIter: the user-facing parallel iterator
// ---------------------------------------------------------------------------

/// A parallel iterator over a splittable [`Producer`].
#[derive(Debug)]
pub struct ParIter<P> {
    producer: P,
    min_len: usize,
    domain_boundaries: Option<Vec<usize>>,
}

impl<P: Producer> ParIter<P> {
    fn new(producer: P) -> Self {
        ParIter {
            producer,
            min_len: 1,
            domain_boundaries: None,
        }
    }

    /// Requires blocks of at least `min` items (splitting granularity hint).
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = min.max(1);
        self
    }

    /// Accepted for API compatibility; the block count is already bounded by
    /// `4 × num_threads`, so a maximum-length hint has nothing to cap.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    /// Partitions the items into per-NUMA-domain ranges at the given
    /// cumulative item indices (`D + 1` ascending values from 0 to the item
    /// count): blocks of range `d` are claimed by the pool's domain-`d`
    /// workers first and only stolen cross-domain as a liveness fallback
    /// (a vendored addition; real rayon has no equivalent).
    ///
    /// Purely a *scheduling* hint — results, their order, and fold
    /// segmentation semantics are unaffected.  Malformed boundaries (not
    /// ascending, not spanning exactly the item range) are ignored.
    pub fn with_domain_boundaries(mut self, boundaries: Vec<usize>) -> Self {
        self.domain_boundaries = Some(boundaries);
        self
    }

    /// Maps each item through `f`.
    pub fn map<U, F>(self, f: F) -> ParIter<Map<P, F>>
    where
        F: Fn(P::Item) -> U + Clone + Send,
    {
        ParIter {
            producer: Map {
                base: self.producer,
                f,
            },
            min_len: self.min_len,
            domain_boundaries: self.domain_boundaries,
        }
    }

    /// Keeps only items for which `f` returns true.
    pub fn filter<F>(self, f: F) -> ParIter<Filter<P, F>>
    where
        F: Fn(&P::Item) -> bool + Clone + Send,
    {
        ParIter {
            producer: Filter {
                base: self.producer,
                f,
            },
            min_len: self.min_len,
            domain_boundaries: self.domain_boundaries,
        }
    }

    /// Combined filter and map.
    pub fn filter_map<U, F>(self, f: F) -> ParIter<FilterMap<P, F>>
    where
        F: Fn(P::Item) -> Option<U> + Clone + Send,
    {
        ParIter {
            producer: FilterMap {
                base: self.producer,
                f,
            },
            min_len: self.min_len,
            domain_boundaries: self.domain_boundaries,
        }
    }

    /// Maps with per-block scratch state: `init` runs once per block, `f`
    /// reuses the state for every item of that block.
    pub fn map_init<T, U, INIT, F>(self, init: INIT, f: F) -> ParIter<MapInit<P, INIT, F>>
    where
        INIT: Fn() -> T + Clone + Send,
        F: Fn(&mut T, P::Item) -> U + Clone + Send,
    {
        ParIter {
            producer: MapInit {
                base: self.producer,
                init,
                f,
            },
            min_len: self.min_len,
            domain_boundaries: self.domain_boundaries,
        }
    }

    /// Pairs each item with its index.  Requires an indexed producer
    /// ([`IndexedProducer`]): enumerating a filtered iterator would assign
    /// wrong indices once the work splits across threads.
    pub fn enumerate(self) -> ParIter<Enumerate<P>>
    where
        P: IndexedProducer,
    {
        ParIter {
            producer: Enumerate {
                base: self.producer,
                offset: 0,
            },
            min_len: self.min_len,
            domain_boundaries: self.domain_boundaries,
        }
    }

    /// Zips with another (into-)parallel iterator; both sides must be
    /// indexed (exact `len`), which every producer here except `filter`'s
    /// satisfies.
    pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> ParIter<Zip<P, Z::Producer>>
    where
        P: IndexedProducer,
        Z::Producer: IndexedProducer,
    {
        ParIter {
            producer: Zip {
                a: self.producer,
                b: other.into_par_iter().producer,
            },
            min_len: self.min_len,
            domain_boundaries: self.domain_boundaries,
        }
    }

    /// Copies items out of references.
    pub fn copied<'a, T>(self) -> ParIter<Copied<P>>
    where
        T: Copy + Sync + 'a,
        P: Producer<Item = &'a T>,
    {
        ParIter {
            producer: Copied(self.producer),
            min_len: self.min_len,
            domain_boundaries: self.domain_boundaries,
        }
    }

    /// Clones items out of references.
    pub fn cloned<'a, T>(self) -> ParIter<Cloned<P>>
    where
        T: Clone + Sync + 'a,
        P: Producer<Item = &'a T>,
    {
        ParIter {
            producer: Cloned(self.producer),
            min_len: self.min_len,
            domain_boundaries: self.domain_boundaries,
        }
    }

    /// Calls `f` on every item, in parallel across blocks.
    pub fn for_each<F>(self, f: F)
    where
        P::Item: Send,
        F: Fn(P::Item) + Sync,
    {
        drive(self, |block| {
            for item in block.into_iter() {
                f(item);
            }
        });
    }

    /// Rayon-style fold: one accumulator per block, returned as a new
    /// parallel iterator over the accumulators.  On a single-thread pool
    /// this degenerates to exactly one segment.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<VecProducer<T>>
    where
        P::Item: Send,
        T: Send,
        ID: Fn() -> T + Sync,
        F: Fn(T, P::Item) -> T + Sync,
    {
        let accs = drive(self, |block| {
            let mut acc = identity();
            for item in block.into_iter() {
                acc = fold_op(acc, item);
            }
            acc
        });
        ParIter::new(VecProducer(accs))
    }

    /// Rayon-style reduce with an identity constructor: blocks reduce in
    /// parallel, block results combine in item order.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> P::Item
    where
        P::Item: Send,
        ID: Fn() -> P::Item + Sync,
        F: Fn(P::Item, P::Item) -> P::Item + Sync,
    {
        let partials = drive(self, |block| {
            let mut acc = identity();
            for item in block.into_iter() {
                acc = op(acc, item);
            }
            acc
        });
        partials.into_iter().fold(identity(), &op)
    }

    /// Reduces without an identity; `None` on an empty iterator.
    pub fn reduce_with<F>(self, op: F) -> Option<P::Item>
    where
        P::Item: Send,
        F: Fn(P::Item, P::Item) -> P::Item + Sync,
    {
        drive(self, |block| block.into_iter().reduce(&op))
            .into_iter()
            .flatten()
            .reduce(op)
    }

    /// Collects into any [`FromIterator`] container, preserving item order.
    pub fn collect<C: FromIterator<P::Item>>(self) -> C
    where
        P::Item: Send,
    {
        let parts: Vec<Vec<P::Item>> = drive(self, |block| block.into_iter().collect());
        parts.into_iter().flatten().collect()
    }

    /// Sums the items (blocks in parallel, block sums in item order).
    pub fn sum<S>(self) -> S
    where
        P::Item: Send,
        S: Send + std::iter::Sum<P::Item> + std::iter::Sum<S>,
    {
        drive(self, |block| block.into_iter().sum::<S>())
            .into_iter()
            .sum()
    }

    /// Number of items.
    pub fn count(self) -> usize
    where
        P::Item: Send,
    {
        drive(self, |block| block.into_iter().count())
            .into_iter()
            .sum()
    }

    /// Minimum item, if any.
    pub fn min(self) -> Option<P::Item>
    where
        P::Item: Ord + Send,
    {
        drive(self, |block| block.into_iter().min())
            .into_iter()
            .flatten()
            .min()
    }

    /// Maximum item, if any.
    pub fn max(self) -> Option<P::Item>
    where
        P::Item: Ord + Send,
    {
        drive(self, |block| block.into_iter().max())
            .into_iter()
            .flatten()
            .max()
    }

    /// Minimum by a comparison function (first minimum on ties).
    pub fn min_by<F>(self, compare: F) -> Option<P::Item>
    where
        P::Item: Send,
        F: Fn(&P::Item, &P::Item) -> std::cmp::Ordering + Sync,
    {
        drive(self, |block| block.into_iter().min_by(|a, b| compare(a, b)))
            .into_iter()
            .flatten()
            .min_by(|a, b| compare(a, b))
    }

    /// Maximum by a comparison function (last maximum on ties).
    pub fn max_by<F>(self, compare: F) -> Option<P::Item>
    where
        P::Item: Send,
        F: Fn(&P::Item, &P::Item) -> std::cmp::Ordering + Sync,
    {
        drive(self, |block| block.into_iter().max_by(|a, b| compare(a, b)))
            .into_iter()
            .flatten()
            .max_by(|a, b| compare(a, b))
    }

    /// True if `f` holds for every item (early-exits across blocks).
    pub fn all<F>(self, f: F) -> bool
    where
        P::Item: Send,
        F: Fn(P::Item) -> bool + Sync,
    {
        use std::sync::atomic::{AtomicBool, Ordering};
        let failed = AtomicBool::new(false);
        drive(self, |block| {
            for item in block.into_iter() {
                if failed.load(Ordering::Relaxed) {
                    return;
                }
                if !f(item) {
                    failed.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });
        !failed.load(Ordering::Relaxed)
    }

    /// True if `f` holds for any item (early-exits across blocks).
    pub fn any<F>(self, f: F) -> bool
    where
        P::Item: Send,
        F: Fn(P::Item) -> bool + Sync,
    {
        use std::sync::atomic::{AtomicBool, Ordering};
        let found = AtomicBool::new(false);
        drive(self, |block| {
            for item in block.into_iter() {
                if found.load(Ordering::Relaxed) {
                    return;
                }
                if f(item) {
                    found.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });
        found.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Slice extension traits
// ---------------------------------------------------------------------------

/// `par_iter`/`par_chunks` on shared slices (and, via deref, `Vec`s and
/// arrays); mirrors rayon's `ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over shared references to the elements.
    fn par_iter(&self) -> ParIter<&[T]>;
    /// Parallel iterator over contiguous chunks of `chunk_size`.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&[T]> {
        ParIter::new(self)
    }
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParIter::new(ChunksProducer {
            slice: self,
            size: chunk_size,
        })
    }
}

/// `par_iter_mut`/`par_chunks_mut`/`par_sort*` on mutable slices; mirrors
/// rayon's `ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable references to the elements.
    fn par_iter_mut(&mut self) -> ParIter<&mut [T]>;
    /// Parallel iterator over contiguous mutable chunks of `chunk_size`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>>;
    /// Parallel unstable sort.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Parallel unstable sort by key.
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
    /// Parallel unstable sort by comparator.
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut [T]> {
        ParIter::new(self)
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutProducer<'_, T>> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParIter::new(ChunksMutProducer {
            slice: self,
            size: chunk_size,
        })
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_quicksort(self, &|a, b| a.cmp(b), par_sort_depth());
    }
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_quicksort(self, &|a, b| f(a).cmp(&f(b)), par_sort_depth());
    }
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        par_quicksort(self, &compare, par_sort_depth());
    }
}

/// Below this length a sub-slice is sorted sequentially.
const PAR_SORT_SEQ_LIMIT: usize = 4096;

/// Recursion depth that yields roughly `4 × threads` leaf tasks.
fn par_sort_depth() -> u32 {
    let threads = crate::pool::current_num_threads();
    usize::BITS - (threads * BLOCKS_PER_THREAD).leading_zeros()
}

/// In-place parallel quicksort: partition, then sort the two halves with
/// [`crate::pool::join`].  Median-of-three pivot selection; safe swaps only,
/// so a panicking comparator leaves a valid (partially permuted) slice.
fn par_quicksort<T: Send, F>(v: &mut [T], compare: &F, depth: u32)
where
    F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
{
    if depth == 0 || v.len() <= PAR_SORT_SEQ_LIMIT {
        v.sort_unstable_by(|a, b| compare(a, b));
        return;
    }
    let pivot_index = partition(v, compare);
    let (lo, rest) = v.split_at_mut(pivot_index);
    let (_pivot, hi) = rest.split_at_mut(1);
    crate::pool::join(
        || par_quicksort(lo, compare, depth - 1),
        || par_quicksort(hi, compare, depth - 1),
    );
}

/// Lomuto partition with a median-of-three pivot; returns the pivot's final
/// index.
fn partition<T, F>(v: &mut [T], compare: &F) -> usize
where
    F: Fn(&T, &T) -> std::cmp::Ordering,
{
    use std::cmp::Ordering::Less;
    let len = v.len();
    let mid = len / 2;
    // Order v[0] <= v[mid] <= v[len-1] under `compare`, then use the median
    // (now at `mid`) as the pivot by parking it at the end.
    if compare(&v[mid], &v[0]) == Less {
        v.swap(mid, 0);
    }
    if compare(&v[len - 1], &v[mid]) == Less {
        v.swap(len - 1, mid);
        if compare(&v[mid], &v[0]) == Less {
            v.swap(mid, 0);
        }
    }
    v.swap(mid, len - 1);
    let mut store = 0;
    for i in 0..len - 1 {
        if compare(&v[i], &v[len - 1]) == Less {
            v.swap(i, store);
            store += 1;
        }
    }
    v.swap(store, len - 1);
    store
}
