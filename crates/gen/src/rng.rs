//! Small, fast, deterministic pseudo-random number generators.
//!
//! The workspace needs bit-reproducible matrices across platforms and thread
//! counts, so instead of depending on an external RNG crate the generators
//! use two tiny, well-known generators implemented here:
//!
//! * [`SplitMix64`] — a 64-bit mixer used to derive independent seeds (one
//!   per column / edge block), so parallel generation is deterministic;
//! * [`Xoshiro256pp`] — xoshiro256++ by Blackman & Vigna, the workhorse
//!   stream generator.

/// SplitMix64: a tiny 64-bit generator mainly used for seeding.
///
/// Every call advances an internal counter by a fixed odd constant and
/// returns a strongly mixed output, so consecutive outputs (and outputs from
/// nearby seeds) are decorrelated — exactly what is needed to derive
/// per-column seeds from `(seed, column)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Mixes `seed` and `stream` into a single decorrelated 64-bit value.
    ///
    /// Used to derive the seed of a per-column or per-block generator from a
    /// global seed: `mix(seed, column_index)`.
    #[inline]
    pub fn mix(seed: u64, stream: u64) -> u64 {
        let mut sm = SplitMix64::new(seed ^ stream.wrapping_mul(0xA24BAED4963EE407));
        // Discard one output so that streams 0 and 1 of seed 0 do not share
        // the trivial prefix.
        let _ = sm.next_u64();
        sm.next_u64()
    }
}

/// xoshiro256++ 1.0 — a fast general-purpose generator with 256-bit state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator, expanding the 64-bit seed with SplitMix64 (the
    /// procedure recommended by the xoshiro authors).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Xoshiro256pp { s }
    }

    /// Creates a generator for logical stream `stream` of `seed`.
    pub fn from_stream(seed: u64, stream: u64) -> Self {
        Xoshiro256pp::new(SplitMix64::mix(seed, stream))
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper bits of the 64-bit output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift method
    /// (with rejection to remove modulo bias).
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            let j = self.gen_index(i + 1);
            data.swap(i, j);
        }
    }

    /// Samples `k` distinct values from `0..n` (k ≤ n).
    ///
    /// Uses Floyd's algorithm: O(k) expected time and memory even when
    /// `k ≪ n`, which is the common case for sparse columns.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.gen_index(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Known first output of SplitMix64 with seed 0 (reference value from
        // the public-domain reference implementation).
        let mut z = SplitMix64::new(0);
        assert_eq!(z.next_u64(), 0xE220A8397B1DCDAF);
    }

    #[test]
    fn streams_are_decorrelated() {
        let a = SplitMix64::mix(7, 0);
        let b = SplitMix64::mix(7, 1);
        let c = SplitMix64::mix(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn xoshiro_reproducible_across_instances() {
        let mut a = Xoshiro256pp::new(123);
        let mut b = Xoshiro256pp::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256pp::new(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_outputs_are_in_unit_interval_and_spread_out() {
        let mut rng = Xoshiro256pp::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!(
            (mean - 0.5).abs() < 0.02,
            "mean {mean} should be close to 0.5"
        );
    }

    #[test]
    fn gen_range_is_unbiased_enough_and_in_bounds() {
        let mut rng = Xoshiro256pp::new(77);
        let bound = 10u64;
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let v = rng.gen_range(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; allow 10% slack.
            assert!(
                (9_000..=11_000).contains(&c),
                "bucket count {c} too far from uniform"
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gen_range_rejects_zero_bound() {
        Xoshiro256pp::new(1).gen_range(0);
    }

    #[test]
    fn sample_distinct_produces_distinct_in_range_values() {
        let mut rng = Xoshiro256pp::new(5);
        for &(n, k) in &[(10usize, 10usize), (1000, 10), (50, 0), (1, 1)] {
            let s = rng.sample_distinct(n, k);
            assert_eq!(s.len(), k);
            assert!(s.iter().all(|&v| v < n));
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), k, "sample contains duplicates: {s:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::new(11);
        let mut data: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            data,
            (0..100).collect::<Vec<u32>>(),
            "shuffle should change order"
        );
    }

    #[test]
    fn from_stream_differs_between_streams() {
        let mut a = Xoshiro256pp::from_stream(1, 0);
        let mut b = Xoshiro256pp::from_stream(1, 1);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }
}
