//! Workload construction: the matrix families the paper evaluates on.

use pb_gen::{erdos_renyi_square, rmat_square, standin_scaled};
use pb_sparse::stats::MultiplyStats;
use pb_sparse::{Csc, Csr};

/// One multiplication workload: square the matrix `a` (the paper squares
/// every matrix; `a_csc` is the column-wise copy PB-SpGEMM needs).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name (e.g. `"ER s=16 ef=8"` or a Table VI matrix name).
    pub name: String,
    /// The matrix in CSR (used by the column baselines and as `B`).
    pub a: Csr<f64>,
    /// The matrix in CSC (used as `A` by PB-SpGEMM).
    pub a_csc: Csc<f64>,
    /// Multiplication statistics (flop, nnz(C), cf).
    pub stats: MultiplyStats,
}

impl Workload {
    /// Builds a workload (and its statistics) from a CSR matrix.
    pub fn from_matrix(name: impl Into<String>, a: Csr<f64>) -> Self {
        let stats = MultiplyStats::compute(&a, &a);
        let a_csc = a.to_csc();
        Workload {
            name: name.into(),
            a,
            a_csc,
            stats,
        }
    }
}

/// A named set of workloads (one figure's x-axis).
#[derive(Debug, Clone, Default)]
pub struct WorkloadSet {
    /// The workloads in presentation order.
    pub workloads: Vec<Workload>,
}

impl WorkloadSet {
    /// Adds a workload.
    pub fn push(&mut self, w: Workload) {
        self.workloads.push(w);
    }

    /// Iterates over the workloads.
    pub fn iter(&self) -> impl Iterator<Item = &Workload> {
        self.workloads.iter()
    }

    /// Number of workloads.
    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }
}

/// An Erdős–Rényi squaring workload at the given scale / edge factor.
pub fn er_matrix(scale: u32, edge_factor: u32, seed: u64) -> Workload {
    Workload::from_matrix(
        format!("ER s={scale} ef={edge_factor}"),
        erdos_renyi_square(scale, edge_factor, seed),
    )
}

/// A Graph500 R-MAT squaring workload at the given scale / edge factor.
pub fn rmat_matrix(scale: u32, edge_factor: u32, seed: u64) -> Workload {
    Workload::from_matrix(
        format!("RMAT s={scale} ef={edge_factor}"),
        rmat_square(scale, edge_factor, seed),
    )
}

/// A Table VI stand-in squaring workload, scaled to `fraction` of the
/// original dimension.
pub fn standin_matrix(name: &str, fraction: f64, seed: u64) -> Workload {
    Workload::from_matrix(name.to_string(), standin_scaled(name, fraction, seed))
}

/// The ER workload grid of Fig. 7 (scales × edge factors), sized for the
/// current machine.
pub fn fig7_grid(quick: bool) -> Vec<(u32, u32)> {
    let (scales, efs): (Vec<u32>, Vec<u32>) = if quick {
        (vec![11, 12], vec![4, 8])
    } else {
        (vec![13, 14, 15, 16], vec![4, 8, 16])
    };
    let mut grid = Vec::new();
    for &s in &scales {
        for &e in &efs {
            grid.push((s, e));
        }
    }
    grid
}

/// The fraction at which Table VI stand-ins are generated: full size on big
/// machines is unnecessary for shape reproduction, so the harness uses a
/// fraction that keeps every squaring under ~100 M flop.
pub fn standin_fraction(quick: bool) -> f64 {
    if quick {
        0.01
    } else {
        std::env::var("PB_BENCH_STANDIN_FRACTION")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.0625)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_workload_carries_consistent_stats() {
        let w = er_matrix(8, 4, 1);
        assert_eq!(w.a.nrows(), 256);
        assert_eq!(w.stats.nnz_a, w.a.nnz());
        assert!(w.stats.flop > 0);
        assert_eq!(w.a_csc.nnz(), w.a.nnz());
        assert!(w.name.contains("ER"));
    }

    #[test]
    fn grids_and_sets() {
        assert_eq!(fig7_grid(true).len(), 4);
        assert_eq!(fig7_grid(false).len(), 12);
        let mut set = WorkloadSet::default();
        assert!(set.is_empty());
        set.push(er_matrix(7, 4, 2));
        set.push(rmat_matrix(7, 4, 2));
        assert_eq!(set.len(), 2);
        assert!(set.iter().any(|w| w.name.contains("RMAT")));
    }

    #[test]
    fn standin_workload_scales_down() {
        let w = standin_matrix("scircuit", 0.01, 3);
        assert!(w.a.nrows() < 10_000);
        assert!(w.stats.cf > 1.0);
        assert!(standin_fraction(true) < standin_fraction(false));
    }
}
