//! Erdős–Rényi random sparse matrices.
//!
//! The paper's ER matrices have exactly `d` nonzeros *uniformly distributed
//! in each column* (Sec. II-A), which makes the expected compression factor
//! of `A²` close to 1 and the flop count almost exactly `n·d²`.  The
//! generator reproduces that construction: for every column it samples `d`
//! distinct row indices uniformly at random.

use rayon::prelude::*;

use pb_sparse::{Coo, Csc, Csr, Index};

use crate::rng::Xoshiro256pp;
use crate::ScaleSpec;

/// Configuration of the ER generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErConfig {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Nonzeros per column (clamped to `nrows`).
    pub nnz_per_col: usize,
    /// RNG seed.
    pub seed: u64,
    /// If `true`, values are uniform in `[0, 1)`; otherwise every stored
    /// value is `1.0`.
    pub random_values: bool,
}

impl ErConfig {
    /// Square ER matrix in Graph500 `scale`/`edge_factor` notation.
    pub fn from_scale(spec: ScaleSpec, seed: u64) -> Self {
        ErConfig {
            nrows: spec.dim(),
            ncols: spec.dim(),
            nnz_per_col: spec.edge_factor as usize,
            seed,
            random_values: true,
        }
    }
}

/// Generates an ER matrix in COO form (exactly `nnz_per_col` entries per
/// column, no duplicates).
pub fn erdos_renyi_coo(config: &ErConfig) -> Coo<f64> {
    let d = config.nnz_per_col.min(config.nrows);
    let per_column: Vec<(Vec<Index>, Vec<f64>)> = (0..config.ncols)
        .into_par_iter()
        .map(|j| {
            let mut rng = Xoshiro256pp::from_stream(config.seed, j as u64);
            let mut rows: Vec<Index> = rng
                .sample_distinct(config.nrows, d)
                .into_iter()
                .map(|r| r as Index)
                .collect();
            rows.sort_unstable();
            let vals: Vec<f64> = if config.random_values {
                rows.iter().map(|_| rng.next_f64()).collect()
            } else {
                vec![1.0; rows.len()]
            };
            (rows, vals)
        })
        .collect();

    let nnz = per_column.iter().map(|(r, _)| r.len()).sum();
    let mut rows = Vec::with_capacity(nnz);
    let mut cols = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for (j, (r, v)) in per_column.into_iter().enumerate() {
        cols.extend(std::iter::repeat_n(j as Index, r.len()));
        rows.extend(r);
        vals.extend(v);
    }
    Coo::from_parts_unchecked(config.nrows, config.ncols, rows, cols, vals)
}

/// Generates an ER matrix in CSR form.
pub fn erdos_renyi(config: &ErConfig) -> Csr<f64> {
    erdos_renyi_coo(config).to_csr()
}

/// Generates an ER matrix in CSC form (the layout PB-SpGEMM wants for `A`).
pub fn erdos_renyi_csc(config: &ErConfig) -> Csc<f64> {
    erdos_renyi_coo(config).to_csc()
}

/// Convenience: square ER matrix of dimension `2^scale` with `edge_factor`
/// nonzeros per column, random values.
pub fn erdos_renyi_square(scale: u32, edge_factor: u32, seed: u64) -> Csr<f64> {
    erdos_renyi(&ErConfig::from_scale(
        ScaleSpec::new(scale, edge_factor),
        seed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_sparse::stats::MultiplyStats;

    #[test]
    fn every_column_has_exactly_d_nonzeros() {
        let cfg = ErConfig {
            nrows: 256,
            ncols: 256,
            nnz_per_col: 8,
            seed: 1,
            random_values: true,
        };
        let m = erdos_renyi_csc(&cfg);
        assert_eq!(m.nnz(), 256 * 8);
        for j in 0..m.ncols() {
            assert_eq!(m.col_nnz(j), 8, "column {j} does not have d nonzeros");
            // No duplicate rows within a column.
            let (rows, _) = m.col(j);
            assert!(rows.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn d_larger_than_nrows_is_clamped() {
        let cfg = ErConfig {
            nrows: 4,
            ncols: 6,
            nnz_per_col: 10,
            seed: 2,
            random_values: false,
        };
        let m = erdos_renyi(&cfg);
        assert_eq!(m.nnz(), 4 * 6);
        assert!(m.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let cfg = ErConfig {
            nrows: 128,
            ncols: 128,
            nnz_per_col: 4,
            seed: 7,
            random_values: true,
        };
        let a = erdos_renyi(&cfg);
        let b = erdos_renyi(&cfg);
        assert_eq!(a, b);
        let c = erdos_renyi(&ErConfig { seed: 8, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn rows_are_spread_roughly_uniformly() {
        let cfg = ErConfig {
            nrows: 512,
            ncols: 512,
            nnz_per_col: 8,
            seed: 3,
            random_values: true,
        };
        let m = erdos_renyi(&cfg);
        // Row degrees follow Binomial(n*d, 1/n); the maximum should stay far
        // below a pathological concentration (say 5x the mean).
        let mean = m.avg_degree();
        assert!((mean - 8.0).abs() < 1e-9);
        assert!(
            m.max_degree() < 40,
            "max degree {} looks non-uniform",
            m.max_degree()
        );
    }

    #[test]
    fn squaring_er_has_small_compression_factor() {
        // The paper (Sec. II-C) notes cf ~= 1 for ER matrices when d is small
        // relative to n; allow some slack for a small test matrix.
        let a = erdos_renyi_square(9, 4, 11);
        let s = MultiplyStats::compute(&a, &a);
        assert!(
            s.cf >= 1.0 && s.cf < 1.3,
            "unexpected compression factor {}",
            s.cf
        );
        // flop is exactly n * d^2 because every column has exactly d entries.
        assert_eq!(s.flop, 512 * 16);
    }

    #[test]
    fn from_scale_matches_manual_config() {
        let via_scale = erdos_renyi_square(6, 3, 21);
        let manual = erdos_renyi(&ErConfig {
            nrows: 64,
            ncols: 64,
            nnz_per_col: 3,
            seed: 21,
            random_values: true,
        });
        assert_eq!(via_scale, manual);
    }
}
