//! Compressed Sparse Row (CSR) format.
//!
//! CSR is the output format of every SpGEMM implementation in this workspace
//! and the row-access input format (`B` in the outer-product formulation,
//! both operands in the row-wise Gustavson baselines).

use rayon::prelude::*;

use crate::coo::Coo;
use crate::csc::Csc;
use crate::dense::Dense;
use crate::error::SparseError;
use crate::semiring::{Numeric, PlusTimes, Semiring};
use crate::{Index, Scalar, MAX_DIM};

/// A sparse matrix in Compressed Sparse Row format.
///
/// Invariants maintained by safe constructors:
///
/// * `rowptr.len() == nrows + 1`, `rowptr[0] == 0`, non-decreasing,
///   `rowptr[nrows] == colidx.len() == values.len()`;
/// * every column index is `< ncols`.
///
/// Column indices within a row are *usually* sorted and duplicate-free
/// (canonical form); the algorithm crates always produce canonical output,
/// and [`Csr::sort_indices`] / [`Csr::sum_duplicates_with`] restore the
/// property when needed.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<T> {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<Index>,
    values: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// Creates an empty `nrows x ncols` matrix with no stored entries.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Csr {
            nrows,
            ncols,
            rowptr: vec![0; nrows + 1],
            colidx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSR matrix from raw arrays, validating all invariants.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<Index>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        if nrows > MAX_DIM {
            return Err(SparseError::DimensionTooLarge { dim: nrows });
        }
        if ncols > MAX_DIM {
            return Err(SparseError::DimensionTooLarge { dim: ncols });
        }
        if rowptr.len() != nrows + 1 {
            return Err(SparseError::MalformedOffsets {
                detail: format!(
                    "rowptr length {} != nrows + 1 = {}",
                    rowptr.len(),
                    nrows + 1
                ),
            });
        }
        if rowptr[0] != 0 {
            return Err(SparseError::MalformedOffsets {
                detail: format!("rowptr[0] = {} (expected 0)", rowptr[0]),
            });
        }
        if rowptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::MalformedOffsets {
                detail: "rowptr is not monotonically non-decreasing".to_string(),
            });
        }
        if *rowptr.last().unwrap() != colidx.len() {
            return Err(SparseError::MalformedOffsets {
                detail: format!(
                    "rowptr[nrows] = {} but colidx has {} entries",
                    rowptr.last().unwrap(),
                    colidx.len()
                ),
            });
        }
        if colidx.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                rows: colidx.len(),
                cols: colidx.len(),
                vals: values.len(),
            });
        }
        if let Some((pos, &c)) = colidx
            .iter()
            .enumerate()
            .find(|&(_, &c)| c as usize >= ncols)
        {
            // Recover the row containing `pos` for a useful error message.
            let row = rowptr.partition_point(|&p| p <= pos).saturating_sub(1);
            return Err(SparseError::IndexOutOfBounds {
                row,
                col: c as usize,
                nrows,
                ncols,
            });
        }
        Ok(Csr {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        })
    }

    /// Builds a CSR matrix from raw arrays without validation.
    ///
    /// Intended for hot paths that construct the arrays in a way that
    /// guarantees the invariants (e.g. the assembly phase of PB-SpGEMM).
    /// Invariants are still checked in debug builds.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<Index>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(rowptr.len(), nrows + 1);
        debug_assert_eq!(rowptr[0], 0);
        debug_assert_eq!(*rowptr.last().unwrap(), colidx.len());
        debug_assert_eq!(colidx.len(), values.len());
        debug_assert!(colidx.iter().all(|&c| (c as usize) < ncols || ncols == 0));
        Csr {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.colidx.len()
    }

    /// Average number of stored entries per row (the paper's `d(A)`).
    pub fn avg_degree(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows as f64
        }
    }

    /// Maximum number of stored entries in any row.
    pub fn max_degree(&self) -> usize {
        (0..self.nrows).map(|i| self.row_nnz(i)).max().unwrap_or(0)
    }

    /// Fraction of entries that are stored (`nnz / (nrows * ncols)`).
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.nrows as f64 * self.ncols as f64)
        }
    }

    /// The row-offset array (`nrows + 1` entries).
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// The column-index array.
    #[inline]
    pub fn colidx(&self) -> &[Index] {
        &self.colidx
    }

    /// The value array.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to the value array (structure is immutable).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.rowptr[i + 1] - self.rowptr[i]
    }

    /// The column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[Index], &[T]) {
        let lo = self.rowptr[i];
        let hi = self.rowptr[i + 1];
        (&self.colidx[lo..hi], &self.values[lo..hi])
    }

    /// Looks up entry `(i, j)`; returns `None` if it is not stored.
    ///
    /// Requires sorted column indices for O(log nnz_row) lookup; falls back
    /// to a linear scan otherwise.
    pub fn get(&self, i: usize, j: usize) -> Option<T> {
        let (cols, vals) = self.row(i);
        let j = j as Index;
        if cols.windows(2).all(|w| w[0] <= w[1]) {
            cols.binary_search(&j).ok().map(|k| vals[k])
        } else {
            cols.iter().position(|&c| c == j).map(|k| vals[k])
        }
    }

    /// Iterates over all `(row, col, value)` entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, T)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (i as Index, c, v))
        })
    }

    /// Consumes the matrix and returns `(nrows, ncols, rowptr, colidx, values)`.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<Index>, Vec<T>) {
        (
            self.nrows,
            self.ncols,
            self.rowptr,
            self.colidx,
            self.values,
        )
    }

    /// Returns `true` if column indices are sorted within every row.
    pub fn has_sorted_indices(&self) -> bool {
        (0..self.nrows).all(|i| self.row(i).0.windows(2).all(|w| w[0] <= w[1]))
    }

    /// Returns `true` if some row stores the same column more than once.
    pub fn has_duplicates(&self) -> bool {
        (0..self.nrows).any(|i| {
            let (cols, _) = self.row(i);
            if cols.windows(2).all(|w| w[0] <= w[1]) {
                cols.windows(2).any(|w| w[0] == w[1])
            } else {
                let mut seen: Vec<Index> = cols.to_vec();
                seen.sort_unstable();
                seen.windows(2).any(|w| w[0] == w[1])
            }
        })
    }

    /// Sorts the column indices (and the matching values) within every row.
    ///
    /// Rows are processed in parallel.
    pub fn sort_indices(&mut self) {
        let nrows = self.nrows;
        let rowptr = std::mem::take(&mut self.rowptr);
        // Split the storage into per-row slices so rayon can sort them
        // independently.
        {
            let mut col_rest: &mut [Index] = &mut self.colidx;
            let mut val_rest: &mut [T] = &mut self.values;
            let mut row_slices: Vec<(&mut [Index], &mut [T])> = Vec::with_capacity(nrows);
            for i in 0..nrows {
                let len = rowptr[i + 1] - rowptr[i];
                let (c, cr) = col_rest.split_at_mut(len);
                let (v, vr) = val_rest.split_at_mut(len);
                col_rest = cr;
                val_rest = vr;
                row_slices.push((c, v));
            }
            row_slices.par_iter_mut().for_each(|(cols, vals)| {
                if cols.windows(2).all(|w| w[0] <= w[1]) {
                    return;
                }
                let mut order: Vec<usize> = (0..cols.len()).collect();
                order.sort_unstable_by_key(|&k| cols[k]);
                let new_cols: Vec<Index> = order.iter().map(|&k| cols[k]).collect();
                let new_vals: Vec<T> = order.iter().map(|&k| vals[k]).collect();
                cols.copy_from_slice(&new_cols);
                vals.copy_from_slice(&new_vals);
            });
        }
        self.rowptr = rowptr;
    }

    /// Merges duplicate column indices within each row using the semiring's
    /// `add`.  Requires sorted indices (call [`Csr::sort_indices`] first if
    /// needed); sorts defensively in debug builds.
    pub fn sum_duplicates_with<S>(&mut self)
    where
        S: Semiring<Elem = T>,
    {
        debug_assert!(
            self.has_sorted_indices(),
            "sum_duplicates_with requires sorted indices"
        );
        if !self.has_duplicates() {
            return;
        }
        let mut new_rowptr = Vec::with_capacity(self.nrows + 1);
        new_rowptr.push(0usize);
        let mut new_cols: Vec<Index> = Vec::with_capacity(self.nnz());
        let mut new_vals: Vec<T> = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let mut k = 0;
            while k < cols.len() {
                let c = cols[k];
                let mut acc = vals[k];
                let mut j = k + 1;
                while j < cols.len() && cols[j] == c {
                    acc = S::add(acc, vals[j]);
                    j += 1;
                }
                new_cols.push(c);
                new_vals.push(acc);
                k = j;
            }
            new_rowptr.push(new_cols.len());
        }
        self.rowptr = new_rowptr;
        self.colidx = new_cols;
        self.values = new_vals;
    }

    /// Applies a function to every stored value, keeping the structure.
    pub fn map_values<U: Scalar>(&self, f: impl Fn(T) -> U + Sync) -> Csr<U> {
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr: self.rowptr.clone(),
            colidx: self.colidx.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Removes stored entries for which the predicate returns `false`.
    pub fn prune(&self, keep: impl Fn(Index, Index, T) -> bool) -> Csr<T> {
        let mut rowptr = Vec::with_capacity(self.nrows + 1);
        rowptr.push(0usize);
        let mut colidx = Vec::new();
        let mut values = Vec::new();
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                if keep(i as Index, c, v) {
                    colidx.push(c);
                    values.push(v);
                }
            }
            rowptr.push(colidx.len());
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            rowptr,
            colidx,
            values,
        }
    }

    /// Converts to COO (triplet) format, preserving entry order.
    pub fn to_coo(&self) -> Coo<T> {
        let mut rows = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            rows.extend(std::iter::repeat_n(i as Index, self.row_nnz(i)));
        }
        Coo::from_parts_unchecked(
            self.nrows,
            self.ncols,
            rows,
            self.colidx.clone(),
            self.values.clone(),
        )
    }

    /// Converts to CSC by an out-of-place counting-sort transpose.
    pub fn to_csc(&self) -> Csc<T>
    where
        T: Default,
    {
        let (colptr, rowidx, values) = transpose_arrays(
            self.nrows,
            self.ncols,
            &self.rowptr,
            &self.colidx,
            &self.values,
        );
        Csc::from_parts_unchecked(self.nrows, self.ncols, colptr, rowidx, values)
    }

    /// Returns the transpose as a CSR matrix.
    pub fn transpose(&self) -> Csr<T>
    where
        T: Default,
    {
        let (rowptr, colidx, values) = transpose_arrays(
            self.nrows,
            self.ncols,
            &self.rowptr,
            &self.colidx,
            &self.values,
        );
        Csr::from_parts_unchecked(self.ncols, self.nrows, rowptr, colidx, values)
    }

    /// Reinterprets this CSR matrix as the CSC representation of its
    /// transpose (no data movement: `A` in CSR is `Aᵀ` in CSC).
    pub fn transpose_into_csc(self) -> Csc<T> {
        Csc::from_parts_unchecked(
            self.ncols,
            self.nrows,
            self.rowptr,
            self.colidx,
            self.values,
        )
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> Dense<T>
    where
        T: Default,
    {
        let mut d = Dense::filled(self.nrows, self.ncols, T::default());
        for (r, c, v) in self.iter() {
            d[(r as usize, c as usize)] = v;
        }
        d
    }

    /// Validates all structural invariants, returning a detailed error.
    pub fn validate(&self) -> Result<(), SparseError> {
        Csr::from_parts(
            self.nrows,
            self.ncols,
            self.rowptr.clone(),
            self.colidx.clone(),
            self.values.clone(),
        )
        .map(|_| ())
    }
}

impl<T: Numeric> Csr<T> {
    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            rowptr: (0..=n).collect(),
            colidx: (0..n as Index).collect(),
            values: vec![T::one_value(); n],
        }
    }

    /// Merges duplicate column indices by ordinary addition.
    pub fn sum_duplicates(&mut self) {
        self.sum_duplicates_with::<PlusTimes<T>>();
    }

    /// Scales every stored value by `factor`.
    pub fn scale(&mut self, factor: T) {
        for v in &mut self.values {
            *v = *v * factor;
        }
    }
}

/// Shared kernel for CSR→CSC conversion and CSR transpose: a counting sort of
/// the entries by column index.
fn transpose_arrays<T: Scalar + Default>(
    nrows: usize,
    ncols: usize,
    rowptr: &[usize],
    colidx: &[Index],
    values: &[T],
) -> (Vec<usize>, Vec<Index>, Vec<T>) {
    let nnz = colidx.len();
    let mut counts = vec![0usize; ncols + 1];
    for &c in colidx {
        counts[c as usize + 1] += 1;
    }
    for j in 0..ncols {
        counts[j + 1] += counts[j];
    }
    let out_ptr = counts.clone();
    let mut out_idx = vec![0 as Index; nnz];
    let mut out_val = vec![T::default(); nnz];
    let mut cursor = counts;
    for i in 0..nrows {
        for k in rowptr[i]..rowptr[i + 1] {
            let c = colidx[k] as usize;
            let dst = cursor[c];
            out_idx[dst] = i as Index;
            out_val[dst] = values[k];
            cursor[c] += 1;
        }
    }
    (out_ptr, out_idx, out_val)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3x4 matrix used throughout:
    /// ```text
    /// [ 1 0 2 0 ]
    /// [ 0 0 0 3 ]
    /// [ 4 5 0 6 ]
    /// ```
    fn sample() -> Csr<f64> {
        Csr::from_parts(
            3,
            4,
            vec![0, 2, 3, 6],
            vec![0, 2, 3, 0, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let m = sample();
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 1);
        assert_eq!(m.row(2).0, &[0, 1, 3]);
        assert_eq!(m.get(2, 1), Some(5.0));
        assert_eq!(m.get(1, 1), None);
        assert!((m.avg_degree() - 2.0).abs() < 1e-12);
        assert_eq!(m.max_degree(), 3);
        assert!((m.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_parts_rejects_malformed_input() {
        // Wrong rowptr length.
        assert!(Csr::<f64>::from_parts(3, 3, vec![0, 1], vec![0], vec![1.0]).is_err());
        // Non-monotone rowptr.
        assert!(Csr::<f64>::from_parts(2, 3, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // rowptr does not start at zero.
        assert!(Csr::<f64>::from_parts(1, 3, vec![1, 1], vec![], vec![]).is_err());
        // Last rowptr entry disagrees with nnz.
        assert!(Csr::<f64>::from_parts(1, 3, vec![0, 2], vec![0], vec![1.0]).is_err());
        // Column out of bounds.
        assert!(Csr::<f64>::from_parts(2, 3, vec![0, 1, 2], vec![0, 7], vec![1.0, 1.0]).is_err());
        // Value / index length mismatch.
        assert!(Csr::<f64>::from_parts(1, 3, vec![0, 1], vec![0], vec![]).is_err());
    }

    #[test]
    fn iter_visits_all_entries_in_order() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(
            entries,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 3, 3.0),
                (2, 0, 4.0),
                (2, 1, 5.0),
                (2, 3, 6.0)
            ]
        );
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (4, 3));
        assert_eq!(t.get(3, 1), Some(3.0));
        assert_eq!(t.get(0, 2), Some(4.0));
        let tt = t.transpose();
        assert_eq!(tt, m);
    }

    #[test]
    fn csc_conversion_matches_dense() {
        let m = sample();
        let csc = m.to_csc();
        assert_eq!(csc.to_dense(), m.to_dense());
        assert_eq!(csc.col(0).0, &[0, 2]);
        assert_eq!(csc.col(0).1, &[1.0, 4.0]);
    }

    #[test]
    fn transpose_into_csc_is_zero_copy_reinterpretation() {
        let m = sample();
        let csc_of_transpose = m.clone().transpose_into_csc();
        // A (CSR) reinterpreted as CSC is the transpose of A.
        assert_eq!(csc_of_transpose.to_dense(), m.transpose().to_dense());
    }

    #[test]
    fn coo_roundtrip() {
        let m = sample();
        let coo = m.to_coo();
        assert_eq!(coo.nnz(), m.nnz());
        assert_eq!(coo.to_csr(), m);
    }

    #[test]
    fn sort_indices_and_duplicates() {
        let mut m = Csr::from_parts(
            2,
            4,
            vec![0, 3, 5],
            vec![2, 0, 2, 3, 1],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        assert!(!m.has_sorted_indices());
        assert!(m.has_duplicates());
        m.sort_indices();
        assert!(m.has_sorted_indices());
        m.sum_duplicates();
        assert!(!m.has_duplicates());
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 2), Some(4.0));
    }

    #[test]
    fn identity_and_scale() {
        let mut id = Csr::<f64>::identity(4);
        assert_eq!(id.nnz(), 4);
        assert_eq!(id.get(2, 2), Some(1.0));
        assert_eq!(id.get(2, 3), None);
        id.scale(3.0);
        assert_eq!(id.get(1, 1), Some(3.0));
    }

    #[test]
    fn map_values_and_prune() {
        let m = sample();
        let doubled = m.map_values(|v| v * 2.0);
        assert_eq!(doubled.get(2, 3), Some(12.0));
        let big_only = m.prune(|_, _, v| v >= 4.0);
        assert_eq!(big_only.nnz(), 3);
        assert_eq!(big_only.get(0, 0), None);
        assert_eq!(big_only.get(2, 0), Some(4.0));
        assert_eq!(big_only.shape(), m.shape());
    }

    #[test]
    fn empty_matrix_behaviour() {
        let m: Csr<f64> = Csr::empty(0, 0);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.avg_degree(), 0.0);
        assert_eq!(m.density(), 0.0);
        assert!(m.validate().is_ok());

        let m: Csr<f64> = Csr::empty(5, 3);
        assert_eq!(m.shape(), (5, 3));
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.transpose().shape(), (3, 5));
        assert_eq!(m.to_coo().nnz(), 0);
    }

    #[test]
    fn validate_detects_corruption() {
        let m = sample();
        assert!(m.validate().is_ok());
        let (nr, nc, mut rowptr, colidx, values) = m.into_parts();
        rowptr[1] = 5; // corrupt
        let bad = Csr::from_parts(nr, nc, rowptr, colidx, values);
        assert!(bad.is_err());
    }

    #[test]
    fn values_mut_allows_in_place_updates() {
        let mut m = sample();
        m.values_mut()[0] = 42.0;
        assert_eq!(m.get(0, 0), Some(42.0));
    }
}
