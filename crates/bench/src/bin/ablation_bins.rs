//! Ablation of the PB-SpGEMM design choices DESIGN.md calls out: the
//! row→bin mapping (uniform ranges, modulo, flop-balanced variable ranges),
//! and the expand strategy (reserved unsafe writes vs safe thread-local
//! buffers).
//!
//! ER matrices have uniform row flop, so all mappings should tie there;
//! R-MAT matrices are skewed, which is where the balanced mapping (the
//! paper's "variable ranges of rows") is expected to help the sort/compress
//! load balance, at the cost of a boundary search in the expand phase.
//!
//! ```bash
//! cargo run --release -p pb-bench --bin ablation_bins
//! ```

use pb_bench::runner::{measure, Algorithm};
use pb_bench::workloads::{er_matrix, rmat_matrix};
use pb_bench::{fmt, print_table, quick_mode, repetitions, write_json, Table};
use pb_spgemm::{BinMapping, ExpandStrategy, PbConfig};

fn main() {
    // `--smoke` shrinks the workloads to CI size (sets PB_BENCH_QUICK).
    pb_bench::smoke_from_args();
    let quick = quick_mode();
    let reps = repetitions();
    let (scale, ef) = if quick { (11, 8) } else { (13, 8) };

    let configs: Vec<(&str, PbConfig)> = vec![
        (
            "range bins",
            PbConfig::default().with_bin_mapping(BinMapping::Range),
        ),
        (
            "modulo bins",
            PbConfig::default().with_bin_mapping(BinMapping::Modulo),
        ),
        (
            "balanced bins",
            PbConfig::default().with_bin_mapping(BinMapping::Balanced),
        ),
        (
            "range + safe expand",
            PbConfig::default()
                .with_bin_mapping(BinMapping::Range)
                .with_expand(ExpandStrategy::ThreadLocal),
        ),
    ];

    let workloads = vec![er_matrix(scale, ef, 7), rmat_matrix(scale, ef, 7)];

    let mut table = Table::new(
        "Bin-mapping and expand-strategy ablation",
        &["workload", "configuration", "time ms", "MFLOPS", "cf"],
    );
    let mut measurements = Vec::new();
    for workload in &workloads {
        for (label, cfg) in &configs {
            let m = measure(workload, &Algorithm::Pb(cfg.clone()), reps, None);
            table.push_row(vec![
                workload.name.clone(),
                (*label).to_string(),
                fmt(m.seconds * 1e3, 2),
                fmt(m.mflops, 1),
                fmt(m.cf, 2),
            ]);
            measurements.push(m);
        }
    }

    print_table(&table);
    write_json("ablation_bins", &measurements);
    println!(
        "expected shape: on the uniform ER workload all bin mappings perform alike; on the \
         skewed R-MAT workload the balanced mapping narrows the gap the paper attributes to \
         load-imbalanced bins (Sec. V-C), and the safe thread-local expand pays for its extra \
         concatenation pass relative to the reserved-write expand."
    );
}
