//! Betweenness centrality with batched, matrix-formulated Brandes.
//!
//! Builds an R-MAT graph, estimates betweenness centrality from a sample of
//! source vertices (each batch advances all of its BFS frontiers with one
//! tall-and-skinny SpGEMM per level), and compares PB-SpGEMM against the
//! column-SpGEMM baselines as the engine driving those products.
//!
//! ```bash
//! cargo run --release --example betweenness_centrality
//! ```

use std::time::Instant;

use pb_spgemm_suite::graph::{betweenness_centrality, SpGemm};
use pb_spgemm_suite::prelude::*;

fn main() {
    // A scale-12 R-MAT graph (~4K vertices) keeps the example quick while
    // still showing the skewed degree distribution the paper studies.
    let scale = 12u32;
    let edge_factor = 8u32;
    let a: Csr<f64> = rmat_square(scale, edge_factor, 7);
    println!(
        "graph: {} vertices, {} edges (directed, will be symmetrised)",
        a.nrows(),
        a.nnz()
    );

    // Sample 64 sources; exact betweenness would use all vertices.
    let sources: Vec<usize> = (0..64).map(|k| (k * 61) % a.nrows()).collect();
    let batch = 32;

    let mut reference: Option<Vec<f64>> = None;
    for engine in SpGemm::paper_set() {
        let start = Instant::now();
        let bc = betweenness_centrality(&a, &sources, batch, &engine);
        let elapsed = start.elapsed();

        // Top-5 vertices by estimated centrality.
        let mut order: Vec<usize> = (0..bc.len()).collect();
        order.sort_by(|&x, &y| bc[y].partial_cmp(&bc[x]).unwrap());
        let top: Vec<String> = order
            .iter()
            .take(5)
            .map(|&v| format!("{v}({:.0})", bc[v]))
            .collect();

        println!(
            "{:<14} {:>8.1} ms   top vertices: {}",
            engine.name(),
            elapsed.as_secs_f64() * 1e3,
            top.join(", ")
        );

        // All engines must agree on the scores (they run the same algorithm).
        match &reference {
            None => reference = Some(bc),
            Some(expected) => {
                let max_diff = bc
                    .iter()
                    .zip(expected)
                    .map(|(p, q)| (p - q).abs())
                    .fold(0.0f64, f64::max);
                assert!(
                    max_diff < 1e-6,
                    "{} disagrees with the first engine",
                    engine.name()
                );
            }
        }
    }
    println!("\nall engines agree on the centrality scores");
}
