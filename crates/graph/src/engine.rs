//! The graph crate's original engine enum, superseded by the unified
//! [`SpGemm`] engine in `pb-spgemm`.
//!
//! [`SpGemmEngine`] survives one more release as a deprecated shim so
//! downstream code migrates mechanically: every variant converts losslessly
//! into a [`SpGemm`] via `From`, and `docs/API.md` maps each constructor to
//! its engine-builder equivalent.  All graph kernels now take [`SpGemm`]
//! directly.

#![allow(deprecated)]

use std::sync::Arc;

use pb_baseline::Baseline;
use pb_sparse::semiring::{Numeric, PlusTimes, Semiring};
use pb_sparse::{reference, Csr};
use pb_spgemm::{PbConfig, SpGemm, Workspace};

/// Which SpGEMM implementation a graph kernel uses for its matrix products.
///
/// Cheap to clone ([`PbConfig`] is a handful of scalars plus an optional
/// shared `Arc`); not `Copy` because an auto-tuned `PbConfig` carries that
/// shared autotuner handle.
#[deprecated(
    note = "use the unified `pb_spgemm::SpGemm` engine (`SpGemm::pb()`, `SpGemm::baseline(..)`, `SpGemm::reference()`, `SpGemm::auto()`) — see docs/API.md"
)]
#[derive(Debug, Clone, PartialEq)]
pub enum SpGemmEngine {
    /// The paper's outer-product propagation-blocking algorithm.
    PropagationBlocking(PbConfig),
    /// One of the column-SpGEMM baselines (heap / hash / hashvec / SPA /
    /// column ESC).
    Baseline(Baseline),
    /// The sequential Gustavson reference implementation — the correctness
    /// oracle, useful for small cross-checks.
    Reference,
}

impl Default for SpGemmEngine {
    fn default() -> Self {
        SpGemmEngine::PropagationBlocking(PbConfig::default())
    }
}

impl From<SpGemmEngine> for SpGemm {
    fn from(engine: SpGemmEngine) -> SpGemm {
        match engine {
            SpGemmEngine::PropagationBlocking(cfg) => SpGemm::pb().config(cfg),
            SpGemmEngine::Baseline(b) => SpGemm::baseline(b),
            SpGemmEngine::Reference => SpGemm::reference(),
        }
    }
}

impl SpGemmEngine {
    /// PB-SpGEMM with its default configuration.
    pub fn pb() -> Self {
        SpGemmEngine::default()
    }

    /// PB-SpGEMM with a fresh persistent [`Workspace`] attached: every
    /// multiply this engine performs reuses the same expand buffer, sort
    /// scratch and staging vectors, so iterated kernels (MCL expansion,
    /// repeated products of similar shape) stop paying the per-call
    /// allocation and first-touch bill.
    pub fn with_workspace() -> Self {
        SpGemmEngine::PropagationBlocking(PbConfig::reusing())
    }

    /// This engine's shared workspace, when it is a PB engine carrying one.
    pub fn workspace(&self) -> Option<&Arc<Workspace>> {
        match self {
            SpGemmEngine::PropagationBlocking(cfg) => cfg.workspace(),
            _ => None,
        }
    }

    /// Attaches a fresh [`Workspace`] to a PB engine that does not already
    /// carry one (baselines and the reference engine pass through
    /// untouched).  Iterating kernels call this once before their loop so
    /// every iteration's multiply reuses the same buffers.
    pub fn with_iteration_workspace(self) -> Self {
        match self {
            SpGemmEngine::PropagationBlocking(cfg) if cfg.workspace().is_none() => {
                SpGemmEngine::PropagationBlocking(cfg.with_workspace(Arc::new(Workspace::new())))
            }
            other => other,
        }
    }

    /// A representative set of engines for application-level sweeps:
    /// PB-SpGEMM plus the three baselines the paper plots.
    pub fn paper_set() -> Vec<SpGemmEngine> {
        let mut engines = vec![SpGemmEngine::pb()];
        engines.extend(
            Baseline::paper_set()
                .iter()
                .map(|&b| SpGemmEngine::Baseline(b)),
        );
        engines
    }

    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SpGemmEngine::PropagationBlocking(_) => "PB-SpGEMM",
            SpGemmEngine::Baseline(b) => b.name(),
            SpGemmEngine::Reference => "Reference",
        }
    }

    /// Computes `A·B` under an arbitrary semiring with this engine.
    ///
    /// Operands are taken in CSR; the PB engine converts `A` to CSC
    /// internally (its outer-product formulation needs column access).
    pub fn multiply_with<S: Semiring>(&self, a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem>
    where
        S::Elem: Default,
    {
        match self {
            SpGemmEngine::PropagationBlocking(cfg) => {
                SpGemm::pb().config(cfg.clone()).multiply_with::<S>(a, b)
            }
            SpGemmEngine::Baseline(baseline) => baseline.multiply_with::<S>(a, b),
            SpGemmEngine::Reference => reference::multiply_csr_with::<S>(a, b),
        }
    }

    /// Computes `A·B` with ordinary `+`/`×` over a numeric type.
    pub fn multiply<T: Numeric + Default>(&self, a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
        self.multiply_with::<PlusTimes<T>>(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::rmat_square;
    use pb_sparse::reference::csr_approx_eq;
    use pb_sparse::semiring::OrAnd;

    #[test]
    fn every_engine_computes_the_same_product() {
        let a = rmat_square(7, 5, 3);
        let expected = reference::multiply_csr(&a, &a);
        for engine in SpGemmEngine::paper_set() {
            let c = engine.multiply(&a, &a);
            assert!(
                csr_approx_eq(&c, &expected, 1e-9),
                "{} disagrees",
                engine.name()
            );
        }
        let c = SpGemmEngine::Reference.multiply(&a, &a);
        assert!(csr_approx_eq(&c, &expected, 1e-12));
    }

    #[test]
    fn boolean_products_agree_across_engines() {
        let a = rmat_square(6, 4, 9).map_values(|_| true);
        let expected = reference::multiply_csr_with::<OrAnd>(&a, &a);
        for engine in SpGemmEngine::paper_set() {
            let c = engine.multiply_with::<OrAnd>(&a, &a);
            assert_eq!(c.rowptr(), expected.rowptr(), "{}", engine.name());
            assert_eq!(c.colidx(), expected.colidx(), "{}", engine.name());
        }
    }

    #[test]
    fn names_and_default() {
        assert_eq!(SpGemmEngine::default().name(), "PB-SpGEMM");
        assert_eq!(SpGemmEngine::Baseline(Baseline::Hash).name(), "HashSpGEMM");
        assert_eq!(SpGemmEngine::paper_set().len(), 4);
    }

    #[test]
    fn workspace_engine_reuses_buffers_across_multiplies() {
        let a = rmat_square(7, 6, 17);
        let engine = SpGemmEngine::with_workspace();
        let ws = engine.workspace().cloned().expect("workspace attached");
        let expected = reference::multiply_csr(&a, &a);
        for _ in 0..3 {
            let c = engine.multiply(&a, &a);
            assert!(csr_approx_eq(&c, &expected, 1e-9));
        }
        assert!(ws.total_bytes_reused() > 0, "repeat multiplies must reuse");
        assert_eq!(ws.leases(), 3);
    }

    #[test]
    fn iteration_workspace_wraps_only_bare_pb_engines() {
        // A bare PB engine gains a workspace...
        let wrapped = SpGemmEngine::pb().with_iteration_workspace();
        assert!(wrapped.workspace().is_some());
        // ...an engine that already carries one keeps it...
        let ws = wrapped.workspace().cloned().unwrap();
        let again = wrapped.with_iteration_workspace();
        assert!(Arc::ptr_eq(again.workspace().unwrap(), &ws));
        // ...and non-PB engines pass through untouched.
        let baseline = SpGemmEngine::Baseline(Baseline::Hash).with_iteration_workspace();
        assert!(baseline.workspace().is_none());
        assert!(SpGemmEngine::Reference
            .with_iteration_workspace()
            .workspace()
            .is_none());
    }

    #[test]
    fn every_variant_converts_into_the_unified_engine() {
        let a = rmat_square(6, 4, 5);
        let expected = reference::multiply_csr(&a, &a);
        for old in [
            SpGemmEngine::pb(),
            SpGemmEngine::Baseline(Baseline::Hash),
            SpGemmEngine::Reference,
        ] {
            let name = old.name();
            let unified: SpGemm = old.into();
            assert_eq!(unified.name(), name);
            let c = unified.multiply(&a, &a);
            assert!(csr_approx_eq(&c, &expected, 1e-9), "{name}");
        }
        // Workspace handles survive the conversion.
        let old = SpGemmEngine::with_workspace();
        let ws = old.workspace().cloned().unwrap();
        let unified: SpGemm = old.into();
        assert!(Arc::ptr_eq(unified.workspace_handle().unwrap(), &ws));
    }
}
