//! Fig. 11: squaring the Table VI matrices (stand-ins), sorted by ascending
//! compression factor.

use pb_bench::figures::real_matrices;
use pb_bench::workloads::standin_fraction;
use pb_bench::{print_table, quick_mode, repetitions, write_json};

fn main() {
    // `--smoke` shrinks the workloads to CI size (sets PB_BENCH_QUICK).
    pb_bench::smoke_from_args();
    let fraction = standin_fraction(quick_mode());
    let fig = real_matrices(fraction, repetitions());
    print_table(&fig.performance);
    print_table(&fig.bandwidth);
    write_json("fig11_real", &fig.measurements);
    println!(
        "expected shape (paper Fig. 11 and conclusions 5-6): PB-SpGEMM wins on matrices with \
         cf < 4 (the left side of the table); HashSpGEMM takes over for the high-cf FEM \
         matrices (cant, hood)."
    );
}
