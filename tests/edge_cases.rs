//! Edge-case and stress tests for the public SpGEMM API: degenerate shapes,
//! pathological sparsity patterns, extreme configurations and numerical
//! corner cases.

use pb_spgemm_suite::baseline::Baseline;
use pb_spgemm_suite::gen::erdos_renyi_square;
use pb_spgemm_suite::prelude::*;
use pb_spgemm_suite::sparse::reference::{csr_approx_eq, multiply_csr};
use pb_spgemm_suite::spgemm::{BinMapping, SortAlgorithm};

/// Engine-backed stand-in for the retired `pb_spgemm::multiply` free
/// function: call sites stay unchanged while routing through the unified
/// [`SpGemm`] engine.
fn multiply(a: &Csc<f64>, b: &Csr<f64>, cfg: &PbConfig) -> Csr<f64> {
    SpGemm::pb().config(cfg.clone()).multiply_csc(a, b)
}

fn check_all(a: &Csr<f64>, b: &Csr<f64>) {
    let expected = multiply_csr(a, b);
    let pb = multiply(&a.to_csc(), b, &PbConfig::default());
    assert!(csr_approx_eq(&pb, &expected, 1e-9), "PB-SpGEMM mismatch");
    for baseline in Baseline::all() {
        let c = baseline.multiply(a, b);
        assert!(
            csr_approx_eq(&c, &expected, 1e-9),
            "{} mismatch",
            baseline.name()
        );
    }
}

#[test]
fn outer_product_of_a_column_and_a_row_is_dense() {
    // (n x 1) times (1 x n) has flop = n^2 and cf = 1: the worst case for an
    // ESC algorithm's intermediate storage.
    let n = 128usize;
    let col = Coo::from_entries(n, 1, (0..n).map(|i| (i, 0, (i + 1) as f64)).collect())
        .unwrap()
        .to_csr();
    let row = Coo::from_entries(1, n, (0..n).map(|j| (0, j, 2.0)).collect())
        .unwrap()
        .to_csr();
    let c = multiply(&col.to_csc(), &row, &PbConfig::default());
    assert_eq!(c.nnz(), n * n);
    assert_eq!(c.get(3, 5), Some(8.0));
    check_all(&col, &row);
}

#[test]
fn inner_product_of_a_row_and_a_column_is_a_scalar() {
    let n = 256usize;
    let row = Coo::from_entries(1, n, (0..n).map(|j| (0, j, 1.0)).collect())
        .unwrap()
        .to_csr();
    let col = Coo::from_entries(n, 1, (0..n).map(|i| (i, 0, 1.0)).collect())
        .unwrap()
        .to_csr();
    let c = multiply(&row.to_csc(), &col, &PbConfig::default());
    assert_eq!(c.shape(), (1, 1));
    assert_eq!(c.get(0, 0), Some(n as f64));
}

#[test]
fn matrices_with_empty_rows_columns_and_blocks() {
    // A matrix whose first and last thirds of rows are completely empty.
    let n = 300usize;
    let entries: Vec<(usize, usize, f64)> = (100..200)
        .map(|i| (i, (i * 7) % n, 1.0 + i as f64))
        .collect();
    let a = Coo::from_entries(n, n, entries).unwrap().to_csr();
    check_all(&a, &a);
}

#[test]
fn product_with_structurally_empty_result() {
    // A only has entries in columns 0..10, B only has entries in rows
    // 100..110: no inner index overlaps, so C is empty.
    let a = Coo::from_entries(50, 200, (0..10).map(|j| (j, j, 1.0)).collect())
        .unwrap()
        .to_csr();
    let b = Coo::from_entries(200, 50, (0..10).map(|j| (100 + j, j, 1.0)).collect())
        .unwrap()
        .to_csr();
    let c = multiply(&a.to_csc(), &b, &PbConfig::default());
    assert_eq!(c.nnz(), 0);
    check_all(&a, &b);
}

#[test]
fn numerical_cancellation_keeps_explicit_zeros() {
    // +1 * 1 and -1 * 1 land on the same output coordinate and cancel; the
    // paper's algorithms keep the explicit zero (nnz counts structure).
    let a = Coo::from_entries(2, 2, vec![(0, 0, 1.0), (0, 1, -1.0)])
        .unwrap()
        .to_csr();
    let b = Coo::from_entries(2, 2, vec![(0, 0, 1.0), (1, 0, 1.0)])
        .unwrap()
        .to_csr();
    let c = multiply(&a.to_csc(), &b, &PbConfig::default());
    assert_eq!(c.nnz(), 1);
    assert_eq!(c.get(0, 0), Some(0.0));
}

#[test]
fn extreme_values_are_preserved() {
    let big: f64 = 1e300;
    let tiny: f64 = 1e-300;
    let a = Coo::from_entries(3, 3, vec![(0, 0, big), (1, 1, tiny), (2, 2, -big)])
        .unwrap()
        .to_csr();
    let c = multiply(&a.to_csc(), &a, &PbConfig::default());
    assert_eq!(c.get(1, 1), Some(tiny * tiny));
    assert!(c.get(0, 0).unwrap().is_infinite()); // big * big overflows to +inf
    assert!(c.get(2, 2).unwrap().is_infinite());
}

#[test]
fn single_row_and_single_column_matrices() {
    let a = Coo::from_entries(1, 1, vec![(0, 0, 2.5)]).unwrap().to_csr();
    let c = multiply(&a.to_csc(), &a, &PbConfig::default());
    assert_eq!(c.get(0, 0), Some(6.25));

    // 1 x n empty operand.
    let empty: Csr<f64> = Csr::empty(1, 64);
    let b = erdos_renyi_square(6, 2, 9);
    let wide = multiply(&empty.to_csc(), &Csr::empty(64, 64), &PbConfig::default());
    assert_eq!(wide.shape(), (1, 64));
    assert_eq!(wide.nnz(), 0);
    let _ = b;
}

#[test]
fn extreme_bin_configurations_still_produce_correct_results() {
    let a = erdos_renyi_square(8, 8, 17);
    let expected = multiply_csr(&a, &a);
    let a_csc = a.to_csc();
    // One bin for everything, one bin per row, absurdly small local bins and
    // an L2 assumption smaller than a single tuple.
    let configs = [
        PbConfig::default().with_nbins(1),
        PbConfig::default().with_nbins(a.nrows()),
        PbConfig::default().with_local_bin_bytes(16),
        PbConfig::default().with_l2_bytes(4096),
        PbConfig::default()
            .with_nbins(7)
            .with_sort(SortAlgorithm::AmericanFlag),
        PbConfig::default()
            .with_bin_mapping(BinMapping::Modulo)
            .with_nbins(3),
    ];
    for cfg in configs {
        let c = multiply(&a_csc, &a, &cfg);
        assert!(
            csr_approx_eq(&c, &expected, 1e-9),
            "config {cfg:?} produced a wrong result"
        );
    }
}

#[test]
fn highly_duplicated_products_compress_correctly() {
    // B has a single dense row, so every product lands on the same output
    // rows repeatedly -> heavy compression (cf = nnz per row of A).
    let n = 64usize;
    let mut entries = Vec::new();
    for i in 0..n {
        for k in 0..8 {
            entries.push((i, k, 1.0));
        }
    }
    let a = Coo::from_entries(n, n, entries).unwrap().to_csr();
    let b_entries: Vec<(usize, usize, f64)> = (0..8)
        .flat_map(|k| (0..n).map(move |j| (k, j, 1.0)))
        .collect();
    let b = Coo::from_entries(n, n, b_entries).unwrap().to_csr();
    let stats = MultiplyStats::compute(&a, &b);
    assert!(
        stats.cf >= 7.9,
        "expected a high compression factor, got {}",
        stats.cf
    );
    check_all(&a, &b);
}

#[test]
fn repeated_multiplication_is_stable_in_structure() {
    // Squaring the same matrix repeatedly with different algorithms always
    // yields the same structure (catches nondeterministic bin assembly).
    let a = erdos_renyi_square(8, 6, 23);
    let a_csc = a.to_csc();
    let first = multiply(&a_csc, &a, &PbConfig::default());
    for _ in 0..5 {
        let again = multiply(&a_csc, &a, &PbConfig::default());
        assert_eq!(first.rowptr(), again.rowptr());
        assert_eq!(first.colidx(), again.colidx());
        // Values may differ only by floating-point reassociation.
        assert!(csr_approx_eq(&first, &again, 1e-12));
    }
}
