//! `#[derive(Serialize)]` for the vendored serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build
//! environment has no `syn`/`quote`). Supports the shapes the workspace
//! actually derives on:
//!
//! * non-generic structs with named fields — serialized as an object with
//!   one entry per field, in declaration order;
//! * non-generic enums whose variants are all unit variants — serialized
//!   as the variant name string.
//!
//! Anything else produces a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `serde::Serialize` (a lowering to `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Locate the `struct`/`enum` keyword, the type name right after it and
    // the brace-delimited body. Attributes and visibility before the
    // keyword are skipped; generics would appear between the name and the
    // body and are rejected below.
    let mut kind = None;
    let mut name = None;
    let mut body = None;
    let mut iter = tokens.iter().peekable();
    while let Some(tok) = iter.next() {
        match tok {
            TokenTree::Ident(id) if kind.is_none() => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    if let Some(TokenTree::Ident(n)) = iter.next() {
                        name = Some(n.to_string());
                    }
                }
            }
            TokenTree::Punct(p) if kind.is_some() && p.as_char() == '<' => {
                return error("serde shim: #[derive(Serialize)] does not support generic types");
            }
            TokenTree::Group(g) if kind.is_some() && g.delimiter() == Delimiter::Brace => {
                body = Some(g.stream());
                break;
            }
            TokenTree::Punct(p) if kind.is_some() && p.as_char() == ';' => {
                return error(
                    "serde shim: #[derive(Serialize)] does not support unit/tuple structs",
                );
            }
            _ => {}
        }
    }

    let (kind, name, body) = match (kind, name, body) {
        (Some(k), Some(n), Some(b)) => (k, n, b),
        _ => return error("serde shim: could not parse type for #[derive(Serialize)]"),
    };

    let generated = if kind == "struct" {
        match named_fields(body) {
            Ok(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value(&self.{f})),"
                        )
                    })
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             ::serde::Value::Object(::std::vec![{}])\n\
                         }}\n\
                     }}",
                    entries.join("\n")
                )
            }
            Err(msg) => return error(msg),
        }
    } else {
        match unit_variants(body) {
            Ok(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        format!(
                            "{name}::{v} => \
                             ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                        )
                    })
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             match self {{ {} }}\n\
                         }}\n\
                     }}",
                    arms.join("\n")
                )
            }
            Err(msg) => return error(msg),
        }
    };

    generated
        .parse()
        .expect("serde shim derive generated invalid Rust")
}

/// Splits a brace body into top-level comma-separated chunks, tracking
/// angle-bracket depth so commas inside `Foo<A, B>` don't split fields.
/// Parenthesized/bracketed sub-streams arrive as single `Group` tokens, so
/// only `<`/`>` need explicit tracking.
fn top_level_chunks(body: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tok in body {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().unwrap().push(tok);
    }
    chunks.retain(|c| {
        c.iter()
            .any(|t| !matches!(t, TokenTree::Punct(p) if p.as_char() == '#'))
    });
    chunks
}

/// Extracts named-field identifiers: in each top-level chunk, the ident
/// immediately preceding the first top-level `:`.
fn named_fields(body: TokenStream) -> Result<Vec<String>, &'static str> {
    let mut fields = Vec::new();
    for chunk in top_level_chunks(body) {
        let mut angle_depth = 0i32;
        let mut last_ident: Option<String> = None;
        let mut found = false;
        for tok in &chunk {
            match tok {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ':' if angle_depth == 0 => {
                        found = true;
                        break;
                    }
                    _ => {}
                },
                TokenTree::Ident(id) => last_ident = Some(id.to_string()),
                _ => {}
            }
        }
        match (found, last_ident) {
            (true, Some(f)) => fields.push(f),
            _ => return Err("serde shim: #[derive(Serialize)] requires named struct fields"),
        }
    }
    Ok(fields)
}

/// Extracts unit-variant identifiers; rejects tuple/struct variants.
fn unit_variants(body: TokenStream) -> Result<Vec<String>, &'static str> {
    let mut variants = Vec::new();
    for chunk in top_level_chunks(body) {
        let mut variant: Option<String> = None;
        let mut tokens = chunk.iter().peekable();
        while let Some(tok) = tokens.next() {
            match tok {
                // Skip attributes (e.g. doc comments): `#` + bracket group.
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    tokens.next();
                }
                TokenTree::Ident(id) => {
                    if variant.is_some() {
                        return Err("serde shim: enum variants must be unit variants");
                    }
                    variant = Some(id.to_string());
                }
                TokenTree::Group(_) => {
                    return Err("serde shim: enum variants must be unit variants");
                }
                _ => {}
            }
        }
        match variant {
            Some(v) => variants.push(v),
            None => return Err("serde shim: could not parse enum variant"),
        }
    }
    Ok(variants)
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!(\"{msg}\");").parse().unwrap()
}
