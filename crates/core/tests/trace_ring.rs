//! Trace-ring behaviour under pressure, and the tracer's end-to-end
//! guarantees against the real PB pipeline: wraparound accounting,
//! concurrent emission without torn events, differential
//! traced-vs-untraced products, and span/`PhaseStats` agreement.
//!
//! Everything runs in ONE `#[test]`: the tracer is process-global state
//! (enabled flag, ring capacity, thread registry), and the default Rust
//! harness runs `#[test]` functions concurrently.

use std::sync::Arc;

use pb_sparse::PlusTimes;
use pb_spgemm::trace::{self, EventKind, SpanName, ThreadTrace, TraceSnapshot};
use pb_spgemm::{Algorithm, SpGemm, Workspace};

/// The ring registered by the named thread, or a panic naming the miss.
fn ring_of<'a>(snap: &'a TraceSnapshot, name: &str) -> &'a ThreadTrace {
    snap.threads
        .iter()
        .find(|t| t.thread_name == name)
        .unwrap_or_else(|| panic!("no ring registered for thread {name:?}"))
}

/// Instants whose `arg` repeats a 32-bit payload in both halves: a torn
/// read (half old event, half new) would break the mirror.
fn mirrored(i: u64) -> u64 {
    i * 0x1_0000_0001
}

#[test]
fn rings_survive_pressure_and_spans_agree_with_phase_stats() {
    // --- Wraparound: the ring keeps the newest events and counts the
    // --- overwritten ones. ------------------------------------------------
    trace::set_ring_capacity(trace::MIN_RING_CAPACITY);
    trace::set_enabled(true);
    const EMITTED: u64 = 40;
    std::thread::Builder::new()
        .name("ring-wrap".into())
        .spawn(|| {
            for i in 0..EMITTED {
                trace::instant(SpanName::GraphBfs, i);
            }
        })
        .unwrap()
        .join()
        .unwrap();
    let snap = trace::snapshot();
    let ring = ring_of(&snap, "ring-wrap");
    let cap = trace::MIN_RING_CAPACITY as u64;
    // A wrapped ring yields capacity - 1 events: the reader discards the
    // one slot a concurrent writer could be mid-overwrite on.
    assert_eq!(
        ring.events.len() as u64,
        cap - 1,
        "ring must hold its full safe window"
    );
    assert_eq!(
        ring.dropped,
        EMITTED - cap,
        "every overwritten event must be counted"
    );
    for (k, e) in ring.events.iter().enumerate() {
        assert_eq!(e.kind, EventKind::Instant);
        assert_eq!(
            e.arg,
            EMITTED - (cap - 1) + k as u64,
            "the retained window must be the newest events, oldest first"
        );
    }

    // --- Concurrent emitters vs concurrent snapshots: no torn events. -----
    trace::set_ring_capacity(1024);
    const THREADS: u64 = 4;
    const EVENTS: u64 = 100;
    let emitters: Vec<_> = (0..THREADS)
        .map(|k| {
            std::thread::Builder::new()
                .name(format!("ring-conc-{k}"))
                .spawn(move || {
                    trace::with_corr(1000 + k, || {
                        for i in 0..EVENTS {
                            trace::instant(SpanName::GraphTriangles, mirrored(i));
                            std::hint::spin_loop();
                        }
                    })
                })
                .unwrap()
        })
        .collect();
    // Snapshot while they emit: every observed event must decode cleanly
    // and carry the mirrored payload.
    for _ in 0..50 {
        let live = trace::snapshot();
        for t in live
            .threads
            .iter()
            .filter(|t| t.thread_name.starts_with("ring-conc-"))
        {
            for e in &t.events {
                assert_eq!(
                    e.arg >> 32,
                    e.arg & 0xffff_ffff,
                    "torn event observed mid-run"
                );
            }
        }
    }
    for h in emitters {
        h.join().unwrap();
    }
    let snap = trace::snapshot();
    for k in 0..THREADS {
        let ring = ring_of(&snap, &format!("ring-conc-{k}"));
        assert_eq!(ring.events.len() as u64, EVENTS);
        assert_eq!(
            ring.dropped, 0,
            "1024-slot ring must not drop {EVENTS} events"
        );
        let mut last_nanos = 0;
        for (i, e) in ring.events.iter().enumerate() {
            assert_eq!(
                e.arg,
                mirrored(i as u64),
                "events must arrive in order, untorn"
            );
            assert_eq!(e.corr, 1000 + k, "correlation id must stick to its scope");
            assert!(
                e.nanos >= last_nanos,
                "per-thread timestamps must be monotonic"
            );
            last_nanos = e.nanos;
        }
    }

    // --- Differential: tracing changes no answer and allocates nothing
    // --- workspace-managed. -----------------------------------------------
    let a = pb_gen::erdos_renyi_square(8, 8, 7);
    let engine = SpGemm::new()
        .algorithm(Algorithm::Pb)
        .workspace(Arc::new(Workspace::new()));
    trace::set_enabled(false);
    for _ in 0..2 {
        engine.multiply_with_profile::<PlusTimes<f64>>(&a, &a);
    }
    let (untraced, untraced_profile) = engine.multiply_with_profile::<PlusTimes<f64>>(&a, &a);
    assert_eq!(
        untraced_profile.stats.bytes_allocated, 0,
        "the warmed workspace must serve the untraced multiply"
    );
    trace::set_enabled(true);
    let (traced, traced_profile) = engine.multiply_with_profile::<PlusTimes<f64>>(&a, &a);
    assert_eq!(
        traced_profile.stats.bytes_allocated, 0,
        "enabling the tracer must not cost workspace-managed allocations"
    );
    assert_eq!(traced, untraced, "tracing must never change the product");

    // --- Span durations agree with PhaseStats. ----------------------------
    // Each phase span brackets exactly the `Instant` window feeding
    // `PhaseTimings`, so the two clocks must agree to within 5% (plus a
    // small absolute floor for sub-100us phases on a noisy scheduler).
    const CORR: u64 = 4242;
    let (_, profile) = trace::with_corr(CORR, || {
        engine.multiply_with_profile::<PlusTimes<f64>>(&a, &a)
    });
    let snap = trace::snapshot();
    trace::set_enabled(false);
    let span_nanos = |name: SpanName| -> u64 {
        let mut total = 0u64;
        for t in &snap.threads {
            let mut begin = None;
            for e in t.events.iter().filter(|e| e.corr == CORR && e.name == name) {
                match e.kind {
                    EventKind::Begin => begin = Some(e.nanos),
                    EventKind::End => {
                        let b = begin
                            .take()
                            .expect("E without B for a thread-confined span");
                        total += e.nanos - b;
                    }
                    _ => {}
                }
            }
        }
        total
    };
    let timings = &profile.timings;
    let phases = [
        (SpanName::PhaseSymbolic, timings.symbolic),
        (SpanName::PhaseExpand, timings.expand),
        (SpanName::PhaseSort, timings.sort),
        (SpanName::PhaseCompress, timings.compress),
        (SpanName::PhaseAssemble, timings.assemble),
    ];
    let mut span_sum = 0u64;
    let mut stat_sum = 0u64;
    for (name, timing) in phases {
        let span = span_nanos(name);
        let stat = timing.as_nanos() as u64;
        assert!(span > 0, "no {} span found for corr {CORR}", name.label());
        let diff = span.abs_diff(stat);
        assert!(
            diff as f64 <= (stat as f64 * 0.05).max(20_000.0),
            "{} span ({span}ns) and PhaseStats ({stat}ns) disagree by {diff}ns",
            name.label()
        );
        span_sum += span;
        stat_sum += stat;
    }
    assert!(
        span_sum.abs_diff(stat_sum) as f64 <= stat_sum as f64 * 0.05,
        "phase span total ({span_sum}ns) strays more than 5% from PhaseStats ({stat_sum}ns)"
    );
}
