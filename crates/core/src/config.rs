//! Tuning knobs of PB-SpGEMM.
//!
//! The paper exposes two tunables (Sec. V-A): the number of propagation
//! bins (`nbins`, chosen so one bin's tuples fit in L2 cache) and the local
//! bin width (512 bytes by default, a few cache lines).  This reproduction
//! additionally exposes the bin→row mapping, the expand strategy and the
//! sort algorithm so they can be ablated in the benchmark suite — and an
//! [`AutoTune`] feedback policy that adapts the local-bin width *between*
//! multiplies from the telemetry of
//! [`PhaseStats`](crate::profile::PhaseStats), so a long-running engine
//! (iterated graph kernels, repeated products of similar shape) converges
//! to the right flush granularity instead of trusting the static default.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::profile::SpGemmProfile;
use crate::workspace::Workspace;

/// How output rows are mapped onto propagation bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinMapping {
    /// Contiguous row ranges: `bin = row / rows_per_bin` (default).
    ///
    /// This is what the paper's key-compression discussion (Sec. III-D)
    /// assumes — rows within a bin form a small contiguous range, so the row
    /// part of the sort key needs only `log2(rows_per_bin)` bits.
    Range,
    /// Round-robin: `bin = row % nbins`, as literally written in
    /// Algorithm 2.  Spreads skewed rows more evenly across bins but defeats
    /// key compression (the full row index must be kept in the key).
    Modulo,
    /// Contiguous row ranges with *data-dependent* boundaries chosen by the
    /// symbolic phase so that every bin receives roughly the same number of
    /// expanded tuples — the paper's "bins with variable ranges of rows"
    /// answer to skewed (R-MAT-like) degree distributions (Sec. III-D and
    /// the scalability discussion in Sec. V-C).  Keeps the key-compression
    /// property of [`BinMapping::Range`] because every bin still covers a
    /// contiguous row range.
    Balanced,
}

/// How expanded tuples travel from the generating thread to the global bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpandStrategy {
    /// The paper's design: the symbolic phase sizes every global bin
    /// exactly, threads buffer tuples in small local bins and flush them
    /// with an atomically reserved range + `memcpy` into uninitialised
    /// global-bin memory.
    Reserved,
    /// Safe fallback used for differential testing: every thread keeps
    /// per-bin `Vec`s which are concatenated after the parallel loop.
    ThreadLocal,
}

/// Which sorting algorithm orders the tuples inside a bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortAlgorithm {
    /// Least-significant-digit radix sort with a scratch buffer, one pass
    /// per significant key byte (default; matches the paper's byte-wise
    /// radix sort with the adaptive number of passes).
    LsdRadix,
    /// In-place American-flag (MSD) radix sort, as cited by the paper
    /// (McIlroy et al.).
    AmericanFlag,
    /// `slice::sort_unstable_by_key` — a comparison sort used as the
    /// correctness oracle and as an ablation point.
    Comparison,
}

/// Size of one cache line in bytes on every platform this reproduction
/// targets (x86-64 and aarch64).  Local-bin flushes are sized in whole
/// multiples of this so the propagation-blocked writes of the expand phase
/// hit memory a full line at a time.
pub const CACHE_LINE_BYTES: usize = 64;

/// Default local-bin width in cache lines.  Eight lines × 64 B = 512 B, the
/// paper's default (Sec. V-A): large enough that a flush amortises the
/// reservation `fetch_add`, small enough that one local bin per global bin
/// still fits the bins of a thread in L1/L2.
pub const DEFAULT_LOCAL_BIN_CACHE_LINES: usize = 8;

/// When the compress phase may split one oversized bin at key boundaries so
/// that [`compress_bins`](crate::compress::compress_bins) parallelises
/// *inside* the bin instead of only across bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressSplit {
    /// Split large bins only when there are fewer bins than pool threads —
    /// the regime where per-bin parallelism cannot keep the pool busy
    /// (mirrors the sort phase's in-bin parallel schedule).  Default.
    Auto,
    /// Never split: the paper's strictly per-bin compress schedule.
    Never,
    /// Split every bin above the minimum size regardless of the thread
    /// count (differential testing and ablation).
    Always,
}

// ---------------------------------------------------------------------------
// AutoTune
// ---------------------------------------------------------------------------

/// Smallest local-bin width the autotuner will select (one cache line).
pub const AUTOTUNE_MIN_LINES: usize = 1;

/// Largest local-bin width the autotuner will select (64 lines = 4 KiB).
pub const AUTOTUNE_MAX_LINES: usize = 64;

/// Private-cache budget for one thread's whole set of local bins.  When
/// `nbins × local_bin_bytes` outgrows this the flush targets thrash the
/// thread's L1/L2 and the policy shrinks the bins; growth is only allowed
/// while the doubled footprint still fits.  256 KiB leaves the rest of a
/// typical 1 MiB per-core L2 (Table IV) to the global-bin flush destinations.
pub const AUTOTUNE_LOCAL_BINS_BUDGET_BYTES: usize = 256 * 1024;

/// Mean flush size (bytes) below which flushes are considered too small:
/// each reservation `fetch_add` then moves fewer than five cache lines and
/// the propagation-blocking amortisation is lost, so the policy grows the
/// bins.  The paper's 512 B default produces ~512 B flushes in steady state,
/// comfortably above this threshold, so a well-tuned configuration is a
/// fixed point.
pub const AUTOTUNE_GROW_FLUSH_BYTES: f64 = 320.0;

/// Fraction of flushes that must be capacity-triggered before small flushes
/// are blamed on the capacity.  Below this, small flushes are end-of-segment
/// partials (the workload never fills a bin) and growing would not help.
pub const AUTOTUNE_FULL_FLUSH_FRACTION: f64 = 0.5;

/// Bin-occupancy skew ([`PhaseStats::occupancy_skew`](crate::profile::PhaseStats::occupancy_skew),
/// fullest bin over mean bin) at or above which the autotuner doubles its
/// *bin-count boost*: one overloaded bin serialises the sort and compress
/// phases, and finer bins shrink the fullest bin toward the heaviest single
/// row's flop.
pub const AUTOTUNE_SKEW_SPLIT: f64 = 4.0;

/// Skew at or below which a previously boosted bin count steps back down:
/// the occupancy is essentially flat, so the extra bins only add per-bin
/// overhead (more, smaller sort/compress units and more local-bin state per
/// thread) without improving balance.
pub const AUTOTUNE_SKEW_FLAT: f64 = 1.25;

/// Largest factor by which the autotuner will multiply the L2-derived bin
/// count.  8× keeps the packed sort keys within one extra radix byte of the
/// unboosted layout in the worst case.
pub const AUTOTUNE_MAX_NBINS_BOOST: usize = 8;

/// Feedback policy adapting the local-bin width between multiplies.
///
/// Shared by every clone of an auto-tuned [`PbConfig`] (the config holds it
/// behind an [`Arc`]), so repeated multiplies through the same config (an
/// [`SpGemm`](crate::SpGemm) engine, or the profiled entry points) observe
/// each other's telemetry:
///
/// * **grow** — the measured flush rate is high (mean flush below
///   [`AUTOTUNE_GROW_FLUSH_BYTES`]) while most flushes are capacity-triggered
///   and the *doubled* local-bin footprint still fits
///   [`AUTOTUNE_LOCAL_BINS_BUDGET_BYTES`] (i.e. the bin count is low enough
///   to afford wider bins);
/// * **shrink** — the current footprint `nbins × local_bin_bytes` already
///   exceeds the budget (many bins pressuring the private cache).
///
/// One step doubles or halves the line count, clamped to
/// [`AUTOTUNE_MIN_LINES`]..=[`AUTOTUNE_MAX_LINES`]; repeated observations of
/// a stable workload therefore converge in `O(log)` multiplies and then stop
/// adjusting.
/// Additionally, the policy adapts the **bin count** between multiplies of
/// similar shape: when the occupancy skew telemetry shows one bin hoarding
/// the flop ([`AUTOTUNE_SKEW_SPLIT`]), the L2-derived `nbins` rule is
/// multiplied by a doubling *boost* (clamped to
/// [`AUTOTUNE_MAX_NBINS_BOOST`]), and the boost steps back down once the
/// occupancy flattens out ([`AUTOTUNE_SKEW_FLAT`]).  The boost only applies
/// when [`PbConfig::nbins`] is `None` — an explicit bin count is always
/// honoured verbatim — and is published with the same compare-exchange
/// discipline as the width, so concurrent observers cannot double-step.
#[derive(Debug)]
pub struct AutoTune {
    /// Current local-bin width in cache lines.
    lines: AtomicUsize,
    /// Budget for one thread's local bins (bytes).
    budget_bytes: usize,
    /// Current multiplier applied to the derived bin count (power of two,
    /// `1..=`[`AUTOTUNE_MAX_NBINS_BOOST`]).
    nbins_boost: AtomicUsize,
    /// Profiles observed so far.
    observations: AtomicUsize,
    /// Width adjustments (grow or shrink steps) applied so far.
    adjustments: AtomicUsize,
    /// Bin-count boost adjustments applied so far.
    bin_adjustments: AtomicUsize,
}

impl Default for AutoTune {
    fn default() -> Self {
        Self::new()
    }
}

impl AutoTune {
    /// Starts from the paper's default width
    /// ([`DEFAULT_LOCAL_BIN_CACHE_LINES`]).
    pub fn new() -> Self {
        Self::with_initial_lines(DEFAULT_LOCAL_BIN_CACHE_LINES)
    }

    /// Starts from an explicit width in cache lines (clamped to the
    /// autotuner's range).
    pub fn with_initial_lines(lines: usize) -> Self {
        AutoTune {
            lines: AtomicUsize::new(lines.clamp(AUTOTUNE_MIN_LINES, AUTOTUNE_MAX_LINES)),
            budget_bytes: AUTOTUNE_LOCAL_BINS_BUDGET_BYTES,
            nbins_boost: AtomicUsize::new(1),
            observations: AtomicUsize::new(0),
            adjustments: AtomicUsize::new(0),
            bin_adjustments: AtomicUsize::new(0),
        }
    }

    /// Current local-bin width in cache lines.
    pub fn lines(&self) -> usize {
        self.lines.load(Ordering::Relaxed)
    }

    /// Current local-bin width in bytes (what the expand phase consumes).
    pub fn local_bin_bytes(&self) -> usize {
        self.lines() * CACHE_LINE_BYTES
    }

    /// Number of profiles observed.
    pub fn observations(&self) -> usize {
        self.observations.load(Ordering::Relaxed)
    }

    /// Number of grow/shrink steps applied.
    pub fn adjustments(&self) -> usize {
        self.adjustments.load(Ordering::Relaxed)
    }

    /// Current multiplier on the L2-derived bin count (1 = unboosted).
    pub fn nbins_boost(&self) -> usize {
        self.nbins_boost.load(Ordering::Relaxed)
    }

    /// Number of bin-count boost steps applied.
    pub fn bin_adjustments(&self) -> usize {
        self.bin_adjustments.load(Ordering::Relaxed)
    }

    /// Feeds one multiplication's profile back into the policy; returns the
    /// new width in cache lines if this observation changed it.
    ///
    /// Concurrent observers (multiplies running in parallel through clones
    /// of one tuned config) race benignly: the adjustment is published with
    /// a compare-exchange against the width this decision was computed
    /// from, so a step that lost the race is dropped rather than applied on
    /// top of another thread's step — the width moves at most one step per
    /// generation of evidence and never double-steps from stale telemetry.
    pub fn observe(&self, profile: &SpGemmProfile) -> Option<usize> {
        self.observations.fetch_add(1, Ordering::Relaxed);
        let stats = &profile.stats;

        // Bin-count feedback first: it reads the symbolic phase's occupancy
        // telemetry, which exists even when the expand strategy produced no
        // flushes (ThreadLocal runs feed this knob too).
        if stats.mean_bin_flop > 0.0 {
            let boost = self.nbins_boost();
            let skew = stats.occupancy_skew();
            if skew >= AUTOTUNE_SKEW_SPLIT && boost < AUTOTUNE_MAX_NBINS_BOOST {
                self.publish_boost(boost, (boost * 2).min(AUTOTUNE_MAX_NBINS_BOOST));
            } else if skew <= AUTOTUNE_SKEW_FLAT && boost > 1 {
                self.publish_boost(boost, (boost / 2).max(1));
            }
        }

        if stats.flushes == 0 {
            // ThreadLocal strategy or an empty product: no flush telemetry
            // for the width knob.
            return None;
        }
        let lines = self.lines();
        let bin_bytes = lines * CACHE_LINE_BYTES;
        let footprint = profile.nbins.saturating_mul(bin_bytes);

        // Shrink: this thread's local bins outgrow the private-cache budget.
        if footprint > self.budget_bytes && lines > AUTOTUNE_MIN_LINES {
            let new = (lines / 2).max(AUTOTUNE_MIN_LINES);
            return self.publish(lines, new);
        }

        // Grow: flushes are frequent and tiny, they are capacity-triggered
        // (not end-of-segment partials), and doubling still fits the budget.
        let mean_flush_bytes = stats.mean_flush_tuples() * profile.tuple_bytes as f64;
        if mean_flush_bytes < AUTOTUNE_GROW_FLUSH_BYTES
            && stats.full_flush_fraction() >= AUTOTUNE_FULL_FLUSH_FRACTION
            && footprint.saturating_mul(2) <= self.budget_bytes
            && lines < AUTOTUNE_MAX_LINES
        {
            let new = (lines * 2).min(AUTOTUNE_MAX_LINES);
            return self.publish(lines, new);
        }
        None
    }

    /// Publishes an adjustment computed from width `from`; drops it if a
    /// concurrent observer adjusted the width in the meantime.
    fn publish(&self, from: usize, to: usize) -> Option<usize> {
        match self
            .lines
            .compare_exchange(from, to, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => {
                self.adjustments.fetch_add(1, Ordering::Relaxed);
                Some(to)
            }
            Err(_) => None,
        }
    }

    /// Publishes a bin-count boost step computed from `from`, with the same
    /// lost-race-drops-the-step discipline as [`AutoTune::publish`].
    fn publish_boost(&self, from: usize, to: usize) {
        if self
            .nbins_boost
            .compare_exchange(from, to, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.bin_adjustments.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Configuration of a PB-SpGEMM multiplication.
///
/// Cheap to clone: the only non-scalar fields are the optional shared
/// [`AutoTune`] and [`Workspace`] handles (both [`Arc`]s), which clones
/// share on purpose so that repeated multiplies through any clone of the
/// config feed the same tuning policy and reuse the same buffers.
#[derive(Debug, Clone)]
pub struct PbConfig {
    /// Number of global bins.  `None` (default) derives it from the flop
    /// count and [`PbConfig::l2_bytes`] exactly as the paper's symbolic
    /// phase does: `nbins = ceil(flop · bytes_per_tuple / L2)`, i.e. the
    /// smallest bin count at which one bin's expanded tuples fit in the L2
    /// cache of the core that will later sort them.
    pub nbins: Option<usize>,
    /// Size of each thread-private local bin in bytes.  The default is
    /// derived, not magic: [`DEFAULT_LOCAL_BIN_CACHE_LINES`] ×
    /// [`CACHE_LINE_BYTES`] = 512 B.  The expand phase converts this byte
    /// budget into a tuple capacity from the actual `Entry<V>` size and
    /// rounds it to whole cache lines (see
    /// [`local_bin_capacity`](crate::expand::local_bin_capacity)).
    pub local_bin_bytes: usize,
    /// Assumed L2 cache capacity per core in bytes, used to auto-derive
    /// `nbins` (default 1 MiB, the Skylake-SP value from Table IV).
    pub l2_bytes: usize,
    /// Row→bin mapping (default [`BinMapping::Range`]).
    pub bin_mapping: BinMapping,
    /// Expand strategy (default [`ExpandStrategy::Reserved`]).
    pub expand: ExpandStrategy,
    /// In-bin sort algorithm (default [`SortAlgorithm::LsdRadix`]).
    pub sort: SortAlgorithm,
    /// Number of rayon worker threads; `None` uses the global pool.
    pub threads: Option<usize>,
    /// Number of NUMA domains to partition the global bins (and the expand
    /// phase's column ranges) over.  `None` (default) asks the current
    /// rayon pool, which discovers the machine's topology and honours
    /// `PB_NUMA_DOMAINS`.  An explicit value is a *cap* relative to the
    /// executing pool's domain labels (see [`PbConfig::resolve_domains`]);
    /// to force an emulated multi-domain topology pair it with
    /// [`PbConfig::threads`], which builds a dedicated pool whose
    /// worker↔domain labels match.  1 disables partitioning.
    pub numa_domains: Option<usize>,
    /// Whether the compress phase may split oversized bins at key
    /// boundaries (default [`CompressSplit::Auto`]).
    pub compress_split: CompressSplit,
    /// SIMD dispatch level for the sort/expand kernels.  `None` (default)
    /// uses the process-wide level — runtime detection, overridable via
    /// `PB_SIMD` (see [`crate::simd::active`]).  An explicit level is
    /// clamped to what the host supports and never exceeds it, so a config
    /// can force the scalar oracle path but cannot force an illegal
    /// instruction.  Per-config forcing exists for tests and benches that
    /// compare levels inside one process, race-free.
    pub simd: Option<crate::simd::Isa>,
    /// Optional shared autotuning policy.  When set,
    /// [`PbConfig::effective_local_bin_bytes`] reads the policy's current
    /// width instead of [`PbConfig::local_bin_bytes`], and every profiled
    /// multiply feeds its telemetry back via [`AutoTune::observe`].
    pub auto: Option<Arc<AutoTune>>,
    /// Optional shared [`Workspace`]: the reusable arena every multiply
    /// through this configuration draws its expand-phase tuple buffer,
    /// NUMA-slabbed sort scratch and staging vectors from (and returns them
    /// to), so repeated multiplies of similar shape stop paying the
    /// allocation and first-touch bill.  Clones share the handle on
    /// purpose, exactly like [`PbConfig::auto`]; concurrent multiplies
    /// through clones stay correct (late callers fall back to fresh
    /// buffers for that call).  `None` (default) allocates per multiply.
    pub workspace: Option<Arc<Workspace>>,
}

impl PartialEq for PbConfig {
    fn eq(&self, other: &Self) -> bool {
        let same_auto = match (&self.auto, &other.auto) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        let same_workspace = match (&self.workspace, &other.workspace) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        same_auto
            && same_workspace
            && self.nbins == other.nbins
            && self.local_bin_bytes == other.local_bin_bytes
            && self.l2_bytes == other.l2_bytes
            && self.bin_mapping == other.bin_mapping
            && self.expand == other.expand
            && self.sort == other.sort
            && self.threads == other.threads
            && self.numa_domains == other.numa_domains
            && self.compress_split == other.compress_split
            && self.simd == other.simd
    }
}

impl Default for PbConfig {
    fn default() -> Self {
        PbConfig {
            nbins: None,
            local_bin_bytes: DEFAULT_LOCAL_BIN_CACHE_LINES * CACHE_LINE_BYTES,
            l2_bytes: 1024 * 1024,
            bin_mapping: BinMapping::Range,
            expand: ExpandStrategy::Reserved,
            sort: SortAlgorithm::LsdRadix,
            threads: None,
            numa_domains: None,
            compress_split: CompressSplit::Auto,
            simd: None,
            auto: None,
            workspace: None,
        }
    }
}

impl PbConfig {
    /// The paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// The default configuration with the [`AutoTune`] feedback loop
    /// enabled: every profiled multiply adapts the local-bin width for the
    /// next one, starting from the paper's 512 B default.
    pub fn auto_tuned() -> Self {
        PbConfig {
            auto: Some(Arc::new(AutoTune::new())),
            ..Self::default()
        }
    }

    /// Auto-tuned configuration starting from an explicit local-bin width
    /// in cache lines (used by `bench_pb --tune` to show the convergence
    /// trajectory from a deliberately bad starting point).
    pub fn auto_tuned_from_lines(lines: usize) -> Self {
        PbConfig {
            auto: Some(Arc::new(AutoTune::with_initial_lines(lines))),
            ..Self::default()
        }
    }

    /// The shared autotuning policy, if enabled.
    pub fn auto_tune(&self) -> Option<&AutoTune> {
        self.auto.as_deref()
    }

    /// Attaches a shared [`Workspace`]: every multiply through this
    /// configuration (and its clones) reuses the workspace's buffers
    /// instead of allocating, amortising the memory setup of repeated
    /// multiplies.  See [`crate::workspace`] for what is pooled and how the
    /// sort scratch stays NUMA-local.
    pub fn with_workspace(mut self, workspace: Arc<Workspace>) -> Self {
        self.workspace = Some(workspace);
        self
    }

    /// The default configuration with a fresh [`Workspace`] attached —
    /// the one-liner for "I am about to multiply in a loop".
    pub fn reusing() -> Self {
        Self::default().with_workspace(Arc::new(Workspace::new()))
    }

    /// The shared workspace, if one is attached.
    pub fn workspace(&self) -> Option<&Arc<Workspace>> {
        self.workspace.as_ref()
    }

    /// The local-bin width the next multiply will actually use: the
    /// autotuner's current width when autotuning is enabled, the static
    /// [`PbConfig::local_bin_bytes`] otherwise.
    pub fn effective_local_bin_bytes(&self) -> usize {
        match &self.auto {
            Some(tuner) => tuner.local_bin_bytes(),
            None => self.local_bin_bytes,
        }
    }

    /// Sets an explicit number of global bins.
    pub fn with_nbins(mut self, nbins: usize) -> Self {
        self.nbins = Some(nbins.max(1));
        self
    }

    /// Sets the local bin width in bytes.
    pub fn with_local_bin_bytes(mut self, bytes: usize) -> Self {
        self.local_bin_bytes = bytes.max(16);
        self
    }

    /// Sets the assumed per-core L2 capacity used to auto-size bins.
    pub fn with_l2_bytes(mut self, bytes: usize) -> Self {
        self.l2_bytes = bytes.max(4096);
        self
    }

    /// Sets the row→bin mapping.
    pub fn with_bin_mapping(mut self, mapping: BinMapping) -> Self {
        self.bin_mapping = mapping;
        self
    }

    /// Sets the expand strategy.
    pub fn with_expand(mut self, strategy: ExpandStrategy) -> Self {
        self.expand = strategy;
        self
    }

    /// Sets the in-bin sort algorithm.
    pub fn with_sort(mut self, sort: SortAlgorithm) -> Self {
        self.sort = sort;
        self
    }

    /// Sets the number of worker threads (a dedicated rayon pool is built
    /// for the multiplication).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Sets the compress-phase bin-splitting policy.
    pub fn with_compress_split(mut self, split: CompressSplit) -> Self {
        self.compress_split = split;
        self
    }

    /// Forces the SIMD dispatch level for this configuration's multiplies
    /// (clamped to the host's support at resolve time; see
    /// [`PbConfig::simd`]).
    pub fn with_simd(mut self, isa: crate::simd::Isa) -> Self {
        self.simd = Some(isa);
        self
    }

    /// The [`Isa`](crate::simd::Isa) level the next multiply will dispatch
    /// its sort/expand kernels at: the explicit [`PbConfig::simd`] clamped
    /// to the host's support when set, the process-wide
    /// [`active`](crate::simd::active) level otherwise.
    pub fn resolve_simd(&self) -> crate::simd::Isa {
        crate::simd::resolve(self.simd)
    }

    /// Forces the NUMA-domain count for this configuration's multiplies
    /// (clamped to at least 1; see [`PbConfig::numa_domains`]).
    pub fn with_numa_domains(mut self, domains: usize) -> Self {
        self.numa_domains = Some(domains.max(1));
        self
    }

    /// The NUMA-domain count the next multiply will partition its bins
    /// over: the explicit [`PbConfig::numa_domains`] when set, the current
    /// rayon pool's domain count otherwise — never more than the pool's
    /// own domain-label count or thread count.
    ///
    /// The pool clamp matters: a partition wider than the executing pool's
    /// labels would create claim ranges no worker owns, so their blocks
    /// would drain only through the slow steal-patience fallback and every
    /// one of their flushes would count remote.  An explicit override can
    /// therefore *narrow* the partition, but widening it requires a pool
    /// that actually carries the labels — either `PB_NUMA_DOMAINS` (global
    /// pool) or [`PbConfig::threads`] (dedicated pool built with matching
    /// domains).
    pub fn resolve_domains(&self) -> usize {
        self.numa_domains
            .unwrap_or(usize::MAX)
            .min(rayon::current_num_domains())
            .clamp(1, rayon::current_num_threads())
    }

    /// Derives the number of global bins for a multiplication with `flop`
    /// expanded tuples of `tuple_bytes` bytes each over `nrows` output rows,
    /// following the paper's rule (`flop · bytes / L2`) times the
    /// autotuner's current bin-count boost (1 without autotuning — see
    /// [`AutoTune::nbins_boost`]), clamped so that every bin covers at
    /// least one row.  An explicit [`PbConfig::nbins`] is honoured verbatim
    /// (clamped to the row count only).
    pub fn resolve_nbins(&self, flop: u64, tuple_bytes: usize, nrows: usize) -> usize {
        let nbins = match self.nbins {
            Some(n) => n,
            None => {
                let bytes = flop.saturating_mul(tuple_bytes as u64);
                let derived = (bytes.div_ceil(self.l2_bytes.max(1) as u64) as usize).max(1);
                let boost = self.auto.as_deref().map_or(1, AutoTune::nbins_boost);
                derived.saturating_mul(boost)
            }
        };
        nbins.clamp(1, nrows.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = PbConfig::default();
        // 8 cache lines × 64 B: derived, but equal to the paper's 512 B.
        assert_eq!(c.local_bin_bytes, 512);
        assert_eq!(c.bin_mapping, BinMapping::Range);
        assert_eq!(c.expand, ExpandStrategy::Reserved);
        assert_eq!(c.sort, SortAlgorithm::LsdRadix);
        assert_eq!(c.nbins, None);
        assert_eq!(c.threads, None);
    }

    #[test]
    fn builder_methods_clamp_inputs() {
        let c = PbConfig::new()
            .with_nbins(0)
            .with_local_bin_bytes(1)
            .with_l2_bytes(1)
            .with_threads(0);
        assert_eq!(c.nbins, Some(1));
        assert_eq!(c.local_bin_bytes, 16);
        assert_eq!(c.l2_bytes, 4096);
        assert_eq!(c.threads, Some(1));
    }

    #[test]
    fn resolve_nbins_follows_the_papers_rule() {
        let c = PbConfig::new().with_l2_bytes(1 << 20);
        // 16M tuples of 16 bytes = 256 MiB -> 256 bins.
        assert_eq!(c.resolve_nbins(16 << 20, 16, 1 << 20), 256);
        // Tiny multiplications collapse to a single bin.
        assert_eq!(c.resolve_nbins(10, 16, 1 << 20), 1);
        // Explicit nbins wins but is clamped to the number of rows.
        let c = PbConfig::new().with_nbins(4096);
        assert_eq!(c.resolve_nbins(1 << 30, 16, 100), 100);
        assert_eq!(c.resolve_nbins(1 << 30, 16, 1 << 20), 4096);
        // Zero-flop products still get one bin.
        assert_eq!(PbConfig::new().resolve_nbins(0, 16, 8), 1);
    }

    use crate::profile::{PhaseStats, PhaseTimings, FLUSH_HIST_BUCKETS};

    /// Synthetic profile with exactly the telemetry the policy reads.
    fn synthetic_profile(
        nbins: usize,
        flushes: u64,
        flushed_tuples: u64,
        full_flushes: u64,
    ) -> SpGemmProfile {
        let mut hist = [0u64; FLUSH_HIST_BUCKETS];
        hist[FLUSH_HIST_BUCKETS - 1] = full_flushes;
        hist[0] = flushes - full_flushes;
        SpGemmProfile {
            timings: PhaseTimings::default(),
            flop: flushed_tuples,
            nnz_a: 0,
            nnz_b: 0,
            nnz_c: flushed_tuples as usize,
            nbins,
            key_bytes: 4,
            tuple_bytes: 16,
            coo_bytes: 16,
            stats: PhaseStats {
                local_bin_capacity: 8,
                flushes,
                flushed_tuples,
                flush_fill_hist: hist,
                expand_segments: 4,
                min_segment_flushes: flushes / 8,
                max_segment_flushes: flushes / 2,
                max_bin_flop: flushed_tuples / nbins.max(1) as u64,
                mean_bin_flop: flushed_tuples as f64 / nbins.max(1) as f64,
                ..PhaseStats::default()
            },
        }
    }

    #[test]
    fn autotune_grows_on_a_high_flush_rate_trace_with_few_bins() {
        // 2 lines = 128 B bins: flushes carry 8 × 16 B = 128 B < the 320 B
        // grow threshold, 90% capacity-triggered, few bins -> grow.
        let tuner = AutoTune::with_initial_lines(2);
        let trace = synthetic_profile(16, 1000, 8000, 900);
        assert_eq!(tuner.observe(&trace), Some(4));
        assert_eq!(tuner.lines(), 4);
        // Same trace again keeps growing (still tiny flushes)...
        assert_eq!(tuner.observe(&trace), Some(8));
        // ...until a trace with healthy flush sizes is a fixed point:
        // 32 tuples × 16 B = 512 B >= 320 B.
        let healthy = synthetic_profile(16, 250, 8000, 240);
        assert_eq!(tuner.observe(&healthy), None);
        assert_eq!(tuner.lines(), 8);
        assert_eq!(tuner.observations(), 3);
        assert_eq!(tuner.adjustments(), 2);
    }

    #[test]
    fn autotune_shrinks_under_cache_pressure_with_many_bins() {
        // 8 lines × 64 B × 4096 bins = 2 MiB of local bins per thread,
        // far over the 256 KiB budget -> shrink, repeatedly, until the
        // footprint fits (4096 bins × 64 B = 256 KiB at 1 line).
        let tuner = AutoTune::new();
        assert_eq!(tuner.lines(), DEFAULT_LOCAL_BIN_CACHE_LINES);
        let trace = synthetic_profile(4096, 10_000, 320_000, 9000);
        assert_eq!(tuner.observe(&trace), Some(4));
        assert_eq!(tuner.observe(&trace), Some(2));
        assert_eq!(tuner.observe(&trace), Some(1));
        // At the floor the policy stops shrinking even under pressure.
        assert_eq!(tuner.observe(&trace), None);
        assert_eq!(tuner.lines(), AUTOTUNE_MIN_LINES);
    }

    #[test]
    fn autotune_ignores_traces_without_flush_telemetry() {
        // ThreadLocal expansion (or an empty product) reports zero flushes;
        // the policy must not react to the absence of evidence.
        let tuner = AutoTune::with_initial_lines(2);
        let trace = synthetic_profile(16, 0, 0, 0);
        assert_eq!(tuner.observe(&trace), None);
        assert_eq!(tuner.lines(), 2);
    }

    #[test]
    fn autotune_does_not_grow_on_end_of_segment_partials() {
        // Small flushes that are NOT capacity-triggered (tiny workload:
        // every flush is a flush_all partial) must not trigger growth.
        let tuner = AutoTune::with_initial_lines(2);
        let trace = synthetic_profile(16, 1000, 8000, 100);
        assert_eq!(tuner.observe(&trace), None);
        assert_eq!(tuner.lines(), 2);
    }

    #[test]
    fn autotune_boosts_bin_count_on_skewed_occupancy_and_steps_back() {
        let tuner = AutoTune::new();
        assert_eq!(tuner.nbins_boost(), 1);
        // Healthy flush widths (no width interference), one bin hoarding
        // 8x the mean flop.
        let mut skewed = synthetic_profile(16, 250, 8000, 240);
        skewed.stats.max_bin_flop = (skewed.stats.mean_bin_flop * 8.0) as u64;
        tuner.observe(&skewed);
        assert_eq!(tuner.nbins_boost(), 2);
        tuner.observe(&skewed);
        tuner.observe(&skewed);
        assert_eq!(tuner.nbins_boost(), 8, "doubles per observation");
        // Clamped at the maximum boost.
        tuner.observe(&skewed);
        assert_eq!(tuner.nbins_boost(), AUTOTUNE_MAX_NBINS_BOOST);
        assert_eq!(tuner.bin_adjustments(), 3);

        // Flat occupancy steps the boost back down...
        let flat = synthetic_profile(16, 250, 8000, 240); // skew exactly 1.0
        tuner.observe(&flat);
        assert_eq!(tuner.nbins_boost(), 4);
        // ...while moderate skew between the thresholds is a fixed point.
        let mut mid = synthetic_profile(16, 250, 8000, 240);
        mid.stats.max_bin_flop = (mid.stats.mean_bin_flop * 2.0) as u64;
        tuner.observe(&mid);
        assert_eq!(tuner.nbins_boost(), 4);
        assert_eq!(tuner.bin_adjustments(), 4);
    }

    #[test]
    fn autotune_bin_feedback_ignores_empty_occupancy_but_not_threadlocal() {
        // No occupancy telemetry at all (empty product): no reaction.
        let tuner = AutoTune::new();
        let mut empty = synthetic_profile(16, 0, 0, 0);
        empty.stats.mean_bin_flop = 0.0;
        empty.stats.max_bin_flop = 0;
        tuner.observe(&empty);
        assert_eq!(tuner.nbins_boost(), 1);
        // A ThreadLocal run has no flushes but valid occupancy: the bin
        // knob still reacts while the width knob stays put.
        let mut tl = synthetic_profile(16, 0, 0, 0);
        tl.stats.mean_bin_flop = 100.0;
        tl.stats.max_bin_flop = 800;
        assert_eq!(tuner.observe(&tl), None, "no width step without flushes");
        assert_eq!(tuner.nbins_boost(), 2);
        assert_eq!(tuner.lines(), DEFAULT_LOCAL_BIN_CACHE_LINES);
    }

    #[test]
    fn resolve_nbins_applies_the_autotuned_boost() {
        let cfg = PbConfig::auto_tuned().with_l2_bytes(1 << 20);
        // 16M tuples of 16 bytes = 256 MiB -> 256 bins unboosted.
        assert_eq!(cfg.resolve_nbins(16 << 20, 16, 1 << 20), 256);
        let mut skewed = synthetic_profile(256, 1000, 32_000, 900);
        skewed.stats.max_bin_flop = (skewed.stats.mean_bin_flop * 8.0) as u64;
        cfg.auto_tune().unwrap().observe(&skewed);
        assert_eq!(cfg.auto_tune().unwrap().nbins_boost(), 2);
        assert_eq!(cfg.resolve_nbins(16 << 20, 16, 1 << 20), 512);
        // An explicit bin count is honoured verbatim, boost or not.
        let explicit = cfg.clone().with_nbins(100);
        assert_eq!(explicit.resolve_nbins(16 << 20, 16, 1 << 20), 100);
        // The row clamp still applies on top of the boost.
        assert_eq!(cfg.resolve_nbins(16 << 20, 16, 300), 300);
    }

    #[test]
    fn workspace_configs_share_the_handle_across_clones() {
        let cfg = PbConfig::reusing();
        let clone = cfg.clone();
        assert_eq!(cfg, clone, "clones share the same workspace");
        assert!(Arc::ptr_eq(
            cfg.workspace().unwrap(),
            clone.workspace().unwrap()
        ));
        // A fresh workspace is a *different* configuration.
        assert_ne!(cfg, PbConfig::reusing());
        assert_ne!(cfg, PbConfig::default());
        assert!(PbConfig::default().workspace().is_none());
    }

    #[test]
    fn numa_domain_overrides_clamp_and_compare() {
        let c = PbConfig::new().with_numa_domains(0);
        assert_eq!(c.numa_domains, Some(1));
        assert_eq!(PbConfig::default().numa_domains, None);
        assert_ne!(
            PbConfig::default().with_numa_domains(2),
            PbConfig::default()
        );
        // resolve_domains never exceeds the pool's thread count.
        let forced = PbConfig::new().with_numa_domains(64);
        assert!(forced.resolve_domains() <= rayon::current_num_threads());
        assert!(PbConfig::default().resolve_domains() >= 1);
    }

    #[test]
    fn auto_tuned_configs_share_the_policy_across_clones() {
        let cfg = PbConfig::auto_tuned_from_lines(2);
        let clone = cfg.clone();
        assert_eq!(cfg, clone);
        assert_eq!(cfg.effective_local_bin_bytes(), 2 * CACHE_LINE_BYTES);
        // Adjusting through one handle is visible through the other.
        let trace = synthetic_profile(16, 1000, 8000, 900);
        cfg.auto_tune().unwrap().observe(&trace);
        assert_eq!(clone.effective_local_bin_bytes(), 4 * CACHE_LINE_BYTES);
        // A fresh auto-tuned config is a *different* policy.
        assert_ne!(cfg, PbConfig::auto_tuned_from_lines(2));
        // Without autotuning the static width wins.
        assert_eq!(
            PbConfig::default().effective_local_bin_bytes(),
            DEFAULT_LOCAL_BIN_CACHE_LINES * CACHE_LINE_BYTES
        );
    }
}
