//! A vendored parser for the text exposition format [`metrics::render`]
//! emits (`# HELP`/`# TYPE` headers, `name{label="v"} value` samples).
//!
//! The service's conformance tests and `bench_serve` scrape the `metrics`
//! op through this parser instead of ad-hoc string matching, so a
//! formatting regression (a missing header, broken label escaping, a
//! non-cumulative histogram bucket) fails a structured check with a
//! pointed message rather than silently corrupting a dashboard.
//!
//! [`metrics::render`]: crate::metrics::render

use std::collections::BTreeMap;

/// One sample line: `name{label="value",…} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (family name plus any `_bucket`/`_sum`/`_count`
    /// histogram suffix).
    pub name: String,
    /// Label pairs in source order, values unescaped.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition page: samples plus the `# HELP`/`# TYPE` headers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// Every sample line, in source order.
    pub samples: Vec<Sample>,
    /// `# HELP` text by family name.
    pub help: BTreeMap<String, String>,
    /// `# TYPE` kind (`counter`/`gauge`/`histogram`) by family name.
    pub types: BTreeMap<String, String>,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses one `{label="value",…}` block, unescaping `\\`, `\"` and `\n`.
fn parse_labels(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = block;
    loop {
        rest = rest.trim_start_matches(',');
        if rest.is_empty() {
            return Ok(labels);
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without `=` in `{{{block}}}`"))?;
        let key = rest[..eq].trim().to_string();
        if !valid_name(&key) {
            return Err(format!("invalid label name `{key}`"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("unquoted value for label `{key}`"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let close = loop {
            let (i, c) = chars
                .next()
                .ok_or_else(|| format!("unterminated value for label `{key}`"))?;
            match c {
                '"' => break i,
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => {
                        return Err(format!(
                            "bad escape `\\{}` in label `{key}`",
                            other.map(|(_, c)| c).unwrap_or(' ')
                        ))
                    }
                },
                c => value.push(c),
            }
        };
        labels.push((key, value));
        rest = &rest[close + 1..];
    }
}

/// The family a sample belongs to for header lookup: histogram series
/// (`_bucket`/`_sum`/`_count`) resolve to their base name when that base
/// is declared a histogram.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

impl Exposition {
    /// Parses a whole exposition page.
    pub fn parse(text: &str) -> Result<Exposition, String> {
        let mut page = Exposition::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let fail = |msg: String| format!("line {}: {msg}", lineno + 1);
            if let Some(comment) = line.strip_prefix('#') {
                let comment = comment.trim_start();
                let (keyword, rest) = match comment.split_once(' ') {
                    Some(split) => split,
                    None => continue,
                };
                let (name, text) = rest
                    .split_once(' ')
                    .map(|(n, t)| (n, t.to_string()))
                    .unwrap_or((rest, String::new()));
                match keyword {
                    "HELP" | "TYPE" if !valid_name(name) => {
                        return Err(fail(format!("{keyword} for invalid name `{name}`")));
                    }
                    "HELP" => {
                        page.help.insert(name.to_string(), text);
                    }
                    "TYPE" => {
                        let kind = text.trim();
                        if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind)
                        {
                            return Err(fail(format!("unknown TYPE `{kind}` for `{name}`")));
                        }
                        page.types.insert(name.to_string(), kind.to_string());
                    }
                    _ => {} // plain comment
                }
                continue;
            }
            // Sample line: name[{labels}] value
            let (name_part, labels, value_part) = match line.find('{') {
                Some(open) => {
                    let close = line
                        .rfind('}')
                        .ok_or_else(|| fail("unterminated label block".into()))?;
                    (
                        &line[..open],
                        parse_labels(&line[open + 1..close]).map_err(fail)?,
                        line[close + 1..].trim(),
                    )
                }
                None => {
                    let (name, value) = line
                        .split_once(' ')
                        .ok_or_else(|| fail("sample without a value".into()))?;
                    (name, Vec::new(), value.trim())
                }
            };
            if !valid_name(name_part) {
                return Err(fail(format!("invalid metric name `{name_part}`")));
            }
            let value = if value_part == "+Inf" {
                f64::INFINITY
            } else {
                value_part
                    .parse::<f64>()
                    .map_err(|_| fail(format!("non-numeric value `{value_part}`")))?
            };
            page.samples.push(Sample {
                name: name_part.to_string(),
                labels,
                value,
            });
        }
        Ok(page)
    }

    /// The value of the sample with this exact name and label subset.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && labels.iter().all(|(k, v)| s.label(k) == Some(*v)))
            .map(|s| s.value)
    }

    /// Every sample of the named metric.
    pub fn series(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }

    /// Names of every `counter`-typed family on the page.
    pub fn counter_names(&self) -> Vec<&str> {
        self.types
            .iter()
            .filter(|(_, kind)| kind.as_str() == "counter")
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// Structural conformance: every sample belongs to a family with both
    /// `# HELP` and `# TYPE` headers; counters are non-negative; histogram
    /// buckets are cumulative, end in `le="+Inf"`, and agree with their
    /// `_count` series.
    pub fn check(&self) -> Result<(), String> {
        for s in &self.samples {
            let fam = family_of(&s.name, &self.types);
            if !self.types.contains_key(fam) {
                return Err(format!("sample `{}` has no # TYPE header", s.name));
            }
            if !self.help.contains_key(fam) {
                return Err(format!("sample `{}` has no # HELP header", s.name));
            }
            let kind = self.types[fam].as_str();
            if (kind == "counter" || kind == "histogram") && s.value < 0.0 {
                return Err(format!("{kind} `{}` is negative ({})", s.name, s.value));
            }
        }
        // Histogram shape: per label-set (minus `le`), buckets must be
        // cumulative and reach the `_count` value at `+Inf`.
        for (fam, kind) in &self.types {
            if kind != "histogram" {
                continue;
            }
            let buckets = self.series(&format!("{fam}_bucket"));
            let mut by_key: BTreeMap<String, Vec<&Sample>> = BTreeMap::new();
            for b in buckets {
                let key: Vec<String> = b
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                by_key.entry(key.join(",")).or_default().push(b);
            }
            for (key, series) in by_key {
                let mut last = f64::NEG_INFINITY;
                let mut last_le = f64::NEG_INFINITY;
                for b in &series {
                    let le = match b.label("le") {
                        Some("+Inf") => f64::INFINITY,
                        Some(le) => le
                            .parse::<f64>()
                            .map_err(|_| format!("{fam}: bad le `{le}`"))?,
                        None => return Err(format!("{fam}_bucket without le ({key})")),
                    };
                    if le <= last_le {
                        return Err(format!("{fam}{{{key}}}: le bounds not ascending"));
                    }
                    if b.value < last {
                        return Err(format!("{fam}{{{key}}}: buckets not cumulative"));
                    }
                    (last, last_le) = (b.value, le);
                }
                let tail = series.last().unwrap();
                if tail.label("le") != Some("+Inf") {
                    return Err(format!("{fam}{{{key}}}: missing +Inf bucket"));
                }
                let count_labels: Vec<(&str, &str)> = tail
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| (k.as_str(), v.as_str()))
                    .collect();
                let count = self
                    .value(&format!("{fam}_count"), &count_labels)
                    .ok_or_else(|| format!("{fam}{{{key}}}: missing _count"))?;
                if (tail.value - count).abs() > f64::EPSILON {
                    return Err(format!(
                        "{fam}{{{key}}}: +Inf bucket {} != count {count}",
                        tail.value
                    ));
                }
                if self.value(&format!("{fam}_sum"), &count_labels).is_none() {
                    return Err(format!("{fam}{{{key}}}: missing _sum"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::metrics::{render, OpLatencies, ServerCounters};
    use pb_spgemm::Algorithm;
    use std::sync::atomic::Ordering;

    #[test]
    fn parses_samples_headers_and_escapes() {
        let page = Exposition::parse(
            "# HELP x_total Things.\n\
             # TYPE x_total counter\n\
             x_total 3\n\
             # HELP y A gauge.\n\
             # TYPE y gauge\n\
             y{isa=\"avx2\",note=\"a\\\"b\\\\c\\nd\"} 1.5\n",
        )
        .unwrap();
        assert_eq!(page.value("x_total", &[]), Some(3.0));
        assert_eq!(page.value("y", &[("isa", "avx2")]), Some(1.5));
        let y = &page.series("y")[0];
        assert_eq!(y.label("note"), Some("a\"b\\c\nd"));
        assert_eq!(page.types["x_total"], "counter");
        assert_eq!(page.help["y"], "A gauge.");
        assert_eq!(page.counter_names(), vec!["x_total"]);
        page.check().unwrap();
    }

    #[test]
    fn rejects_malformed_pages() {
        assert!(Exposition::parse("1bad_name 3\n").is_err());
        assert!(Exposition::parse("x notanumber\n").is_err());
        assert!(Exposition::parse("x{k=\"unterminated} 1\n").is_err());
        assert!(Exposition::parse("# TYPE x rainbow\n").is_err());
        assert!(Exposition::parse("x{k=v} 1\n").is_err());
    }

    #[test]
    fn check_catches_structural_violations() {
        // Sample without headers.
        let page = Exposition::parse("x_total 3\n").unwrap();
        assert!(page.check().unwrap_err().contains("TYPE"));
        // Non-cumulative histogram.
        let page = Exposition::parse(
            "# HELP h H.\n# TYPE h histogram\n\
             h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 3\n\
             h_sum 1\nh_count 3\n",
        )
        .unwrap();
        assert!(page.check().unwrap_err().contains("cumulative"));
        // +Inf bucket disagreeing with _count.
        let page = Exposition::parse(
            "# HELP h H.\n# TYPE h histogram\n\
             h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
        )
        .unwrap();
        assert!(page.check().unwrap_err().contains("count"));
    }

    #[test]
    fn rendered_metrics_page_conforms() {
        let counters = ServerCounters::default();
        counters.requests.fetch_add(5, Ordering::Relaxed);
        counters.record_batch(3);
        let latencies = OpLatencies::default();
        latencies.record("multiply", 1_500_000);
        latencies.record("multiply", 40_000_000);
        latencies.record("metrics", 12_000);
        let catalog = Catalog::new(1 << 20, Algorithm::Pb);
        let text = render(&counters, &latencies, &catalog);
        let page = Exposition::parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        page.check().unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(page.value("pb_serve_requests_total", &[]), Some(5.0));
        assert_eq!(
            page.value("pb_serve_request_seconds_count", &[("op", "multiply")]),
            Some(2.0)
        );
        assert!(page.counter_names().contains(&"pb_serve_requests_total"));
    }
}
