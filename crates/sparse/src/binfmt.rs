//! A small binary on-disk format for CSR matrices.
//!
//! The benchmark harness regenerates synthetic matrices for every figure; for
//! the larger scales that regeneration dominates the run time.  This module
//! provides a compact little-endian binary format so generated matrices (and
//! SpGEMM results) can be cached on disk and memory-streamed back without the
//! Matrix Market text-parsing overhead.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      4 bytes   b"PBSM"
//! version    u32       currently 1
//! type tag   u32       element type (see [`value_tag`])
//! nrows      u64
//! ncols      u64
//! nnz        u64
//! rowptr     (nrows + 1) × u64
//! colidx     nnz × u32
//! values     nnz × sizeof(T)
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::Csr;
use crate::error::SparseError;
use crate::{Index, Scalar};

/// File magic identifying the format.
pub const MAGIC: &[u8; 4] = b"PBSM";
/// Current format version.
pub const VERSION: u32 = 1;

/// A scalar type that can be serialised into the binary matrix format.
pub trait BinaryScalar: Scalar {
    /// Unique tag identifying the element type in the file header.
    const TAG: u32;
    /// Size of one encoded element in bytes.
    const WIDTH: usize;
    /// Encodes `self` into little-endian bytes appended to `out`.
    fn write_le(&self, out: &mut Vec<u8>);
    /// Decodes one element from `bytes` (exactly [`BinaryScalar::WIDTH`] bytes).
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_binary_scalar {
    ($($t:ty => $tag:expr),* $(,)?) => {
        $(
            impl BinaryScalar for $t {
                const TAG: u32 = $tag;
                const WIDTH: usize = std::mem::size_of::<$t>();
                #[inline]
                fn write_le(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }
                #[inline]
                fn read_le(bytes: &[u8]) -> Self {
                    <$t>::from_le_bytes(bytes.try_into().expect("caller slices WIDTH bytes"))
                }
            }
        )*
    };
}

impl_binary_scalar!(
    f64 => 1,
    f32 => 2,
    u64 => 3,
    u32 => 4,
    i64 => 5,
    i32 => 6,
);

fn bin_err(detail: impl Into<String>) -> SparseError {
    SparseError::Binary {
        detail: detail.into(),
    }
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<(), SparseError> {
    r.read_exact(buf)
        .map_err(|e| bin_err(format!("short read while reading {what}: {e}")))
}

fn read_u32<R: Read>(r: &mut R, what: &str) -> Result<u32, SparseError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b, what)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R, what: &str) -> Result<u64, SparseError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b, what)?;
    Ok(u64::from_le_bytes(b))
}

/// Serialises a CSR matrix to any writer.
pub fn write_csr_to<W: Write, T: BinaryScalar>(mut w: W, m: &Csr<T>) -> Result<(), SparseError> {
    let mut header = Vec::with_capacity(4 + 4 + 4 + 24);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&T::TAG.to_le_bytes());
    header.extend_from_slice(&(m.nrows() as u64).to_le_bytes());
    header.extend_from_slice(&(m.ncols() as u64).to_le_bytes());
    header.extend_from_slice(&(m.nnz() as u64).to_le_bytes());
    w.write_all(&header)?;

    // rowptr, colidx and values are written in chunks to bound the staging
    // buffer for very large matrices.
    const CHUNK: usize = 1 << 16;
    let mut buf = Vec::with_capacity(CHUNK * 8);
    for chunk in m.rowptr().chunks(CHUNK) {
        buf.clear();
        for &p in chunk {
            buf.extend_from_slice(&(p as u64).to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    for chunk in m.colidx().chunks(CHUNK) {
        buf.clear();
        for &c in chunk {
            buf.extend_from_slice(&c.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    for chunk in m.values().chunks(CHUNK) {
        buf.clear();
        for v in chunk {
            v.write_le(&mut buf);
        }
        w.write_all(&buf)?;
    }
    w.flush()?;
    Ok(())
}

/// Deserialises a CSR matrix from any reader.
pub fn read_csr_from<R: Read, T: BinaryScalar>(mut r: R) -> Result<Csr<T>, SparseError> {
    let mut magic = [0u8; 4];
    read_exact(&mut r, &mut magic, "magic")?;
    if &magic != MAGIC {
        return Err(bin_err(format!("bad magic {magic:?}, expected {MAGIC:?}")));
    }
    let version = read_u32(&mut r, "version")?;
    if version != VERSION {
        return Err(bin_err(format!(
            "unsupported version {version} (this build reads {VERSION})"
        )));
    }
    let tag = read_u32(&mut r, "type tag")?;
    if tag != T::TAG {
        return Err(bin_err(format!(
            "element type mismatch: file stores tag {tag}, caller requested tag {}",
            T::TAG
        )));
    }
    let nrows = read_u64(&mut r, "nrows")? as usize;
    let ncols = read_u64(&mut r, "ncols")? as usize;
    let nnz = read_u64(&mut r, "nnz")? as usize;

    let mut rowptr = Vec::with_capacity(nrows + 1);
    let mut buf = vec![0u8; 8];
    for _ in 0..=nrows {
        read_exact(&mut r, &mut buf, "rowptr")?;
        rowptr.push(u64::from_le_bytes(buf[..8].try_into().expect("8-byte buffer")) as usize);
    }

    let mut colidx: Vec<Index> = Vec::with_capacity(nnz);
    let mut cbuf = [0u8; 4];
    for _ in 0..nnz {
        read_exact(&mut r, &mut cbuf, "colidx")?;
        colidx.push(Index::from_le_bytes(cbuf));
    }

    let mut values: Vec<T> = Vec::with_capacity(nnz);
    let mut vbuf = vec![0u8; T::WIDTH];
    for _ in 0..nnz {
        read_exact(&mut r, &mut vbuf, "values")?;
        values.push(T::read_le(&vbuf));
    }

    Csr::from_parts(nrows, ncols, rowptr, colidx, values)
}

/// Writes a CSR matrix to `path` (buffered).
pub fn write_csr<T: BinaryScalar>(path: impl AsRef<Path>, m: &Csr<T>) -> Result<(), SparseError> {
    let file = File::create(path)?;
    write_csr_to(BufWriter::new(file), m)
}

/// Reads a CSR matrix from `path` (buffered).
pub fn read_csr<T: BinaryScalar>(path: impl AsRef<Path>) -> Result<Csr<T>, SparseError> {
    let file = File::open(path)?;
    read_csr_from(BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> Csr<f64> {
        Coo::from_entries(
            5,
            7,
            vec![
                (0, 0, 1.5),
                (0, 6, -2.0),
                (2, 3, 0.25),
                (4, 1, 1e300),
                (4, 6, -0.0),
            ],
        )
        .unwrap()
        .to_csr()
    }

    #[test]
    fn roundtrip_f64_in_memory() {
        let m = sample();
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &m).unwrap();
        let back: Csr<f64> = read_csr_from(buf.as_slice()).unwrap();
        assert_eq!(back.shape(), m.shape());
        assert_eq!(back.rowptr(), m.rowptr());
        assert_eq!(back.colidx(), m.colidx());
        assert_eq!(back.values(), m.values());
    }

    #[test]
    fn roundtrip_integer_values() {
        let m: Csr<u64> = sample().map_values(|v| v.abs() as u64);
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &m).unwrap();
        let back: Csr<u64> = read_csr_from(buf.as_slice()).unwrap();
        assert_eq!(back.values(), m.values());

        let m: Csr<i32> = sample().map_values(|v| v as i32);
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &m).unwrap();
        let back: Csr<i32> = read_csr_from(buf.as_slice()).unwrap();
        assert_eq!(back.colidx(), m.colidx());
    }

    #[test]
    fn roundtrip_empty_matrix() {
        let m: Csr<f32> = Csr::empty(3, 9);
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &m).unwrap();
        let back: Csr<f32> = read_csr_from(buf.as_slice()).unwrap();
        assert_eq!(back.shape(), (3, 9));
        assert_eq!(back.nnz(), 0);
    }

    #[test]
    fn roundtrip_through_a_file() {
        let dir = std::env::temp_dir().join("pb_sparse_binfmt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.pbsm");
        let m = sample();
        write_csr(&path, &m).unwrap();
        let back: Csr<f64> = read_csr(&path).unwrap();
        assert_eq!(back.values(), m.values());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        let err = read_csr_from::<_, f64>(buf.as_slice()).unwrap_err();
        assert!(matches!(err, SparseError::Binary { .. }));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn wrong_element_type_is_rejected() {
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &sample()).unwrap();
        let err = read_csr_from::<_, u32>(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("type mismatch"));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &sample()).unwrap();
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        let err = read_csr_from::<_, f64>(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_csr_from::<_, f64>(buf.as_slice()).unwrap_err();
        assert!(matches!(err, SparseError::Binary { .. }));
    }

    #[test]
    fn corrupted_structure_is_caught_by_validation() {
        // Corrupt a rowptr entry so it is non-monotonic; from_parts must
        // refuse to build the matrix.
        let m = sample();
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &m).unwrap();
        let rowptr_start = 4 + 4 + 4 + 24;
        buf[rowptr_start + 8..rowptr_start + 16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_csr_from::<_, f64>(buf.as_slice()).unwrap_err();
        assert!(matches!(err, SparseError::MalformedOffsets { .. }));
    }
}
