//! Symbolic phase (Algorithm 3 of the paper).
//!
//! The symbolic phase streams only the offset arrays of `A` (CSC) and `B`
//! (CSR) to compute the multiplication's flop count, derives the number of
//! propagation bins from it, and — one refinement over the paper's
//! pseudo-code — counts the flop landing in *each* bin so that the expand
//! phase can reserve exactly-sized, contention-free segments of the global
//! tuple buffer.
//!
//! On a multi-domain topology (see [`crate::topology`]) the symbolic phase
//! additionally cuts `A`'s columns into one flop-balanced range per NUMA
//! domain and counts the flop per *(bin, domain)* pair, so every bin's
//! buffer segment is subdivided into one exactly-sized sub-segment per
//! domain: tuples produced from domain `d`'s columns land in sub-segment
//! `d`, which domain `d`'s workers write (and whose pages they first-touch)
//! almost exclusively.  The sub-segments of a bin are contiguous in a fixed
//! domain order, so `bin_offsets` — and therefore the sort, compress and
//! assemble phases — are untouched by the partitioning, and the assembled
//! product is bit-identical to the single-domain schedule.

use pb_sparse::{Csc, Csr, Scalar};
use rayon::prelude::*;

use crate::bins::BinLayout;
use crate::config::PbConfig;
use crate::topology::balanced_boundaries;

/// Result of the symbolic phase.
#[derive(Debug, Clone)]
pub struct Symbolic {
    /// Total number of multiplications (`nnz(Ĉ)`).
    pub flop: u64,
    /// Number of expanded tuples landing in each bin.
    pub bin_flop: Vec<u64>,
    /// Prefix-sum of `bin_flop`, i.e. the segment offsets of every bin in
    /// the global tuple buffer (`nbins + 1` entries).
    pub bin_offsets: Vec<usize>,
    /// Bin geometry derived from the flop count and the configuration.
    pub layout: BinLayout,
    /// NUMA domains the bins are partitioned over (1 = no partitioning).
    pub domains: usize,
    /// Flop-balanced column boundaries per domain (`domains + 1` entries,
    /// from 0 to `A.ncols()`): domain `d` owns the outer products of
    /// columns `col_domain_starts[d]..col_domain_starts[d + 1]`.
    pub col_domain_starts: Vec<usize>,
    /// Prefix offsets of every *(bin, domain)* sub-segment in the global
    /// tuple buffer, in `(bin, domain)` order with domain minor
    /// (`nbins · domains + 1` entries).  `bin_offsets[b]` equals
    /// `seg_offsets[b · domains]` by construction.
    pub seg_offsets: Vec<usize>,
    /// Expanded tuples owned by each domain across all bins (`domains`
    /// entries; sums to `flop`).
    pub domain_flop: Vec<u64>,
}

impl Symbolic {
    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.layout.nbins
    }

    /// The domain owning column `col` of `A` (the sub-segment its expanded
    /// tuples are reserved in).
    #[inline]
    pub fn domain_of_col(&self, col: usize) -> usize {
        crate::topology::domain_of_index(&self.col_domain_starts, self.domains, col)
    }
}

/// Runs the symbolic phase for `C = A·B` with `A` in CSC and `B` in CSR.
///
/// `tuple_bytes` is the size of one expanded tuple in memory (used to size
/// bins against the L2 capacity, exactly as the paper's
/// `nbins = flop / L2_CACHE_SIZE` rule).
pub fn symbolic<T: Scalar, U: Scalar>(
    a: &Csc<T>,
    b: &Csr<U>,
    config: &PbConfig,
    tuple_bytes: usize,
) -> Symbolic {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "PB-SpGEMM shape mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let k = a.ncols();
    let a_colptr = a.colptr();
    let b_rowptr = b.rowptr();
    let domains = config.resolve_domains().min(k.max(1));

    // --- Total flop: one streaming pass over the two offset arrays.  On a
    //     multi-domain run the per-column flop is kept so the domains'
    //     column ranges can be balanced by flop, not by count — balanced
    //     ranges finish together, which is what keeps cross-domain work
    //     stealing (and with it remote flushes) rare. ----------------------
    let col_flop = |i: usize| {
        let na = (a_colptr[i + 1] - a_colptr[i]) as u64;
        let nb = (b_rowptr[i + 1] - b_rowptr[i]) as u64;
        na * nb
    };
    let (flop, col_domain_starts) = if domains > 1 {
        let per_col: Vec<u64> = (0..k).into_par_iter().map(col_flop).collect();
        let flop = per_col.iter().sum();
        (flop, balanced_boundaries(&per_col, domains))
    } else {
        let flop = (0..k).into_par_iter().map(col_flop).sum();
        (flop, vec![0, k])
    };

    // --- Bin geometry. ------------------------------------------------------
    let nbins = config.resolve_nbins(flop, tuple_bytes, a.nrows());
    let layout = match config.bin_mapping {
        // The balanced mapping needs the per-row flop distribution to place
        // its boundaries, so it is derived here rather than in BinLayout.
        crate::config::BinMapping::Balanced => balanced_layout(a, b, nbins),
        mapping => BinLayout::new(a.nrows(), b.ncols(), nbins, mapping),
    };

    // --- Per-(bin, domain) flop: every nonzero A(r, i) contributes
    //     nnz(B(i, :)) tuples to row r's bin, in the sub-segment of column
    //     i's domain. -------------------------------------------------------
    let nbins = layout.nbins;
    let nsegs = nbins * domains;
    let domain_of = |col: usize| -> usize {
        crate::topology::domain_of_index(&col_domain_starts, domains, col)
    };
    let seg_flop: Vec<u64> = (0..k)
        .into_par_iter()
        .fold(
            || vec![0u64; nsegs],
            |mut acc, i| {
                let nb = (b_rowptr[i + 1] - b_rowptr[i]) as u64;
                if nb > 0 {
                    let d = domain_of(i);
                    let (rows, _) = a.col(i);
                    for &r in rows {
                        acc[layout.bin_of(r) * domains + d] += nb;
                    }
                }
                acc
            },
        )
        .reduce(
            || vec![0u64; nsegs],
            |mut x, y| {
                for (xi, yi) in x.iter_mut().zip(y) {
                    *xi += yi;
                }
                x
            },
        );

    let mut seg_offsets = Vec::with_capacity(nsegs + 1);
    seg_offsets.push(0usize);
    for &f in &seg_flop {
        seg_offsets.push(seg_offsets.last().unwrap() + f as usize);
    }
    debug_assert_eq!(*seg_offsets.last().unwrap() as u64, flop);

    let bin_flop: Vec<u64> = (0..nbins)
        .map(|b| seg_flop[b * domains..(b + 1) * domains].iter().sum())
        .collect();
    let bin_offsets: Vec<usize> = (0..=nbins).map(|b| seg_offsets[b * domains]).collect();
    let domain_flop: Vec<u64> = (0..domains)
        .map(|d| (0..nbins).map(|b| seg_flop[b * domains + d]).sum())
        .collect();

    Symbolic {
        flop,
        bin_flop,
        bin_offsets,
        layout,
        domains,
        col_domain_starts,
        seg_offsets,
        domain_flop,
    }
}

/// Builds a flop-balanced bin layout (the paper's "variable ranges of rows").
///
/// The per-row flop distribution is accumulated from `A`'s columns — the same
/// O(nnz(A)) streaming pass the per-bin count performs — and bin boundaries
/// are then placed greedily so every bin receives roughly `flop / nbins`
/// expanded tuples.  Skewed (R-MAT-like) matrices end up with narrow bins
/// around their heavy rows and wide bins elsewhere, which is what keeps the
/// sort and compress phases load-balanced.
fn balanced_layout<T: Scalar, U: Scalar>(a: &Csc<T>, b: &Csr<U>, nbins: usize) -> BinLayout {
    let nrows = a.nrows();
    let b_rowptr = b.rowptr();
    let mut row_flop = vec![0u64; nrows];
    for i in 0..a.ncols() {
        let nb = (b_rowptr[i + 1] - b_rowptr[i]) as u64;
        if nb > 0 {
            for &r in a.col(i).0 {
                row_flop[r as usize] += nb;
            }
        }
    }
    let total: u64 = row_flop.iter().sum();
    let nbins = nbins.clamp(1, nrows.max(1));
    let target = total.div_ceil(nbins as u64).max(1);

    let mut starts: Vec<pb_sparse::Index> = Vec::with_capacity(nbins + 1);
    starts.push(0);
    let mut acc = 0u64;
    for (r, &f) in row_flop.iter().enumerate() {
        if acc >= target && starts.len() < nbins && r > *starts.last().unwrap() as usize {
            starts.push(r as pb_sparse::Index);
            acc = 0;
        }
        acc += f;
    }
    starts.push(nrows as pb_sparse::Index);
    BinLayout::balanced(nrows, b.ncols(), starts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BinMapping;
    use pb_gen::erdos_renyi_square;
    use pb_sparse::stats::flop_csr;
    use pb_sparse::Coo;

    fn small() -> (Csc<f64>, Csr<f64>) {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let m = Coo::from_entries(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap();
        (m.to_csc(), m.to_csr())
    }

    #[test]
    fn flop_matches_row_wise_count() {
        let (a_csc, b) = small();
        let a_csr = b.clone();
        let sym = symbolic(&a_csc, &b, &PbConfig::default(), 16);
        assert_eq!(sym.flop, flop_csr(&a_csr, &b));
        assert_eq!(sym.flop, 9);
    }

    #[test]
    fn bin_flop_partitions_total_flop() {
        let a = erdos_renyi_square(8, 6, 3);
        let a_csc = a.to_csc();
        for mapping in [BinMapping::Range, BinMapping::Modulo] {
            let cfg = PbConfig::default().with_nbins(7).with_bin_mapping(mapping);
            let sym = symbolic(&a_csc, &a, &cfg, 16);
            assert_eq!(sym.nbins(), 7);
            assert_eq!(sym.bin_flop.iter().sum::<u64>(), sym.flop);
            assert_eq!(*sym.bin_offsets.last().unwrap() as u64, sym.flop);
            assert_eq!(sym.bin_offsets.len(), 8);
        }
        // The balanced mapping may merge boundaries but never exceeds the
        // requested bin count, and still partitions the flop exactly.
        let cfg = PbConfig::default()
            .with_nbins(7)
            .with_bin_mapping(BinMapping::Balanced);
        let sym = symbolic(&a_csc, &a, &cfg, 16);
        assert!(sym.nbins() <= 7 && sym.nbins() >= 1);
        assert_eq!(sym.bin_flop.iter().sum::<u64>(), sym.flop);
    }

    #[test]
    fn balanced_bins_even_out_skewed_flop() {
        // R-MAT matrices have heavily skewed row degrees; the balanced
        // mapping should bound the heaviest bin far below the uniform
        // mapping's heaviest bin.
        let a = pb_gen::rmat_square(9, 8, 7);
        let a_csc = a.to_csc();
        let nbins = 32usize;
        let uniform = symbolic(
            &a_csc,
            &a,
            &PbConfig::default()
                .with_nbins(nbins)
                .with_bin_mapping(BinMapping::Range),
            16,
        );
        let balanced = symbolic(
            &a_csc,
            &a,
            &PbConfig::default()
                .with_nbins(nbins)
                .with_bin_mapping(BinMapping::Balanced),
            16,
        );
        assert_eq!(balanced.flop, uniform.flop);
        let max_uniform = uniform.bin_flop.iter().copied().max().unwrap();
        let max_balanced = balanced.bin_flop.iter().copied().max().unwrap();
        assert!(
            max_balanced <= max_uniform,
            "balanced bins must not be more skewed: {max_balanced} vs {max_uniform}"
        );
        // Every balanced bin covers a contiguous, disjoint row range.
        let layout = &balanced.layout;
        let covered: usize = (0..balanced.nbins()).map(|b| layout.bin_row_count(b)).sum();
        assert_eq!(covered, a.nrows());
        // No bin (other than possibly a single-heavy-row bin) exceeds the
        // ideal share by more than the heaviest single row.
        let per_row = pb_sparse::stats::flop_rows(&a, &a);
        let heaviest_row = per_row.iter().copied().max().unwrap_or(0);
        let target = balanced.flop.div_ceil(balanced.nbins() as u64);
        assert!(max_balanced <= target + heaviest_row);
    }

    #[test]
    fn per_bin_counts_match_per_row_counts() {
        let a = erdos_renyi_square(7, 4, 5);
        let a_csc = a.to_csc();
        let cfg = PbConfig::default().with_nbins(16);
        let sym = symbolic(&a_csc, &a, &cfg, 16);
        let per_row = pb_sparse::stats::flop_rows(&a, &a);
        for b in 0..sym.nbins() {
            let expected: u64 = (0..a.nrows())
                .filter(|&r| sym.layout.bin_of(r as u32) == b)
                .map(|r| per_row[r])
                .sum();
            assert_eq!(sym.bin_flop[b], expected, "bin {b} flop mismatch");
        }
    }

    #[test]
    fn single_domain_runs_have_degenerate_partitions() {
        let a = erdos_renyi_square(7, 4, 5);
        let a_csc = a.to_csc();
        let sym = symbolic(
            &a_csc,
            &a,
            &PbConfig::default().with_nbins(8).with_numa_domains(1),
            16,
        );
        assert_eq!(sym.domains, 1);
        assert_eq!(sym.col_domain_starts, vec![0, a.ncols()]);
        assert_eq!(sym.seg_offsets, sym.bin_offsets);
        assert_eq!(sym.domain_flop, vec![sym.flop]);
        assert_eq!(sym.domain_of_col(0), 0);
        assert_eq!(sym.domain_of_col(a.ncols() - 1), 0);
    }

    #[test]
    fn domain_partition_refines_bins_without_changing_them() {
        let a = pb_gen::rmat_square(8, 6, 11);
        let a_csc = a.to_csc();
        let single = symbolic(
            &a_csc,
            &a,
            &PbConfig::default().with_nbins(7).with_numa_domains(1),
            16,
        );
        // Forced domains clamp to the pool's thread count, so install a
        // real 2-thread pool around the partitioned run.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .domains(2)
            .build()
            .unwrap();
        let cfg = PbConfig::default().with_nbins(7).with_numa_domains(2);
        let two = pool.install(|| symbolic(&a_csc, &a, &cfg, 16));
        assert_eq!(two.domains, 2);

        // The per-bin view is untouched by the partitioning.
        assert_eq!(two.flop, single.flop);
        assert_eq!(two.bin_flop, single.bin_flop);
        assert_eq!(two.bin_offsets, single.bin_offsets);
        assert_eq!(two.layout, single.layout);

        // Sub-segments refine each bin in fixed domain order.
        assert_eq!(two.seg_offsets.len(), two.nbins() * 2 + 1);
        for b in 0..=two.nbins() {
            assert_eq!(two.seg_offsets[b * 2], two.bin_offsets[b]);
        }
        assert!(two.seg_offsets.windows(2).all(|w| w[0] <= w[1]));

        // The column partition covers all columns; each domain's flop share
        // is what its columns produce, and the shares sum to the total.
        assert_eq!(two.col_domain_starts.len(), 3);
        assert_eq!(two.col_domain_starts[0], 0);
        assert_eq!(*two.col_domain_starts.last().unwrap(), a.ncols());
        assert_eq!(two.domain_flop.iter().sum::<u64>(), two.flop);
        assert!(
            two.domain_flop.iter().all(|&f| f > 0),
            "{:?}",
            two.domain_flop
        );
        for i in 0..a.ncols() {
            let d = two.domain_of_col(i);
            assert!(two.col_domain_starts[d] <= i && i < two.col_domain_starts[d + 1]);
        }

        // Flop balance: on this skewed R-MAT the two shares differ by less
        // than the heaviest single column (the greedy bound).
        let b_rowptr = a.rowptr();
        let heaviest_col = (0..a.ncols())
            .map(|i| a_csc.col(i).0.len() as u64 * (b_rowptr[i + 1] - b_rowptr[i]) as u64)
            .max()
            .unwrap();
        let diff = two.domain_flop[0].abs_diff(two.domain_flop[1]);
        assert!(
            diff <= heaviest_col.max(1) * 2,
            "unbalanced shares {:?} (heaviest column {heaviest_col})",
            two.domain_flop
        );
    }

    #[test]
    fn auto_bin_count_scales_with_flop() {
        let small = erdos_renyi_square(6, 2, 1);
        let large = erdos_renyi_square(10, 16, 1);
        let cfg = PbConfig::default().with_l2_bytes(64 * 1024);
        let sym_small = symbolic(&small.to_csc(), &small, &cfg, 16);
        let sym_large = symbolic(&large.to_csc(), &large, &cfg, 16);
        assert!(sym_large.nbins() > sym_small.nbins());
    }

    #[test]
    fn empty_matrix_has_zero_flop_and_one_bin() {
        let e: Csr<f64> = Csr::empty(16, 16);
        let sym = symbolic(&e.to_csc(), &e, &PbConfig::default(), 16);
        assert_eq!(sym.flop, 0);
        assert_eq!(sym.nbins(), 1);
        assert_eq!(sym.bin_offsets, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a: Csr<f64> = Csr::empty(4, 5);
        let b: Csr<f64> = Csr::empty(4, 4);
        let _ = symbolic(&a.to_csc(), &b, &PbConfig::default(), 16);
    }
}
