//! Compression phase (Sec. III-E): merge sorted duplicates in place.
//!
//! After sorting, tuples with the same `(row, col)` key sit next to each
//! other within their bin.  A two-pointer scan walks each bin once: `p1`
//! reads every tuple, `p2` points at the last merged tuple; equal keys are
//! accumulated into `p2`, new keys advance `p2`.  The scan is in place, so
//! the compressed bin occupies a prefix of its original segment and no extra
//! memory traffic is generated.
//!
//! Parallelism is *per bin*: the bins are disjoint slices, so the pool's
//! threads each compress whole bins concurrently.  The scan within one bin
//! stays sequential on purpose — it is a forward-dependent in-place merge,
//! and splitting it would require either a scratch buffer (extra bandwidth,
//! which this phase exists to avoid) or a key-boundary search whose cost
//! rivals the scan itself.  With the paper's bin sizing (`nbins ≈
//! flop·bytes/L2`) there are far more bins than threads whenever the input
//! is large enough for the split to matter.

use pb_sparse::semiring::Semiring;
use rayon::prelude::*;

use crate::bins::{BinnedTuples, Entry};

/// Compresses every (sorted) bin in place, updating
/// [`BinnedTuples::compressed_len`].
pub fn compress_bins<S: Semiring>(tuples: &mut BinnedTuples<S::Elem>) {
    let offsets = tuples.bin_offsets.clone();
    let nbins = tuples.nbins();

    let mut slices: Vec<&mut [Entry<S::Elem>]> = Vec::with_capacity(nbins);
    let mut rest: &mut [Entry<S::Elem>] = &mut tuples.entries;
    for b in 0..nbins {
        let len = offsets[b + 1] - offsets[b];
        let (seg, r) = rest.split_at_mut(len);
        slices.push(seg);
        rest = r;
    }

    let lens: Vec<usize> = slices
        .into_par_iter()
        .map(|seg| compress_slice::<S>(seg))
        .collect();
    tuples.compressed_len = lens;
}

/// Two-pointer in-place merge of one sorted bin; returns the number of
/// surviving (merged) tuples.
pub fn compress_slice<S: Semiring>(seg: &mut [Entry<S::Elem>]) -> usize {
    if seg.is_empty() {
        return 0;
    }
    debug_assert!(
        seg.windows(2).all(|w| w[0].key <= w[1].key),
        "bin must be sorted"
    );
    let mut write = 0usize;
    for read in 1..seg.len() {
        if seg[read].key == seg[write].key {
            seg[write].val = S::add(seg[write].val, seg[read].val);
        } else {
            write += 1;
            seg[write] = seg[read];
        }
    }
    write + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::BinLayout;
    use crate::config::BinMapping;
    use pb_sparse::semiring::{MinPlus, PlusTimes};

    type S = PlusTimes<f64>;

    fn entries(pairs: &[(u64, f64)]) -> Vec<Entry<f64>> {
        pairs.iter().map(|&(key, val)| Entry { key, val }).collect()
    }

    #[test]
    fn merges_runs_of_equal_keys() {
        let mut seg = entries(&[(1, 1.0), (1, 2.0), (2, 3.0), (5, 4.0), (5, 0.5), (5, 0.25)]);
        let n = compress_slice::<S>(&mut seg);
        assert_eq!(n, 3);
        assert_eq!(seg[0], Entry { key: 1, val: 3.0 });
        assert_eq!(seg[1], Entry { key: 2, val: 3.0 });
        assert_eq!(seg[2], Entry { key: 5, val: 4.75 });
    }

    #[test]
    fn no_duplicates_is_a_noop() {
        let original = entries(&[(1, 1.0), (2, 2.0), (9, 3.0)]);
        let mut seg = original.clone();
        let n = compress_slice::<S>(&mut seg);
        assert_eq!(n, 3);
        assert_eq!(&seg[..n], &original[..]);
    }

    #[test]
    fn all_duplicates_collapse_to_one() {
        let mut seg = entries(&[(7, 1.0); 50]);
        let n = compress_slice::<S>(&mut seg);
        assert_eq!(n, 1);
        assert_eq!(seg[0].val, 50.0);
    }

    #[test]
    fn empty_and_singleton() {
        let mut empty: Vec<Entry<f64>> = Vec::new();
        assert_eq!(compress_slice::<S>(&mut empty), 0);
        let mut one = entries(&[(3, 1.5)]);
        assert_eq!(compress_slice::<S>(&mut one), 1);
        assert_eq!(one[0].val, 1.5);
    }

    #[test]
    fn respects_the_semiring_add() {
        // Under min-plus, merging keeps the minimum.
        let mut seg = entries(&[(4, 7.0), (4, 2.0), (4, 9.0)]);
        let n = compress_slice::<MinPlus>(&mut seg);
        assert_eq!(n, 1);
        assert_eq!(seg[0].val, 2.0);
    }

    #[test]
    fn compress_bins_updates_lengths_per_bin() {
        let layout = BinLayout::new(8, 8, 2, BinMapping::Range);
        let mut tuples = BinnedTuples {
            entries: entries(&[(0, 1.0), (0, 1.0), (3, 2.0), (1, 5.0), (1, 5.0), (1, 5.0)]),
            bin_offsets: vec![0, 3, 6],
            compressed_len: vec![3, 3],
            layout,
        };
        compress_bins::<S>(&mut tuples);
        assert_eq!(tuples.compressed_len, vec![2, 1]);
        assert_eq!(tuples.compressed_total(), 3);
        assert_eq!(tuples.bin(0)[0].val, 2.0);
        assert_eq!(tuples.bin(1)[0].val, 15.0);
    }
}
