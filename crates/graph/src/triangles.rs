//! Triangle counting and clustering coefficients.
//!
//! The classic SpGEMM formulation (Azad, Buluç, Gilbert — reference \[2\] of
//! the paper): for an undirected simple graph with 0/1 adjacency matrix `A`,
//! the entry `(A·A)(i, j)` counts the common neighbours of `i` and `j`, so
//!
//! ```text
//! #triangles = Σ_{(i,j) ∈ E} (A·A)(i, j) / 6
//! ```
//!
//! (each triangle is counted once per directed edge, i.e. six times).  The
//! per-vertex count divides by two instead, and the local clustering
//! coefficient normalises by the number of wedges centred at the vertex.

use pb_sparse::{ops, Csr};

use pb_spgemm::SpGemm;

/// Canonicalises an arbitrary sparse matrix into a simple undirected 0/1
/// adjacency matrix: symmetrised pattern, no self loops, unit values.
///
/// Exposed because several downstream kernels (and the masked-multiply
/// triangle formulation in the integration tests) need the same
/// canonical form.
pub fn to_simple_undirected<T: pb_sparse::Scalar>(a: &Csr<T>) -> Csr<f64> {
    assert_eq!(
        a.nrows(),
        a.ncols(),
        "graph kernels need a square adjacency matrix"
    );
    let ones = a.map_values(|_| 1.0f64);
    let sym = ops::add(&ones, &ones.transpose());
    ops::remove_diagonal(&sym).map_values(|_| 1.0)
}

/// The masked common-neighbour matrix `(A·A) ∘ A` for a simple undirected
/// adjacency matrix, computed with the given engine.
fn common_neighbours(a: &Csr<f64>, engine: &SpGemm) -> Csr<f64> {
    let squared = engine.multiply(a, a);
    ops::mask_by_pattern(&squared, a)
}

/// Total number of triangles in the graph whose (possibly directed, possibly
/// weighted) adjacency matrix is `adjacency`.  The matrix is symmetrised and
/// self loops are dropped before counting.
pub fn count_triangles<T: pb_sparse::Scalar>(adjacency: &Csr<T>, engine: &SpGemm) -> u64 {
    crate::Triangles::new()
        .engine(engine.clone())
        .run(adjacency)
}

pub(crate) fn count_triangles_impl<T: pb_sparse::Scalar>(
    adjacency: &Csr<T>,
    engine: &SpGemm,
) -> u64 {
    let a = to_simple_undirected(adjacency);
    let masked = common_neighbours(&a, engine);
    let total: f64 = masked.values().iter().sum();
    (total / 6.0).round() as u64
}

/// Number of triangles incident to every vertex.
pub fn triangle_counts_per_vertex<T: pb_sparse::Scalar>(
    adjacency: &Csr<T>,
    engine: &SpGemm,
) -> Vec<u64> {
    crate::Triangles::new()
        .engine(engine.clone())
        .per_vertex(adjacency)
}

pub(crate) fn triangle_counts_per_vertex_impl<T: pb_sparse::Scalar>(
    adjacency: &Csr<T>,
    engine: &SpGemm,
) -> Vec<u64> {
    let a = to_simple_undirected(adjacency);
    let masked = common_neighbours(&a, engine);
    ops::row_sums(&masked)
        .into_iter()
        .map(|s: f64| (s / 2.0).round() as u64)
        .collect()
}

/// Local clustering coefficient of every vertex: the fraction of wedges
/// centred at the vertex that close into a triangle (`0` for vertices of
/// degree < 2), plus the graph's global triangle count.
pub fn clustering_coefficients<T: pb_sparse::Scalar>(
    adjacency: &Csr<T>,
    engine: &SpGemm,
) -> (Vec<f64>, u64) {
    crate::Triangles::new()
        .engine(engine.clone())
        .clustering_coefficients(adjacency)
}

pub(crate) fn clustering_coefficients_impl<T: pb_sparse::Scalar>(
    adjacency: &Csr<T>,
    engine: &SpGemm,
) -> (Vec<f64>, u64) {
    let a = to_simple_undirected(adjacency);
    let masked = common_neighbours(&a, engine);
    let per_vertex: Vec<f64> = ops::row_sums(&masked)
        .into_iter()
        .map(|s: f64| s / 2.0)
        .collect();
    let coefficients: Vec<f64> = (0..a.nrows())
        .map(|v| {
            let deg = a.row_nnz(v) as f64;
            let wedges = deg * (deg - 1.0) / 2.0;
            if wedges > 0.0 {
                per_vertex[v] / wedges
            } else {
                0.0
            }
        })
        .collect();
    let total = (per_vertex.iter().sum::<f64>() / 3.0).round() as u64;
    (coefficients, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::{erdos_renyi_square, rmat_square};
    use pb_sparse::Coo;

    /// O(n³) brute-force triangle count on the canonicalised graph.
    fn brute_force(adjacency: &Csr<f64>) -> u64 {
        let a = to_simple_undirected(adjacency);
        let n = a.nrows();
        let mut count = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                if a.get(i, j).is_none() {
                    continue;
                }
                for k in (j + 1)..n {
                    if a.get(i, k).is_some() && a.get(j, k).is_some() {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    fn triangle_graph() -> Csr<f64> {
        // Two triangles sharing the edge (1, 2), plus a pendant vertex 4.
        Coo::from_entries(
            5,
            5,
            vec![
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (1, 3, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
            ],
        )
        .unwrap()
        .to_csr()
    }

    #[test]
    fn counts_a_hand_built_graph() {
        let g = triangle_graph();
        assert_eq!(count_triangles(&g, &SpGemm::pb()), 2);
        let per_vertex = triangle_counts_per_vertex(&g, &SpGemm::pb());
        assert_eq!(per_vertex, vec![1, 2, 2, 1, 0]);
    }

    #[test]
    fn clustering_coefficients_of_the_hand_built_graph() {
        let g = triangle_graph();
        let (cc, total) = clustering_coefficients(&g, &SpGemm::pb());
        assert_eq!(total, 2);
        // Vertex 0 has degree 2 and one triangle: coefficient 1.
        assert!((cc[0] - 1.0).abs() < 1e-12);
        // Vertex 1 has degree 3 (0, 2, 3) and two triangles out of three wedges.
        assert!((cc[1] - 2.0 / 3.0).abs() < 1e-12);
        // The pendant vertex has no wedge.
        assert_eq!(cc[4], 0.0);
    }

    #[test]
    fn complete_graph_has_n_choose_3_triangles() {
        let n = 8usize;
        let mut entries = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    entries.push((i, j, 1.0));
                }
            }
        }
        let g = Coo::from_entries(n, n, entries).unwrap().to_csr();
        assert_eq!(count_triangles(&g, &SpGemm::pb()), 56); // C(8,3)
    }

    #[test]
    fn triangle_free_graphs_count_zero() {
        // A star graph and a path have no triangles.
        let star = Coo::from_entries(5, 5, (1..5).map(|v| (0usize, v, 1.0)).collect::<Vec<_>>())
            .unwrap()
            .to_csr();
        assert_eq!(count_triangles(&star, &SpGemm::pb()), 0);
        let empty = Csr::<f64>::empty(10, 10);
        assert_eq!(count_triangles(&empty, &SpGemm::pb()), 0);
    }

    #[test]
    fn matches_brute_force_on_random_graphs_for_all_engines() {
        for seed in [1u64, 2, 3] {
            let g = erdos_renyi_square(5, 3, seed);
            let expected = brute_force(&g);
            for engine in SpGemm::paper_set() {
                assert_eq!(
                    count_triangles(&g, &engine),
                    expected,
                    "engine {} seed {seed}",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn directed_and_weighted_input_is_canonicalised() {
        // Same triangle described with directed edges and arbitrary weights.
        let g = Coo::from_entries(3, 3, vec![(0, 1, 7.5), (1, 2, -2.0), (2, 0, 0.25)])
            .unwrap()
            .to_csr();
        assert_eq!(count_triangles(&g, &SpGemm::pb()), 1);
        // Self loops must not create spurious triangles.
        let with_loops = Coo::from_entries(
            3,
            3,
            vec![(0, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)],
        )
        .unwrap()
        .to_csr();
        assert_eq!(count_triangles(&with_loops, &SpGemm::pb()), 1);
    }

    #[test]
    fn per_vertex_counts_sum_to_three_times_the_total() {
        let g = rmat_square(6, 6, 11);
        let total = count_triangles(&g, &SpGemm::pb());
        let per_vertex = triangle_counts_per_vertex(&g, &SpGemm::pb());
        assert_eq!(per_vertex.iter().sum::<u64>(), 3 * total);
    }
}
