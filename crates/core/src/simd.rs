//! Runtime ISA dispatch for the sort/expand SIMD kernels.
//!
//! The paper's thesis is that PB-SpGEMM is bandwidth-bound, yet the loops
//! that move nearly all of the bytes — the LSD radix histogram/scatter and
//! the expand phase's bin-flush copy — were scalar.  This module owns the
//! vectorised kernels and the machinery that selects them:
//!
//! * **Detection** — [`detected`] probes the host once
//!   (`is_x86_feature_detected!` on x86-64, the NEON baseline on aarch64)
//!   and caches the best supported [`Isa`] level.
//! * **Forcing** — [`active`] honours `PB_SIMD=avx512|avx2|neon|scalar`
//!   ([`SIMD_ENV`]): an unrecognised name panics (a misspelt CI mode must
//!   fail loudly, exactly like `PB_ALGORITHM`), a recognised level the host
//!   cannot run is clamped *down* to the best supported level at or below
//!   it ([`clamp_to_supported`]).  [`PbConfig::with_simd`](crate::PbConfig::with_simd)
//!   overrides per multiply without touching process state, so tests can
//!   iterate levels race-free.
//! * **Proof** — every kernel invocation is counted
//!   ([`KernelCounters`], merged into
//!   [`PhaseStats::isa`](crate::profile::PhaseStats::isa)), so the bench
//!   gate *measures* which path executed instead of trusting the build.
//!
//! # Kernel design: sequential loads, not gathers
//!
//! An early revision of these kernels gathered keys with `vpgatherqq`.
//! Measured on the (virtualised) development host, the gather kernels lost
//! to the plain scalar loop — emulated/microcoded gathers cost more than
//! the strided loads they replace, a well-known failure mode on several
//! microarchitectures.  The kernels therefore load *whole entries* with
//! sequential 256/512-bit loads — an `Entry<V>` with `V` of at most eight
//! bytes is 16 bytes, so one 64-byte AVX-512 load covers four entries with
//! the keys at every other 64-bit lane — and extract the digit in-register
//! with a vector shift+mask.  Sequential full-width loads are the one
//! memory shape every cache hierarchy (and every hypervisor) does well.
//!
//! The histogram work itself is further *fused*: [`fused_histograms`]
//! computes the tables of **all** planned radix passes in one sweep over
//! the data, because per-digit counts are permutation-invariant — the
//! counts a later pass needs are the same whether measured before or after
//! the earlier passes ran.  Together with [`key_bits`] (an OR-reduction
//! that measures the *actual* significant key width, typically well under
//! the declared byte count for packed bin keys) the sorter plans fewer,
//! wider digit passes over one read of the data instead of one read per
//! byte — see [`plan_lsd`] and the sort-phase wiring in `crate::sort`.
//!
//! # Safety argument for the intrinsics blocks
//!
//! The `unsafe` here is confined to three obligations, each discharged
//! structurally:
//!
//! 1. **ISA availability** — every `#[target_feature]` kernel is reachable
//!    only through this module's dispatchers, which require the requested
//!    [`Isa`] to have passed runtime detection (all public constructors of
//!    an `Isa` value clamp through [`clamp_to_supported`];
//!    [`PbConfig::resolve_simd`](crate::PbConfig::resolve_simd) re-clamps a
//!    config override).  Executing an AVX-512 instruction therefore implies
//!    `is_x86_feature_detected!("avx512f")` returned true on this host.
//! 2. **In-bounds loads** — the vector kernels are dispatched only when
//!    `size_of::<Entry<V>>() == 16`, and read `src` in whole-entry chunks:
//!    chunk `c` loads entries `[4c, 4c + 4)` with `4c + 4 ≤ src.len()`, so
//!    every byte read is inside the slice (the value lanes read alongside
//!    the keys are initialised `Entry` fields; they are masked off, never
//!    interpreted).  The tail below one chunk is handled scalar.
//! 3. **Prefetches never fault** — `prefetch` instructions are
//!    architecturally defined as hints on both x86-64 (`prefetcht0`) and
//!    aarch64 (`prfm`): they cannot trap on any address, so
//!    [`prefetch_read`]/[`prefetch_write`] accept arbitrary (even
//!    one-past-the-end) pointers computed with `wrapping_add`.
//!
//! The scalar code paths are kept **verbatim** from the pre-SIMD revision
//! and double as the correctness oracle: the differential suite
//! (`tests/proptest_simd.rs`) pits every SIMD kernel against
//! [`byte_histogram_scalar`] / [`key_bits_scalar`] /
//! [`fused_histograms_scalar`] over random key widths, degenerate inputs
//! and unaligned buffer offsets under every level the host supports.

use std::sync::OnceLock;

use crate::bins::Entry;

/// Environment variable forcing the dispatch level for the whole process:
/// `PB_SIMD=avx512|avx2|neon|scalar`.  Read once (first use) and cached;
/// per-multiply overrides go through
/// [`PbConfig::with_simd`](crate::PbConfig::with_simd) instead.
pub const SIMD_ENV: &str = "PB_SIMD";

/// Below this many entries the vector kernels' fixed costs (bank merge,
/// table zeroing, vector setup) outweigh their throughput, so the
/// dispatchers run the scalar loop and count it as such.  Bins are sized to
/// L2 (tens of thousands of entries), so real workloads sit far above this.
pub const SIMD_MIN_LEN: usize = 1024;

/// An instruction-set level the kernels can dispatch to, ordered from the
/// always-available scalar fallback upward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Isa {
    /// The portable scalar kernels — always available, kept verbatim from
    /// the pre-SIMD revision, and the correctness oracle for every other
    /// level.  Forcing `scalar` also disables the software-prefetch hints,
    /// so this level reproduces the old code paths exactly.
    Scalar,
    /// AArch64 NEON: banked histogram accumulation with `prfm` prefetch
    /// hints (scalar in-bounds loads counted into interleaved banks for
    /// ILP; no exotic addressing, so the kernel is portable across NEON
    /// implementations).
    Neon,
    /// x86-64 AVX2: sequential 256-bit whole-entry loads (two 16-byte
    /// entries per load) with in-register shift+mask digit extraction.
    Avx2,
    /// x86-64 AVX-512F: sequential 512-bit whole-entry loads (four entries
    /// per load) with in-register shift+mask digit extraction.
    Avx512,
}

impl Isa {
    /// Every level, best first (the order [`clamp_to_supported`] searches).
    pub const ALL: [Isa; 4] = [Isa::Avx512, Isa::Avx2, Isa::Neon, Isa::Scalar];

    /// The name accepted by [`SIMD_ENV`] and emitted in telemetry.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Avx512 => "avx512",
            Isa::Avx2 => "avx2",
            Isa::Neon => "neon",
            Isa::Scalar => "scalar",
        }
    }

    /// Parses a [`SIMD_ENV`] level name.
    pub fn parse(name: &str) -> Option<Isa> {
        match name {
            "avx512" => Some(Isa::Avx512),
            "avx2" => Some(Isa::Avx2),
            "neon" => Some(Isa::Neon),
            "scalar" => Some(Isa::Scalar),
            _ => None,
        }
    }

    /// Stable index for atomic storage (see
    /// [`StatsCollector`](crate::profile::StatsCollector)).
    pub fn index(self) -> usize {
        match self {
            Isa::Scalar => 0,
            Isa::Neon => 1,
            Isa::Avx2 => 2,
            Isa::Avx512 => 3,
        }
    }

    /// Inverse of [`Isa::index`]; anything out of range is [`Isa::Scalar`].
    pub fn from_index(index: usize) -> Isa {
        match index {
            1 => Isa::Neon,
            2 => Isa::Avx2,
            3 => Isa::Avx512,
            _ => Isa::Scalar,
        }
    }

    /// Whether the *running host* can execute this level's kernels.
    pub fn is_supported(self) -> bool {
        match self {
            Isa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Neon => false,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[cfg(target_arch = "aarch64")]
            Isa::Avx2 | Isa::Avx512 => false,
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            _ => false,
        }
    }

    /// Every level the running host supports, best first.  Always contains
    /// at least [`Isa::Scalar`]; the differential tests iterate this.
    pub fn supported() -> Vec<Isa> {
        Isa::ALL.into_iter().filter(|i| i.is_supported()).collect()
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The best level the running host supports, probed once and cached.
pub fn detected() -> Isa {
    static DETECTED: OnceLock<Isa> = OnceLock::new();
    *DETECTED.get_or_init(|| clamp_to_supported(Isa::Avx512))
}

/// Reads [`SIMD_ENV`] without caching: `Ok(None)` when unset,
/// `Ok(Some(level))` for a recognised name (clamped to the host's support),
/// and a typed [`PbError`](crate::PbError) otherwise.  Resident services
/// validate through this *before* anything touches [`active`], whose
/// `OnceLock` would otherwise cache a panic path; batch tools keep the
/// panicking behaviour below.
pub fn try_env_isa() -> Result<Option<Isa>, crate::PbError> {
    match std::env::var(SIMD_ENV) {
        Err(_) => Ok(None),
        Ok(name) => match Isa::parse(&name) {
            Some(isa) => Ok(Some(clamp_to_supported(isa))),
            None => Err(crate::PbError::InvalidEnv {
                var: SIMD_ENV,
                value: name,
                expected: "avx512|avx2|neon|scalar",
            }),
        },
    }
}

/// The process-wide dispatch level: [`SIMD_ENV`] when set (unrecognised
/// names panic, recognised-but-unsupported levels clamp down), the
/// [`detected`] best otherwise.  Resolved once and cached — per-multiply
/// overrides go through [`PbConfig::with_simd`](crate::PbConfig::with_simd).
pub fn active() -> Isa {
    static ACTIVE: OnceLock<Isa> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        // A misspelt CI mode must fail loudly, not silently run the
        // detected level (mirrors `SpGemm::from_env`).
        match try_env_isa().unwrap_or_else(|e| panic!("{e}")) {
            Some(isa) => isa,
            None => detected(),
        }
    })
}

/// The best supported level at or below `want` in the [`Isa::ALL`] order
/// ([`Isa::Scalar`] is always a floor).  Cross-architecture requests fall
/// through the same rule: `PB_SIMD=avx512` on an AVX2-only host runs AVX2,
/// `PB_SIMD=neon` on x86-64 runs scalar.
pub fn clamp_to_supported(want: Isa) -> Isa {
    Isa::ALL
        .into_iter()
        .filter(|&i| i <= want)
        .find(|&i| i.is_supported())
        .unwrap_or(Isa::Scalar)
}

/// Resolves an optional per-multiply override against the process default:
/// `Some(level)` clamps to the host's support, `None` uses [`active`].
pub fn resolve(force: Option<Isa>) -> Isa {
    match force {
        Some(isa) => clamp_to_supported(isa),
        None => active(),
    }
}

/// Per-kernel invocation counters accumulated locally on the sort path and
/// merged into [`PhaseStats::isa`](crate::profile::PhaseStats::isa) once per
/// bin — the hot loops never touch an atomic.  These are the numbers that
/// let `bench_pb --gate` *prove* which code path executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Histogram passes that ran a SIMD kernel (a fused sweep counts one
    /// per table it filled — it does the work of that many passes).
    pub simd_histograms: u64,
    /// Histogram passes that ran a scalar loop (forced scalar level,
    /// unsupported host, entry layouts the vector kernels cannot load, or
    /// inputs below [`SIMD_MIN_LEN`]).
    pub scalar_histograms: u64,
    /// Radix scatter passes that issued software-prefetch hints on their
    /// destination stream.
    pub prefetched_scatters: u64,
}

impl KernelCounters {
    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &KernelCounters) {
        self.simd_histograms += other.simd_histograms;
        self.scalar_histograms += other.scalar_histograms;
        self.prefetched_scatters += other.prefetched_scatters;
    }
}

/// The number of 64-bit words one `Entry<V>` occupies; the vector kernels
/// require exactly two (a 16-byte entry, which every `V` of at most eight
/// bytes produces).
#[inline(always)]
fn entry_stride<V: Copy>() -> usize {
    debug_assert_eq!(std::mem::size_of::<Entry<V>>() % 8, 0);
    debug_assert_eq!(std::mem::offset_of!(Entry<V>, key) % 8, 0);
    std::mem::size_of::<Entry<V>>() / 8
}

/// Counts how many entries of `src` fall into each value of the key byte at
/// `shift`, dispatching to `isa`'s kernel (scalar below [`SIMD_MIN_LEN`] or
/// for entry layouts wider than 16 bytes) and counting the invocation into
/// `ctr`.
///
/// This kernel serves the american-flag MSD partition count and the
/// per-byte LSD fallback; the main LSD path plans wider digits and goes
/// through [`fused_histograms`] instead.
#[inline]
pub fn byte_histogram<V: Copy>(
    isa: Isa,
    src: &[Entry<V>],
    shift: u32,
    ctr: &mut KernelCounters,
) -> [usize; 256] {
    if src.len() >= SIMD_MIN_LEN {
        #[cfg(target_arch = "x86_64")]
        if entry_stride::<V>() == 2 {
            if isa == Isa::Avx512 {
                ctr.simd_histograms += 1;
                // SAFETY: dispatch reaches here only when avx512f passed
                // runtime detection; loads per the module safety argument.
                return unsafe { byte_histogram_avx512(src, shift) };
            }
            if isa == Isa::Avx2 {
                ctr.simd_histograms += 1;
                // SAFETY: as above, with avx2 detection.
                return unsafe { byte_histogram_avx2(src, shift) };
            }
        }
        #[cfg(target_arch = "aarch64")]
        if isa == Isa::Neon {
            ctr.simd_histograms += 1;
            // SAFETY: neon passed runtime detection; the kernel only
            // does scalar in-bounds loads plus prefetch hints.
            return unsafe { byte_histogram_neon(src, shift) };
        }
    }
    let _ = isa;
    ctr.scalar_histograms += 1;
    byte_histogram_scalar(src, shift)
}

/// The scalar histogram loop, verbatim from the pre-SIMD sort phase — the
/// always-available fallback and the oracle the differential tests compare
/// every SIMD kernel against.
pub fn byte_histogram_scalar<V: Copy>(src: &[Entry<V>], shift: u32) -> [usize; 256] {
    let mut counts = [0usize; 256];
    for e in src.iter() {
        counts[((e.key >> shift) & 0xFF) as usize] += 1;
    }
    counts
}

// ---------------------------------------------------------------------------
// Key-width measurement and the fused multi-pass histogram plan.
// ---------------------------------------------------------------------------

/// Hard cap on the passes a fused LSD plan may take ([`plan_lsd`]); keys
/// wider than `FUSED_MAX_PASSES · FUSED_MAX_DIGIT_BITS` significant bits
/// fall back to the per-byte passes.
pub const FUSED_MAX_PASSES: usize = 3;

/// Hard cap on the digit width of a fused LSD plan: 12-bit digits mean a
/// 4096-counter table (32 KiB), the widest that still lives comfortably in
/// L1/L2 next to the bin being sorted.
pub const FUSED_MAX_DIGIT_BITS: u32 = 12;

/// Counters per fused histogram table (`2^FUSED_MAX_DIGIT_BITS`).
pub const FUSED_RADIX: usize = 1 << FUSED_MAX_DIGIT_BITS;

/// Stack storage for one fused histogram sweep: one table per potential
/// pass, sized for the widest digit (96 KiB — the sorter declares one per
/// bin on the worker stack, far below the 2 MiB thread default).  A plan
/// with narrower digits simply uses a prefix of each table.
pub type FusedTables = [[usize; FUSED_RADIX]; FUSED_MAX_PASSES];

/// A fused LSD schedule: `passes` stable counting passes over
/// `digit_bits`-bit digits, least significant first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsdPlan {
    /// Width of each digit in bits (`1..=FUSED_MAX_DIGIT_BITS`; 0 only in
    /// the degenerate zero-pass plan).
    pub digit_bits: u32,
    /// Number of passes (`0..=FUSED_MAX_PASSES`); 0 means every key is
    /// zero and the input is already stably sorted.
    pub passes: usize,
}

impl LsdPlan {
    /// Mask selecting one digit after the shift.
    #[inline(always)]
    pub fn digit_mask(&self) -> u64 {
        (1u64 << self.digit_bits) - 1
    }

    /// Number of buckets per pass.
    #[inline(always)]
    pub fn radix(&self) -> usize {
        1usize << self.digit_bits
    }

    /// Right-shift selecting the digit of pass `pass`.
    #[inline(always)]
    pub fn shift(&self, pass: usize) -> u32 {
        self.digit_bits * pass as u32
    }
}

/// Plans the fused LSD passes for keys of `bits` significant bits with
/// digits capped at `max_digit_bits` (the sorter passes
/// `min(FUSED_MAX_DIGIT_BITS, ⌊log2 len⌋)` so the counter tables never
/// dwarf the bin they serve).  Minimises the pass count first, then
/// balances the digit width — e.g. 19-bit packed bin keys plan two 10-bit
/// passes where the per-byte path would take three.  Returns `None` when
/// the width cannot be covered in [`FUSED_MAX_PASSES`] (the caller falls
/// back to the per-byte passes).
pub fn plan_lsd(bits: u32, max_digit_bits: u32) -> Option<LsdPlan> {
    if bits == 0 {
        return Some(LsdPlan {
            digit_bits: 0,
            passes: 0,
        });
    }
    let cap = max_digit_bits.clamp(1, FUSED_MAX_DIGIT_BITS);
    let passes = bits.div_ceil(cap);
    if passes as usize > FUSED_MAX_PASSES {
        return None;
    }
    Some(LsdPlan {
        digit_bits: bits.div_ceil(passes),
        passes: passes as usize,
    })
}

/// Measures the significant key width of `src` in bits — `64 - clz(OR of
/// all keys)` — dispatching an OR-reduction at `isa`.  The OR of the keys
/// shares its highest set bit with their maximum, which is all a radix
/// plan needs, and unlike a max it reduces with a single lane-wise vector
/// op.  Not counted in [`KernelCounters`]: it is planning overhead of the
/// fused sweep, not a histogram pass.
pub fn key_bits<V: Copy>(isa: Isa, src: &[Entry<V>]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if entry_stride::<V>() == 2 && src.len() >= 8 {
        if isa == Isa::Avx512 {
            // SAFETY: avx512f passed runtime detection (dispatch
            // invariant); whole-entry loads per the module safety argument.
            return unsafe { key_bits_avx512(src) };
        }
        if isa == Isa::Avx2 {
            // SAFETY: as above, with avx2 detection.
            return unsafe { key_bits_avx2(src) };
        }
    }
    let _ = isa;
    key_bits_scalar(src)
}

/// The scalar OR-fold oracle for [`key_bits`].
pub fn key_bits_scalar<V: Copy>(src: &[Entry<V>]) -> u32 {
    let mut acc = 0u64;
    for e in src.iter() {
        acc |= e.key;
    }
    64 - acc.leading_zeros()
}

/// Computes the histograms of **every** planned digit in one sweep over
/// `src`, filling `tables[pass][digit]` for `pass < plan.passes`.  The
/// caller provides zeroed tables (see [`FusedTables`]).  Counts
/// `plan.passes` histogram invocations — the sweep does the work of that
/// many per-pass kernels against a single read of the data.
///
/// Digit counts are permutation-invariant, so tables measured up front
/// equal the tables each scatter pass would have measured on its own
/// (permuted) input — the fused sort is bit-identical to the per-pass one.
pub fn fused_histograms<V: Copy>(
    isa: Isa,
    src: &[Entry<V>],
    plan: &LsdPlan,
    tables: &mut FusedTables,
    ctr: &mut KernelCounters,
) {
    if plan.passes == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if entry_stride::<V>() == 2 && src.len() >= SIMD_MIN_LEN {
        if isa == Isa::Avx512 {
            ctr.simd_histograms += plan.passes as u64;
            // SAFETY: avx512f passed runtime detection (dispatch
            // invariant); whole-entry loads per the module safety argument.
            return unsafe { fused_histograms_avx512(src, plan, tables) };
        }
        if isa == Isa::Avx2 {
            ctr.simd_histograms += plan.passes as u64;
            // SAFETY: as above, with avx2 detection.
            return unsafe { fused_histograms_avx2(src, plan, tables) };
        }
    }
    #[cfg(target_arch = "aarch64")]
    if isa == Isa::Neon && src.len() >= SIMD_MIN_LEN {
        ctr.simd_histograms += plan.passes as u64;
        // SAFETY: neon passed runtime detection; the kernel only does
        // scalar in-bounds loads plus prefetch hints.
        return unsafe { fused_histograms_neon(src, plan, tables) };
    }
    let _ = isa;
    ctr.scalar_histograms += plan.passes as u64;
    fused_histograms_scalar(src, plan, tables)
}

/// The scalar fused sweep — fallback and differential oracle for the
/// vector kernels.
pub fn fused_histograms_scalar<V: Copy>(
    src: &[Entry<V>],
    plan: &LsdPlan,
    tables: &mut FusedTables,
) {
    let mask = plan.digit_mask();
    for e in src.iter() {
        for (pass, t) in tables[..plan.passes].iter_mut().enumerate() {
            t[((e.key >> plan.shift(pass)) & mask) as usize] += 1;
        }
    }
}

/// Hints that the cache line holding `p` is about to be read.  Never
/// faults; accepts any pointer including one-past-the-end.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetcht0 is an architectural hint and cannot trap.
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<{ _MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: prfm is an architectural hint and cannot trap.
    unsafe {
        core::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// Hints that the cache line holding `p` is about to be written (the
/// bin-flush destinations and the radix scatter stream).  Never faults.
#[inline(always)]
pub fn prefetch_write<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetcht0 is an architectural hint and cannot trap.
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<{ _MM_HINT_T0 }>(p as *const i8);
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: prfm is an architectural hint and cannot trap.
    unsafe {
        core::arch::asm!("prfm pstl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// Byte stride between consecutive prefetch hints (one cache line).
pub(crate) const PREFETCH_LINE_BYTES: usize = 64;

// ---------------------------------------------------------------------------
// x86-64 kernels: sequential whole-entry loads, shift+mask digit extraction.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn byte_histogram_avx2<V: Copy>(src: &[Entry<V>], shift: u32) -> [usize; 256] {
    use core::arch::x86_64::*;
    let key_off = std::mem::offset_of!(Entry<V>, key) / 8;
    let base = src.as_ptr() as *const i64;
    let count = _mm_cvtsi32_si128(shift as i32);
    let mask = _mm256_set1_epi64x(0xFF);
    // Four interleaved banks break the store-to-load dependency chain a
    // single counts array would serialise the increments on.
    let mut banks = [[0usize; 256]; 4];
    let mut lanes = [0u64; 8];
    let n = src.len();
    let chunks = n / 4;
    for c in 0..chunks {
        // Two 32-byte loads cover four whole 16-byte entries; the key of
        // entry j within the chunk sits at 64-bit lane `key_off + 2j`.
        let v0 = _mm256_loadu_si256(base.add(c * 8) as *const __m256i);
        let v1 = _mm256_loadu_si256(base.add(c * 8 + 4) as *const __m256i);
        let b0 = _mm256_and_si256(_mm256_srl_epi64(v0, count), mask);
        let b1 = _mm256_and_si256(_mm256_srl_epi64(v1, count), mask);
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, b0);
        _mm256_storeu_si256(lanes.as_mut_ptr().add(4) as *mut __m256i, b1);
        banks[0][lanes[key_off] as usize] += 1;
        banks[1][lanes[key_off + 2] as usize] += 1;
        banks[2][lanes[key_off + 4] as usize] += 1;
        banks[3][lanes[key_off + 6] as usize] += 1;
    }
    let mut counts = [0usize; 256];
    for (b, slot) in counts.iter_mut().enumerate() {
        *slot = banks[0][b] + banks[1][b] + banks[2][b] + banks[3][b];
    }
    for e in &src[chunks * 4..] {
        counts[((e.key >> shift) & 0xFF) as usize] += 1;
    }
    counts
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn byte_histogram_avx512<V: Copy>(src: &[Entry<V>], shift: u32) -> [usize; 256] {
    use core::arch::x86_64::*;
    let key_off = std::mem::offset_of!(Entry<V>, key) / 8;
    let base = src.as_ptr() as *const i64;
    let count = _mm_cvtsi32_si128(shift as i32);
    let mask = _mm512_set1_epi64(0xFF);
    let mut banks = [[0usize; 256]; 4];
    let mut lanes = [0u64; 8];
    let n = src.len();
    let chunks = n / 4;
    for c in 0..chunks {
        // One 64-byte load covers four whole 16-byte entries; the key of
        // entry j within the chunk sits at 64-bit lane `key_off + 2j`.
        let v = _mm512_loadu_si512(base.add(c * 8) as *const __m512i);
        let b = _mm512_and_si512(_mm512_srl_epi64(v, count), mask);
        _mm512_storeu_si512(lanes.as_mut_ptr() as *mut __m512i, b);
        banks[0][lanes[key_off] as usize] += 1;
        banks[1][lanes[key_off + 2] as usize] += 1;
        banks[2][lanes[key_off + 4] as usize] += 1;
        banks[3][lanes[key_off + 6] as usize] += 1;
    }
    let mut counts = [0usize; 256];
    for (b, slot) in counts.iter_mut().enumerate() {
        *slot = banks[0][b] + banks[1][b] + banks[2][b] + banks[3][b];
    }
    for e in &src[chunks * 4..] {
        counts[((e.key >> shift) & 0xFF) as usize] += 1;
    }
    counts
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn key_bits_avx2<V: Copy>(src: &[Entry<V>]) -> u32 {
    use core::arch::x86_64::*;
    let key_off = std::mem::offset_of!(Entry<V>, key) / 8;
    let base = src.as_ptr() as *const i64;
    let chunks = src.len() / 2;
    let mut acc = _mm256_setzero_si256();
    for c in 0..chunks {
        // OR whole entries; the value lanes are discarded at the fold.
        acc = _mm256_or_si256(acc, _mm256_loadu_si256(base.add(c * 4) as *const __m256i));
    }
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
    let mut keys = lanes[key_off] | lanes[key_off + 2];
    for e in &src[chunks * 2..] {
        keys |= e.key;
    }
    64 - keys.leading_zeros()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn key_bits_avx512<V: Copy>(src: &[Entry<V>]) -> u32 {
    use core::arch::x86_64::*;
    let key_off = std::mem::offset_of!(Entry<V>, key) / 8;
    let base = src.as_ptr() as *const i64;
    let chunks = src.len() / 4;
    let mut acc = _mm512_setzero_si512();
    for c in 0..chunks {
        acc = _mm512_or_si512(acc, _mm512_loadu_si512(base.add(c * 8) as *const __m512i));
    }
    let mut lanes = [0u64; 8];
    _mm512_storeu_si512(lanes.as_mut_ptr() as *mut __m512i, acc);
    let mut keys = lanes[key_off] | lanes[key_off + 2] | lanes[key_off + 4] | lanes[key_off + 6];
    for e in &src[chunks * 4..] {
        keys |= e.key;
    }
    64 - keys.leading_zeros()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fused_histograms_avx2<V: Copy>(
    src: &[Entry<V>],
    plan: &LsdPlan,
    tables: &mut FusedTables,
) {
    use core::arch::x86_64::*;
    let key_off = std::mem::offset_of!(Entry<V>, key) / 8;
    let base = src.as_ptr() as *const i64;
    let mask = _mm256_set1_epi64x(plan.digit_mask() as i64);
    let mut shifts = [_mm_setzero_si128(); FUSED_MAX_PASSES];
    for (pass, s) in shifts[..plan.passes].iter_mut().enumerate() {
        *s = _mm_cvtsi32_si128(plan.shift(pass) as i32);
    }
    let mut lanes = [0u64; 8];
    let n = src.len();
    let chunks = n / 4;
    for c in 0..chunks {
        let v0 = _mm256_loadu_si256(base.add(c * 8) as *const __m256i);
        let v1 = _mm256_loadu_si256(base.add(c * 8 + 4) as *const __m256i);
        for (t, &sh) in tables[..plan.passes].iter_mut().zip(&shifts) {
            let d0 = _mm256_and_si256(_mm256_srl_epi64(v0, sh), mask);
            let d1 = _mm256_and_si256(_mm256_srl_epi64(v1, sh), mask);
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, d0);
            _mm256_storeu_si256(lanes.as_mut_ptr().add(4) as *mut __m256i, d1);
            t[lanes[key_off] as usize] += 1;
            t[lanes[key_off + 2] as usize] += 1;
            t[lanes[key_off + 4] as usize] += 1;
            t[lanes[key_off + 6] as usize] += 1;
        }
    }
    fused_histograms_tail(&src[chunks * 4..], plan, tables);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn fused_histograms_avx512<V: Copy>(
    src: &[Entry<V>],
    plan: &LsdPlan,
    tables: &mut FusedTables,
) {
    use core::arch::x86_64::*;
    let key_off = std::mem::offset_of!(Entry<V>, key) / 8;
    let base = src.as_ptr() as *const i64;
    let mask = _mm512_set1_epi64(plan.digit_mask() as i64);
    let mut shifts = [_mm_setzero_si128(); FUSED_MAX_PASSES];
    for (pass, s) in shifts[..plan.passes].iter_mut().enumerate() {
        *s = _mm_cvtsi32_si128(plan.shift(pass) as i32);
    }
    let mut lanes = [0u64; 8];
    let n = src.len();
    let chunks = n / 4;
    for c in 0..chunks {
        let v = _mm512_loadu_si512(base.add(c * 8) as *const __m512i);
        for (t, &sh) in tables[..plan.passes].iter_mut().zip(&shifts) {
            let d = _mm512_and_si512(_mm512_srl_epi64(v, sh), mask);
            _mm512_storeu_si512(lanes.as_mut_ptr() as *mut __m512i, d);
            t[lanes[key_off] as usize] += 1;
            t[lanes[key_off + 2] as usize] += 1;
            t[lanes[key_off + 4] as usize] += 1;
            t[lanes[key_off + 6] as usize] += 1;
        }
    }
    fused_histograms_tail(&src[chunks * 4..], plan, tables);
}

/// Scalar tail shared by the vector fused kernels (entries below one chunk).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn fused_histograms_tail<V: Copy>(tail: &[Entry<V>], plan: &LsdPlan, tables: &mut FusedTables) {
    let mask = plan.digit_mask();
    for e in tail.iter() {
        for (pass, t) in tables[..plan.passes].iter_mut().enumerate() {
            t[((e.key >> plan.shift(pass)) & mask) as usize] += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// AArch64 kernels: scalar in-bounds loads, banked counting, prfm prefetch.
// ---------------------------------------------------------------------------

/// AArch64 NEON level: keys are loaded scalar but counted into four
/// interleaved banks (the same ILP trick as the x86 kernels) with the
/// source stream prefetched ahead.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn byte_histogram_neon<V: Copy>(src: &[Entry<V>], shift: u32) -> [usize; 256] {
    const AHEAD: usize = 16;
    let mut banks = [[0usize; 256]; 4];
    let n = src.len();
    let mut i = 0usize;
    while i + 4 <= n {
        if i + AHEAD < n {
            prefetch_read(src.as_ptr().wrapping_add(i + AHEAD));
        }
        banks[0][((src[i].key >> shift) & 0xFF) as usize] += 1;
        banks[1][((src[i + 1].key >> shift) & 0xFF) as usize] += 1;
        banks[2][((src[i + 2].key >> shift) & 0xFF) as usize] += 1;
        banks[3][((src[i + 3].key >> shift) & 0xFF) as usize] += 1;
        i += 4;
    }
    let mut counts = [0usize; 256];
    for (b, slot) in counts.iter_mut().enumerate() {
        *slot = banks[0][b] + banks[1][b] + banks[2][b] + banks[3][b];
    }
    for e in &src[i..] {
        counts[((e.key >> shift) & 0xFF) as usize] += 1;
    }
    counts
}

/// The NEON fused sweep: one read of the data filling every pass's table
/// (each pass already has its own table, so the increments never chain),
/// with the source stream prefetched ahead.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn fused_histograms_neon<V: Copy>(
    src: &[Entry<V>],
    plan: &LsdPlan,
    tables: &mut FusedTables,
) {
    const AHEAD: usize = 16;
    let mask = plan.digit_mask();
    let n = src.len();
    for (i, e) in src.iter().enumerate() {
        if i + AHEAD < n {
            prefetch_read(src.as_ptr().wrapping_add(i + AHEAD));
        }
        for (pass, t) in tables[..plan.passes].iter_mut().enumerate() {
            t[((e.key >> plan.shift(pass)) & mask) as usize] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(n: usize, seed: u64) -> Vec<Entry<u64>> {
        // Splitmix64 keys: deterministic, full 64-bit coverage.
        let mut state = seed;
        (0..n)
            .map(|i| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                Entry {
                    key: z ^ (z >> 31),
                    val: i as u64,
                }
            })
            .collect()
    }

    #[test]
    fn every_supported_level_matches_the_scalar_oracle() {
        let src = entries(SIMD_MIN_LEN + 37, 7);
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            let want = byte_histogram_scalar(&src, shift);
            for isa in Isa::supported() {
                let mut ctr = KernelCounters::default();
                let got = byte_histogram(isa, &src, shift, &mut ctr);
                assert_eq!(got, want, "{isa} shift={shift}");
                if isa == Isa::Scalar {
                    assert_eq!(ctr.scalar_histograms, 1);
                } else {
                    assert_eq!(ctr.simd_histograms, 1, "{isa} must count as SIMD");
                }
            }
        }
    }

    #[test]
    fn small_inputs_run_the_scalar_path_and_count_it() {
        let src = entries(SIMD_MIN_LEN - 1, 3);
        for isa in Isa::supported() {
            let mut ctr = KernelCounters::default();
            let got = byte_histogram(isa, &src, 8, &mut ctr);
            assert_eq!(got, byte_histogram_scalar(&src, 8));
            assert_eq!(ctr.scalar_histograms, 1, "{isa}");
            assert_eq!(ctr.simd_histograms, 0, "{isa}");
        }
    }

    #[test]
    fn histogram_counts_partition_the_input() {
        let src = entries(5000, 11);
        for isa in Isa::supported() {
            let mut ctr = KernelCounters::default();
            let counts = byte_histogram(isa, &src, 16, &mut ctr);
            assert_eq!(counts.iter().sum::<usize>(), src.len(), "{isa}");
        }
    }

    #[test]
    fn key_bits_matches_the_scalar_fold_at_every_level() {
        for &width in &[0u32, 1, 7, 11, 19, 24, 33, 52, 64] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let mut src = entries(SIMD_MIN_LEN + 13, 40 + width as u64);
            for e in &mut src {
                e.key &= mask;
            }
            // Plant one key with the top permitted bit set so the width is
            // exact, not probabilistic.
            if width > 0 {
                let mid = src.len() / 2;
                src[mid].key |= 1u64 << (width - 1);
            }
            let want = key_bits_scalar(&src);
            assert_eq!(want, width, "planted width must be measured exactly");
            for isa in Isa::supported() {
                assert_eq!(key_bits(isa, &src), want, "{isa} width={width}");
            }
            // Odd lengths exercise the scalar tail of the vector kernels.
            for cut in [1usize, 2, 3, 5, 7] {
                let head = &src[..src.len() - cut];
                let want = key_bits_scalar(head);
                for isa in Isa::supported() {
                    assert_eq!(key_bits(isa, head), want, "{isa} cut={cut}");
                }
            }
        }
    }

    #[test]
    fn plan_lsd_minimises_passes_and_respects_caps() {
        // Zero width: the degenerate already-sorted plan.
        assert_eq!(
            plan_lsd(0, FUSED_MAX_DIGIT_BITS),
            Some(LsdPlan {
                digit_bits: 0,
                passes: 0
            })
        );
        // The packed-bin sweet spot: 19 bits in two balanced passes where
        // the per-byte path would take three.
        assert_eq!(
            plan_lsd(19, 12),
            Some(LsdPlan {
                digit_bits: 10,
                passes: 2
            })
        );
        assert_eq!(
            plan_lsd(32, 12),
            Some(LsdPlan {
                digit_bits: 11,
                passes: 3
            })
        );
        // Beyond the cap: fall back.
        assert_eq!(plan_lsd(37, 12), None);
        assert_eq!(plan_lsd(64, 12), None);
        // Digit caps bind (a small bin refuses jumbo tables).
        assert_eq!(
            plan_lsd(19, 10),
            Some(LsdPlan {
                digit_bits: 10,
                passes: 2
            })
        );
        for bits in 1..=36u32 {
            for cap in 1..=FUSED_MAX_DIGIT_BITS {
                if let Some(plan) = plan_lsd(bits, cap) {
                    assert!(plan.digit_bits <= cap);
                    assert!(plan.passes <= FUSED_MAX_PASSES);
                    // The plan covers the whole width.
                    assert!(plan.digit_bits * plan.passes as u32 >= bits, "{bits} {cap}");
                }
            }
        }
    }

    #[test]
    fn fused_histograms_match_the_scalar_sweep_at_every_level() {
        for &width in &[5u32, 10, 19, 26, 33] {
            let mask = (1u64 << width) - 1;
            let mut src = entries(SIMD_MIN_LEN + 29, 90 + width as u64);
            for e in &mut src {
                e.key &= mask;
            }
            let plan = plan_lsd(width, FUSED_MAX_DIGIT_BITS).unwrap();
            let mut want: FusedTables = [[0; FUSED_RADIX]; FUSED_MAX_PASSES];
            fused_histograms_scalar(&src, &plan, &mut want);
            // Each pass's table must partition the input, and agree with
            // the independently-computed per-pass scalar counts.
            for table in &want[..plan.passes] {
                assert_eq!(table.iter().sum::<usize>(), src.len());
            }
            for isa in Isa::supported() {
                let mut ctr = KernelCounters::default();
                let mut got: FusedTables = [[0; FUSED_RADIX]; FUSED_MAX_PASSES];
                fused_histograms(isa, &src, &plan, &mut got, &mut ctr);
                assert_eq!(got, want, "{isa} width={width}");
                if isa == Isa::Scalar {
                    assert_eq!(ctr.scalar_histograms, plan.passes as u64);
                } else {
                    assert_eq!(ctr.simd_histograms, plan.passes as u64, "{isa}");
                }
            }
        }
    }

    #[test]
    fn parse_clamp_and_names_round_trip() {
        for isa in Isa::ALL {
            assert_eq!(Isa::parse(isa.name()), Some(isa));
            assert_eq!(Isa::from_index(isa.index()), isa);
        }
        assert_eq!(Isa::parse("sse2"), None);
        // Scalar is always supported and always the clamp floor.
        assert!(Isa::Scalar.is_supported());
        assert_eq!(clamp_to_supported(Isa::Scalar), Isa::Scalar);
        // Clamping never goes above the request and always lands supported.
        for isa in Isa::ALL {
            let clamped = clamp_to_supported(isa);
            assert!(clamped <= isa);
            assert!(clamped.is_supported());
        }
        // The detected best is supported, and resolve() honours overrides.
        assert!(detected().is_supported());
        assert_eq!(resolve(Some(Isa::Scalar)), Isa::Scalar);
        assert_eq!(resolve(None), active());
    }

    #[test]
    fn prefetch_helpers_accept_edge_pointers() {
        // Hints must tolerate any address, including one-past-the-end and
        // null — they are the addresses the scatter loop computes.
        let v = [0u8; 64];
        prefetch_read(v.as_ptr());
        prefetch_write(v.as_ptr().wrapping_add(v.len()));
        prefetch_read(std::ptr::null::<u8>());
    }

    #[test]
    fn kernel_counters_merge() {
        let mut a = KernelCounters {
            simd_histograms: 2,
            scalar_histograms: 1,
            prefetched_scatters: 3,
        };
        let b = KernelCounters {
            simd_histograms: 1,
            scalar_histograms: 4,
            prefetched_scatters: 2,
        };
        a.merge(&b);
        assert_eq!(a.simd_histograms, 3);
        assert_eq!(a.scalar_histograms, 5);
        assert_eq!(a.prefetched_scatters, 5);
    }
}
