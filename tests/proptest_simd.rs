//! Differential property tests pitting every SIMD kernel the host supports
//! against the scalar oracle (satellite of the ISA-dispatch work).
//!
//! Three surfaces are exercised:
//!
//! * [`simd::byte_histogram`] — the vectorised radix histogram — against
//!   [`simd::byte_histogram_scalar`], the verbatim pre-SIMD loop, over every
//!   radix pass shift;
//! * the fused planning pipeline — [`simd::key_bits`] against the scalar
//!   OR-fold, and [`simd::fused_histograms`] (every planned digit counted in
//!   one sweep) against the scalar sweep *and* an independent per-digit
//!   recount — over whatever plan [`simd::plan_lsd`] schedules for the
//!   generated key width;
//! * [`sort::sort_slice_with`] under each dispatch level and each radix
//!   algorithm against the scalar run of the same algorithm, asserting
//!   *bitwise* equal output (keys and values) — the kernels only reorder
//!   bookkeeping, so even unstable tie orders must come out identical — plus
//!   sortedness, multiset preservation, and LSD stability against a
//!   tie-broken comparison sort.
//!
//! The strategies deliberately cover the degenerate shapes the kernels
//! special-case: empty and single-entry slices, all-equal keys (one
//! histogram bucket takes everything), narrow and full-width random key
//! widths, lengths straddling [`simd::SIMD_MIN_LEN`], and unaligned slice
//! starts (the vector kernels load whole entries from the slice base, so a
//! `&mut v[off..]` sub-slice must work for any `off`).

use proptest::prelude::*;

use pb_spgemm_suite::spgemm::sort;
use pb_spgemm_suite::spgemm::{simd, Entry, SortAlgorithm};

/// Builds entries whose value records the original position, so the sort
/// comparisons below also prove key/value pairs are never separated.
fn entries_from_keys(keys: &[u64]) -> Vec<Entry<u32>> {
    keys.iter()
        .enumerate()
        .map(|(i, &key)| Entry { key, val: i as u32 })
        .collect()
}

/// Strategy: a key vector of arbitrary length with keys confined to
/// `key_bytes` significant bytes, plus an unaligned start offset.
fn keyed_input() -> impl Strategy<Value = (Vec<u64>, usize, usize)> {
    (1usize..=8, 0usize..4).prop_flat_map(|(key_bytes, off)| {
        let mask = if key_bytes == 8 {
            u64::MAX
        } else {
            (1u64 << (8 * key_bytes)) - 1
        };
        proptest::collection::vec((0u64..=u64::MAX).prop_map(move |k| k & mask), 0..2200)
            .prop_map(move |keys| (keys, key_bytes, off))
    })
}

/// Strategy: degenerate shapes the kernels special-case — empty,
/// single-entry, and all-equal keys at a length above the SIMD threshold.
fn degenerate_input() -> impl Strategy<Value = (Vec<u64>, usize, usize)> {
    (0usize..3, 0u64..=u64::MAX).prop_map(|(kind, k)| {
        let keys = match kind {
            0 => Vec::new(),
            1 => vec![k],
            _ => vec![k; simd::SIMD_MIN_LEN + 37],
        };
        (keys, 8usize, 0usize)
    })
}

/// Asserts every supported histogram kernel matches the scalar oracle on
/// `seg` across all eight radix shifts, and that the counts always
/// partition the input.
fn check_histograms(seg: &[Entry<u32>]) {
    for isa in simd::Isa::supported() {
        for pass in 0..8u32 {
            let shift = pass * 8;
            let mut ctr = simd::KernelCounters::default();
            let got = simd::byte_histogram(isa, seg, shift, &mut ctr);
            let want = simd::byte_histogram_scalar(seg, shift);
            assert_eq!(got, want, "{isa} shift={shift} len={}", seg.len());
            assert_eq!(got.iter().sum::<usize>(), seg.len());
        }
    }
}

/// Asserts the fused planning pipeline agrees with its scalar oracles on
/// `seg`: [`simd::key_bits`] with the OR-fold at every level, and — for the
/// plan [`simd::plan_lsd`] schedules at that width — every level's
/// [`simd::fused_histograms`] with both the scalar sweep and an independent
/// per-digit recount.
fn check_fused_pipeline(seg: &[Entry<u32>]) {
    let want_bits = simd::key_bits_scalar(seg);
    for isa in simd::Isa::supported() {
        assert_eq!(
            simd::key_bits(isa, seg),
            want_bits,
            "{isa} key_bits diverged (len={})",
            seg.len()
        );
    }
    let Some(plan) = simd::plan_lsd(want_bits, simd::FUSED_MAX_DIGIT_BITS) else {
        return; // keys wider than the fused plan's reach: nothing to fuse
    };
    let mut want: Box<simd::FusedTables> =
        Box::new([[0; simd::FUSED_RADIX]; simd::FUSED_MAX_PASSES]);
    simd::fused_histograms_scalar(seg, &plan, &mut want);
    for pass in 0..plan.passes {
        // Independent recount of this digit, not via the sweep under test.
        let mut recount = vec![0usize; plan.radix()];
        for e in seg {
            recount[((e.key >> plan.shift(pass)) & plan.digit_mask()) as usize] += 1;
        }
        assert_eq!(&want[pass][..plan.radix()], &recount[..], "pass={pass}");
        assert_eq!(want[pass].iter().sum::<usize>(), seg.len());
    }
    for isa in simd::Isa::supported() {
        let mut ctr = simd::KernelCounters::default();
        let mut got: Box<simd::FusedTables> =
            Box::new([[0; simd::FUSED_RADIX]; simd::FUSED_MAX_PASSES]);
        simd::fused_histograms(isa, seg, &plan, &mut got, &mut ctr);
        assert_eq!(got, want, "{isa} fused sweep diverged (len={})", seg.len());
        assert_eq!(
            ctr.simd_histograms + ctr.scalar_histograms,
            plan.passes as u64,
            "{isa} must count one histogram per planned pass"
        );
    }
}

/// Asserts, per algorithm: the scalar run is correctly sorted and preserves
/// the key/value multiset, and every SIMD level reproduces the scalar run
/// *bitwise* — the kernels only restructure bookkeeping, so even unstable
/// tie orders (american-flag) must come out identical.
fn check_sorts(entries: &[Entry<u32>], key_bytes: usize) {
    let mut multiset = entries.to_vec();
    multiset.sort_by_key(|e| (e.key, e.val));
    for algorithm in [SortAlgorithm::LsdRadix, SortAlgorithm::AmericanFlag] {
        let mut oracle = entries.to_vec();
        sort::sort_slice_with(&mut oracle, key_bytes, algorithm, simd::Isa::Scalar);
        assert!(
            oracle.windows(2).all(|w| w[0].key <= w[1].key),
            "{algorithm:?}/scalar output not sorted (len={})",
            entries.len()
        );
        let mut tied = oracle.clone();
        tied.sort_by_key(|e| (e.key, e.val));
        assert_eq!(
            tied, multiset,
            "{algorithm:?}/scalar lost or forged entries"
        );
        if algorithm == SortAlgorithm::LsdRadix {
            // LSD radix is stable: ties keep insertion (= val) order, so the
            // tie-broken comparison sort is bit-exact for it.
            assert_eq!(oracle, multiset, "LsdRadix/scalar is no longer stable");
        }
        for isa in simd::Isa::supported() {
            let mut seg = entries.to_vec();
            sort::sort_slice_with(&mut seg, key_bytes, algorithm, isa);
            assert_eq!(
                seg,
                oracle,
                "{algorithm:?}/{isa} diverged from the scalar oracle (len={}, key_bytes={key_bytes})",
                entries.len()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn histograms_match_the_scalar_oracle((keys, _key_bytes, off) in keyed_input()) {
        let entries = entries_from_keys(&keys);
        check_histograms(&entries[off.min(entries.len())..]);
    }

    #[test]
    fn fused_pipeline_matches_the_scalar_oracle((keys, _key_bytes, off) in keyed_input()) {
        let entries = entries_from_keys(&keys);
        check_fused_pipeline(&entries[off.min(entries.len())..]);
    }

    #[test]
    fn sorts_match_the_scalar_oracle((keys, key_bytes, off) in keyed_input()) {
        let entries = entries_from_keys(&keys);
        check_sorts(&entries[off.min(entries.len())..], key_bytes);
    }

    #[test]
    fn degenerate_inputs_survive_every_kernel((keys, key_bytes, _off) in degenerate_input()) {
        let entries = entries_from_keys(&keys);
        check_histograms(&entries);
        check_fused_pipeline(&entries);
        check_sorts(&entries, key_bytes);
    }
}

/// Non-random anchor: a slice long enough for the SIMD path, checked at
/// every unaligned start offset, under every supported level.  Proptest's
/// shrinking makes failures above minimal; this pins the exact boundary
/// cases (offset × threshold crossing) deterministically.
#[test]
fn unaligned_offsets_at_the_simd_threshold() {
    let mut state = 0x9e3779b97f4a7c15u64;
    let keys: Vec<u64> = (0..simd::SIMD_MIN_LEN + 64)
        .map(|_| {
            // splitmix64: deterministic full-width keys.
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        })
        .collect();
    let entries = entries_from_keys(&keys);
    for off in 0..4 {
        check_histograms(&entries[off..]);
        check_fused_pipeline(&entries[off..]);
        check_sorts(&entries[off..], 8);
    }
}
