//! All-pairs shortest paths by min-plus matrix squaring.
//!
//! Under the tropical semiring `(min, +)`, `D ⊗ D` relaxes every path by one
//! doubling of its hop count, so `⌈log₂ n⌉` squarings of the one-hop distance
//! matrix yield all-pairs shortest path lengths.  Each squaring is one
//! SpGEMM, making this a compact stress test of the semiring-generic kernels
//! (the output densifies quickly, so it is only sensible for small graphs —
//! see [`APSP_DENSE_LIMIT`]).

use pb_sparse::semiring::MinPlus;
use pb_sparse::{ops, Coo, Csr};

use pb_spgemm::SpGemm;

/// Above this many vertices the distance matrix is essentially dense and the
/// repeated-squaring approach stops being sensible; callers get a debug
/// assertion rather than silent quadratic memory use.
pub const APSP_DENSE_LIMIT: usize = 4096;

/// Computes all-pairs shortest path distances for the non-negatively weighted
/// directed graph `weights` (`weights(u, v)` = length of edge `u → v`).
///
/// Returns a CSR matrix whose entry `(u, v)` is the distance from `u` to `v`;
/// unreachable pairs are simply not stored.  Diagonal entries are stored with
/// distance zero.
pub fn apsp_minplus(weights: &Csr<f64>, engine: &SpGemm) -> Csr<f64> {
    crate::Apsp::new().engine(engine.clone()).run(weights)
}

pub(crate) fn apsp_minplus_impl(weights: &Csr<f64>, engine: &SpGemm) -> Csr<f64> {
    assert_eq!(
        weights.nrows(),
        weights.ncols(),
        "APSP needs a square matrix"
    );
    debug_assert!(
        weights.nrows() <= APSP_DENSE_LIMIT,
        "min-plus APSP on {} vertices would densify; use a per-source algorithm instead",
        weights.nrows()
    );
    let n = weights.nrows();
    if n == 0 {
        return Csr::empty(0, 0);
    }

    // One-hop distance matrix with an explicit zero diagonal (the min-plus
    // multiplicative identity lives on the diagonal).
    let diag: Csr<f64> = Coo::from_entries(n, n, (0..n).map(|i| (i, i, 0.0)).collect::<Vec<_>>())
        .expect("diagonal indices are in bounds")
        .to_csr_with::<MinPlus>();
    let mut dist = ops::add_with::<MinPlus>(&ops::remove_diagonal(weights), &diag);

    // Repeated squaring: after k rounds, paths of up to 2^k hops are exact.
    let mut hops = 1usize;
    while hops < n.saturating_sub(1) {
        let squared = engine.multiply_with::<MinPlus>(&dist, &dist);
        // Keep the entry-wise minimum with the previous estimate (squaring
        // under min-plus already includes the identity via the zero diagonal,
        // but merging defends against explicit +inf entries).
        let next = ops::add_with::<MinPlus>(&squared, &dist);
        let done = matrices_equal(&next, &dist);
        dist = next;
        if done {
            break;
        }
        hops *= 2;
    }
    // Drop the unreachable (+inf) entries that min-plus merges may have kept.
    dist.prune(|_, _, v| v.is_finite())
}

fn matrices_equal(a: &Csr<f64>, b: &Csr<f64>) -> bool {
    a.shape() == b.shape()
        && a.rowptr() == b.rowptr()
        && a.colidx() == b.colidx()
        && a.values()
            .iter()
            .zip(b.values())
            .all(|(x, y)| (x - y).abs() < 1e-12 || (x.is_infinite() && y.is_infinite()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::erdos_renyi_square;

    /// Floyd–Warshall oracle on a dense matrix.
    fn oracle(weights: &Csr<f64>) -> Vec<Vec<f64>> {
        let n = weights.nrows();
        let mut d = vec![vec![f64::INFINITY; n]; n];
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        for (u, v, w) in weights.iter() {
            if u != v {
                let (u, v) = (u as usize, v as usize);
                d[u][v] = d[u][v].min(w);
            }
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    if d[i][k] + d[k][j] < d[i][j] {
                        d[i][j] = d[i][k] + d[k][j];
                    }
                }
            }
        }
        d
    }

    fn check_against_oracle(weights: &Csr<f64>, engine: &SpGemm) {
        let dist = apsp_minplus(weights, engine);
        let expected = oracle(weights);
        for (i, expected_row) in expected.iter().enumerate() {
            for (j, &want) in expected_row.iter().enumerate() {
                let got = dist.get(i, j).unwrap_or(f64::INFINITY);
                assert!(
                    (got - want).abs() < 1e-9 || (got.is_infinite() && want.is_infinite()),
                    "({i}, {j}): got {got}, expected {want}"
                );
            }
        }
    }

    #[test]
    fn weighted_cycle_distances() {
        // Directed 4-cycle with weights 1, 2, 3, 4.
        let g = Coo::from_entries(
            4,
            4,
            vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 0, 4.0)],
        )
        .unwrap()
        .to_csr();
        let dist = apsp_minplus(&g, &SpGemm::pb());
        assert_eq!(dist.get(0, 3), Some(6.0)); // 1 + 2 + 3
        assert_eq!(dist.get(3, 2), Some(7.0)); // 4 + 1 + 2
        assert_eq!(dist.get(2, 2), Some(0.0));
        check_against_oracle(&g, &SpGemm::pb());
    }

    #[test]
    fn shortcut_beats_the_long_way_round() {
        let g = Coo::from_entries(3, 3, vec![(0, 1, 10.0), (0, 2, 1.0), (2, 1, 1.0)])
            .unwrap()
            .to_csr();
        let dist = apsp_minplus(&g, &SpGemm::pb());
        assert_eq!(dist.get(0, 1), Some(2.0));
    }

    #[test]
    fn unreachable_pairs_are_not_stored() {
        let g = Coo::from_entries(4, 4, vec![(0, 1, 1.0), (2, 3, 1.0)])
            .unwrap()
            .to_csr();
        let dist = apsp_minplus(&g, &SpGemm::pb());
        assert_eq!(dist.get(0, 3), None);
        assert_eq!(dist.get(1, 0), None);
        assert_eq!(dist.get(0, 1), Some(1.0));
    }

    #[test]
    fn matches_floyd_warshall_on_random_graphs_for_all_engines() {
        for seed in [3u64, 8] {
            // Small random digraphs with weights in (0, 1].
            let g = erdos_renyi_square(4, 3, seed).map_values(|v| v.abs().max(0.05));
            for engine in SpGemm::paper_set() {
                check_against_oracle(&g, &engine);
            }
        }
    }

    #[test]
    fn self_loops_and_empty_graphs() {
        let g = Coo::from_entries(2, 2, vec![(0, 0, 5.0), (0, 1, 2.0)])
            .unwrap()
            .to_csr();
        let dist = apsp_minplus(&g, &SpGemm::pb());
        assert_eq!(
            dist.get(0, 0),
            Some(0.0),
            "self loops never beat the empty path"
        );
        assert_eq!(dist.get(0, 1), Some(2.0));

        let empty = Csr::<f64>::empty(0, 0);
        assert_eq!(apsp_minplus(&empty, &SpGemm::pb()).nnz(), 0);
    }
}
