//! Per-phase instrumentation: wall-clock timings, the data-movement model of
//! Table III, and the derived bandwidth / FLOPS rates used throughout the
//! paper's evaluation (Figs. 6, 7b, 9b, 13).

use std::time::Duration;

/// Wall-clock time spent in each phase of one PB-SpGEMM multiplication.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Symbolic phase (flop counting + bin sizing).
    pub symbolic: Duration,
    /// Expand phase (outer products + propagation blocking).
    pub expand: Duration,
    /// Sort phase (per-bin radix sort).
    pub sort: Duration,
    /// Compress phase (per-bin two-pointer merge).
    pub compress: Duration,
    /// CSR assembly.
    pub assemble: Duration,
}

impl PhaseTimings {
    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.symbolic + self.expand + self.sort + self.compress + self.assemble
    }
}

/// The phases of PB-SpGEMM, used to index per-phase reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Symbolic phase.
    Symbolic,
    /// Expand phase.
    Expand,
    /// Sort phase.
    Sort,
    /// Compress phase.
    Compress,
    /// CSR assembly.
    Assemble,
}

impl Phase {
    /// The three data-movement-heavy phases the paper reports bandwidth for.
    pub fn paper_phases() -> &'static [Phase] {
        &[Phase::Expand, Phase::Sort, Phase::Compress]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Symbolic => "symbolic",
            Phase::Expand => "expand",
            Phase::Sort => "sort",
            Phase::Compress => "compress",
            Phase::Assemble => "assemble",
        }
    }
}

/// Everything measured and derived from one PB-SpGEMM multiplication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpGemmProfile {
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
    /// Number of scalar multiplications performed.
    pub flop: u64,
    /// `nnz(A)`.
    pub nnz_a: usize,
    /// `nnz(B)`.
    pub nnz_b: usize,
    /// `nnz(C)`.
    pub nnz_c: usize,
    /// Number of propagation bins used.
    pub nbins: usize,
    /// Significant bytes per packed sort key (radix passes).
    pub key_bytes: u32,
    /// Bytes per expanded tuple in memory.
    pub tuple_bytes: usize,
    /// Bytes per nonzero used by the Roofline model (`b` in the paper, 16
    /// for `u32` indices + `f64` values in COO).
    pub coo_bytes: usize,
}

impl SpGemmProfile {
    /// Compression factor `flop / nnz(C)` (1.0 for empty products).
    pub fn cf(&self) -> f64 {
        if self.nnz_c == 0 {
            1.0
        } else {
            self.flop as f64 / self.nnz_c as f64
        }
    }

    /// Achieved GFLOPS (`flop / total time`), the paper's headline metric.
    pub fn gflops(&self) -> f64 {
        let t = self.timings.total().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.flop as f64 / t / 1e9
        }
    }

    /// Bytes moved to/from memory by a phase according to the model of
    /// Table III.
    pub fn phase_bytes(&self, phase: Phase) -> u64 {
        let b = self.coo_bytes as u64;
        let t = self.tuple_bytes as u64;
        match phase {
            // Streams the offset arrays only; negligible, modelled as the two
            // pointer arrays.
            Phase::Symbolic => 8 * (self.nnz_a.min(self.nnz_b)) as u64,
            // Reads both inputs, writes flop tuples.
            Phase::Expand => b * (self.nnz_a + self.nnz_b) as u64 + t * self.flop,
            // Reads flop tuples (in-cache shuffles not counted as memory
            // traffic, as in the paper).
            Phase::Sort => t * self.flop,
            // Writes nnz(C) merged tuples; the reads happen on data the sort
            // just brought into cache, so Table III does not charge them to
            // memory traffic.
            Phase::Compress => t * self.nnz_c as u64,
            // Reads nnz(C) tuples, writes the CSR arrays.
            Phase::Assemble => t * self.nnz_c as u64 + b * self.nnz_c as u64,
        }
    }

    /// Time spent in a phase.
    pub fn phase_time(&self, phase: Phase) -> Duration {
        match phase {
            Phase::Symbolic => self.timings.symbolic,
            Phase::Expand => self.timings.expand,
            Phase::Sort => self.timings.sort,
            Phase::Compress => self.timings.compress,
            Phase::Assemble => self.timings.assemble,
        }
    }

    /// Sustained bandwidth of a phase in GB/s under the Table III model.
    pub fn phase_bandwidth_gbps(&self, phase: Phase) -> f64 {
        let t = self.phase_time(phase).as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.phase_bytes(phase) as f64 / t / 1e9
        }
    }

    /// Sustained bandwidth over the whole multiplication (total modelled
    /// bytes / total time).
    pub fn overall_bandwidth_gbps(&self) -> f64 {
        let t = self.timings.total().as_secs_f64();
        if t == 0.0 {
            return 0.0;
        }
        let bytes: u64 = [Phase::Expand, Phase::Sort, Phase::Compress, Phase::Assemble]
            .iter()
            .map(|&p| self.phase_bytes(p))
            .sum();
        bytes as f64 / t / 1e9
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "flop={} nnz(C)={} cf={:.2} nbins={} keyB={} | total={:.3}ms ({:.0} MFLOPS) | \
             expand {:.3}ms sort {:.3}ms compress {:.3}ms | bw e/s/c = {:.1}/{:.1}/{:.1} GB/s",
            self.flop,
            self.nnz_c,
            self.cf(),
            self.nbins,
            self.key_bytes,
            self.timings.total().as_secs_f64() * 1e3,
            self.gflops() * 1e3,
            self.timings.expand.as_secs_f64() * 1e3,
            self.timings.sort.as_secs_f64() * 1e3,
            self.timings.compress.as_secs_f64() * 1e3,
            self.phase_bandwidth_gbps(Phase::Expand),
            self.phase_bandwidth_gbps(Phase::Sort),
            self.phase_bandwidth_gbps(Phase::Compress),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpGemmProfile {
        SpGemmProfile {
            timings: PhaseTimings {
                symbolic: Duration::from_millis(1),
                expand: Duration::from_millis(10),
                sort: Duration::from_millis(5),
                compress: Duration::from_millis(4),
                assemble: Duration::from_millis(2),
            },
            flop: 16_000_000,
            nnz_a: 4_000_000,
            nnz_b: 4_000_000,
            nnz_c: 14_000_000,
            nbins: 1024,
            key_bytes: 4,
            tuple_bytes: 16,
            coo_bytes: 16,
        }
    }

    #[test]
    fn totals_and_cf() {
        let p = sample();
        assert_eq!(p.timings.total(), Duration::from_millis(22));
        assert!((p.cf() - 16.0 / 14.0).abs() < 1e-12);
        // 16 Mflop / 22 ms ~= 0.727 GFLOPS.
        assert!((p.gflops() - 16.0e6 / 0.022 / 1e9).abs() < 1e-9);
    }

    #[test]
    fn phase_bytes_follow_table_iii() {
        let p = sample();
        // Expand: reads A and B (16 bytes each nnz), writes 16 bytes per flop.
        assert_eq!(
            p.phase_bytes(Phase::Expand),
            16 * 8_000_000 + 16 * 16_000_000
        );
        // Sort: reads flop tuples.
        assert_eq!(p.phase_bytes(Phase::Sort), 16 * 16_000_000);
        // Compress: writes nnz(C) tuples (its reads stay in cache).
        assert_eq!(p.phase_bytes(Phase::Compress), 16 * 14_000_000);
    }

    #[test]
    fn bandwidths_are_consistent_with_bytes_and_time() {
        let p = sample();
        let bw = p.phase_bandwidth_gbps(Phase::Sort);
        let expected = (16.0 * 16.0e6) / 0.005 / 1e9;
        assert!((bw - expected).abs() < 1e-9);
        assert!(p.overall_bandwidth_gbps() > 0.0);
        // Zero-duration phases report zero bandwidth instead of dividing by
        // zero.
        let mut zeroed = p;
        zeroed.timings.sort = Duration::ZERO;
        assert_eq!(zeroed.phase_bandwidth_gbps(Phase::Sort), 0.0);
    }

    #[test]
    fn empty_product_degenerate_values() {
        let p = SpGemmProfile {
            timings: PhaseTimings::default(),
            flop: 0,
            nnz_a: 0,
            nnz_b: 0,
            nnz_c: 0,
            nbins: 1,
            key_bytes: 1,
            tuple_bytes: 16,
            coo_bytes: 16,
        };
        assert_eq!(p.cf(), 1.0);
        assert_eq!(p.gflops(), 0.0);
        assert_eq!(p.overall_bandwidth_gbps(), 0.0);
    }

    #[test]
    fn summary_mentions_key_quantities() {
        let s = sample().summary();
        assert!(s.contains("cf=1.14"));
        assert!(s.contains("nbins=1024"));
        assert!(s.contains("GB/s"));
    }

    #[test]
    fn phase_helpers() {
        assert_eq!(Phase::paper_phases().len(), 3);
        assert_eq!(Phase::Expand.name(), "expand");
        let p = sample();
        assert_eq!(p.phase_time(Phase::Assemble), Duration::from_millis(2));
    }
}
