//! `pb-spgemm` — command-line front end (see the library crate for the
//! implementation and `pb-spgemm help` for usage).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match pb_cli::run_cli(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
