//! Property-based tests (proptest): on arbitrary random sparse matrices,
//! every SpGEMM implementation agrees with the reference implementation and
//! with the algebraic identities a matrix product must satisfy.

use proptest::prelude::*;

use pb_spgemm_suite::baseline::Baseline;
use pb_spgemm_suite::prelude::*;
use pb_spgemm_suite::sparse::reference::{self, csr_approx_eq, multiply_csr};
use pb_spgemm_suite::spgemm::{BinMapping, ExpandStrategy, SortAlgorithm};

/// Engine-backed stand-in for the retired `pb_spgemm::multiply` free
/// function: call sites stay unchanged while routing through the unified
/// [`SpGemm`] engine.
fn multiply(a: &Csc<f64>, b: &Csr<f64>, cfg: &PbConfig) -> Csr<f64> {
    SpGemm::pb().config(cfg.clone()).multiply_csc(a, b)
}

/// Engine-backed stand-in for the retired `pb_spgemm::multiply_with`.
fn multiply_with<S: Semiring>(a: &Csc<S::Elem>, b: &Csr<S::Elem>, cfg: &PbConfig) -> Csr<S::Elem>
where
    S::Elem: Default,
{
    SpGemm::pb()
        .config(cfg.clone())
        .multiply_csc_with::<S>(a, b)
}

/// Strategy: an arbitrary sparse matrix with dimensions in `[1, max_dim]`
/// and roughly `density` of its entries stored (values in [-1, 1]).
fn sparse_matrix(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(nrows, ncols)| {
        let entry = (0..nrows, 0..ncols, -1.0f64..1.0f64);
        proptest::collection::vec(entry, 0..=max_nnz)
            .prop_map(move |entries| Coo::from_entries(nrows, ncols, entries).unwrap().to_csr())
    })
}

/// Strategy: a pair of multiplicable matrices (A: m×k, B: k×n).
fn matrix_pair(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = (Csr<f64>, Csr<f64>)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(move |(m, k, n)| {
        let a_entry = (0..m, 0..k, -1.0f64..1.0f64);
        let b_entry = (0..k, 0..n, -1.0f64..1.0f64);
        (
            proptest::collection::vec(a_entry, 0..=max_nnz)
                .prop_map(move |e| Coo::from_entries(m, k, e).unwrap().to_csr()),
            proptest::collection::vec(b_entry, 0..=max_nnz)
                .prop_map(move |e| Coo::from_entries(k, n, e).unwrap().to_csr()),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PB-SpGEMM equals the reference on arbitrary multiplicable pairs.
    #[test]
    fn pb_matches_reference_on_arbitrary_pairs((a, b) in matrix_pair(40, 160)) {
        let expected = multiply_csr(&a, &b);
        let c = multiply(&a.to_csc(), &b, &PbConfig::default());
        prop_assert!(csr_approx_eq(&c, &expected, 1e-9));
    }

    /// Every baseline equals the reference on arbitrary multiplicable pairs.
    #[test]
    fn baselines_match_reference_on_arbitrary_pairs((a, b) in matrix_pair(28, 120)) {
        let expected = multiply_csr(&a, &b);
        for baseline in Baseline::all() {
            let c = baseline.multiply(&a, &b);
            prop_assert!(
                csr_approx_eq(&c, &expected, 1e-9),
                "{} disagrees with the reference", baseline.name()
            );
        }
    }

    /// All PB configurations produce the same result on arbitrary squares.
    #[test]
    fn pb_configurations_agree_on_arbitrary_squares(a in sparse_matrix(48, 200),
                                                    nbins in 1usize..64,
                                                    local_bytes in 16usize..1024) {
        // Square matrices only (squaring needs nrows == ncols).
        let n = a.nrows().min(a.ncols());
        let a = a.prune(|r, c, _| (r as usize) < n && (c as usize) < n);
        let a = Coo::from_entries(
            n, n,
            a.iter().map(|(r, c, v)| (r as usize, c as usize, v)).collect(),
        ).unwrap().to_csr();
        let expected = multiply_csr(&a, &a);
        let a_csc = a.to_csc();
        for mapping in [BinMapping::Range, BinMapping::Modulo] {
            for expand in [ExpandStrategy::Reserved, ExpandStrategy::ThreadLocal] {
                for sort in [SortAlgorithm::LsdRadix, SortAlgorithm::AmericanFlag, SortAlgorithm::Comparison] {
                    let cfg = PbConfig::default()
                        .with_nbins(nbins)
                        .with_local_bin_bytes(local_bytes)
                        .with_bin_mapping(mapping)
                        .with_expand(expand)
                        .with_sort(sort);
                    let c = multiply(&a_csc, &a, &cfg);
                    prop_assert!(csr_approx_eq(&c, &expected, 1e-9));
                }
            }
        }
    }

    /// Multiplying by the identity leaves the matrix unchanged.
    #[test]
    fn identity_is_neutral(a in sparse_matrix(40, 150)) {
        let left_id = Csr::<f64>::identity(a.nrows());
        let right_id = Csr::<f64>::identity(a.ncols());
        let cfg = PbConfig::default();
        prop_assert!(csr_approx_eq(&multiply(&left_id.to_csc(), &a, &cfg), &a, 1e-12));
        prop_assert!(csr_approx_eq(&multiply(&a.to_csc(), &right_id, &cfg), &a, 1e-12));
    }

    /// The structural (boolean) product of PB-SpGEMM matches the pattern of
    /// the numeric product computed by a baseline when no cancellation
    /// occurs (all values positive).
    #[test]
    fn boolean_pattern_matches_positive_numeric_pattern((a, b) in matrix_pair(30, 120)) {
        let a_pos = a.map_values(|v| v.abs() + 0.1);
        let b_pos = b.map_values(|v| v.abs() + 0.1);
        let numeric = Baseline::Heap.multiply(&a_pos, &b_pos);
        let pattern = multiply_with::<OrAnd>(
            &a_pos.map_values(|_| true).to_csc(),
            &b_pos.map_values(|_| true),
            &PbConfig::default(),
        );
        prop_assert_eq!(pattern.rowptr(), numeric.rowptr());
        prop_assert_eq!(pattern.colidx(), numeric.colidx());
    }

    /// flop, nnz(C) and cf reported by the statistics module are consistent
    /// with the actual product.
    #[test]
    fn multiply_stats_are_consistent_with_the_product((a, b) in matrix_pair(32, 150)) {
        let stats = MultiplyStats::compute(&a, &b);
        let c = multiply(&a.to_csc(), &b, &PbConfig::default());
        let c_nonzero_structure = reference::multiply_csr_with::<OrAnd>(
            &a.map_values(|_| true), &b.map_values(|_| true));
        prop_assert_eq!(stats.nnz_c, c_nonzero_structure.nnz());
        prop_assert_eq!(c.nnz(), stats.nnz_c);
        prop_assert!(stats.flop >= stats.nnz_c as u64);
        if stats.nnz_c > 0 {
            prop_assert!((stats.cf - stats.flop as f64 / stats.nnz_c as f64).abs() < 1e-12);
        }
    }

    /// Distributivity across implementations: (A + B)·C == A·C + B·C.
    #[test]
    fn product_distributes_over_addition((a, c) in matrix_pair(24, 100), seed in 0u64..1000) {
        // Build B with the same shape as A.
        let b = pb_spgemm_suite::gen::erdos_renyi(&pb_spgemm_suite::gen::ErConfig {
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz_per_col: 2,
            seed,
            random_values: true,
        });
        let sum = reference::add_csr_with::<PlusTimes<f64>>(&a, &b);
        let cfg = PbConfig::default();
        let lhs = multiply(&sum.to_csc(), &c, &cfg);
        let rhs = reference::add_csr_with::<PlusTimes<f64>>(
            &multiply(&a.to_csc(), &c, &cfg),
            &multiply(&b.to_csc(), &c, &cfg),
        );
        // Compare densely: the two sides can differ in which exact zeros they
        // store, but never in value.
        prop_assert!(lhs.to_dense().approx_eq(&rhs.to_dense(), 1e-9));
    }
}
