//! Structured matrix generators: diagonal, banded and block-diagonal
//! matrices.
//!
//! These are the building blocks of the SuiteSparse stand-ins
//! ([`crate::standins`]): finite-element matrices such as `cant` or `hood`
//! are dominated by dense bands around the diagonal (high compression
//! factor when squared), while circuit or epidemiology matrices look like
//! narrow bands plus a sprinkle of random long-range entries.

use rayon::prelude::*;

use pb_sparse::{Coo, Csr, Index};

use crate::rng::Xoshiro256pp;

/// An `n x n` diagonal matrix with the given value on every diagonal entry.
pub fn diagonal(n: usize, value: f64) -> Csr<f64> {
    Csr::from_parts_unchecked(
        n,
        n,
        (0..=n).collect(),
        (0..n as Index).collect(),
        vec![value; n],
    )
}

/// An `n x n` tridiagonal matrix (`sub`, `diag`, `super` values).
pub fn tridiagonal(n: usize, sub: f64, diag: f64, sup: f64) -> Csr<f64> {
    let mut coo = Coo::with_capacity(n, n, 3 * n).expect("dims fit u32");
    for i in 0..n {
        if i > 0 {
            coo.push(i, i - 1, sub).unwrap();
        }
        coo.push(i, i, diag).unwrap();
        if i + 1 < n {
            coo.push(i, i + 1, sup).unwrap();
        }
    }
    coo.to_csr()
}

/// An `n x n` banded matrix with `band` stored entries per row, centred on
/// the diagonal, with values drawn uniformly from `[0, 1)`.
///
/// Rows near the matrix border are clipped to stay in bounds, so the first
/// and last few rows may have fewer than `band` entries.
pub fn banded(n: usize, band: usize, seed: u64) -> Csr<f64> {
    let band = band.max(1).min(n);
    let half = band / 2;
    let rows: Vec<(Vec<Index>, Vec<f64>)> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut rng = Xoshiro256pp::from_stream(seed, i as u64);
            let lo = i.saturating_sub(half);
            let hi = (lo + band).min(n);
            let lo = hi.saturating_sub(band);
            let cols: Vec<Index> = (lo..hi).map(|c| c as Index).collect();
            let vals: Vec<f64> = cols.iter().map(|_| rng.next_f64()).collect();
            (cols, vals)
        })
        .collect();
    assemble_rows(n, n, rows)
}

/// A block-diagonal matrix with `nblocks` dense blocks of size
/// `block_size x block_size` (the last block is clipped to the matrix edge).
pub fn block_diagonal(nblocks: usize, block_size: usize, seed: u64) -> Csr<f64> {
    let n = nblocks * block_size;
    let rows: Vec<(Vec<Index>, Vec<f64>)> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut rng = Xoshiro256pp::from_stream(seed, i as u64);
            let block = i / block_size;
            let lo = block * block_size;
            let hi = ((block + 1) * block_size).min(n);
            let cols: Vec<Index> = (lo..hi).map(|c| c as Index).collect();
            let vals: Vec<f64> = cols.iter().map(|_| rng.next_f64()).collect();
            (cols, vals)
        })
        .collect();
    assemble_rows(n, n, rows)
}

/// A banded matrix plus `extra_per_row` uniformly random off-band entries per
/// row — a crude model of meshes with long-range couplings.
pub fn banded_with_random(n: usize, band: usize, extra_per_row: usize, seed: u64) -> Csr<f64> {
    let band = band.max(1).min(n);
    let half = band / 2;
    let rows: Vec<(Vec<Index>, Vec<f64>)> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut rng = Xoshiro256pp::from_stream(seed, i as u64);
            let lo = i.saturating_sub(half);
            let hi = (lo + band).min(n);
            let lo = hi.saturating_sub(band);
            let mut cols: Vec<Index> = (lo..hi).map(|c| c as Index).collect();
            for _ in 0..extra_per_row {
                cols.push(rng.gen_index(n) as Index);
            }
            cols.sort_unstable();
            cols.dedup();
            let vals: Vec<f64> = cols.iter().map(|_| rng.next_f64()).collect();
            (cols, vals)
        })
        .collect();
    assemble_rows(n, n, rows)
}

/// Stitches per-row `(cols, vals)` pairs into a CSR matrix.
pub(crate) fn assemble_rows(
    nrows: usize,
    ncols: usize,
    rows: Vec<(Vec<Index>, Vec<f64>)>,
) -> Csr<f64> {
    let nnz: usize = rows.iter().map(|(c, _)| c.len()).sum();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    for (cols, vals) in rows {
        colidx.extend(cols);
        values.extend(vals);
        rowptr.push(colidx.len());
    }
    Csr::from_parts_unchecked(nrows, ncols, rowptr, colidx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_sparse::stats::MultiplyStats;

    #[test]
    fn diagonal_is_identity_like() {
        let d = diagonal(5, 2.0);
        assert_eq!(d.nnz(), 5);
        for i in 0..5 {
            assert_eq!(d.get(i, i), Some(2.0));
        }
    }

    #[test]
    fn tridiagonal_structure() {
        let t = tridiagonal(4, -1.0, 2.0, -1.0);
        assert_eq!(t.nnz(), 3 * 4 - 2);
        assert_eq!(t.get(0, 0), Some(2.0));
        assert_eq!(t.get(1, 0), Some(-1.0));
        assert_eq!(t.get(0, 1), Some(-1.0));
        assert_eq!(t.get(0, 2), None);
        assert_eq!(t.get(3, 3), Some(2.0));
    }

    #[test]
    fn banded_has_requested_bandwidth() {
        let b = banded(100, 9, 3);
        assert_eq!(b.nrows(), 100);
        // Interior rows have exactly `band` entries.
        assert_eq!(b.row_nnz(50), 9);
        // Every entry stays within the band.
        for (r, c, _) in b.iter() {
            assert!((r as i64 - c as i64).abs() <= 9);
        }
        assert!(b.has_sorted_indices());
        // Deterministic.
        assert_eq!(b, banded(100, 9, 3));
        assert_ne!(b, banded(100, 9, 4));
    }

    #[test]
    fn banded_squaring_has_high_compression_factor() {
        // Squaring a dense band multiplies overlapping rows, so flop per
        // output nonzero is roughly the band width: cf >> 1, like the
        // paper's FEM matrices (cant, hood).
        let b = banded(512, 17, 1);
        let s = MultiplyStats::compute(&b, &b);
        assert!(
            s.cf > 6.0,
            "expected high cf for banded matrix, got {}",
            s.cf
        );
    }

    #[test]
    fn block_diagonal_blocks_do_not_mix() {
        let m = block_diagonal(4, 8, 9);
        assert_eq!(m.shape(), (32, 32));
        assert_eq!(m.nnz(), 4 * 8 * 8);
        for (r, c, _) in m.iter() {
            assert_eq!(r / 8, c / 8, "entry ({r},{c}) leaks outside its block");
        }
    }

    #[test]
    fn banded_with_random_adds_long_range_entries() {
        let m = banded_with_random(256, 5, 3, 17);
        let outside_band = m
            .iter()
            .filter(|&(r, c, _)| (r as i64 - c as i64).abs() > 5)
            .count();
        assert!(outside_band > 0, "expected some off-band entries");
        assert!(m.avg_degree() > 5.0);
        assert!(m.avg_degree() <= 8.0 + 1e-9);
    }

    #[test]
    fn small_and_degenerate_sizes() {
        assert_eq!(diagonal(0, 1.0).nnz(), 0);
        assert_eq!(tridiagonal(1, -1.0, 2.0, -1.0).nnz(), 1);
        let tiny = banded(3, 10, 0);
        assert_eq!(tiny.shape(), (3, 3));
        assert_eq!(tiny.nnz(), 9, "band wider than matrix becomes dense");
    }
}
