//! # pb-gen — deterministic sparse-matrix generators
//!
//! The PB-SpGEMM paper evaluates on three matrix families:
//!
//! * **Erdős–Rényi (ER)** random matrices with `d` nonzeros uniformly
//!   distributed in each column (R-MAT with a=b=c=d=0.25), see [`er`];
//! * **R-MAT / Graph500** matrices with a skewed degree distribution
//!   (a=0.57, b=c=0.19, d=0.05), see [`rmat`](mod@rmat);
//! * **12 real matrices** from the SuiteSparse collection (Table VI).  This
//!   reproduction has no network access to SuiteSparse, so [`standins`]
//!   generates synthetic stand-ins matched on dimension, nnz, average degree
//!   and (approximately) the compression factor of the original matrices;
//!   the substitution is documented in `DESIGN.md`.
//!
//! All generators are deterministic given a seed and produce identical
//! matrices regardless of thread count: parallel loops derive a private RNG
//! per column/edge-block from the seed with [`rng::SplitMix64`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod er;
pub mod io;
pub mod rmat;
pub mod rng;
pub mod standins;
pub mod structured;

pub use er::{erdos_renyi, erdos_renyi_square, ErConfig};
pub use io::{
    load_matrix, open_source, save_matrix, BinarySource, GenFamily, GenSpec, GeneratorSource,
    MatrixMarketSource, MatrixSource,
};
pub use rmat::{rmat, rmat_square, RmatConfig, GRAPH500_PARAMS, UNIFORM_PARAMS};
pub use rng::{SplitMix64, Xoshiro256pp};
pub use standins::{standin, standin_names, standin_scaled, StandinClass, StandinSpec, STANDINS};
pub use structured::{banded, block_diagonal, diagonal, tridiagonal};

/// A scale/edge-factor pair in Graph500 notation: the matrix has `2^scale`
/// rows and columns and `edge_factor` nonzeros per row on average.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleSpec {
    /// log2 of the matrix dimension.
    pub scale: u32,
    /// Average nonzeros per row/column.
    pub edge_factor: u32,
}

impl ScaleSpec {
    /// Creates a new scale specification.
    pub fn new(scale: u32, edge_factor: u32) -> Self {
        ScaleSpec { scale, edge_factor }
    }

    /// Matrix dimension `n = 2^scale`.
    pub fn dim(&self) -> usize {
        1usize << self.scale
    }

    /// Expected number of nonzeros `n * edge_factor`.
    pub fn expected_nnz(&self) -> usize {
        self.dim() * self.edge_factor as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_spec_arithmetic() {
        let s = ScaleSpec::new(10, 8);
        assert_eq!(s.dim(), 1024);
        assert_eq!(s.expected_nnz(), 8192);
    }
}
