//! Read-only file mappings without libc.
//!
//! The binary matrix format (see [`crate::binfmt`]) aligns its sections so a
//! mapped file can be viewed directly as `rowptr`/`colidx`/`values` slices.
//! This module provides the mapping primitive: on Linux x86-64/aarch64 it
//! issues the raw `mmap`/`munmap` syscalls (the same no-libc idiom the
//! vendored `miniloop` uses for `ppoll`), everywhere else — and whenever the
//! syscall fails — it degrades to reading the file into an 8-byte-aligned
//! heap buffer, so correctness never depends on the fast path.
//!
//! Mappings are private and read-only (`PROT_READ`, `MAP_PRIVATE`), so they
//! are safe to share across threads.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod raw {
    use std::io;

    pub const PROT_READ: usize = 1;
    pub const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const NR_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const NR_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const NR_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const NR_MUNMAP: usize = 215;

    fn check(res: isize) -> io::Result<usize> {
        // The kernel returns -errno in [-4095, -1] for failures.
        if (-4095..0).contains(&res) {
            Err(io::Error::from_raw_os_error(-res as i32))
        } else {
            Ok(res as usize)
        }
    }

    /// `mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)`.
    ///
    /// # Safety
    /// `fd` must be a valid open file descriptor readable for at least
    /// `len` bytes; the returned pointer is only valid until `munmap`.
    pub unsafe fn mmap_readonly(len: usize, fd: i32) -> io::Result<*const u8> {
        let res: isize;
        #[cfg(target_arch = "x86_64")]
        std::arch::asm!(
            "syscall",
            inlateout("rax") NR_MMAP as isize => res,
            in("rdi") 0usize,
            in("rsi") len,
            in("rdx") PROT_READ,
            in("r10") MAP_PRIVATE,
            in("r8") fd as isize,
            in("r9") 0usize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        #[cfg(target_arch = "aarch64")]
        std::arch::asm!(
            "svc 0",
            inlateout("x0") 0usize => res,
            in("x1") len,
            in("x2") PROT_READ,
            in("x3") MAP_PRIVATE,
            in("x4") fd as isize,
            in("x5") 0usize,
            in("x8") NR_MMAP,
            options(nostack),
        );
        check(res).map(|addr| addr as *const u8)
    }

    /// `munmap(ptr, len)`.
    ///
    /// # Safety
    /// `ptr`/`len` must describe a live mapping created by `mmap_readonly`.
    pub unsafe fn munmap(ptr: *const u8, len: usize) -> io::Result<()> {
        let res: isize;
        #[cfg(target_arch = "x86_64")]
        std::arch::asm!(
            "syscall",
            inlateout("rax") NR_MUNMAP as isize => res,
            in("rdi") ptr,
            in("rsi") len,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        #[cfg(target_arch = "aarch64")]
        std::arch::asm!(
            "svc 0",
            inlateout("x0") ptr as usize => res,
            in("x1") len,
            in("x8") NR_MUNMAP,
            options(nostack),
        );
        check(res).map(|_| ())
    }
}

enum Base {
    /// A live kernel mapping, unmapped on drop.
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Mapped { ptr: *const u8, len: usize },
    /// Heap fallback.  Backed by `u64` words so the base pointer is 8-byte
    /// aligned — enough for every section type the binary format stores.
    Heap { words: Vec<u64>, len: usize },
}

/// A read-only view of a whole file, memory-mapped when the platform allows.
pub struct Mapping {
    base: Base,
}

// The mapping is private and read-only, so concurrent reads are safe.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `path` read-only.  Falls back to a heap read (still 8-byte
    /// aligned) on unsupported platforms or if the mapping syscall fails.
    pub fn map(path: impl AsRef<Path>) -> io::Result<Mapping> {
        let mut file = File::open(path.as_ref())?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            return Ok(Mapping {
                base: Base::Heap {
                    words: Vec::new(),
                    len: 0,
                },
            });
        }
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            use std::os::fd::AsRawFd;
            // SAFETY: the fd is open for reading and outlives the call; the
            // mapping is recorded so Drop unmaps it exactly once.
            match unsafe { raw::mmap_readonly(len, file.as_raw_fd()) } {
                Ok(ptr) => {
                    return Ok(Mapping {
                        base: Base::Mapped { ptr, len },
                    })
                }
                Err(_) => { /* fall through to the heap read */ }
            }
        }
        let words = len.div_ceil(8);
        let mut buf = vec![0u64; words];
        // SAFETY: the Vec owns `words * 8 >= len` initialised bytes.
        let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
        file.read_exact(bytes)?;
        Ok(Mapping {
            base: Base::Heap { words: buf, len },
        })
    }

    /// The mapped file contents.
    pub fn bytes(&self) -> &[u8] {
        match &self.base {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            // SAFETY: the mapping is live until Drop and spans `len` bytes.
            Base::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Base::Heap { words, len } => {
                // SAFETY: the Vec owns `words.len() * 8 >= len` bytes.
                unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, *len) }
            }
        }
    }

    /// Length of the mapped file in bytes.
    pub fn len(&self) -> usize {
        match &self.base {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Base::Mapped { len, .. } => *len,
            Base::Heap { len, .. } => *len,
        }
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when the bytes come straight from the page cache (a real
    /// kernel mapping), `false` on the heap-read fallback.
    pub fn is_zero_copy(&self) -> bool {
        match &self.base {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Base::Mapped { .. } => true,
            Base::Heap { .. } => false,
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Base::Mapped { ptr, len } = self.base {
            // SAFETY: created by mmap_readonly, dropped exactly once.
            let _ = unsafe { raw::munmap(ptr, len) };
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping")
            .field("len", &self.len())
            .field("zero_copy", &self.is_zero_copy())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pb_sparse_mmapio_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}_{}", std::process::id(), name));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn maps_whole_file() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file("whole.bin", &payload);
        let map = Mapping::map(&path).unwrap();
        assert_eq!(map.len(), payload.len());
        assert_eq!(map.bytes(), payload.as_slice());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn base_pointer_is_eight_byte_aligned() {
        let path = temp_file("aligned.bin", &[1u8; 100]);
        let map = Mapping::map(&path).unwrap();
        assert_eq!(map.bytes().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_file("empty.bin", &[]);
        let map = Mapping::map(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), &[] as &[u8]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = Mapping::map("/definitely/not/here.bin").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn linux_mapping_is_zero_copy() {
        let path = temp_file("zc.bin", &[7u8; 4096]);
        let map = Mapping::map(&path).unwrap();
        assert!(map.is_zero_copy());
        std::fs::remove_file(&path).ok();
    }
}
