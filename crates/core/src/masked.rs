//! Masked PB-SpGEMM: `C = (A·B) ∘ pattern(M)`.
//!
//! Several of the paper's motivating applications only need the product at a
//! known sparsity pattern — triangle counting keeps `(A·A)` only at the
//! positions of `A`, masked Markov-clustering variants keep the expansion
//! only at surviving positions.  Computing the full product and filtering it
//! afterwards wastes the assemble pass on entries that are about to be
//! dropped, so this module filters the *binned* tuples right after the
//! compress phase: each bin is scanned once while it is still cache-resident
//! and only the surviving entries reach CSR assembly.
//!
//! The expand/sort/compress phases are unchanged, so the masked multiply
//! inherits all of PB-SpGEMM's bandwidth behaviour.

use pb_sparse::semiring::Semiring;
use pb_sparse::{Csc, Csr, Scalar};
use rayon::prelude::*;

use crate::bins::{BinnedTuples, Entry};
use crate::config::PbConfig;
use crate::{assemble, compress, expand, symbolic};

/// The masked PB pipeline primitive: keeps only the output entries whose
/// coordinates are stored in `mask` (values of the mask are ignored).  The
/// [`SpGemm`](crate::SpGemm) engine's masked PB arm funnels through here.
pub(crate) fn pb_multiply_masked_with<S: Semiring, M: Scalar>(
    a: &Csc<S::Elem>,
    b: &Csr<S::Elem>,
    mask: &Csr<M>,
    config: &PbConfig,
) -> Csr<S::Elem> {
    assert_eq!(
        (mask.nrows(), mask.ncols()),
        (a.nrows(), b.ncols()),
        "the mask must have the shape of the product"
    );
    // Same pool discipline as the unmasked multiply: an explicit thread
    // count gets a dedicated pool whose worker↔domain labels match the
    // bin partition.
    crate::install_config_pool(config, || run_masked_phases::<S, M>(a, b, mask, config))
}

fn run_masked_phases<S: Semiring, M: Scalar>(
    a: &Csc<S::Elem>,
    b: &Csr<S::Elem>,
    mask: &Csr<M>,
    config: &PbConfig,
) -> Csr<S::Elem> {
    let tuple_bytes = BinnedTuples::<S::Elem>::tuple_bytes();
    let stats = crate::profile::StatsCollector::new();
    stats.record_isa(config.resolve_simd());
    // The masked pipeline shares the plain multiply's phases, so it also
    // shares its workspace discipline: iterated masked kernels holding a
    // workspace-carrying config reuse the same buffers across calls.
    let mut lease = crate::workspace::WorkspaceLease::<S::Elem>::acquire(config.workspace.clone());
    let _masked = crate::trace::span(crate::trace::SpanName::EngineMasked);
    let span = crate::trace::span(crate::trace::SpanName::PhaseSymbolic);
    let sym = symbolic::symbolic(a, b, config, tuple_bytes);
    drop(span);
    stats.record_bin_flop(&sym.bin_flop);
    stats.record_numa(sym.domains, &sym.domain_flop);
    let span = crate::trace::span(crate::trace::SpanName::PhaseExpand);
    let mut tuples = expand::expand::<S>(a, b, &sym, config, &stats, &mut lease);
    drop(span);
    let span = crate::trace::span(crate::trace::SpanName::PhaseSort);
    crate::sort_with_lease::<S>(&mut tuples, &sym, config, &stats, &mut lease);
    drop(span);
    let span = crate::trace::span(crate::trace::SpanName::PhaseCompress);
    compress::compress_bins::<S>(&mut tuples, config.compress_split, &stats);
    drop(span);
    let span = crate::trace::span(crate::trace::SpanName::PhaseMask);
    apply_mask(&mut tuples, mask);
    drop(span);
    let span = crate::trace::span(crate::trace::SpanName::PhaseAssemble);
    let c = assemble::assemble_reusing(&tuples, &stats, &mut lease);
    drop(span);
    lease.release(tuples);
    // Close the AutoTune feedback loop on this path too: the masked
    // pipeline shares the expand phase, so its flush telemetry is exactly
    // as valid an input to the policy as an unmasked multiply's (the
    // timings, which the policy never reads, are simply absent here).
    if let Some(tuner) = config.auto_tune() {
        tuner.observe(&crate::profile::SpGemmProfile {
            timings: crate::profile::PhaseTimings::default(),
            flop: sym.flop,
            nnz_a: a.nnz(),
            nnz_b: b.nnz(),
            nnz_c: c.nnz(),
            nbins: sym.layout.nbins,
            key_bytes: sym.layout.key_bytes(),
            tuple_bytes,
            coo_bytes: pb_sparse::stats::bytes_per_tuple::<S::Elem>(),
            stats: stats.snapshot(),
        });
    }
    c
}

/// Drops from every bin the (already compressed) tuples whose coordinates are
/// not stored in `mask`, compacting each bin in place.
fn apply_mask<V: Scalar, M: Scalar>(tuples: &mut BinnedTuples<V>, mask: &Csr<M>) {
    // Split borrows instead of staging clones: the offsets, live lengths
    // and layout stay readable while the entry buffer is carved into
    // disjoint per-bin mutable slices.
    let BinnedTuples {
        entries,
        bin_offsets: offsets,
        compressed_len,
        layout,
    } = tuples;
    let nbins = layout.nbins;
    let live: &[usize] = compressed_len;

    // Hand every bin its own mutable segment, as the compress phase does.
    let mut slices: Vec<&mut [Entry<V>]> = Vec::with_capacity(nbins);
    let mut rest: &mut [Entry<V>] = entries;
    for b in 0..nbins {
        let len = offsets[b + 1] - offsets[b];
        let (seg, r) = rest.split_at_mut(len);
        slices.push(seg);
        rest = r;
    }

    let new_lens: Vec<usize> = slices
        .into_par_iter()
        .enumerate()
        .map(|(b, seg)| {
            let mut write = 0usize;
            for read in 0..live[b] {
                let (row, col) = layout.unpack(b, seg[read].key);
                let (mask_cols, _) = mask.row(row as usize);
                if mask_cols.binary_search(&col).is_ok() {
                    seg[write] = seg[read];
                    write += 1;
                }
            }
            write
        })
        .collect();
    compressed_len.clear();
    compressed_len.extend(new_lens);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BinMapping;
    use crate::SpGemm;
    use pb_gen::{erdos_renyi_square, rmat_square};
    use pb_sparse::ops::mask_by_pattern;
    use pb_sparse::reference::{csr_approx_eq, multiply_csr};
    use pb_sparse::semiring::OrAnd;
    use pb_sparse::Coo;

    /// Oracle: full product, filtered afterwards.
    fn expected(a: &Csr<f64>, mask: &Csr<f64>) -> Csr<f64> {
        mask_by_pattern(&multiply_csr(a, a), mask)
    }

    /// The engine spelling of a masked PB multiply with these knobs.
    fn masked_pb(a_csc: &Csc<f64>, b: &Csr<f64>, mask: &Csr<f64>, cfg: &PbConfig) -> Csr<f64> {
        SpGemm::pb()
            .config(cfg.clone())
            .mask(mask)
            .multiply_csc(a_csc, b)
    }

    #[test]
    fn masked_multiplies_feed_the_autotune_loop() {
        // A masked-only workload must still adapt the tuner: start from a
        // deliberately tiny 1-line width and require growth plus correct
        // masked products throughout.
        let a = erdos_renyi_square(8, 8, 41);
        let a_csc = a.to_csc();
        let cfg = crate::PbConfig::auto_tuned_from_lines(1);
        for _ in 0..6 {
            let got = masked_pb(&a_csc, &a, &a, &cfg);
            assert!(csr_approx_eq(&got, &expected(&a, &a), 1e-9));
        }
        let tuner = cfg.auto_tune().unwrap();
        assert_eq!(tuner.observations(), 6);
        assert!(
            tuner.lines() > 1,
            "masked multiplies never adapted the width"
        );
    }

    #[test]
    fn masking_by_the_input_pattern_matches_multiply_then_filter() {
        for seed in [1u64, 7] {
            let a = rmat_square(7, 6, seed);
            let want = expected(&a, &a);
            let got = SpGemm::pb().mask(&a).multiply(&a, &a);
            assert!(csr_approx_eq(&got, &want, 1e-9), "seed {seed}");
        }
    }

    #[test]
    fn all_bin_mappings_and_bin_counts_agree() {
        let a = erdos_renyi_square(7, 5, 3);
        let want = expected(&a, &a);
        for mapping in [BinMapping::Range, BinMapping::Modulo, BinMapping::Balanced] {
            for nbins in [1usize, 4, 64] {
                let cfg = PbConfig::default()
                    .with_bin_mapping(mapping)
                    .with_nbins(nbins);
                let got = masked_pb(&a.to_csc(), &a, &a, &cfg);
                assert!(
                    csr_approx_eq(&got, &want, 1e-9),
                    "{mapping:?} nbins={nbins}"
                );
            }
        }
    }

    #[test]
    fn empty_mask_gives_empty_output() {
        let a = erdos_renyi_square(6, 4, 5);
        let mask = Csr::<f64>::empty(a.nrows(), a.ncols());
        let got = SpGemm::pb().mask(&mask).multiply(&a, &a);
        assert_eq!(got.nnz(), 0);
        assert_eq!(got.shape(), (a.nrows(), a.ncols()));
    }

    #[test]
    fn mask_covering_the_whole_product_changes_nothing() {
        let a = erdos_renyi_square(6, 4, 9);
        let full = SpGemm::pb().multiply(&a, &a);
        let got = SpGemm::pb().mask(&full).multiply(&a, &a);
        assert!(csr_approx_eq(&got, &full, 1e-12));
    }

    #[test]
    fn boolean_semiring_masked_product() {
        let a = rmat_square(6, 4, 13).map_values(|_| true);
        let got = SpGemm::pb().mask(&a).multiply_with::<OrAnd>(&a, &a);
        let want = mask_by_pattern(
            &pb_sparse::reference::multiply_csr_with::<OrAnd>(&a, &a),
            &a,
        );
        assert_eq!(got.rowptr(), want.rowptr());
        assert_eq!(got.colidx(), want.colidx());
    }

    #[test]
    fn rectangular_masked_product() {
        let a = pb_gen::erdos_renyi(&pb_gen::ErConfig {
            nrows: 40,
            ncols: 24,
            nnz_per_col: 3,
            seed: 2,
            random_values: true,
        });
        let b = pb_gen::erdos_renyi(&pb_gen::ErConfig {
            nrows: 24,
            ncols: 31,
            nnz_per_col: 4,
            seed: 3,
            random_values: true,
        });
        // Mask out everything except a diagonal band of the product.
        let band_entries: Vec<(usize, usize, f64)> = (0..40)
            .flat_map(|i| {
                (0..31)
                    .filter(move |j| (i as i64 - *j as i64).abs() <= 2)
                    .map(move |j| (i, j, 1.0))
            })
            .collect();
        let mask = Coo::from_entries(40, 31, band_entries).unwrap().to_csr();
        let got = SpGemm::pb().mask(&mask).multiply(&a, &b);
        let want = mask_by_pattern(&multiply_csr(&a, &b), &mask);
        assert!(csr_approx_eq(&got, &want, 1e-9));
    }

    #[test]
    #[should_panic(expected = "shape of the product")]
    fn wrong_mask_shape_panics() {
        let a = erdos_renyi_square(5, 3, 1);
        let mask = Csr::<f64>::empty(3, 3);
        let _ = SpGemm::pb().mask(&mask).multiply(&a, &a);
    }
}
