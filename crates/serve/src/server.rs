//! The resident server: reactor-driven I/O plus batching request workers.
//!
//! One I/O thread owns the listener and every client socket, blocking in
//! [`miniloop::poll_readable`] and slicing the byte stream into protocol
//! lines; parsed requests are enqueued on a [`miniloop::TaskQueue`].  A
//! small pool of worker threads drains the queue, and a worker that pops a
//! multiply also *drains every queued multiply with the same batch key*:
//! identical products are computed once — one engine call, one
//! [`Workspace`](pb_spgemm::Workspace) lease — and the single result
//! answers every member of the batch.  Draining skips any multiply whose
//! connection has an earlier queued request outside the batch, so batching
//! never reorders one client's pipeline.  Workers write responses straight
//! to the (mutex-guarded) client socket, so slow clients never stall the
//! reactor.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pb_sparse::semiring::PlusTimes;
use pb_sparse::{Coo, Csr};
use pb_spgemm::trace::{self, SpanName};
use pb_spgemm::PbError;
use serde::Value;

use crate::catalog::{matrix_bytes, Catalog};
use crate::config::ServeConfig;
use crate::metrics::{render, OpLatencies, ServerCounters};
use crate::protocol::{
    entries_value, error_line, fingerprint, object, ok_line, parse_line, GenKind, Request,
    MAX_RETURNED_ENTRIES,
};

/// Most multiply requests one batch execution may answer.
pub const BATCH_LIMIT: usize = 64;

/// How long the reactor and the workers sleep per idle tick.
const TICK: Duration = Duration::from_millis(50);

/// One parsed request waiting for a worker, with the socket to answer on
/// and the client's correlation id to echo.
struct Job {
    request: Request,
    id: Option<Value>,
    reply: Arc<Mutex<TcpStream>>,
    /// Trace correlation id: derived from the protocol `id` when the
    /// request carried one, otherwise a server-assigned serial.  Stamped on
    /// every span the request's handling emits, so a Chrome trace (or the
    /// slow-request log) can isolate one request's work across threads.
    corr: u64,
    /// [`trace::now_nanos`] at enqueue time; the popping worker turns the
    /// difference into a `serve.queue_wait` completion span.
    enqueued_nanos: u64,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("request", &self.request)
            .field("id", &self.id)
            .field("corr", &self.corr)
            .finish()
    }
}

/// Derives a trace correlation id from the client's protocol `id`: integer
/// ids map to themselves (so a client-chosen `"id": 7` is findable as
/// `corr=7` in the trace), anything else hashes, and id-less requests get a
/// server serial with the top bit set to keep it out of the client space.
fn corr_of(id: Option<&Value>) -> u64 {
    static SERIAL: AtomicU64 = AtomicU64::new(1);
    match id {
        Some(Value::UInt(n)) => *n,
        Some(v) => {
            const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
            const PRIME: u64 = 0x0000_0100_0000_01b3;
            let text = serde_json::to_string(v).unwrap_or_default();
            let mut h = OFFSET;
            for byte in text.bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        None => SERIAL.fetch_add(1, Ordering::Relaxed) | (1 << 63),
    }
}

/// Shared server state.
#[derive(Debug)]
struct State {
    catalog: Mutex<Catalog>,
    counters: ServerCounters,
    latency: OpLatencies,
    queue: miniloop::TaskQueue<Job>,
    shutdown: AtomicBool,
    max_line_bytes: usize,
    slow_ms: Option<u64>,
    /// Allowlisted directory for the `load` op; `None` = op disabled.
    load_dir: Option<std::path::PathBuf>,
}

/// A running server; dropping it requests shutdown.
#[derive(Debug)]
pub struct Server {
    state: Arc<State>,
    addr: SocketAddr,
    io: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr`, spawns the reactor and `config.workers` request
    /// workers, and starts serving immediately.
    pub fn start(config: ServeConfig) -> Result<Server, PbError> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(State {
            catalog: Mutex::new(Catalog::new(config.budget_bytes, config.algorithm)),
            counters: ServerCounters::default(),
            latency: OpLatencies::default(),
            queue: miniloop::TaskQueue::new(),
            shutdown: AtomicBool::new(false),
            max_line_bytes: config.max_line_bytes,
            slow_ms: config.slow_ms,
            load_dir: config.load_dir.clone(),
        });
        let io = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("pb-serve-io".into())
                .spawn(move || io_loop(&listener, &state))
                .map_err(PbError::Io)?
        };
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("pb-serve-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .map_err(PbError::Io)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Server {
            state,
            addr,
            io: Some(io),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the kernel's pick).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown; threads exit within one reactor tick.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.wake_all();
    }

    /// Requests shutdown and waits for every thread to exit (teardown).
    pub fn join(mut self) {
        self.shutdown();
        self.drain();
    }

    /// Blocks until the server shuts down — via a client's `shutdown` op
    /// or a concurrent [`Server::shutdown`] — and every thread has exited.
    /// This is the resident-process entry point: unlike [`Server::join`],
    /// it does not request the shutdown itself.
    pub fn wait(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        if let Some(io) = self.io.take() {
            let _ = io.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One connected client on the reactor.
struct Conn {
    stream: TcpStream,
    reply: Arc<Mutex<TcpStream>>,
    buf: Vec<u8>,
}

fn io_loop(listener: &TcpListener, state: &Arc<State>) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    const LISTENER_KEY: usize = usize::MAX;
    while !state.shutdown.load(Ordering::SeqCst) {
        let mut sources: Vec<(miniloop::RawFd, usize)> =
            vec![(listener.as_raw_fd() as miniloop::RawFd, LISTENER_KEY)];
        for (idx, conn) in conns.iter().enumerate() {
            if let Some(c) = conn {
                sources.push((c.stream.as_raw_fd() as miniloop::RawFd, idx));
            }
        }
        let events = match miniloop::poll_readable(&sources, TICK) {
            Ok(events) => events,
            Err(_) => continue,
        };
        for event in events {
            if event.key == LISTENER_KEY {
                accept_all(listener, state, &mut conns);
            } else if event.readable || event.closed {
                service_conn(state, &mut conns, event.key);
            }
        }
    }
}

fn accept_all(listener: &TcpListener, state: &Arc<State>, conns: &mut Vec<Option<Conn>>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                state.counters.connections.fetch_add(1, Ordering::Relaxed);
                trace::instant(SpanName::ServeAccept, 0);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                let conn = Conn {
                    stream,
                    reply: Arc::new(Mutex::new(write_half)),
                    buf: Vec::new(),
                };
                match conns.iter().position(Option::is_none) {
                    Some(slot) => conns[slot] = Some(conn),
                    None => conns.push(Some(conn)),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Reads everything available on connection `idx`, enqueues each complete
/// line, and drops the connection on EOF or error.  A partial line that
/// outgrows [`ServeConfig::max_line_bytes`](crate::ServeConfig) gets an
/// error response and the connection is dropped — otherwise one client
/// streaming bytes with no newline would grow the reactor's buffer without
/// bound, bypassing the catalog byte budget.
fn service_conn(state: &Arc<State>, conns: &mut [Option<Conn>], idx: usize) {
    let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
        return;
    };
    let mut closed = false;
    let mut tmp = [0u8; 4096];
    loop {
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                closed = true;
                break;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&tmp[..n]);
                // Drain complete lines as they arrive so only an
                // *unterminated* line counts against the length limit.
                enqueue_lines(state, conn);
                if conn.buf.len() > state.max_line_bytes {
                    state.counters.requests.fetch_add(1, Ordering::Relaxed);
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    write_line(
                        &conn.reply,
                        &error_line(
                            &format!(
                                "request line exceeds the {} byte limit",
                                state.max_line_bytes
                            ),
                            None,
                        ),
                    );
                    closed = true;
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                closed = true;
                break;
            }
        }
    }
    enqueue_lines(state, conn);
    if closed {
        conns[idx] = None;
    }
}

/// Slices every complete line out of the connection's buffer: parsed
/// requests are queued for the workers, parse failures are answered
/// immediately (with the correlation id when one was recoverable).
fn enqueue_lines(state: &Arc<State>, conn: &mut Conn) {
    while let Some(pos) = conn.buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = conn.buf.drain(..=pos).collect();
        let line = String::from_utf8_lossy(&line[..line.len() - 1]);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let parse_span = trace::span(SpanName::ServeParse);
        let parsed = parse_line(line);
        drop(parse_span);
        let corr = corr_of(parsed.id.as_ref());
        match parsed.request {
            Ok(request) => state.queue.push(Job {
                request,
                id: parsed.id,
                reply: Arc::clone(&conn.reply),
                corr,
                enqueued_nanos: trace::now_nanos(),
            }),
            Err(msg) => {
                let _corr = trace::corr_scope(corr);
                state.counters.requests.fetch_add(1, Ordering::Relaxed);
                state.counters.errors.fetch_add(1, Ordering::Relaxed);
                write_line(&conn.reply, &error_line(&msg, parsed.id.as_ref()));
            }
        }
    }
}

/// Blocking line write to a non-blocking socket (short sleeps on
/// `WouldBlock`); errors drop the response — the client is gone.
fn write_line(reply: &Arc<Mutex<TcpStream>>, line: &str) {
    let mut bytes = line.as_bytes().to_vec();
    bytes.push(b'\n');
    let mut stream = reply.lock().expect("reply lock poisoned");
    let mut off = 0;
    while off < bytes.len() {
        match stream.write(&bytes[off..]) {
            Ok(0) => return,
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
    let _ = stream.flush();
}

fn worker_loop(state: &Arc<State>) {
    loop {
        match state.queue.pop(TICK) {
            Some(job) => {
                // A panicking handler must cost one error response, not a
                // worker thread: workers are never respawned, so without
                // this net a few panicking requests would leave the server
                // accepting connections it can never answer.
                let reply = Arc::clone(&job.reply);
                let id = job.id.clone();
                let op = job.request.op_name();
                let corr = job.corr;
                // Every span below (and everything the handler calls into:
                // engine phases, planner, workspace, graph builders) carries
                // this request's correlation id.
                let _corr = trace::corr_scope(corr);
                let wait = trace::now_nanos().saturating_sub(job.enqueued_nanos);
                trace::complete(SpanName::ServeQueueWait, wait);
                let started = Instant::now();
                let span = trace::span(SpanName::ServeRequest);
                let caught =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handle(state, job)));
                drop(span);
                let elapsed = started.elapsed();
                state.latency.record(op, elapsed.as_nanos() as u64);
                if let Some(slow_ms) = state.slow_ms {
                    if elapsed.as_millis() as u64 >= slow_ms {
                        log_slow_request(op, corr, elapsed);
                    }
                }
                if caught.is_err() {
                    respond_err(
                        state,
                        &reply,
                        id.as_ref(),
                        "internal error handling request",
                    );
                }
            }
            None => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Reports a request slower than `PB_SERVE_SLOW_MS` on stderr; when the
/// tracer is on, the request's span tree shows where the time went.
fn log_slow_request(op: &str, corr: u64, elapsed: Duration) {
    let mut report = format!(
        "pb-serve: slow request op={op} corr={corr} took {:.3}ms",
        elapsed.as_secs_f64() * 1e3
    );
    if trace::enabled() {
        let tree = trace::render_span_tree(&trace::snapshot(), corr);
        if !tree.is_empty() {
            report.push('\n');
            report.push_str(&tree);
        }
    } else {
        report.push_str(" (set PB_TRACE=1 for a span tree)");
    }
    eprintln!("{report}");
}

fn respond_ok(
    state: &State,
    reply: &Arc<Mutex<TcpStream>>,
    id: Option<&Value>,
    fields: Vec<(&str, Value)>,
) {
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    let _span = trace::span(SpanName::ServeRespond);
    write_line(reply, &ok_line(fields, id));
}

fn respond_err(state: &State, reply: &Arc<Mutex<TcpStream>>, id: Option<&Value>, msg: &str) {
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    state.counters.errors.fetch_add(1, Ordering::Relaxed);
    let _span = trace::span(SpanName::ServeRespond);
    write_line(reply, &error_line(msg, id));
}

/// Largest `gen` scale the service accepts (2^24 vertices).
pub const MAX_GEN_SCALE: u32 = 24;

/// Largest `gen` edge factor the service accepts; with the scale cap this
/// bounds how much memory a single generation request can ask for.
pub const MAX_GEN_EDGE_FACTOR: u32 = 1024;

/// Upper bound on the resident bytes a `gen` request can produce (CSR row
/// pointers + one entry per requested edge; duplicates only shrink it).
/// Checked against the catalog budget *before* generating, so an absurd
/// request is rejected instead of exhausting memory mid-generation.
fn estimated_gen_bytes(scale: u32, edge_factor: u32) -> usize {
    let n = 1usize << scale;
    let nnz = n.saturating_mul(edge_factor as usize);
    (n + 1) * std::mem::size_of::<usize>()
        + nnz * (std::mem::size_of::<pb_sparse::Index>() + std::mem::size_of::<f64>())
}

/// Fetches `name` from the catalog, requiring a square matrix — the graph
/// kernels (MCL, BC, APSP) assert squareness, and a panicking kernel must
/// surface as an error response, not a dead worker.
fn get_square(
    state: &Arc<State>,
    job: &Job,
    name: &str,
    op: &str,
) -> Option<crate::catalog::Entry> {
    let Some(entry) = state.catalog.lock().expect("catalog lock").get(name) else {
        respond_err(
            state,
            &job.reply,
            job.id.as_ref(),
            &format!("no matrix named `{name}`"),
        );
        return None;
    };
    let (rows, cols) = (entry.matrix.nrows(), entry.matrix.ncols());
    if rows != cols {
        respond_err(
            state,
            &job.reply,
            job.id.as_ref(),
            &format!("{op} needs a square matrix; `{name}` is {rows}x{cols}"),
        );
        return None;
    }
    Some(entry)
}

fn handle(state: &Arc<State>, job: Job) {
    let id = job.id.clone();
    let id = id.as_ref();
    match job.request.clone() {
        Request::Ping => respond_ok(
            state,
            &job.reply,
            id,
            vec![("op", Value::Str("pong".into()))],
        ),
        Request::Store {
            name,
            rows,
            cols,
            entries,
        } => {
            let matrix = match Coo::from_entries(rows, cols, entries) {
                Ok(coo) => coo.to_csr(),
                Err(e) => return respond_err(state, &job.reply, id, &format!("bad matrix: {e}")),
            };
            store_and_respond(state, &job, &name, matrix);
        }
        Request::Gen {
            name,
            kind,
            scale,
            edge_factor,
            seed,
        } => {
            if scale > MAX_GEN_SCALE {
                return respond_err(
                    state,
                    &job.reply,
                    id,
                    &format!("scale over {MAX_GEN_SCALE} is not servable"),
                );
            }
            if edge_factor > MAX_GEN_EDGE_FACTOR {
                return respond_err(
                    state,
                    &job.reply,
                    id,
                    &format!("edge_factor over {MAX_GEN_EDGE_FACTOR} is not servable"),
                );
            }
            let estimate = estimated_gen_bytes(scale, edge_factor);
            let budget = state.catalog.lock().expect("catalog lock").budget_bytes();
            if estimate > budget {
                return respond_err(
                    state,
                    &job.reply,
                    id,
                    &format!(
                        "generating scale {scale} with edge_factor {edge_factor} needs up to \
                         {estimate} bytes, over the catalog budget of {budget} bytes"
                    ),
                );
            }
            let matrix = match kind {
                GenKind::Rmat => pb_gen::rmat_square(scale, edge_factor, seed),
                GenKind::Er => pb_gen::erdos_renyi_square(scale, edge_factor, seed),
            };
            store_and_respond(state, &job, &name, matrix);
        }
        Request::Load { name, path } => handle_load(state, &job, &name, &path),
        Request::Multiply { .. } => handle_multiply_batch(state, job),
        Request::Mcl {
            name,
            inflation,
            max_iterations,
        } => {
            let Some(entry) = get_square(state, &job, &name, "mcl") else {
                return;
            };
            let result = pb_graph::Mcl::new()
                .engine(entry.engine.clone())
                .inflation(inflation)
                .max_iterations(max_iterations)
                .run(&entry.matrix);
            respond_ok(
                state,
                &job.reply,
                id,
                vec![
                    ("clusters", Value::UInt(result.num_clusters as u64)),
                    ("iterations", Value::UInt(result.iterations as u64)),
                    ("converged", Value::Bool(result.converged)),
                ],
            );
        }
        Request::Bc {
            name,
            sources,
            batch_size,
        } => {
            let Some(entry) = get_square(state, &job, &name, "bc") else {
                return;
            };
            let n = entry.matrix.nrows();
            let count = if sources == 0 { n } else { sources.min(n) };
            let mut bc = pb_graph::Bc::new()
                .engine(entry.engine.clone())
                .batch_size(batch_size);
            if count < n {
                bc = bc.sources(0..count);
            }
            let scores = bc.run(&entry.matrix);
            let sum: f64 = scores.iter().sum();
            let (max_vertex, max_score) =
                scores
                    .iter()
                    .enumerate()
                    .fold((0usize, f64::NEG_INFINITY), |best, (v, &s)| {
                        if s > best.1 {
                            (v, s)
                        } else {
                            best
                        }
                    });
            respond_ok(
                state,
                &job.reply,
                id,
                vec![
                    ("n", Value::UInt(n as u64)),
                    ("sources", Value::UInt(count as u64)),
                    ("sum", Value::Float(sum)),
                    ("max_vertex", Value::UInt(max_vertex as u64)),
                    (
                        "max_score",
                        Value::Float(if n == 0 { 0.0 } else { max_score }),
                    ),
                ],
            );
        }
        Request::Apsp { name } => {
            let Some(entry) = get_square(state, &job, &name, "apsp") else {
                return;
            };
            if entry.matrix.nrows() > pb_graph::APSP_DENSE_LIMIT {
                return respond_err(
                    state,
                    &job.reply,
                    id,
                    &format!(
                        "APSP on {} vertices would densify (limit {})",
                        entry.matrix.nrows(),
                        pb_graph::APSP_DENSE_LIMIT
                    ),
                );
            }
            let dist = pb_graph::Apsp::new()
                .engine(entry.engine.clone())
                .run(&entry.matrix);
            let sum: f64 = dist.values().iter().sum();
            respond_ok(
                state,
                &job.reply,
                id,
                vec![
                    ("nnz", Value::UInt(dist.nnz() as u64)),
                    ("sum", Value::Float(sum)),
                    ("fingerprint", Value::UInt(fingerprint(&dist))),
                ],
            );
        }
        Request::Evict { name } => {
            let evicted = state.catalog.lock().expect("catalog lock").evict(&name);
            respond_ok(
                state,
                &job.reply,
                id,
                vec![("evicted", Value::Bool(evicted))],
            );
        }
        Request::List => {
            let catalog = state.catalog.lock().expect("catalog lock");
            let entries = Value::Array(
                catalog
                    .list()
                    .into_iter()
                    .map(|info| {
                        object(vec![
                            ("name", Value::Str(info.name)),
                            ("rows", Value::UInt(info.rows as u64)),
                            ("cols", Value::UInt(info.cols as u64)),
                            ("nnz", Value::UInt(info.nnz as u64)),
                            ("bytes", Value::UInt(info.bytes as u64)),
                        ])
                    })
                    .collect(),
            );
            let fields = vec![
                ("entries", entries),
                ("bytes_used", Value::UInt(catalog.bytes_used() as u64)),
                ("bytes_budget", Value::UInt(catalog.budget_bytes() as u64)),
                ("evictions", Value::UInt(catalog.evictions())),
            ];
            drop(catalog);
            respond_ok(state, &job.reply, id, fields);
        }
        Request::Metrics => {
            let text = {
                let catalog = state.catalog.lock().expect("catalog lock");
                render(&state.counters, &state.latency, &catalog)
            };
            respond_ok(state, &job.reply, id, vec![("text", Value::Str(text))]);
        }
        Request::Trace { enable } => {
            if let Some(on) = enable {
                trace::set_enabled(on);
            }
            let snapshot = trace::snapshot();
            let dropped: u64 = snapshot.threads.iter().map(|t| t.dropped).sum();
            respond_ok(
                state,
                &job.reply,
                id,
                vec![
                    ("enabled", Value::Bool(trace::enabled())),
                    ("events", Value::UInt(snapshot.len() as u64)),
                    ("dropped", Value::UInt(dropped)),
                    ("chrome", Value::Str(snapshot.to_chrome_json())),
                ],
            );
        }
        Request::Shutdown => {
            respond_ok(
                state,
                &job.reply,
                id,
                vec![("op", Value::Str("bye".into()))],
            );
            state.shutdown.store(true, Ordering::SeqCst);
            state.queue.wake_all();
        }
    }
}

/// Executes the `load` op: resolves `path` strictly inside the allowlisted
/// load directory, pre-checks the source's estimated size against the
/// catalog budget (same discipline as `gen`: reject before allocating),
/// then loads through the [`pb_gen::MatrixSource`] API and stores.
fn handle_load(state: &Arc<State>, job: &Job, name: &str, path: &str) {
    let id = job.id.as_ref();
    let Some(dir) = &state.load_dir else {
        return respond_err(
            state,
            &job.reply,
            id,
            "the load op is disabled (start the server with PB_SERVE_LOAD_DIR set \
             to an allowlisted directory)",
        );
    };
    // Containment check on canonical paths: symlinks and `..` segments in
    // the client-supplied path must not escape the allowlisted directory.
    let root = match dir.canonicalize() {
        Ok(root) => root,
        Err(e) => {
            return respond_err(state, &job.reply, id, &format!("load directory: {e}"));
        }
    };
    let full = match root.join(path).canonicalize() {
        Ok(full) => full,
        Err(e) => {
            return respond_err(
                state,
                &job.reply,
                id,
                &format!("cannot resolve `{path}`: {e}"),
            );
        }
    };
    if !full.starts_with(&root) {
        return respond_err(
            state,
            &job.reply,
            id,
            &format!("`{path}` escapes the load directory"),
        );
    }
    let spec = full.to_string_lossy().into_owned();
    let source = match pb_gen::open_source(&spec) {
        Ok(source) => source,
        Err(e) => return respond_err(state, &job.reply, id, &e.to_string()),
    };
    let estimate = match source.estimated_bytes() {
        Ok(estimate) => estimate,
        Err(e) => return respond_err(state, &job.reply, id, &e.to_string()),
    };
    let budget = state.catalog.lock().expect("catalog lock").budget_bytes() as u64;
    if estimate > budget {
        return respond_err(
            state,
            &job.reply,
            id,
            &format!(
                "loading `{path}` needs an estimated {estimate} bytes, over the \
                 catalog budget of {budget} bytes"
            ),
        );
    }
    match source.load() {
        Ok(matrix) => store_and_respond(state, job, name, matrix),
        Err(e) => respond_err(state, &job.reply, id, &e.to_string()),
    }
}

fn store_and_respond(state: &Arc<State>, job: &Job, name: &str, matrix: Csr<f64>) {
    let (rows, cols, nnz) = (matrix.nrows(), matrix.ncols(), matrix.nnz());
    let bytes = matrix_bytes(&matrix);
    let print = fingerprint(&matrix);
    match state
        .catalog
        .lock()
        .expect("catalog lock")
        .store(name, matrix)
    {
        Ok(()) => respond_ok(
            state,
            &job.reply,
            job.id.as_ref(),
            vec![
                ("name", Value::Str(name.to_string())),
                ("rows", Value::UInt(rows as u64)),
                ("cols", Value::UInt(cols as u64)),
                ("nnz", Value::UInt(nnz as u64)),
                ("bytes", Value::UInt(bytes as u64)),
                ("fingerprint", Value::UInt(print)),
            ],
        ),
        Err(msg) => respond_err(state, &job.reply, job.id.as_ref(), &msg),
    }
}

/// Drains every queued multiply that shares `key` — except jobs whose
/// connection has an *earlier* queued request that is not part of the
/// batch.  Batching must never reorder one connection's pipeline: a client
/// that queues `store a` then `multiply a b` would otherwise have its
/// multiply pulled ahead of the store and computed from the stale matrix.
fn drain_batchable(
    queue: &miniloop::TaskQueue<Job>,
    key: &Option<(String, String, &'static str)>,
    limit: usize,
) -> Vec<Job> {
    let mut held_back: std::collections::HashSet<usize> = std::collections::HashSet::new();
    queue.drain_matching(limit, |j| {
        let conn = Arc::as_ptr(&j.reply) as usize;
        if held_back.contains(&conn) {
            false
        } else if j.request.batch_key() == *key {
            true
        } else {
            held_back.insert(conn);
            false
        }
    })
}

/// Executes one multiply batch: the popped job plus every queued multiply
/// with the same `(a, b, algorithm)` key (see [`drain_batchable`] for the
/// per-connection ordering guarantee).  The product is computed once —
/// one engine call, one workspace lease — and answers every member.
fn handle_multiply_batch(state: &Arc<State>, job: Job) {
    let key = job.request.batch_key();
    let join_span = trace::span(SpanName::ServeBatchJoin);
    let mut batch = vec![job];
    // OOC multiplies carry no batch key; draining with a `None` key would
    // sweep unrelated keyless ops into the batch, so they run alone.
    if key.is_some() {
        batch.extend(drain_batchable(&state.queue, &key, BATCH_LIMIT - 1));
    }
    drop(join_span);
    trace::instant(SpanName::ServeBatchJoin, batch.len() as u64);
    state.counters.record_batch(batch.len());

    let Some(Request::Multiply {
        a,
        b,
        algorithm,
        ooc_budget_mb,
        ..
    }) = batch.first().map(|j| &j.request)
    else {
        unreachable!("batch heads are multiply requests");
    };
    let (a, b, algorithm, ooc_budget_mb) = (a.clone(), b.clone(), *algorithm, *ooc_budget_mb);

    // Resolve operands under the lock, multiply outside it.
    let (entry_a, entry_b) = {
        let mut catalog = state.catalog.lock().expect("catalog lock");
        (catalog.get(&a), catalog.get(&b))
    };
    let (ea, eb) = match (entry_a, entry_b) {
        (Some(ea), Some(eb)) => (ea, eb),
        (found_a, _) => {
            let name = if found_a.is_none() { &a } else { &b };
            let missing = format!("no matrix named `{name}`");
            for j in &batch {
                respond_err(state, &j.reply, j.id.as_ref(), &missing);
            }
            return;
        }
    };
    if ea.matrix.ncols() != eb.matrix.nrows() {
        let msg = format!(
            "dimension mismatch: `{a}` is {}x{}, `{b}` is {}x{}",
            ea.matrix.nrows(),
            ea.matrix.ncols(),
            eb.matrix.nrows(),
            eb.matrix.ncols()
        );
        for j in &batch {
            respond_err(state, &j.reply, j.id.as_ref(), &msg);
        }
        return;
    }

    let engine = match algorithm {
        Some(alg) => ea.engine.clone().algorithm(alg),
        None => ea.engine.clone(),
    };
    // Batched followers never pass back through `worker_loop`, so their
    // latency is recorded here, covering the shared engine call.  The
    // popped job (index 0) is recorded by its worker as usual.
    let followers_started = Instant::now();
    let engine_span = trace::span_with_arg(SpanName::ServeEngineCall, batch.len() as u64);
    let (product, stats, flop, ooc_report) = if let Some(mb) = ooc_budget_mb {
        let cfg = pb_spgemm::TiledConfig::default().with_budget_mb(mb);
        match engine.multiply_tiled(&ea.matrix, &eb.matrix, &cfg) {
            Ok((product, report)) => {
                state
                    .counters
                    .ooc_multiplies
                    .fetch_add(1, Ordering::Relaxed);
                state
                    .counters
                    .ooc_spill_bytes
                    .fetch_add(report.spill_bytes, Ordering::Relaxed);
                state
                    .counters
                    .ooc_high_water
                    .fetch_max(report.resident_high_water, Ordering::Relaxed);
                (product, report.stats, 0u64, Some(report))
            }
            Err(e) => {
                let msg = format!("tiled multiply failed: {e}");
                for j in &batch {
                    respond_err(state, &j.reply, j.id.as_ref(), &msg);
                }
                return;
            }
        }
    } else {
        let (product, profile) =
            engine.multiply_with_profile::<PlusTimes<f64>>(&ea.matrix, &eb.matrix);
        (product, profile.stats, profile.flop, None)
    };
    drop(engine_span);
    let print = fingerprint(&product);
    let batch_size = batch.len();

    for (member, j) in batch.iter().enumerate() {
        if member > 0 {
            state
                .latency
                .record("multiply", followers_started.elapsed().as_nanos() as u64);
        }
        let Request::Multiply {
            store_as,
            want_entries,
            ..
        } = &j.request
        else {
            continue;
        };
        if let Some(target) = store_as {
            if let Err(msg) = state
                .catalog
                .lock()
                .expect("catalog lock")
                .store(target, product.clone())
            {
                respond_err(state, &j.reply, j.id.as_ref(), &msg);
                continue;
            }
        }
        let mut fields = vec![
            ("rows", Value::UInt(product.nrows() as u64)),
            ("cols", Value::UInt(product.ncols() as u64)),
            ("nnz", Value::UInt(product.nnz() as u64)),
            ("fingerprint", Value::UInt(print)),
            ("algorithm", Value::Str(engine.name().to_string())),
            (
                "planned",
                Value::Str(stats.planned_algorithm.name().to_string()),
            ),
            ("batched_with", Value::UInt(batch_size as u64)),
            ("bytes_allocated", Value::UInt(stats.bytes_allocated)),
            ("bytes_reused", Value::UInt(stats.bytes_reused)),
            ("flop", Value::UInt(flop)),
        ];
        if let Some(report) = &ooc_report {
            fields.push(("ooc_tiles", Value::UInt(report.tiles_processed)));
            fields.push(("ooc_spill_bytes", Value::UInt(report.spill_bytes)));
            fields.push((
                "ooc_resident_high_water",
                Value::UInt(report.resident_high_water),
            ));
            fields.push((
                "ooc_grid",
                Value::Str(format!(
                    "{}x{}x{}",
                    report.grid.0, report.grid.1, report.grid.2
                )),
            ));
        }
        if *want_entries {
            if product.nnz() > MAX_RETURNED_ENTRIES {
                respond_err(
                    state,
                    &j.reply,
                    j.id.as_ref(),
                    &format!(
                        "product has {} nonzeros, over the {} returnable limit",
                        product.nnz(),
                        MAX_RETURNED_ENTRIES
                    ),
                );
                continue;
            }
            fields.push(("entries", entries_value(&product)));
        }
        respond_ok(state, &j.reply, j.id.as_ref(), fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A connected socket to stand in for a client's write half; the peer
    /// end is leaked so writes would succeed if a test ever made any.
    fn test_reply() -> Arc<Mutex<TcpStream>> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let stream = TcpStream::connect(addr).expect("connect loopback");
        let (peer, _) = listener.accept().expect("accept loopback");
        std::mem::forget(peer);
        Arc::new(Mutex::new(stream))
    }

    fn multiply(a: &str, b: &str) -> Request {
        Request::Multiply {
            a: a.into(),
            b: b.into(),
            algorithm: None,
            store_as: None,
            want_entries: false,
            ooc_budget_mb: None,
        }
    }

    fn job(request: Request, reply: &Arc<Mutex<TcpStream>>) -> Job {
        Job {
            request,
            id: None,
            reply: Arc::clone(reply),
            corr: corr_of(None),
            enqueued_nanos: trace::now_nanos(),
        }
    }

    #[test]
    fn corr_ids_are_stable_and_distinct() {
        // Integer protocol ids are used verbatim.
        assert_eq!(corr_of(Some(&Value::UInt(7))), 7);
        // Other JSON ids hash deterministically.
        let s = Value::Str("req-1".into());
        assert_eq!(corr_of(Some(&s)), corr_of(Some(&s)));
        assert_ne!(
            corr_of(Some(&s)),
            corr_of(Some(&Value::Str("req-2".into())))
        );
        // Id-less requests get distinct serials outside the client space.
        let (a, b) = (corr_of(None), corr_of(None));
        assert_ne!(a, b);
        assert!(a & (1 << 63) != 0 && b & (1 << 63) != 0);
    }

    #[test]
    fn batching_does_not_reorder_one_connections_pipeline() {
        let queue: miniloop::TaskQueue<Job> = miniloop::TaskQueue::new();
        let pipelining = test_reply();
        let other = test_reply();
        // The pipelining connection queued a store *before* its multiply;
        // draining the multiply into someone else's batch would compute it
        // from the matrix the store is about to replace.
        queue.push(job(Request::Evict { name: "m".into() }, &pipelining));
        queue.push(job(multiply("m", "m"), &pipelining));
        // A multiply with nothing queued ahead of it on its connection is
        // fair game.
        queue.push(job(multiply("m", "m"), &other));
        let key = multiply("m", "m").batch_key();

        let batch = drain_batchable(&queue, &key, BATCH_LIMIT);
        assert_eq!(batch.len(), 1, "only the unordered-safe multiply joins");
        assert!(Arc::ptr_eq(&batch[0].reply, &other));
        // The pipelining connection's jobs are still queued, in order.
        let first = queue.pop(Duration::from_millis(10)).unwrap();
        assert!(matches!(first.request, Request::Evict { .. }));
        let second = queue.pop(Duration::from_millis(10)).unwrap();
        assert_eq!(second.request, multiply("m", "m"));
        assert!(queue.is_empty());
    }

    #[test]
    fn batching_takes_every_safe_match_up_to_the_limit() {
        let queue: miniloop::TaskQueue<Job> = miniloop::TaskQueue::new();
        let conns: Vec<_> = (0..4).map(|_| test_reply()).collect();
        for c in &conns {
            queue.push(job(multiply("x", "x"), c));
        }
        // A same-connection *matching* pipeline is safe to batch whole.
        queue.push(job(multiply("x", "x"), &conns[0]));
        let key = multiply("x", "x").batch_key();
        let batch = drain_batchable(&queue, &key, BATCH_LIMIT);
        assert_eq!(batch.len(), 5);
        assert!(queue.is_empty());
    }

    #[test]
    fn gen_estimate_is_an_upper_bound_on_stored_bytes() {
        let (scale, edge_factor, seed) = (6u32, 4u32, 7u64);
        let estimate = estimated_gen_bytes(scale, edge_factor);
        let rmat = pb_gen::rmat_square(scale, edge_factor, seed);
        let er = pb_gen::erdos_renyi_square(scale, edge_factor, seed);
        assert!(matrix_bytes(&rmat) <= estimate);
        assert!(matrix_bytes(&er) <= estimate);
        // And it saturates instead of overflowing on absurd requests.
        let _ = estimated_gen_bytes(24, u32::MAX);
    }
}
