//! Error type shared by the sparse-matrix substrate.

use std::fmt;

/// Errors produced while constructing, converting or parsing sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A matrix dimension exceeded [`crate::MAX_DIM`] (indices are `u32`).
    DimensionTooLarge {
        /// The offending dimension.
        dim: usize,
    },
    /// An entry referenced a row or column outside the matrix bounds.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows of the matrix.
        nrows: usize,
        /// Number of columns of the matrix.
        ncols: usize,
    },
    /// The offset (`rowptr`/`colptr`) array of a compressed format is
    /// malformed: wrong length, not monotonically non-decreasing, or its last
    /// element does not equal the number of stored entries.
    MalformedOffsets {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// Two matrices had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
        /// Operation being attempted (e.g. `"multiply"`).
        op: &'static str,
    },
    /// The parallel arrays of a triplet/COO matrix had different lengths.
    LengthMismatch {
        /// Length of the row-index array.
        rows: usize,
        /// Length of the column-index array.
        cols: usize,
        /// Length of the value array.
        vals: usize,
    },
    /// A Matrix Market file could not be parsed.
    MatrixMarket {
        /// 1-based line number where parsing failed (0 if unknown).
        line: usize,
        /// Human-readable description of the problem.
        detail: String,
    },
    /// A binary matrix file (see [`crate::binfmt`]) could not be decoded.
    Binary {
        /// Human-readable description of the problem.
        detail: String,
    },
    /// A matrix-source specification string (path or generator spec) could
    /// not be understood.
    Spec {
        /// Human-readable description of the problem.
        detail: String,
    },
    /// An I/O error occurred while reading or writing a matrix file.
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionTooLarge { dim } => {
                write!(f, "matrix dimension {dim} exceeds the u32 index space")
            }
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) is outside the {nrows}x{ncols} matrix bounds"
            ),
            SparseError::MalformedOffsets { detail } => {
                write!(f, "malformed offset array: {detail}")
            }
            SparseError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch for {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::LengthMismatch { rows, cols, vals } => write!(
                f,
                "triplet arrays have mismatched lengths: rows={rows}, cols={cols}, vals={vals}"
            ),
            SparseError::MatrixMarket { line, detail } => {
                if *line == 0 {
                    write!(f, "Matrix Market parse error: {detail}")
                } else {
                    write!(f, "Matrix Market parse error at line {line}: {detail}")
                }
            }
            SparseError::Binary { detail } => {
                write!(f, "binary matrix format error: {detail}")
            }
            SparseError::Spec { detail } => {
                write!(f, "matrix source spec error: {detail}")
            }
            SparseError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseError::IndexOutOfBounds {
            row: 5,
            col: 7,
            nrows: 4,
            ncols: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("(5, 7)"));
        assert!(msg.contains("4x4"));

        let e = SparseError::ShapeMismatch {
            left: (3, 4),
            right: (5, 6),
            op: "multiply",
        };
        assert!(e.to_string().contains("multiply"));

        let e = SparseError::MatrixMarket {
            line: 12,
            detail: "bad header".into(),
        };
        assert!(e.to_string().contains("line 12"));

        let e = SparseError::MatrixMarket {
            line: 0,
            detail: "empty file".into(),
        };
        assert!(!e.to_string().contains("line 0"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing.mtx");
        let e: SparseError = io.into();
        assert!(matches!(e, SparseError::Io(_)));
        assert!(e.to_string().contains("missing.mtx"));
    }
}
