//! # pb-cli — command-line front end for the PB-SpGEMM suite
//!
//! The `pb-spgemm` binary exposes the workspace's functionality to shell
//! users:
//!
//! ```text
//! pb-spgemm generate er --scale 14 --edge-factor 8 --out a.mtx
//! pb-spgemm convert a.mtx a.pbsm         # Matrix Market -> zero-copy binary
//! pb-spgemm stats a.pbsm
//! pb-spgemm multiply a.pbsm a.pbsm --algorithm pb --out c.mtx --profile
//! pb-spgemm multiply rmat:scale=14 --algorithm auto   # generator spec as input
//! pb-spgemm multiply a.mtx --ooc-budget-mb 64         # out-of-core tiled multiply
//! pb-spgemm compare a.mtx                # race all algorithms on A·A
//! pb-spgemm verify a.mtx --reuse         # PB vs reference oracle (+ workspace reuse)
//! ```
//!
//! Every command that reads a matrix accepts any [`pb_gen::MatrixSource`]
//! spec: a `.mtx` Matrix Market file, a `.pbsm`/`.bin` PBSM binary
//! (memory-mapped zero-copy when the file is version 2), or an inline
//! generator spec such as `rmat:scale=14,edge_factor=8,seed=1`.
//!
//! The argument parsing is hand-rolled (no extra dependencies) and lives in
//! this library crate so it can be unit-tested; `main.rs` is a thin wrapper.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::Instant;

use pb_baseline::Baseline;
use pb_sparse::stats::MultiplyStats;
use pb_sparse::{Csr, PlusTimes};
use pb_spgemm::SpGemm;

/// Exit code for usage/configuration mistakes (bad flags, malformed
/// values, rejected `PB_*` environment settings).
pub const EXIT_USAGE: i32 = 2;

/// Exit code for runtime failures (I/O errors, oracle mismatches).
pub const EXIT_RUNTIME: i32 = 1;

/// Errors surfaced to the CLI user, carrying the process exit code so
/// scripts can distinguish "you called it wrong" ([`EXIT_USAGE`]) from
/// "it called you wrong" ([`EXIT_RUNTIME`]).
#[derive(Debug)]
pub struct CliError {
    message: String,
    code: i32,
}

impl CliError {
    /// A usage/configuration error (exit code [`EXIT_USAGE`]).
    pub fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: EXIT_USAGE,
        }
    }

    /// A runtime failure (exit code [`EXIT_RUNTIME`]).
    pub fn runtime(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: EXIT_RUNTIME,
        }
    }

    /// The exit code `main` should terminate with.
    pub fn exit_code(&self) -> i32 {
        self.code
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

impl From<pb_sparse::SparseError> for CliError {
    fn from(e: pb_sparse::SparseError) -> Self {
        CliError::runtime(e.to_string())
    }
}

impl From<pb_spgemm::PbError> for CliError {
    fn from(e: pb_spgemm::PbError) -> Self {
        // Bad env vars and malformed config are the caller's mistake; a
        // failed bind/read or a broken matrix file is the environment's.
        match e {
            pb_spgemm::PbError::Io(_) | pb_spgemm::PbError::Matrix(_) => {
                CliError::runtime(e.to_string())
            }
            _ => CliError::usage(e.to_string()),
        }
    }
}

fn err(msg: impl Into<String>) -> CliError {
    CliError::usage(msg)
}

/// The algorithms selectable from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliAlgorithm {
    /// Telemetry-driven planner: pick the kernel per multiply.
    Auto,
    /// PB-SpGEMM (the paper's algorithm).
    Pb,
    /// HeapSpGEMM baseline.
    Heap,
    /// HashSpGEMM baseline.
    Hash,
    /// HashVecSpGEMM baseline.
    HashVec,
    /// SPA baseline.
    Spa,
}

impl CliAlgorithm {
    /// Parses an algorithm name.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s.to_ascii_lowercase().as_str() {
            "auto" | "planner" => Ok(CliAlgorithm::Auto),
            "pb" | "pb-spgemm" | "outer" => Ok(CliAlgorithm::Pb),
            "heap" => Ok(CliAlgorithm::Heap),
            "hash" => Ok(CliAlgorithm::Hash),
            "hashvec" | "hash-vec" => Ok(CliAlgorithm::HashVec),
            "spa" => Ok(CliAlgorithm::Spa),
            other => Err(err(format!(
                "unknown algorithm {other:?} (expected auto, pb, heap, hash, hashvec or spa)"
            ))),
        }
    }

    /// Builds the unified [`SpGemm`] engine this selection maps to.
    pub fn engine(&self, threads: Option<usize>) -> SpGemm {
        let engine = match self {
            CliAlgorithm::Auto => SpGemm::auto(),
            CliAlgorithm::Pb => SpGemm::pb(),
            CliAlgorithm::Heap => SpGemm::baseline(Baseline::Heap),
            CliAlgorithm::Hash => SpGemm::baseline(Baseline::Hash),
            CliAlgorithm::HashVec => SpGemm::baseline(Baseline::HashVec),
            CliAlgorithm::Spa => SpGemm::baseline(Baseline::Spa),
        };
        match threads {
            Some(t) => engine.threads(t),
            None => engine,
        }
    }

    /// Runs the selected algorithm.
    pub fn run(&self, a: &Csr<f64>, b: &Csr<f64>, threads: Option<usize>) -> Csr<f64> {
        self.engine(threads).multiply(a, b)
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CliAlgorithm::Auto => "Auto",
            CliAlgorithm::Pb => "PB-SpGEMM",
            CliAlgorithm::Heap => "HeapSpGEMM",
            CliAlgorithm::Hash => "HashSpGEMM",
            CliAlgorithm::HashVec => "HashVecSpGEMM",
            CliAlgorithm::Spa => "SpaSpGEMM",
        }
    }
}

/// Looks up the value following a `--flag` in the argument list.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

/// Whether a boolean `--flag` is present.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, CliError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("invalid value {v:?} for {flag}"))),
    }
}

/// The usage text printed by `pb-spgemm help`.
pub fn usage() -> String {
    "pb-spgemm — sparse matrix-matrix multiplication with propagation blocking\n\
     \n\
     USAGE:\n\
     \x20 pb-spgemm generate <er|rmat|standin> [--scale S] [--edge-factor E] [--name N]\n\
     \x20                    [--seed X] --out FILE.{mtx|pbsm}\n\
     \x20 pb-spgemm convert  SRC DST             (.mtx <-> .pbsm, or generator spec -> file)\n\
     \x20 pb-spgemm stats    A\n\
     \x20 pb-spgemm multiply A [B] [--algorithm auto|pb|heap|hash|hashvec|spa]\n\
     \x20                    [--threads T] [--out C.{mtx|pbsm}] [--profile]\n\
     \x20                    [--trace-out T.json] [--ooc-budget-mb M] [--ooc-grid PxQxR]\n\
     \x20 pb-spgemm compare  A [--threads T]\n\
     \x20 pb-spgemm verify   A [B] [--threads T] [--reuse] [--ooc-budget-mb M]\n\
     \x20 pb-spgemm serve    [--addr HOST:PORT] [--budget-mb M] [--workers W]\n\
     \x20                    [--algorithm auto|pb|...] [--slow-ms MS] [--check]\n\
     \x20 pb-spgemm trace-check T.json\n\
     \x20 pb-spgemm help\n\
     \n\
     Matrix arguments (A, B, SRC) accept .mtx files, .pbsm/.bin binaries, or\n\
     generator specs: rmat:scale=S[,edge_factor=E][,seed=X],\n\
     er:scale=S[,...], standin:name=N[,fraction=F][,seed=X].\n\
     With --ooc-budget-mb the multiply runs tiled out-of-core: operands are cut\n\
     into flop-balanced tiles and spill to a scratch file beyond the budget\n\
     (PB_OOC_BUDGET_MB sets the same knob for library callers).\n\
     \n\
     EXIT CODES: 0 success, 1 runtime failure, 2 usage/configuration error\n"
        .to_string()
}

/// Runs the CLI with the given arguments (without the program name) and
/// returns the text to print.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    match args.first().map(|s| s.as_str()) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(usage()),
        Some("generate") => cmd_generate(&args[1..]),
        Some("convert") => cmd_convert(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("multiply") => cmd_multiply(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("trace-check") => cmd_trace_check(&args[1..]),
        Some(other) => Err(err(format!("unknown command {other:?}\n\n{}", usage()))),
    }
}

fn cmd_generate(args: &[String]) -> Result<String, CliError> {
    let family = args
        .first()
        .ok_or_else(|| err("generate: missing family (er|rmat|standin)"))?;
    let out = flag_value(args, "--out").ok_or_else(|| err("generate: missing --out FILE.mtx"))?;
    let seed: u64 = parse_num(args, "--seed", 42)?;
    let matrix: Csr<f64> = match family.as_str() {
        "er" => {
            let scale: u32 = parse_num(args, "--scale", 12)?;
            let ef: u32 = parse_num(args, "--edge-factor", 8)?;
            pb_gen::erdos_renyi_square(scale, ef, seed)
        }
        "rmat" => {
            let scale: u32 = parse_num(args, "--scale", 12)?;
            let ef: u32 = parse_num(args, "--edge-factor", 8)?;
            pb_gen::rmat_square(scale, ef, seed)
        }
        "standin" => {
            let name = flag_value(args, "--name")
                .ok_or_else(|| err("generate standin: missing --name <Table VI matrix>"))?;
            let fraction: f64 = parse_num(args, "--fraction", 0.0625)?;
            pb_gen::standin_scaled(name, fraction, seed)
        }
        other => return Err(err(format!("generate: unknown family {other:?}"))),
    };
    pb_gen::save_matrix(out, &matrix)?;
    Ok(format!(
        "wrote {} x {} matrix with {} nonzeros to {out}\n",
        matrix.nrows(),
        matrix.ncols(),
        matrix.nnz()
    ))
}

/// `pb-spgemm convert SRC DST` — loads any matrix source (Matrix Market,
/// PBSM binary, or an inline generator spec) and writes it in the format
/// the destination extension names.  The conversion path of the
/// [`pb_gen::MatrixSource`] API: `a.mtx -> a.pbsm` produces the
/// 64-byte-aligned v2 binary that later loads map zero-copy.
fn cmd_convert(args: &[String]) -> Result<String, CliError> {
    let src = args
        .first()
        .filter(|s| !s.starts_with("--"))
        .ok_or_else(|| err("convert: missing source (file or generator spec)"))?;
    let dst = args
        .get(1)
        .filter(|s| !s.starts_with("--"))
        .ok_or_else(|| err("convert: missing destination file (.mtx or .pbsm)"))?;
    let source = pb_gen::open_source(src)?;
    let m = source.load()?;
    pb_gen::save_matrix(dst, &m)?;
    Ok(format!(
        "converted {} -> {dst}: {} x {}, {} nonzeros\n",
        source.describe(),
        m.nrows(),
        m.ncols(),
        m.nnz()
    ))
}

fn load(spec: &str) -> Result<Csr<f64>, CliError> {
    pb_gen::load_matrix(spec).map_err(CliError::from)
}

fn save(path: &str, m: &Csr<f64>) -> Result<(), CliError> {
    pb_gen::save_matrix(path, m).map_err(CliError::from)
}

fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    let path = args
        .first()
        .ok_or_else(|| err("stats: missing matrix file"))?;
    let a = load(path)?;
    let stats = MultiplyStats::compute(&a, &a);
    let mut out = String::new();
    let _ = writeln!(out, "matrix            : {path}");
    let _ = writeln!(out, "shape             : {} x {}", a.nrows(), a.ncols());
    let _ = writeln!(out, "nnz               : {}", a.nnz());
    let _ = writeln!(out, "avg degree        : {:.3}", a.avg_degree());
    let _ = writeln!(out, "max degree        : {}", a.max_degree());
    let _ = writeln!(out, "squaring flop     : {}", stats.flop);
    let _ = writeln!(out, "squaring nnz(C)   : {}", stats.nnz_c);
    let _ = writeln!(out, "compression factor: {:.3}", stats.cf);
    let _ = writeln!(
        out,
        "regime            : {}",
        if stats.cf < 4.0 {
            "cf < 4 (PB-SpGEMM expected to win)"
        } else {
            "cf > 4 (HashSpGEMM expected to win)"
        }
    );
    Ok(out)
}

fn cmd_multiply(args: &[String]) -> Result<String, CliError> {
    let a_path = args
        .first()
        .ok_or_else(|| err("multiply: missing matrix file"))?;
    let b_path = args.get(1).filter(|s| !s.starts_with("--"));
    let a = load(a_path)?;
    let b = match b_path {
        Some(p) => load(p)?,
        None => a.clone(),
    };
    let algorithm = CliAlgorithm::parse(flag_value(args, "--algorithm").unwrap_or("pb"))?;
    let threads = flag_value(args, "--threads")
        .map(|t| t.parse().map_err(|_| err("bad --threads")))
        .transpose()?;
    let stats = MultiplyStats::compute(&a, &b);

    // `--trace-out FILE` records the multiply through the span tracer and
    // writes a Chrome trace-event JSON loadable in Perfetto.  The tracer is
    // process-global; restore its prior state so library callers (tests)
    // see no side effect.
    let trace_out = flag_value(args, "--trace-out");
    let trace_was_on = pb_spgemm::trace::enabled();
    if trace_out.is_some() {
        pb_spgemm::trace::set_enabled(true);
    }

    // `--ooc-budget-mb M` routes the multiply through the tiled
    // out-of-core driver with an M-MiB tile-store budget; `--ooc-grid
    // PxQxR` pins the tile grid instead of deriving it from the budget.
    let ooc_cfg = match flag_value(args, "--ooc-budget-mb") {
        None => None,
        Some(mb) => {
            let mb: u64 = mb
                .parse()
                .map_err(|_| err(format!("invalid value {mb:?} for --ooc-budget-mb")))?;
            let mut cfg = pb_spgemm::TiledConfig::default().with_budget_mb(mb);
            if let Some(grid) = flag_value(args, "--ooc-grid") {
                let (p, q, r) = parse_grid(grid)?;
                cfg = cfg.with_grid(p, q, r);
            }
            Some(cfg)
        }
    };

    let mut out = String::new();
    let profiled = matches!(algorithm, CliAlgorithm::Pb | CliAlgorithm::Auto);
    let c = if let Some(cfg) = &ooc_cfg {
        let engine = algorithm.engine(threads);
        let t = Instant::now();
        let (c, report) = engine.multiply_tiled(&a, &b, cfg)?;
        let dt = t.elapsed().as_secs_f64();
        let _ = writeln!(
            out,
            "{} (tiled {}x{}x{}): {:.1} ms, {:.0} MFLOPS",
            algorithm.name(),
            report.grid.0,
            report.grid.1,
            report.grid.2,
            dt * 1e3,
            stats.flop as f64 / dt / 1e6
        );
        let _ = writeln!(
            out,
            "ooc: {} tile multiplies, {} B spilled over {} tiles, \
             resident high water {} B (budget {} B)",
            report.tiles_processed,
            report.spill_bytes,
            report.spilled_tiles,
            report.resident_high_water,
            report.budget_bytes
        );
        c
    } else if profiled && has_flag(args, "--profile") {
        let engine = algorithm.engine(threads);
        let (c, profile) = engine.multiply_with_profile::<PlusTimes<f64>>(&a, &b);
        let _ = writeln!(out, "{}", profile.summary());
        c
    } else {
        let t = Instant::now();
        let c = algorithm.run(&a, &b, threads);
        let dt = t.elapsed().as_secs_f64();
        let _ = writeln!(
            out,
            "{}: {:.1} ms, {:.0} MFLOPS",
            algorithm.name(),
            dt * 1e3,
            stats.flop as f64 / dt / 1e6
        );
        c
    };
    let _ = writeln!(
        out,
        "C: {} x {}, nnz = {}, cf = {:.3}",
        c.nrows(),
        c.ncols(),
        c.nnz(),
        stats.cf
    );
    if let Some(path) = trace_out {
        let snapshot = pb_spgemm::trace::snapshot();
        pb_spgemm::trace::set_enabled(trace_was_on);
        let json = snapshot.to_chrome_json();
        std::fs::write(path, &json)
            .map_err(|e| CliError::runtime(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(
            out,
            "wrote {} trace events ({} threads) to {path}",
            snapshot.len(),
            snapshot.threads.len()
        );
    }
    if let Some(path) = flag_value(args, "--out") {
        save(path, &c)?;
        let _ = writeln!(out, "wrote result to {path}");
    }
    Ok(out)
}

/// Parses a `PxQxR` tile-grid spec (e.g. `4x2x4`).
fn parse_grid(s: &str) -> Result<(usize, usize, usize), CliError> {
    let parts: Vec<&str> = s.split('x').collect();
    let bad = || {
        err(format!(
            "invalid value {s:?} for --ooc-grid (expected PxQxR)"
        ))
    };
    if parts.len() != 3 {
        return Err(bad());
    }
    let p = parts[0].parse().map_err(|_| bad())?;
    let q = parts[1].parse().map_err(|_| bad())?;
    let r = parts[2].parse().map_err(|_| bad())?;
    if p == 0 || q == 0 || r == 0 {
        return Err(bad());
    }
    Ok((p, q, r))
}

/// `pb-spgemm trace-check T.json` — validates a Chrome trace-event file
/// written by `multiply --trace-out` (or the serve `trace` op): valid
/// JSON, non-empty, per-thread monotonic timestamps, balanced begin/end
/// nesting.  Exits non-zero on any violation — the CI trace-smoke gate.
fn cmd_trace_check(args: &[String]) -> Result<String, CliError> {
    let path = args
        .first()
        .filter(|s| !s.starts_with("--"))
        .ok_or_else(|| err("trace-check: missing trace file"))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::runtime(format!("cannot read {path}: {e}")))?;
    let summary = pb_spgemm::trace::validate_chrome_trace(&text)
        .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    Ok(format!(
        "{path} OK: {} events across {} threads ({} complete spans, {} instants)\n",
        summary.events, summary.threads, summary.spans, summary.instants
    ))
}

/// `pb-spgemm verify A.mtx [B.mtx] [--threads T] [--reuse]` — multiplies
/// with PB-SpGEMM and checks the product against the sequential reference
/// oracle, exiting non-zero on any mismatch.  With `--reuse` the multiply
/// runs twice through one persistent [`pb_spgemm::Workspace`]: the second
/// (buffer-reusing) product must match the first exactly, and the reuse
/// counters are reported — the CLI face of the perf-gate's reuse check.
fn cmd_verify(args: &[String]) -> Result<String, CliError> {
    let a_path = args
        .first()
        .ok_or_else(|| err("verify: missing matrix file"))?;
    let b_path = args.get(1).filter(|s| !s.starts_with("--"));
    let a = load(a_path)?;
    let b = match b_path {
        Some(p) => load(p)?,
        None => a.clone(),
    };
    let threads = flag_value(args, "--threads")
        .map(|t| t.parse().map_err(|_| err("bad --threads")))
        .transpose()?;
    let engine = CliAlgorithm::Pb.engine(threads);
    let a_csc = a.to_csc();

    let expected = pb_sparse::reference::multiply_csr(&a, &b);
    let c = engine.multiply_csc(&a_csc, &b);
    if !pb_sparse::reference::csr_approx_eq(&c, &expected, 1e-9) {
        return Err(CliError::runtime(format!(
            "verify: PB-SpGEMM disagrees with the reference oracle on {a_path}"
        )));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "PB-SpGEMM matches the reference oracle: nnz(C) = {}, cf = {:.3}",
        c.nnz(),
        pb_sparse::stats::MultiplyStats::compute(&a, &b).cf
    );

    if has_flag(args, "--reuse") {
        let ws = std::sync::Arc::new(pb_spgemm::Workspace::new());
        let reusing = engine.clone().workspace(ws.clone());
        let first = reusing.multiply_csc(&a_csc, &b);
        let second = reusing.multiply_csc(&a_csc, &b);
        if second.rowptr() != first.rowptr()
            || second.colidx() != first.colidx()
            || !pb_sparse::reference::csr_approx_eq(&second, &expected, 1e-9)
        {
            return Err(CliError::runtime(
                "verify: workspace-reusing multiply changed the product",
            ));
        }
        if ws.total_bytes_reused() == 0 {
            return Err(CliError::runtime(
                "verify: the second multiply reused no workspace bytes",
            ));
        }
        let _ = writeln!(
            out,
            "workspace reuse OK: {} bytes reused, {} allocated, {} hits over 2 multiplies",
            ws.total_bytes_reused(),
            ws.total_bytes_allocated(),
            ws.total_hits(),
        );
    }

    // `--ooc-budget-mb M` additionally runs the tiled out-of-core driver
    // under an M-MiB budget and checks it against the same oracle, plus
    // the store's budget invariant (high water ≤ budget + one tile).
    if let Some(mb) = flag_value(args, "--ooc-budget-mb") {
        let mb: u64 = mb
            .parse()
            .map_err(|_| err(format!("invalid value {mb:?} for --ooc-budget-mb")))?;
        let cfg = pb_spgemm::TiledConfig::default().with_budget_mb(mb);
        let (tiled, report) = engine.multiply_tiled(&a, &b, &cfg)?;
        if !pb_sparse::reference::csr_approx_eq(&tiled, &expected, 1e-9) {
            return Err(CliError::runtime(format!(
                "verify: tiled multiply disagrees with the reference oracle on {a_path}"
            )));
        }
        if !report.within_budget_slack() {
            return Err(CliError::runtime(format!(
                "verify: tile store exceeded its budget: high water {} B, \
                 budget {} B, largest tile {} B",
                report.resident_high_water, report.budget_bytes, report.max_tile_bytes
            )));
        }
        let _ = writeln!(
            out,
            "tiled OOC OK ({}x{}x{} grid): {} tile multiplies, {} B spilled, \
             high water {} B within budget {} B (+ one tile)",
            report.grid.0,
            report.grid.1,
            report.grid.2,
            report.tiles_processed,
            report.spill_bytes,
            report.resident_high_water,
            report.budget_bytes
        );
    }
    Ok(out)
}

/// `pb-spgemm serve [--addr A] [--budget-mb M] [--workers W]
/// [--algorithm X] [--check]` — runs the resident pb-serve process.
///
/// Configuration starts from the `PB_SERVE_*` / `PB_*` environment (a
/// rejected variable is a usage error, exit code 2), then flags override.
/// The bound address is printed immediately so scripts can scrape it; the
/// process then serves until a client sends the `shutdown` op.  With
/// `--check` the server binds, reports, and shuts itself down — the
/// configuration smoke used by tests and CI.
fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let mut config = pb_serve::ServeConfig::from_env()?;
    if let Some(addr) = flag_value(args, "--addr") {
        config = config.addr(addr);
    }
    if let Some(mb) = flag_value(args, "--budget-mb") {
        let mb: usize = mb
            .parse()
            .map_err(|_| err(format!("invalid value {mb:?} for --budget-mb")))?;
        config = config.budget_bytes(mb << 20);
    }
    if let Some(w) = flag_value(args, "--workers") {
        let w: usize = w
            .parse()
            .map_err(|_| err(format!("invalid value {w:?} for --workers")))?;
        config = config.workers(w);
    }
    if let Some(name) = flag_value(args, "--algorithm") {
        let algorithm = pb_spgemm::Algorithm::parse(name).ok_or_else(|| {
            err(format!(
                "unknown algorithm {name:?} for --algorithm (see `pb-spgemm help`)"
            ))
        })?;
        config = config.algorithm(algorithm);
    }
    if let Some(ms) = flag_value(args, "--slow-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| err(format!("invalid value {ms:?} for --slow-ms")))?;
        config = config.slow_ms(Some(ms));
    }
    let check = has_flag(args, "--check");
    let server = pb_serve::Server::start(config)?;
    let addr = server.addr();
    if check {
        server.shutdown();
        server.join();
        return Ok(format!("serve config OK (bound {addr}, not serving)\n"));
    }
    // Print before blocking: the OS-assigned port is only knowable here.
    println!("pb-serve listening on {addr}");
    // Blocks until a client sends the shutdown op (join() would request it).
    server.wait();
    Ok(String::new())
}

fn cmd_compare(args: &[String]) -> Result<String, CliError> {
    let a_path = args
        .first()
        .ok_or_else(|| err("compare: missing matrix file"))?;
    let a = load(a_path)?;
    let threads = flag_value(args, "--threads")
        .map(|t| t.parse().map_err(|_| err("bad --threads")))
        .transpose()?;
    let stats = MultiplyStats::compute(&a, &a);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "squaring {a_path}: flop = {}, nnz(C) = {}, cf = {:.2}",
        stats.flop, stats.nnz_c, stats.cf
    );
    for algo in [
        CliAlgorithm::Pb,
        CliAlgorithm::Heap,
        CliAlgorithm::Hash,
        CliAlgorithm::HashVec,
        CliAlgorithm::Spa,
        CliAlgorithm::Auto,
    ] {
        let t = Instant::now();
        let c = algo.run(&a, &a, threads);
        let dt = t.elapsed().as_secs_f64();
        let _ = writeln!(
            out,
            "{:>15}: {:9.1} ms   {:8.0} MFLOPS   nnz(C) = {}",
            algo.name(),
            dt * 1e3,
            stats.flop as f64 / dt / 1e6,
            c.nnz()
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("pb_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_cli(&[]).unwrap().contains("USAGE"));
        assert!(run_cli(&strs(&["help"])).unwrap().contains("generate"));
        let e = run_cli(&strs(&["frobnicate"])).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
    }

    #[test]
    fn algorithm_parsing() {
        assert_eq!(CliAlgorithm::parse("pb").unwrap(), CliAlgorithm::Pb);
        assert_eq!(CliAlgorithm::parse("auto").unwrap(), CliAlgorithm::Auto);
        assert_eq!(CliAlgorithm::parse("planner").unwrap(), CliAlgorithm::Auto);
        assert_eq!(
            CliAlgorithm::parse("HASHVEC").unwrap(),
            CliAlgorithm::HashVec
        );
        assert!(CliAlgorithm::parse("quantum").is_err());
    }

    #[test]
    fn flag_helpers() {
        let args = strs(&["--scale", "14", "--profile"]);
        assert_eq!(flag_value(&args, "--scale"), Some("14"));
        assert_eq!(flag_value(&args, "--missing"), None);
        assert!(has_flag(&args, "--profile"));
        assert!(!has_flag(&args, "--quiet"));
    }

    #[test]
    fn generate_stats_multiply_compare_roundtrip() {
        let mtx = temp_path("roundtrip_er.mtx");
        let out = run_cli(&strs(&[
            "generate",
            "er",
            "--scale",
            "7",
            "--edge-factor",
            "4",
            "--seed",
            "3",
            "--out",
            &mtx,
        ]))
        .unwrap();
        assert!(out.contains("128 x 128"));

        let stats = run_cli(&strs(&["stats", &mtx])).unwrap();
        assert!(stats.contains("compression factor"));
        assert!(stats.contains("PB-SpGEMM expected to win"));

        let c_path = temp_path("roundtrip_c.mtx");
        for algo in ["pb", "heap", "hash", "hashvec", "spa", "auto"] {
            let out = run_cli(&strs(&[
                "multiply",
                &mtx,
                "--algorithm",
                algo,
                "--out",
                &c_path,
            ]))
            .unwrap();
            assert!(
                out.contains("MFLOPS"),
                "{algo} output missing MFLOPS: {out}"
            );
            assert!(out.contains("wrote result"));
        }
        // The written product re-loads and matches the in-process product.
        let a = load(&mtx).unwrap();
        let c = load(&c_path).unwrap();
        let expected = pb_sparse::reference::multiply_csr(&a, &a);
        assert_eq!(c.nnz(), expected.nnz());

        let cmp = run_cli(&strs(&["compare", &mtx, "--threads", "1"])).unwrap();
        assert!(cmp.contains("HeapSpGEMM") && cmp.contains("PB-SpGEMM"));

        let profiled =
            run_cli(&strs(&["multiply", &mtx, "--algorithm", "pb", "--profile"])).unwrap();
        assert!(profiled.contains("nbins="));
    }

    #[test]
    fn verify_reports_oracle_agreement_and_workspace_reuse() {
        let mtx = temp_path("verify_er.mtx");
        run_cli(&strs(&[
            "generate",
            "er",
            "--scale",
            "7",
            "--edge-factor",
            "4",
            "--out",
            &mtx,
        ]))
        .unwrap();
        let out = run_cli(&strs(&["verify", &mtx])).unwrap();
        assert!(out.contains("matches the reference oracle"));
        let out = run_cli(&strs(&["verify", &mtx, "--reuse"])).unwrap();
        assert!(out.contains("workspace reuse OK"));
        assert!(out.contains("bytes reused"));
        // Usage and error paths.
        assert!(run_cli(&strs(&["verify"])).is_err());
        assert!(run_cli(&strs(&["verify", "/nonexistent.mtx"])).is_err());
    }

    #[test]
    fn generate_standin_and_rmat() {
        let mtx = temp_path("standin.mtx");
        let out = run_cli(&strs(&[
            "generate",
            "standin",
            "--name",
            "scircuit",
            "--fraction",
            "0.005",
            "--out",
            &mtx,
        ]))
        .unwrap();
        assert!(out.contains("wrote"));
        let rmat = temp_path("rmat.mtx");
        run_cli(&strs(&["generate", "rmat", "--scale", "7", "--out", &rmat])).unwrap();
        assert!(run_cli(&strs(&["stats", &rmat]))
            .unwrap()
            .contains("avg degree"));
    }

    #[test]
    fn trace_out_writes_a_checkable_chrome_trace() {
        let mtx = temp_path("trace_er.mtx");
        run_cli(&strs(&[
            "generate",
            "er",
            "--scale",
            "7",
            "--edge-factor",
            "4",
            "--out",
            &mtx,
        ]))
        .unwrap();
        let trace = temp_path("multiply_trace.json");
        let out = run_cli(&strs(&[
            "multiply",
            &mtx,
            "--algorithm",
            "pb",
            "--trace-out",
            &trace,
        ]))
        .unwrap();
        assert!(out.contains("trace events"), "{out}");
        let checked = run_cli(&strs(&["trace-check", &trace])).unwrap();
        assert!(checked.contains("OK"), "{checked}");
        // The validator rejects garbage and missing files.
        let bad = temp_path("not_a_trace.json");
        std::fs::write(&bad, "{}").unwrap();
        let e = run_cli(&strs(&["trace-check", &bad])).unwrap_err();
        assert_eq!(e.exit_code(), EXIT_RUNTIME);
        let e = run_cli(&strs(&["trace-check", "/nonexistent.json"])).unwrap_err();
        assert_eq!(e.exit_code(), EXIT_RUNTIME);
        assert!(run_cli(&strs(&["trace-check"])).is_err());
    }

    #[test]
    fn convert_roundtrips_between_formats_and_sources() {
        let mtx = temp_path("convert_src.mtx");
        run_cli(&strs(&[
            "generate",
            "er",
            "--scale",
            "7",
            "--edge-factor",
            "4",
            "--out",
            &mtx,
        ]))
        .unwrap();
        // .mtx -> .pbsm -> .mtx preserves the matrix bit-exactly.
        let pbsm = temp_path("convert_a.pbsm");
        let back = temp_path("convert_back.mtx");
        assert!(run_cli(&strs(&["convert", &mtx, &pbsm]))
            .unwrap()
            .contains("converted"));
        run_cli(&strs(&["convert", &pbsm, &back])).unwrap();
        let orig = load(&mtx).unwrap();
        let bin = load(&pbsm).unwrap();
        let round = load(&back).unwrap();
        assert_eq!(orig.rowptr(), bin.rowptr());
        assert_eq!(orig.colidx(), bin.colidx());
        assert_eq!(orig.values(), bin.values());
        assert_eq!(orig.values(), round.values());
        // A generator spec is a valid source everywhere a file is.
        let gen_out = temp_path("convert_gen.pbsm");
        run_cli(&strs(&["convert", "rmat:scale=6,seed=5", &gen_out])).unwrap();
        assert!(run_cli(&strs(&["stats", &gen_out]))
            .unwrap()
            .contains("avg degree"));
        assert!(run_cli(&strs(&["multiply", "er:scale=6,edge_factor=4"]))
            .unwrap()
            .contains("MFLOPS"));
        // Error paths: missing args, unknown spec, broken file.
        assert!(run_cli(&strs(&["convert", &mtx])).is_err());
        assert!(run_cli(&strs(&["convert", "rmat:scale=", &gen_out])).is_err());
        let garbage = temp_path("convert_garbage.pbsm");
        std::fs::write(&garbage, b"not a pbsm file").unwrap();
        let e = run_cli(&strs(&["stats", &garbage])).unwrap_err();
        assert_eq!(e.exit_code(), EXIT_RUNTIME);
    }

    #[test]
    fn ooc_multiply_matches_resident_and_reports_spills() {
        let mtx = temp_path("ooc_a.mtx");
        run_cli(&strs(&[
            "generate",
            "er",
            "--scale",
            "8",
            "--edge-factor",
            "6",
            "--out",
            &mtx,
        ]))
        .unwrap();
        let resident_out = temp_path("ooc_resident.pbsm");
        run_cli(&strs(&[
            "multiply",
            &mtx,
            "--algorithm",
            "pb",
            "--out",
            &resident_out,
        ]))
        .unwrap();
        let tiled_out = temp_path("ooc_tiled.pbsm");
        // A 1-MiB budget with a forced grid: the output text must carry the
        // ooc telemetry line and the product must match the resident run.
        let out = run_cli(&strs(&[
            "multiply",
            &mtx,
            "--algorithm",
            "pb",
            "--ooc-budget-mb",
            "1",
            "--ooc-grid",
            "3x2x3",
            "--out",
            &tiled_out,
        ]))
        .unwrap();
        assert!(out.contains("tiled 3x2x3"), "{out}");
        assert!(out.contains("ooc:"), "{out}");
        let resident = load(&resident_out).unwrap();
        let tiled = load(&tiled_out).unwrap();
        // Identical structure; values agree to rounding (the generated
        // matrix has random values, so the tiled accumulation order may
        // differ in the last ulp — unit-valued bit-identity is covered by
        // the tiled_ooc integration tests).
        assert_eq!(resident.rowptr(), tiled.rowptr());
        assert_eq!(resident.colidx(), tiled.colidx());
        assert!(pb_sparse::reference::csr_approx_eq(
            &tiled, &resident, 1e-12
        ));
        // verify --ooc-budget-mb gates the oracle and the budget invariant.
        let out = run_cli(&strs(&["verify", &mtx, "--ooc-budget-mb", "1"])).unwrap();
        assert!(out.contains("tiled OOC OK"), "{out}");
        // Bad grid/budget specs are usage errors.
        for bad in [
            vec!["multiply", &mtx, "--ooc-budget-mb", "many"],
            vec![
                "multiply",
                &mtx,
                "--ooc-budget-mb",
                "1",
                "--ooc-grid",
                "3x2",
            ],
            vec![
                "multiply",
                &mtx,
                "--ooc-budget-mb",
                "1",
                "--ooc-grid",
                "0x1x1",
            ],
        ] {
            let e = run_cli(&strs(&bad)).unwrap_err();
            assert_eq!(e.exit_code(), EXIT_USAGE, "{bad:?}");
        }
    }

    #[test]
    fn serve_check_binds_and_reports() {
        let out = run_cli(&strs(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--budget-mb",
            "16",
            "--workers",
            "1",
            "--algorithm",
            "pb",
            "--slow-ms",
            "500",
            "--check",
        ]))
        .unwrap();
        assert!(out.contains("serve config OK"), "{out}");
        let e = run_cli(&strs(&["serve", "--slow-ms", "soon", "--check"])).unwrap_err();
        assert_eq!(e.exit_code(), EXIT_USAGE);
    }

    #[test]
    fn exit_codes_distinguish_usage_from_runtime() {
        // Bad flag value: the caller's mistake.
        let e = run_cli(&strs(&["serve", "--budget-mb", "lots", "--check"])).unwrap_err();
        assert_eq!(e.exit_code(), EXIT_USAGE);
        let e = run_cli(&strs(&["serve", "--algorithm", "quantum", "--check"])).unwrap_err();
        assert_eq!(e.exit_code(), EXIT_USAGE);
        let e = run_cli(&strs(&["multiply"])).unwrap_err();
        assert_eq!(e.exit_code(), EXIT_USAGE);
        // Missing input file: a runtime (I/O) failure.
        let e = run_cli(&strs(&["stats", "/nonexistent/file.mtx"])).unwrap_err();
        assert_eq!(e.exit_code(), EXIT_RUNTIME);
        // A bind to a non-local address fails at runtime, not usage.
        let e = run_cli(&strs(&["serve", "--addr", "203.0.113.1:1", "--check"])).unwrap_err();
        assert_eq!(e.exit_code(), EXIT_RUNTIME);
    }

    #[test]
    fn error_paths_are_reported() {
        assert!(
            run_cli(&strs(&["generate", "er"])).is_err(),
            "missing --out must fail"
        );
        assert!(run_cli(&strs(&["generate", "cube", "--out", "/tmp/x.mtx"])).is_err());
        assert!(run_cli(&strs(&["stats"])).is_err());
        assert!(run_cli(&strs(&["stats", "/nonexistent/file.mtx"])).is_err());
        assert!(run_cli(&strs(&["multiply", "/nonexistent/file.mtx"])).is_err());
        let mtx = temp_path("err_algo.mtx");
        run_cli(&strs(&["generate", "er", "--scale", "6", "--out", &mtx])).unwrap();
        assert!(run_cli(&strs(&["multiply", &mtx, "--algorithm", "quantum"])).is_err());
        assert!(run_cli(&strs(&["generate", "er", "--scale", "bad", "--out", &mtx])).is_err());
    }
}
