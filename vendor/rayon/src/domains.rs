//! NUMA-domain discovery and the worker→domain mapping shared by the pool
//! and by `pb-spgemm`'s topology subsystem.
//!
//! Real rayon has no notion of NUMA domains; this vendored pool adds one so
//! that the propagation-blocking expand phase can keep its flushes
//! socket-local.  The model is deliberately simple:
//!
//! * a pool of `n` threads running on a machine with `d` domains assigns
//!   worker `i` (slot 0 is the submitting thread) to domain
//!   `i · d / n` — contiguous blocks of workers per domain, mirroring how
//!   cores are numbered within sockets on the machines the paper targets;
//! * the domain count comes from `PB_NUMA_DOMAINS` when set (forced
//!   topologies for deterministic testing on single-domain hosts), from
//!   `/sys/devices/system/node` otherwise, and falls back to 1;
//! * a pool never uses more domains than it has threads.
//!
//! Discovery lives here — not in `pb-spgemm` — because the pool itself
//! needs it to label its workers; the higher-level
//! `pb_spgemm::topology::Topology` type wraps these primitives.

use std::path::Path;

/// The environment variable forcing the domain count (`PB_NUMA_DOMAINS=k`).
///
/// Forcing exists so that the domain-partitioned code paths can be exercised
/// deterministically on single-domain hosts (CI containers); a forced count
/// only changes how work and bins are partitioned, never correctness.
pub const DOMAINS_ENV: &str = "PB_NUMA_DOMAINS";

/// The forced domain count from [`DOMAINS_ENV`], if set to a positive
/// integer.
pub fn forced_domains() -> Option<usize> {
    let v = std::env::var(DOMAINS_ENV).ok()?;
    match v.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// CPU lists of the NUMA nodes `/sys/devices/system/node` exposes, in node
/// order (`node0`, `node1`, ...).  `None` when the hierarchy is absent or
/// unreadable (non-Linux hosts, locked-down containers).
pub fn sysfs_domains() -> Option<Vec<Vec<usize>>> {
    sysfs_domains_at(Path::new("/sys/devices/system/node"))
}

/// [`sysfs_domains`] against an arbitrary root (separated for testing).
pub(crate) fn sysfs_domains_at(root: &Path) -> Option<Vec<Vec<usize>>> {
    let entries = std::fs::read_dir(root).ok()?;
    let mut nodes: Vec<(usize, Vec<usize>)> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(id) = name
            .strip_prefix("node")
            .and_then(|s| s.parse::<usize>().ok())
        else {
            continue;
        };
        let cpulist = std::fs::read_to_string(entry.path().join("cpulist")).unwrap_or_default();
        nodes.push((id, parse_cpulist(&cpulist)));
    }
    if nodes.is_empty() {
        return None;
    }
    nodes.sort_unstable_by_key(|&(id, _)| id);
    Some(nodes.into_iter().map(|(_, cpus)| cpus).collect())
}

/// Parses the kernel's cpulist format (`"0-3,8,10-11"`) into CPU ids.
/// Malformed pieces are skipped — discovery is best-effort by design.
pub fn parse_cpulist(list: &str) -> Vec<usize> {
    let mut cpus = Vec::new();
    for piece in list.trim().split(',') {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = piece.split_once('-') {
            if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                if lo <= hi && hi - lo < 4096 {
                    cpus.extend(lo..=hi);
                }
            }
        } else if let Ok(c) = piece.parse::<usize>() {
            cpus.push(c);
        }
    }
    cpus
}

/// The domain count new pools default to: [`forced_domains`], else the
/// number of sysfs NUMA nodes, else 1.
pub fn default_domains() -> usize {
    forced_domains()
        .or_else(|| sysfs_domains().map(|d| d.len()))
        .unwrap_or(1)
        .max(1)
}

/// The stable domain of worker `worker` in a pool of `threads` threads
/// spread over `domains` domains: contiguous blocks, domain `d` owning
/// workers `[d·threads/domains, (d+1)·threads/domains)`.  Worker 0 is the
/// submitting thread and always lands in domain 0.
pub fn domain_for_worker(worker: usize, threads: usize, domains: usize) -> usize {
    let threads = threads.max(1);
    let domains = domains.clamp(1, threads);
    (worker.min(threads - 1) * domains) / threads
}

/// Best-effort CPU pinning of the calling thread to `cpus` via the raw
/// `sched_setaffinity` syscall (Linux x86-64/aarch64 only; no `libc` is
/// available in this vendored build).  Returns whether the kernel accepted
/// the mask; failure is always tolerated — affinity is an optimisation,
/// never a correctness requirement.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub(crate) fn pin_current_thread(cpus: &[usize]) -> bool {
    // 1024-bit CPU mask, the kernel's conventional cpu_set_t size.
    let mut mask = [0u64; 16];
    let mut any = false;
    for &c in cpus {
        if c < 1024 {
            mask[c / 64] |= 1 << (c % 64);
            any = true;
        }
    }
    if !any {
        return false;
    }
    let res: isize;
    // SAFETY: sched_setaffinity(pid = 0 → calling thread, len, mask) reads
    // `len` bytes from `mask`, which outlives the call; no memory is
    // written by the kernel.  The asm clobbers match the Linux syscall ABI.
    unsafe {
        #[cfg(target_arch = "x86_64")]
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => res, // __NR_sched_setaffinity
            in("rdi") 0usize,
            in("rsi") std::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        #[cfg(target_arch = "aarch64")]
        {
            let x8: usize = 122; // __NR_sched_setaffinity
            std::arch::asm!(
                "svc 0",
                inlateout("x0") 0usize => res,
                in("x1") std::mem::size_of_val(&mask),
                in("x2") mask.as_ptr(),
                in("x8") x8,
                options(nostack),
            );
        }
    }
    res == 0
}

/// Stub for targets without a raw-syscall implementation.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub(crate) fn pin_current_thread(_cpus: &[usize]) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpulist_parses_ranges_and_singletons() {
        assert_eq!(parse_cpulist("0-3"), vec![0, 1, 2, 3]);
        assert_eq!(parse_cpulist("0-1,4,6-7\n"), vec![0, 1, 4, 6, 7]);
        assert_eq!(parse_cpulist("5"), vec![5]);
        assert_eq!(parse_cpulist(""), Vec::<usize>::new());
        // Malformed pieces are skipped, valid ones kept.
        assert_eq!(parse_cpulist("x,2,3-a,4-2,7"), vec![2, 7]);
    }

    #[test]
    fn worker_domains_form_contiguous_blocks() {
        // 4 threads over 2 domains: workers 0,1 -> 0 and 2,3 -> 1.
        let d: Vec<usize> = (0..4).map(|w| domain_for_worker(w, 4, 2)).collect();
        assert_eq!(d, vec![0, 0, 1, 1]);
        // 6 threads over 4 domains: block sizes 2/1/2/1.
        let d: Vec<usize> = (0..6).map(|w| domain_for_worker(w, 6, 4)).collect();
        assert_eq!(d, vec![0, 0, 1, 2, 2, 3]);
        // The submitter (worker 0) is always domain 0.
        for threads in 1..8 {
            for domains in 1..8 {
                assert_eq!(domain_for_worker(0, threads, domains), 0);
            }
        }
        // Domains never exceed threads, and every domain gets a worker.
        for threads in 1usize..12 {
            for domains in 1usize..12 {
                let eff = domains.min(threads);
                let assigned: std::collections::HashSet<usize> = (0..threads)
                    .map(|w| domain_for_worker(w, threads, domains))
                    .collect();
                assert_eq!(assigned.len(), eff, "{threads} threads, {domains} domains");
                assert!(assigned.iter().all(|&d| d < eff));
            }
        }
    }

    #[test]
    fn sysfs_discovery_reads_a_fake_hierarchy() {
        let dir = std::env::temp_dir().join(format!("pb-rayon-domains-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("node0")).unwrap();
        std::fs::create_dir_all(dir.join("node1")).unwrap();
        std::fs::write(dir.join("node0/cpulist"), "0-1\n").unwrap();
        std::fs::write(dir.join("node1/cpulist"), "2-3\n").unwrap();
        // Unrelated entries are ignored.
        std::fs::create_dir_all(dir.join("power")).unwrap();
        let domains = sysfs_domains_at(&dir).expect("two nodes discovered");
        assert_eq!(domains, vec![vec![0, 1], vec![2, 3]]);
        let _ = std::fs::remove_dir_all(&dir);
        // A missing hierarchy yields None, not a panic.
        assert!(sysfs_domains_at(&dir).is_none());
    }

    #[test]
    fn default_domains_is_at_least_one() {
        assert!(default_domains() >= 1);
    }
}
