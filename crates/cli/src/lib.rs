//! # pb-cli — command-line front end for the PB-SpGEMM suite
//!
//! The `pb-spgemm` binary exposes the workspace's functionality to shell
//! users:
//!
//! ```text
//! pb-spgemm generate er --scale 14 --edge-factor 8 --out a.mtx
//! pb-spgemm stats a.mtx
//! pb-spgemm multiply a.mtx a.mtx --algorithm pb --out c.mtx --profile
//! pb-spgemm multiply a.mtx --algorithm auto     # let the planner pick
//! pb-spgemm compare a.mtx                # race all algorithms on A·A
//! pb-spgemm verify a.mtx --reuse         # PB vs reference oracle (+ workspace reuse)
//! ```
//!
//! The argument parsing is hand-rolled (no extra dependencies) and lives in
//! this library crate so it can be unit-tested; `main.rs` is a thin wrapper.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::Instant;

use pb_baseline::Baseline;
use pb_sparse::io::{read_matrix_market, write_matrix_market};
use pb_sparse::stats::MultiplyStats;
use pb_sparse::{Coo, Csr, PlusTimes};
use pb_spgemm::SpGemm;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<pb_sparse::SparseError> for CliError {
    fn from(e: pb_sparse::SparseError) -> Self {
        CliError(e.to_string())
    }
}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// The algorithms selectable from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliAlgorithm {
    /// Telemetry-driven planner: pick the kernel per multiply.
    Auto,
    /// PB-SpGEMM (the paper's algorithm).
    Pb,
    /// HeapSpGEMM baseline.
    Heap,
    /// HashSpGEMM baseline.
    Hash,
    /// HashVecSpGEMM baseline.
    HashVec,
    /// SPA baseline.
    Spa,
}

impl CliAlgorithm {
    /// Parses an algorithm name.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s.to_ascii_lowercase().as_str() {
            "auto" | "planner" => Ok(CliAlgorithm::Auto),
            "pb" | "pb-spgemm" | "outer" => Ok(CliAlgorithm::Pb),
            "heap" => Ok(CliAlgorithm::Heap),
            "hash" => Ok(CliAlgorithm::Hash),
            "hashvec" | "hash-vec" => Ok(CliAlgorithm::HashVec),
            "spa" => Ok(CliAlgorithm::Spa),
            other => Err(err(format!(
                "unknown algorithm {other:?} (expected auto, pb, heap, hash, hashvec or spa)"
            ))),
        }
    }

    /// Builds the unified [`SpGemm`] engine this selection maps to.
    pub fn engine(&self, threads: Option<usize>) -> SpGemm {
        let engine = match self {
            CliAlgorithm::Auto => SpGemm::auto(),
            CliAlgorithm::Pb => SpGemm::pb(),
            CliAlgorithm::Heap => SpGemm::baseline(Baseline::Heap),
            CliAlgorithm::Hash => SpGemm::baseline(Baseline::Hash),
            CliAlgorithm::HashVec => SpGemm::baseline(Baseline::HashVec),
            CliAlgorithm::Spa => SpGemm::baseline(Baseline::Spa),
        };
        match threads {
            Some(t) => engine.threads(t),
            None => engine,
        }
    }

    /// Runs the selected algorithm.
    pub fn run(&self, a: &Csr<f64>, b: &Csr<f64>, threads: Option<usize>) -> Csr<f64> {
        self.engine(threads).multiply(a, b)
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CliAlgorithm::Auto => "Auto",
            CliAlgorithm::Pb => "PB-SpGEMM",
            CliAlgorithm::Heap => "HeapSpGEMM",
            CliAlgorithm::Hash => "HashSpGEMM",
            CliAlgorithm::HashVec => "HashVecSpGEMM",
            CliAlgorithm::Spa => "SpaSpGEMM",
        }
    }
}

/// Looks up the value following a `--flag` in the argument list.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

/// Whether a boolean `--flag` is present.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, CliError> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("invalid value {v:?} for {flag}"))),
    }
}

/// The usage text printed by `pb-spgemm help`.
pub fn usage() -> String {
    "pb-spgemm — sparse matrix-matrix multiplication with propagation blocking\n\
     \n\
     USAGE:\n\
     \x20 pb-spgemm generate <er|rmat|standin> [--scale S] [--edge-factor E] [--name N]\n\
     \x20                    [--seed X] --out FILE.mtx\n\
     \x20 pb-spgemm stats    A.mtx\n\
     \x20 pb-spgemm multiply A.mtx [B.mtx] [--algorithm auto|pb|heap|hash|hashvec|spa]\n\
     \x20                    [--threads T] [--out C.mtx] [--profile]\n\
     \x20 pb-spgemm compare  A.mtx [--threads T]\n\
     \x20 pb-spgemm verify   A.mtx [B.mtx] [--threads T] [--reuse]\n\
     \x20 pb-spgemm help\n"
        .to_string()
}

/// Runs the CLI with the given arguments (without the program name) and
/// returns the text to print.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    match args.first().map(|s| s.as_str()) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(usage()),
        Some("generate") => cmd_generate(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("multiply") => cmd_multiply(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some(other) => Err(err(format!("unknown command {other:?}\n\n{}", usage()))),
    }
}

fn cmd_generate(args: &[String]) -> Result<String, CliError> {
    let family = args
        .first()
        .ok_or_else(|| err("generate: missing family (er|rmat|standin)"))?;
    let out = flag_value(args, "--out").ok_or_else(|| err("generate: missing --out FILE.mtx"))?;
    let seed: u64 = parse_num(args, "--seed", 42)?;
    let matrix: Csr<f64> = match family.as_str() {
        "er" => {
            let scale: u32 = parse_num(args, "--scale", 12)?;
            let ef: u32 = parse_num(args, "--edge-factor", 8)?;
            pb_gen::erdos_renyi_square(scale, ef, seed)
        }
        "rmat" => {
            let scale: u32 = parse_num(args, "--scale", 12)?;
            let ef: u32 = parse_num(args, "--edge-factor", 8)?;
            pb_gen::rmat_square(scale, ef, seed)
        }
        "standin" => {
            let name = flag_value(args, "--name")
                .ok_or_else(|| err("generate standin: missing --name <Table VI matrix>"))?;
            let fraction: f64 = parse_num(args, "--fraction", 0.0625)?;
            pb_gen::standin_scaled(name, fraction, seed)
        }
        other => return Err(err(format!("generate: unknown family {other:?}"))),
    };
    write_matrix_market(out, &matrix.to_coo())?;
    Ok(format!(
        "wrote {} x {} matrix with {} nonzeros to {out}\n",
        matrix.nrows(),
        matrix.ncols(),
        matrix.nnz()
    ))
}

fn load(path: &str) -> Result<Csr<f64>, CliError> {
    let coo: Coo<f64> = read_matrix_market(path)?;
    Ok(coo.to_csr())
}

fn cmd_stats(args: &[String]) -> Result<String, CliError> {
    let path = args
        .first()
        .ok_or_else(|| err("stats: missing matrix file"))?;
    let a = load(path)?;
    let stats = MultiplyStats::compute(&a, &a);
    let mut out = String::new();
    let _ = writeln!(out, "matrix            : {path}");
    let _ = writeln!(out, "shape             : {} x {}", a.nrows(), a.ncols());
    let _ = writeln!(out, "nnz               : {}", a.nnz());
    let _ = writeln!(out, "avg degree        : {:.3}", a.avg_degree());
    let _ = writeln!(out, "max degree        : {}", a.max_degree());
    let _ = writeln!(out, "squaring flop     : {}", stats.flop);
    let _ = writeln!(out, "squaring nnz(C)   : {}", stats.nnz_c);
    let _ = writeln!(out, "compression factor: {:.3}", stats.cf);
    let _ = writeln!(
        out,
        "regime            : {}",
        if stats.cf < 4.0 {
            "cf < 4 (PB-SpGEMM expected to win)"
        } else {
            "cf > 4 (HashSpGEMM expected to win)"
        }
    );
    Ok(out)
}

fn cmd_multiply(args: &[String]) -> Result<String, CliError> {
    let a_path = args
        .first()
        .ok_or_else(|| err("multiply: missing matrix file"))?;
    let b_path = args.get(1).filter(|s| !s.starts_with("--"));
    let a = load(a_path)?;
    let b = match b_path {
        Some(p) => load(p)?,
        None => a.clone(),
    };
    let algorithm = CliAlgorithm::parse(flag_value(args, "--algorithm").unwrap_or("pb"))?;
    let threads = flag_value(args, "--threads")
        .map(|t| t.parse().map_err(|_| err("bad --threads")))
        .transpose()?;
    let stats = MultiplyStats::compute(&a, &b);

    let mut out = String::new();
    let profiled = matches!(algorithm, CliAlgorithm::Pb | CliAlgorithm::Auto);
    let c = if profiled && has_flag(args, "--profile") {
        let engine = algorithm.engine(threads);
        let (c, profile) = engine.multiply_with_profile::<PlusTimes<f64>>(&a, &b);
        let _ = writeln!(out, "{}", profile.summary());
        c
    } else {
        let t = Instant::now();
        let c = algorithm.run(&a, &b, threads);
        let dt = t.elapsed().as_secs_f64();
        let _ = writeln!(
            out,
            "{}: {:.1} ms, {:.0} MFLOPS",
            algorithm.name(),
            dt * 1e3,
            stats.flop as f64 / dt / 1e6
        );
        c
    };
    let _ = writeln!(
        out,
        "C: {} x {}, nnz = {}, cf = {:.3}",
        c.nrows(),
        c.ncols(),
        c.nnz(),
        stats.cf
    );
    if let Some(path) = flag_value(args, "--out") {
        write_matrix_market(path, &c.to_coo())?;
        let _ = writeln!(out, "wrote result to {path}");
    }
    Ok(out)
}

/// `pb-spgemm verify A.mtx [B.mtx] [--threads T] [--reuse]` — multiplies
/// with PB-SpGEMM and checks the product against the sequential reference
/// oracle, exiting non-zero on any mismatch.  With `--reuse` the multiply
/// runs twice through one persistent [`pb_spgemm::Workspace`]: the second
/// (buffer-reusing) product must match the first exactly, and the reuse
/// counters are reported — the CLI face of the perf-gate's reuse check.
fn cmd_verify(args: &[String]) -> Result<String, CliError> {
    let a_path = args
        .first()
        .ok_or_else(|| err("verify: missing matrix file"))?;
    let b_path = args.get(1).filter(|s| !s.starts_with("--"));
    let a = load(a_path)?;
    let b = match b_path {
        Some(p) => load(p)?,
        None => a.clone(),
    };
    let threads = flag_value(args, "--threads")
        .map(|t| t.parse().map_err(|_| err("bad --threads")))
        .transpose()?;
    let engine = CliAlgorithm::Pb.engine(threads);
    let a_csc = a.to_csc();

    let expected = pb_sparse::reference::multiply_csr(&a, &b);
    let c = engine.multiply_csc(&a_csc, &b);
    if !pb_sparse::reference::csr_approx_eq(&c, &expected, 1e-9) {
        return Err(err(format!(
            "verify: PB-SpGEMM disagrees with the reference oracle on {a_path}"
        )));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "PB-SpGEMM matches the reference oracle: nnz(C) = {}, cf = {:.3}",
        c.nnz(),
        pb_sparse::stats::MultiplyStats::compute(&a, &b).cf
    );

    if has_flag(args, "--reuse") {
        let ws = std::sync::Arc::new(pb_spgemm::Workspace::new());
        let reusing = engine.clone().workspace(ws.clone());
        let first = reusing.multiply_csc(&a_csc, &b);
        let second = reusing.multiply_csc(&a_csc, &b);
        if second.rowptr() != first.rowptr()
            || second.colidx() != first.colidx()
            || !pb_sparse::reference::csr_approx_eq(&second, &expected, 1e-9)
        {
            return Err(err(
                "verify: workspace-reusing multiply changed the product".to_string(),
            ));
        }
        if ws.total_bytes_reused() == 0 {
            return Err(err(
                "verify: the second multiply reused no workspace bytes".to_string()
            ));
        }
        let _ = writeln!(
            out,
            "workspace reuse OK: {} bytes reused, {} allocated, {} hits over 2 multiplies",
            ws.total_bytes_reused(),
            ws.total_bytes_allocated(),
            ws.total_hits(),
        );
    }
    Ok(out)
}

fn cmd_compare(args: &[String]) -> Result<String, CliError> {
    let a_path = args
        .first()
        .ok_or_else(|| err("compare: missing matrix file"))?;
    let a = load(a_path)?;
    let threads = flag_value(args, "--threads")
        .map(|t| t.parse().map_err(|_| err("bad --threads")))
        .transpose()?;
    let stats = MultiplyStats::compute(&a, &a);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "squaring {a_path}: flop = {}, nnz(C) = {}, cf = {:.2}",
        stats.flop, stats.nnz_c, stats.cf
    );
    for algo in [
        CliAlgorithm::Pb,
        CliAlgorithm::Heap,
        CliAlgorithm::Hash,
        CliAlgorithm::HashVec,
        CliAlgorithm::Spa,
        CliAlgorithm::Auto,
    ] {
        let t = Instant::now();
        let c = algo.run(&a, &a, threads);
        let dt = t.elapsed().as_secs_f64();
        let _ = writeln!(
            out,
            "{:>15}: {:9.1} ms   {:8.0} MFLOPS   nnz(C) = {}",
            algo.name(),
            dt * 1e3,
            stats.flop as f64 / dt / 1e6,
            c.nnz()
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("pb_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_cli(&[]).unwrap().contains("USAGE"));
        assert!(run_cli(&strs(&["help"])).unwrap().contains("generate"));
        let e = run_cli(&strs(&["frobnicate"])).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
    }

    #[test]
    fn algorithm_parsing() {
        assert_eq!(CliAlgorithm::parse("pb").unwrap(), CliAlgorithm::Pb);
        assert_eq!(CliAlgorithm::parse("auto").unwrap(), CliAlgorithm::Auto);
        assert_eq!(CliAlgorithm::parse("planner").unwrap(), CliAlgorithm::Auto);
        assert_eq!(
            CliAlgorithm::parse("HASHVEC").unwrap(),
            CliAlgorithm::HashVec
        );
        assert!(CliAlgorithm::parse("quantum").is_err());
    }

    #[test]
    fn flag_helpers() {
        let args = strs(&["--scale", "14", "--profile"]);
        assert_eq!(flag_value(&args, "--scale"), Some("14"));
        assert_eq!(flag_value(&args, "--missing"), None);
        assert!(has_flag(&args, "--profile"));
        assert!(!has_flag(&args, "--quiet"));
    }

    #[test]
    fn generate_stats_multiply_compare_roundtrip() {
        let mtx = temp_path("roundtrip_er.mtx");
        let out = run_cli(&strs(&[
            "generate",
            "er",
            "--scale",
            "7",
            "--edge-factor",
            "4",
            "--seed",
            "3",
            "--out",
            &mtx,
        ]))
        .unwrap();
        assert!(out.contains("128 x 128"));

        let stats = run_cli(&strs(&["stats", &mtx])).unwrap();
        assert!(stats.contains("compression factor"));
        assert!(stats.contains("PB-SpGEMM expected to win"));

        let c_path = temp_path("roundtrip_c.mtx");
        for algo in ["pb", "heap", "hash", "hashvec", "spa", "auto"] {
            let out = run_cli(&strs(&[
                "multiply",
                &mtx,
                "--algorithm",
                algo,
                "--out",
                &c_path,
            ]))
            .unwrap();
            assert!(
                out.contains("MFLOPS"),
                "{algo} output missing MFLOPS: {out}"
            );
            assert!(out.contains("wrote result"));
        }
        // The written product re-loads and matches the in-process product.
        let a = load(&mtx).unwrap();
        let c = load(&c_path).unwrap();
        let expected = pb_sparse::reference::multiply_csr(&a, &a);
        assert_eq!(c.nnz(), expected.nnz());

        let cmp = run_cli(&strs(&["compare", &mtx, "--threads", "1"])).unwrap();
        assert!(cmp.contains("HeapSpGEMM") && cmp.contains("PB-SpGEMM"));

        let profiled =
            run_cli(&strs(&["multiply", &mtx, "--algorithm", "pb", "--profile"])).unwrap();
        assert!(profiled.contains("nbins="));
    }

    #[test]
    fn verify_reports_oracle_agreement_and_workspace_reuse() {
        let mtx = temp_path("verify_er.mtx");
        run_cli(&strs(&[
            "generate",
            "er",
            "--scale",
            "7",
            "--edge-factor",
            "4",
            "--out",
            &mtx,
        ]))
        .unwrap();
        let out = run_cli(&strs(&["verify", &mtx])).unwrap();
        assert!(out.contains("matches the reference oracle"));
        let out = run_cli(&strs(&["verify", &mtx, "--reuse"])).unwrap();
        assert!(out.contains("workspace reuse OK"));
        assert!(out.contains("bytes reused"));
        // Usage and error paths.
        assert!(run_cli(&strs(&["verify"])).is_err());
        assert!(run_cli(&strs(&["verify", "/nonexistent.mtx"])).is_err());
    }

    #[test]
    fn generate_standin_and_rmat() {
        let mtx = temp_path("standin.mtx");
        let out = run_cli(&strs(&[
            "generate",
            "standin",
            "--name",
            "scircuit",
            "--fraction",
            "0.005",
            "--out",
            &mtx,
        ]))
        .unwrap();
        assert!(out.contains("wrote"));
        let rmat = temp_path("rmat.mtx");
        run_cli(&strs(&["generate", "rmat", "--scale", "7", "--out", &rmat])).unwrap();
        assert!(run_cli(&strs(&["stats", &rmat]))
            .unwrap()
            .contains("avg degree"));
    }

    #[test]
    fn error_paths_are_reported() {
        assert!(
            run_cli(&strs(&["generate", "er"])).is_err(),
            "missing --out must fail"
        );
        assert!(run_cli(&strs(&["generate", "cube", "--out", "/tmp/x.mtx"])).is_err());
        assert!(run_cli(&strs(&["stats"])).is_err());
        assert!(run_cli(&strs(&["stats", "/nonexistent/file.mtx"])).is_err());
        assert!(run_cli(&strs(&["multiply", "/nonexistent/file.mtx"])).is_err());
        let mtx = temp_path("err_algo.mtx");
        run_cli(&strs(&["generate", "er", "--scale", "6", "--out", &mtx])).unwrap();
        assert!(run_cli(&strs(&["multiply", &mtx, "--algorithm", "quantum"])).is_err());
        assert!(run_cli(&strs(&["generate", "er", "--scale", "bad", "--out", &mtx])).is_err());
    }
}
