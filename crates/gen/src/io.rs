//! Unified matrix input — files and generators behind one trait.
//!
//! Every entry point that consumes a matrix (CLI subcommands, the serve
//! `load`/`gen` ops, the bench corpus builders) historically hard-coded its
//! input kind: Matrix Market text here, an R-MAT generator call there.  This
//! module puts the three kinds behind one [`MatrixSource`] trait:
//!
//! * [`MatrixMarketSource`] — `.mtx` text files (pattern/real/integer ×
//!   general/symmetric/skew-symmetric), via [`pb_sparse::io`];
//! * [`BinarySource`] — the versioned `PBSM` binary format, memory-mapped
//!   zero-copy for version-2 files ([`pb_sparse::binfmt::MappedCsr`]) with a
//!   transparent copying fallback for legacy version-1 files;
//! * [`GeneratorSource`] — the deterministic R-MAT / Erdős–Rényi /
//!   stand-in generators, addressed by a compact spec string.
//!
//! [`open_source`] dispatches a spec string to the right implementation:
//! paths by extension (`.mtx` → Matrix Market, `.pbsm`/`.bin` → binary),
//! generator specs by prefix:
//!
//! ```text
//! rmat:scale=8,edge_factor=8,seed=42
//! er:scale=10,edge_factor=6,seed=7
//! standin:name=wb-edu,fraction=0.05,seed=42
//! ```
//!
//! Every failure is a typed [`SparseError`] — a malformed file, a truncated
//! header, an unknown generator family or stand-in name never panics.

use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

use pb_sparse::binfmt::{self, MappedCsr};
use pb_sparse::io::read_matrix_market;
use pb_sparse::{Csr, SparseError};

fn spec_err(detail: impl Into<String>) -> SparseError {
    SparseError::Spec {
        detail: detail.into(),
    }
}

/// One place a matrix can come from: a file on disk or a deterministic
/// generator.  Implementations are cheap to construct — nothing is read or
/// generated until [`MatrixSource::load`].
pub trait MatrixSource: fmt::Debug + Send + Sync {
    /// Loads (or generates) the matrix as CSR.
    fn load(&self) -> Result<Csr<f64>, SparseError>;

    /// A short human-readable description (shown in CLI output and serve
    /// responses).
    fn describe(&self) -> String;

    /// A cheap estimate of the loaded matrix's resident CSR bytes, derived
    /// from the file header or the generator parameters alone — used for
    /// admission/budget checks *before* committing to a full load.
    fn estimated_bytes(&self) -> Result<u64, SparseError>;
}

fn csr_bytes(nrows: usize, nnz: usize) -> u64 {
    ((nrows + 1) * 8 + nnz * (4 + 8)) as u64
}

// ---------------------------------------------------------------------------
// Matrix Market files
// ---------------------------------------------------------------------------

/// A Matrix Market (`.mtx`) text file.
#[derive(Debug, Clone)]
pub struct MatrixMarketSource {
    path: PathBuf,
}

impl MatrixMarketSource {
    /// Wraps `path` (not opened until [`MatrixSource::load`]).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        MatrixMarketSource { path: path.into() }
    }

    /// The wrapped path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl MatrixSource for MatrixMarketSource {
    fn load(&self) -> Result<Csr<f64>, SparseError> {
        Ok(read_matrix_market(&self.path)?.to_csr())
    }

    fn describe(&self) -> String {
        format!("matrix-market:{}", self.path.display())
    }

    fn estimated_bytes(&self) -> Result<u64, SparseError> {
        // Parse only the header and size line; a symmetric file may expand
        // to up to twice its declared entry count.
        let file = File::open(&self.path).map_err(SparseError::from)?;
        let reader = BufReader::new(file);
        let mut symmetric = false;
        for (i, line) in reader.lines().enumerate() {
            let line = line.map_err(SparseError::from)?;
            let trimmed = line.trim();
            if i == 0 {
                symmetric = trimmed.to_ascii_lowercase().contains("symmetric");
                continue;
            }
            if trimmed.is_empty() || trimmed.starts_with('%') {
                continue;
            }
            let mut it = trimmed.split_whitespace();
            let nrows: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| spec_err(format!("{}: malformed size line", self.path.display())))?;
            let nnz: usize = it
                .nth(1)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| spec_err(format!("{}: malformed size line", self.path.display())))?;
            let factor = if symmetric { 2 } else { 1 };
            return Ok(csr_bytes(nrows, nnz.saturating_mul(factor)));
        }
        Err(spec_err(format!(
            "{}: no size line found",
            self.path.display()
        )))
    }
}

// ---------------------------------------------------------------------------
// Binary (PBSM) files
// ---------------------------------------------------------------------------

/// A `PBSM` binary file (see [`pb_sparse::binfmt`]).
///
/// Version-2 files are memory-mapped and decoded zero-copy; legacy
/// version-1 files fall back to the streaming copy reader transparently.
#[derive(Debug, Clone)]
pub struct BinarySource {
    path: PathBuf,
}

impl BinarySource {
    /// Wraps `path` (not opened until [`MatrixSource::load`]).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        BinarySource { path: path.into() }
    }

    /// The wrapped path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Opens the file as a zero-copy mapped view (version-2 files only).
    pub fn map(&self) -> Result<MappedCsr<f64>, SparseError> {
        MappedCsr::open(&self.path)
    }
}

impl MatrixSource for BinarySource {
    fn load(&self) -> Result<Csr<f64>, SparseError> {
        let (version, _, _, _, _) = binfmt::peek_header(&self.path)?;
        if version == binfmt::LEGACY_VERSION {
            return binfmt::read_csr(&self.path);
        }
        MappedCsr::<f64>::open(&self.path)?.to_csr()
    }

    fn describe(&self) -> String {
        format!("binary:{}", self.path.display())
    }

    fn estimated_bytes(&self) -> Result<u64, SparseError> {
        let (_, _, nrows, _, nnz) = binfmt::peek_header(&self.path)?;
        Ok(csr_bytes(nrows, nnz))
    }
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// The generator family named by a spec string.
#[derive(Debug, Clone, PartialEq)]
pub enum GenFamily {
    /// Graph500 R-MAT (`rmat:`).
    Rmat,
    /// Erdős–Rényi (`er:`).
    ErdosRenyi,
    /// A Table VI SuiteSparse stand-in by name (`standin:`).
    Standin(String),
}

/// A parsed generator specification.
#[derive(Debug, Clone, PartialEq)]
pub struct GenSpec {
    /// Which generator to run.
    pub family: GenFamily,
    /// log2 of the matrix dimension (R-MAT / ER).
    pub scale: u32,
    /// Average nonzeros per row/column (R-MAT / ER).
    pub edge_factor: u32,
    /// Generator seed.
    pub seed: u64,
    /// Dimension fraction of the original matrix (stand-ins).
    pub fraction: f64,
}

impl GenSpec {
    /// Parses the part after the family prefix: comma-separated `key=value`
    /// pairs.
    fn parse(family: &str, params: &str) -> Result<GenSpec, SparseError> {
        let mut spec = GenSpec {
            family: match family {
                "rmat" => GenFamily::Rmat,
                "er" => GenFamily::ErdosRenyi,
                "standin" => GenFamily::Standin(String::new()),
                other => {
                    return Err(spec_err(format!(
                        "unknown generator family {other:?} (expected rmat, er or standin)"
                    )))
                }
            },
            scale: 0,
            edge_factor: 8,
            seed: 42,
            fraction: 1.0,
        };
        let mut have_scale = false;
        for pair in params.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| spec_err(format!("expected key=value, got {pair:?}")))?;
            let bad = |what: &str| spec_err(format!("invalid {what} {value:?} in {pair:?}"));
            match key {
                "scale" => {
                    spec.scale = value.parse().map_err(|_| bad("scale"))?;
                    have_scale = true;
                }
                "edge_factor" | "edge-factor" => {
                    spec.edge_factor = value.parse().map_err(|_| bad("edge factor"))?;
                }
                "seed" => spec.seed = value.parse().map_err(|_| bad("seed"))?,
                "fraction" => spec.fraction = value.parse().map_err(|_| bad("fraction"))?,
                "name" => {
                    if let GenFamily::Standin(name) = &mut spec.family {
                        *name = value.to_string();
                    } else {
                        return Err(spec_err(format!(
                            "key {key:?} only applies to standin: specs"
                        )));
                    }
                }
                other => return Err(spec_err(format!("unknown generator key {other:?}"))),
            }
        }
        match &spec.family {
            GenFamily::Standin(name) if crate::standins::spec(name).is_none() => {
                return Err(spec_err(format!(
                    "unknown stand-in matrix {name:?} (see standin_names())"
                )));
            }
            GenFamily::Standin(_) => {}
            _ if !have_scale => {
                return Err(spec_err(format!(
                    "{family}: specs require scale=<log2 dim>"
                )))
            }
            _ if spec.scale > 30 => {
                return Err(spec_err(format!(
                    "scale {} is out of range (max 30)",
                    spec.scale
                )))
            }
            _ => {}
        }
        Ok(spec)
    }
}

/// A deterministic generator behind the [`MatrixSource`] trait.
#[derive(Debug, Clone)]
pub struct GeneratorSource {
    spec: GenSpec,
}

impl GeneratorSource {
    /// Wraps a parsed spec.
    pub fn new(spec: GenSpec) -> Self {
        GeneratorSource { spec }
    }

    /// The wrapped spec.
    pub fn spec(&self) -> &GenSpec {
        &self.spec
    }
}

impl MatrixSource for GeneratorSource {
    fn load(&self) -> Result<Csr<f64>, SparseError> {
        let s = &self.spec;
        Ok(match &s.family {
            GenFamily::Rmat => crate::rmat_square(s.scale, s.edge_factor, s.seed),
            GenFamily::ErdosRenyi => crate::erdos_renyi_square(s.scale, s.edge_factor, s.seed),
            // The name was validated at parse time, so this cannot panic.
            GenFamily::Standin(name) => crate::standin_scaled(name, s.fraction, s.seed),
        })
    }

    fn describe(&self) -> String {
        let s = &self.spec;
        match &s.family {
            GenFamily::Rmat => format!(
                "rmat:scale={},edge_factor={},seed={}",
                s.scale, s.edge_factor, s.seed
            ),
            GenFamily::ErdosRenyi => format!(
                "er:scale={},edge_factor={},seed={}",
                s.scale, s.edge_factor, s.seed
            ),
            GenFamily::Standin(name) => format!(
                "standin:name={},fraction={},seed={}",
                name, s.fraction, s.seed
            ),
        }
    }

    fn estimated_bytes(&self) -> Result<u64, SparseError> {
        let s = &self.spec;
        Ok(match &s.family {
            GenFamily::Rmat | GenFamily::ErdosRenyi => {
                let dim = 1usize << s.scale;
                csr_bytes(dim, dim.saturating_mul(s.edge_factor as usize))
            }
            GenFamily::Standin(name) => {
                let spec = crate::standins::spec(name)
                    .ok_or_else(|| spec_err(format!("unknown stand-in matrix {name:?}")))?;
                let fraction = s.fraction.clamp(1e-6, 1.0);
                let nrows = ((spec.nrows as f64 * fraction) as usize).max(64);
                let nnz = (spec.nnz as f64 * fraction) as usize;
                csr_bytes(nrows, nnz)
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Whether `spec` names a generator (as opposed to a file path).
pub fn is_generator_spec(spec: &str) -> bool {
    ["rmat:", "er:", "standin:"]
        .iter()
        .any(|p| spec.starts_with(p))
}

/// Opens a matrix source from a spec string: a generator spec
/// (`rmat:…`/`er:…`/`standin:…`) or a file path dispatched by extension
/// (`.mtx` → Matrix Market, `.pbsm`/`.bin` → PBSM binary).
pub fn open_source(spec: &str) -> Result<Box<dyn MatrixSource>, SparseError> {
    if let Some((family, params)) = spec.split_once(':') {
        if matches!(family, "rmat" | "er" | "standin") {
            return Ok(Box::new(GeneratorSource::new(GenSpec::parse(
                family, params,
            )?)));
        }
    }
    let path = Path::new(spec);
    match path.extension().and_then(|e| e.to_str()) {
        Some("mtx") => Ok(Box::new(MatrixMarketSource::new(path))),
        Some("pbsm") | Some("bin") => Ok(Box::new(BinarySource::new(path))),
        _ => Err(spec_err(format!(
            "unrecognised matrix spec {spec:?}: expected a .mtx/.pbsm/.bin path \
             or a rmat:/er:/standin: generator spec"
        ))),
    }
}

/// Convenience: [`open_source`] followed by [`MatrixSource::load`].
pub fn load_matrix(spec: &str) -> Result<Csr<f64>, SparseError> {
    open_source(spec)?.load()
}

/// Writes `m` to `path`, choosing the format by extension (`.mtx` Matrix
/// Market text, `.pbsm`/`.bin` PBSM binary v2).
pub fn save_matrix(path: impl AsRef<Path>, m: &Csr<f64>) -> Result<(), SparseError> {
    let path = path.as_ref();
    match path.extension().and_then(|e| e.to_str()) {
        Some("mtx") => pb_sparse::io::write_matrix_market(path, &m.to_coo()),
        Some("pbsm") | Some("bin") => binfmt::write_csr(path, m),
        _ => Err(spec_err(format!(
            "unrecognised output extension on {:?}: expected .mtx, .pbsm or .bin",
            path.display()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pb_gen_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}_{}", std::process::id(), name))
    }

    #[test]
    fn generator_spec_parses_and_loads() {
        let src = open_source("rmat:scale=5,edge_factor=4,seed=7").unwrap();
        let m = src.load().unwrap();
        assert_eq!(m.nrows(), 32);
        assert_eq!(m, crate::rmat_square(5, 4, 7));
        assert!(src.describe().starts_with("rmat:"));
        assert!(src.estimated_bytes().unwrap() > 0);
    }

    #[test]
    fn er_spec_with_defaults() {
        let src = open_source("er:scale=4").unwrap();
        let m = src.load().unwrap();
        assert_eq!(m, crate::erdos_renyi_square(4, 8, 42));
    }

    #[test]
    fn standin_spec_round_trips() {
        let name = crate::standin_names()[0];
        let spec = format!("standin:name={name},fraction=0.01,seed=3");
        let src = open_source(&spec).unwrap();
        let m = src.load().unwrap();
        assert_eq!(m, crate::standin_scaled(name, 0.01, 3));
    }

    #[test]
    fn bad_specs_are_typed_errors() {
        for bad in [
            "rmat:edge_factor=4",          // missing scale
            "rmat:scale=99",               // out of range
            "rmat:scale=abc",              // not a number
            "rmat:scale",                  // not key=value
            "rmat:scale=5,bogus=1",        // unknown key
            "er:scale=5,name=x",           // name on a non-standin
            "standin:name=no-such-matrix", // unknown stand-in
            "weird:scale=5",               // unknown family treated as path
            "plainfile.xyz",               // unknown extension
        ] {
            let err = open_source(bad).unwrap_err();
            assert!(
                matches!(err, SparseError::Spec { .. }),
                "{bad:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn file_sources_dispatch_by_extension() {
        let m = crate::rmat_square(4, 4, 1);

        let mtx = temp_path("dispatch.mtx");
        save_matrix(&mtx, &m).unwrap();
        let back = load_matrix(mtx.to_str().unwrap()).unwrap();
        assert_eq!(back.colidx(), m.colidx());

        let pbsm = temp_path("dispatch.pbsm");
        save_matrix(&pbsm, &m).unwrap();
        let back = load_matrix(pbsm.to_str().unwrap()).unwrap();
        assert_eq!(back.rowptr(), m.rowptr());
        assert_eq!(back.colidx(), m.colidx());
        assert_eq!(back.values(), m.values());

        std::fs::remove_file(&mtx).ok();
        std::fs::remove_file(&pbsm).ok();
    }

    #[test]
    fn estimated_bytes_is_cheap_and_sane() {
        let m = crate::rmat_square(5, 4, 9);
        let pbsm = temp_path("estimate.pbsm");
        save_matrix(&pbsm, &m).unwrap();
        let src = open_source(pbsm.to_str().unwrap()).unwrap();
        let est = src.estimated_bytes().unwrap();
        let actual = csr_bytes(m.nrows(), m.nnz());
        assert_eq!(est, actual);

        let mtx = temp_path("estimate.mtx");
        save_matrix(&mtx, &m).unwrap();
        let src = open_source(mtx.to_str().unwrap()).unwrap();
        // The text estimate must be within 2x of the real resident size.
        let est = src.estimated_bytes().unwrap();
        assert!(est >= actual && est <= actual * 2, "est {est} vs {actual}");

        std::fs::remove_file(&pbsm).ok();
        std::fs::remove_file(&mtx).ok();
    }

    #[test]
    fn missing_files_are_typed_errors() {
        let src = open_source("/no/such/file.mtx").unwrap();
        assert!(matches!(src.load().unwrap_err(), SparseError::Io(_)));
        let src = open_source("/no/such/file.pbsm").unwrap();
        assert!(matches!(src.load().unwrap_err(), SparseError::Io(_)));
    }
}
