//! Algebraic multigrid (AMG) setup: aggregation coarsening and the Galerkin
//! triple product.
//!
//! The Galerkin coarse-grid operator `A_c = Pᵀ·A·P` is the canonical
//! scientific-computing use of SpGEMM (Ballard, Siefert, Hu — reference \[6\]
//! of the paper): every AMG setup phase performs a chain of sparse
//! matrix–matrix products.  This module provides a simple greedy aggregation
//! coarsening (good enough to generate realistic `P` operators) and the
//! triple product itself, parameterised by the SpGEMM engine.

use pb_sparse::{Coo, Csr};

use pb_spgemm::SpGemm;

/// One level of an AMG hierarchy: the piecewise-constant prolongation matrix
/// and the Galerkin coarse operator it produces.
#[derive(Debug, Clone, PartialEq)]
pub struct AmgLevel {
    /// Prolongation operator `P` (`n_fine × n_coarse`, one unit entry per row).
    pub prolongation: Csr<f64>,
    /// Coarse-grid operator `Pᵀ·A·P`.
    pub coarse: Csr<f64>,
}

impl AmgLevel {
    /// Number of fine-grid unknowns.
    pub fn fine_size(&self) -> usize {
        self.prolongation.nrows()
    }

    /// Number of coarse-grid unknowns.
    pub fn coarse_size(&self) -> usize {
        self.prolongation.ncols()
    }

    /// Coarsening ratio `n_fine / n_coarse`.
    pub fn coarsening_ratio(&self) -> f64 {
        self.fine_size() as f64 / self.coarse_size().max(1) as f64
    }
}

/// Greedy aggregation coarsening.
///
/// Vertices are visited in order; every still-unaggregated vertex seeds a new
/// aggregate together with its unaggregated strongly-connected neighbours
/// (here: every stored off-diagonal neighbour).  Leftover vertices join the
/// aggregate of an already-aggregated neighbour, or become singletons.
///
/// Returns the piecewise-constant prolongation matrix `P` with
/// `P(i, aggregate(i)) = 1`.
pub fn aggregate_coarsening(a: &Csr<f64>) -> Csr<f64> {
    assert_eq!(a.nrows(), a.ncols(), "coarsening needs a square operator");
    let n = a.nrows();
    let mut aggregate: Vec<Option<usize>> = vec![None; n];
    let mut next_aggregate = 0usize;

    // Pass 1: seed aggregates from unaggregated vertices and their
    // unaggregated neighbours.
    for i in 0..n {
        if aggregate[i].is_some() {
            continue;
        }
        aggregate[i] = Some(next_aggregate);
        for &j in a.row(i).0 {
            let j = j as usize;
            if j != i && aggregate[j].is_none() {
                aggregate[j] = Some(next_aggregate);
            }
        }
        next_aggregate += 1;
    }

    // Pass 2 is unnecessary with this seeding rule (every vertex is assigned
    // in pass 1), but keep a defensive sweep for isolated vertices.
    for agg in aggregate.iter_mut() {
        if agg.is_none() {
            *agg = Some(next_aggregate);
            next_aggregate += 1;
        }
    }

    let entries: Vec<(usize, usize, f64)> = aggregate
        .iter()
        .enumerate()
        .map(|(i, agg)| (i, agg.expect("all vertices are aggregated"), 1.0))
        .collect();
    Coo::from_entries(n, next_aggregate.max(1), entries)
        .expect("aggregate ids are dense and in bounds")
        .to_csr()
}

/// The Galerkin triple product `Pᵀ·A·P`, computed as two SpGEMMs with the
/// given engine.
pub fn galerkin_product(a: &Csr<f64>, p: &Csr<f64>, engine: &SpGemm) -> Csr<f64> {
    assert_eq!(a.nrows(), a.ncols(), "the fine operator must be square");
    assert_eq!(
        a.ncols(),
        p.nrows(),
        "P must map coarse unknowns to fine unknowns"
    );
    let ap = engine.multiply(a, p);
    let pt = p.transpose();
    engine.multiply(&pt, &ap)
}

/// Builds one coarsening level: aggregates the fine operator and forms the
/// Galerkin coarse operator.
pub fn coarsen(a: &Csr<f64>, engine: &SpGemm) -> AmgLevel {
    let prolongation = aggregate_coarsening(a);
    let coarse = galerkin_product(a, &prolongation, engine);
    AmgLevel {
        prolongation,
        coarse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::erdos_renyi_square;
    use pb_sparse::{ops, reference};

    /// 1-D Poisson operator: tridiag(-1, 2, -1).
    fn laplacian_1d(n: usize) -> Csr<f64> {
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i, 2.0));
            if i + 1 < n {
                entries.push((i, i + 1, -1.0));
                entries.push((i + 1, i, -1.0));
            }
        }
        Coo::from_entries(n, n, entries).unwrap().to_csr()
    }

    #[test]
    fn prolongation_is_a_partition() {
        let a = laplacian_1d(20);
        let p = aggregate_coarsening(&a);
        assert_eq!(p.nrows(), 20);
        assert!(p.ncols() < 20, "coarsening must reduce the problem size");
        // Exactly one unit entry per fine row.
        for i in 0..p.nrows() {
            assert_eq!(p.row_nnz(i), 1, "row {i}");
            assert_eq!(p.row(i).1, &[1.0]);
        }
        // Every aggregate is non-empty.
        let col_counts = ops::col_sums(&p);
        assert!(col_counts.iter().all(|&c| c >= 1.0));
    }

    #[test]
    fn galerkin_operator_matches_the_dense_reference() {
        let a = laplacian_1d(16);
        let p = aggregate_coarsening(&a);
        let engine = SpGemm::pb();
        let coarse = galerkin_product(&a, &p, &engine);
        let expected = reference::multiply_csr(&p.transpose(), &reference::multiply_csr(&a, &p));
        assert!(reference::csr_approx_eq(&coarse, &expected, 1e-9));
    }

    #[test]
    fn laplacian_structure_is_preserved_on_the_coarse_grid() {
        let a = laplacian_1d(64);
        let level = coarsen(&a, &SpGemm::pb());
        let coarse = &level.coarse;
        assert!(level.coarse_size() < level.fine_size());
        assert!(level.coarsening_ratio() >= 2.0);
        // The Galerkin operator of a symmetric fine operator is symmetric.
        assert!(ops::pattern_is_symmetric(coarse));
        let diff = ops::add(&coarse.map_values(|v| -v), &coarse.transpose());
        assert!(
            ops::max_abs(&diff) < 1e-9,
            "coarse operator must stay numerically symmetric"
        );
        // A 1-D Laplacian has zero row sums except at the two boundary rows;
        // piecewise-constant aggregation preserves that null-space property.
        let row_sums = ops::row_sums(coarse);
        let interior_nonzero = row_sums[1..row_sums.len() - 1]
            .iter()
            .filter(|s| s.abs() > 1e-9)
            .count();
        assert_eq!(
            interior_nonzero, 0,
            "interior row sums must vanish: {row_sums:?}"
        );
    }

    #[test]
    fn all_engines_build_the_same_coarse_operator() {
        let a = {
            // Symmetrise a random sparse matrix to make it operator-like.
            let r = erdos_renyi_square(6, 4, 31);
            ops::add(&r, &r.transpose())
        };
        let p = aggregate_coarsening(&a);
        let reference_coarse = galerkin_product(&a, &p, &SpGemm::reference());
        for engine in SpGemm::paper_set() {
            let coarse = galerkin_product(&a, &p, &engine);
            assert!(
                reference::csr_approx_eq(&coarse, &reference_coarse, 1e-9),
                "{} disagrees",
                engine.name()
            );
        }
    }

    #[test]
    fn repeated_coarsening_shrinks_to_a_handful_of_unknowns() {
        let mut current = laplacian_1d(200);
        let mut sizes = vec![current.nrows()];
        for _ in 0..6 {
            if current.nrows() <= 4 {
                break;
            }
            let level = coarsen(&current, &SpGemm::pb());
            sizes.push(level.coarse_size());
            current = level.coarse;
        }
        assert!(
            sizes.windows(2).all(|w| w[1] < w[0]),
            "sizes must strictly decrease: {sizes:?}"
        );
        assert!(*sizes.last().unwrap() <= 10);
    }

    #[test]
    fn isolated_vertices_become_singleton_aggregates() {
        let a = Coo::from_entries(3, 3, vec![(0, 1, 1.0), (1, 0, 1.0)])
            .unwrap()
            .to_csr();
        let p = aggregate_coarsening(&a);
        assert_eq!(p.ncols(), 2);
        assert_eq!(p.get(2, 1), Some(1.0));
    }
}
