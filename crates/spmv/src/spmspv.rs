//! Sparse-matrix × sparse-vector multiplication (SpMSpV).
//!
//! When the input vector has few nonzeros — a BFS frontier, the candidate set
//! of a traversal — only the matrix columns selected by those nonzeros
//! contribute to the output, so the kernel gathers a handful of columns from
//! the CSC representation instead of touching the whole matrix.  The output
//! is again sparse.
//!
//! This is the push-style frontier-advance primitive used by the multi-source
//! BFS and betweenness-centrality kernels in `pb-graph`.

use pb_sparse::semiring::{Numeric, PlusTimes, Semiring};
use pb_sparse::vector::SparseVec;
use pb_sparse::Csc;
use rayon::prelude::*;

/// Computes the sparse vector `y = A·x` under a semiring, with `A` in CSC and
/// `x` sparse.
///
/// Internally uses a dense accumulator over the output rows (the SPA
/// formulation), which is the right trade-off for the moderate dimensions the
/// examples use; the accumulator is merged across threads per-row-block.
pub fn spmspv_with<S: Semiring>(a: &Csc<S::Elem>, x: &SparseVec<S::Elem>) -> SparseVec<S::Elem> {
    assert_eq!(
        x.len(),
        a.ncols(),
        "x must have logical length equal to the matrix column count"
    );
    let nrows = a.nrows();
    if nrows == 0 || x.nnz() == 0 {
        return SparseVec::zeros(nrows);
    }

    // Gather the selected columns in parallel, accumulating into per-thread
    // (value, touched) accumulators that are merged pairwise.
    let (vals, touched) = x
        .iter()
        .collect::<Vec<_>>()
        .into_par_iter()
        .fold(
            || (vec![S::zero(); nrows], vec![false; nrows]),
            |(mut acc, mut touched), (j, xj)| {
                let (rows, a_vals) = a.col(j as usize);
                for (&r, &v) in rows.iter().zip(a_vals) {
                    let r = r as usize;
                    acc[r] = S::add(acc[r], S::mul(v, xj));
                    touched[r] = true;
                }
                (acc, touched)
            },
        )
        .reduce(
            || (vec![S::zero(); nrows], vec![false; nrows]),
            |(mut acc, mut touched), (acc2, touched2)| {
                for i in 0..nrows {
                    if touched2[i] {
                        acc[i] = if touched[i] {
                            S::add(acc[i], acc2[i])
                        } else {
                            acc2[i]
                        };
                        touched[i] = true;
                    }
                }
                (acc, touched)
            },
        );

    let mut entries: Vec<(usize, S::Elem)> = Vec::new();
    for i in 0..nrows {
        if touched[i] {
            entries.push((i, vals[i]));
        }
    }
    SparseVec::from_entries_with::<S>(nrows, entries)
        .expect("indices come from matrix rows, so they are in bounds")
}

/// Computes the sparse vector `y = A·x` with ordinary `+`/`×`.
pub fn spmspv<T: Numeric>(a: &Csc<T>, x: &SparseVec<T>) -> SparseVec<T> {
    spmspv_with::<PlusTimes<T>>(a, x)
}

/// Computes `y = A·x` and removes from the result every position stored in
/// `mask` — the "discovered set" filter of BFS-style traversals.
pub fn spmspv_masked_with<S: Semiring, M: pb_sparse::Scalar>(
    a: &Csc<S::Elem>,
    x: &SparseVec<S::Elem>,
    mask: &SparseVec<M>,
) -> SparseVec<S::Elem> {
    assert_eq!(
        mask.len(),
        a.nrows(),
        "mask must have logical length equal to the matrix row count"
    );
    let y = spmspv_with::<S>(a, x);
    y.filter(|i, _| mask.get(i as usize).is_none())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::csr_spmv;
    use pb_gen::rmat_square;
    use pb_sparse::semiring::OrAnd;
    use pb_sparse::{Coo, Csr};

    #[test]
    fn matches_dense_spmv_on_the_stored_pattern() {
        let a = rmat_square(7, 5, 33);
        let a_csc = a.to_csc();
        let x_sparse =
            SparseVec::from_entries(a.ncols(), vec![(3, 2.0), (17, -1.0), (64, 0.5)]).unwrap();
        let x_dense = x_sparse.to_dense(0.0);
        let y_sparse = spmspv(&a_csc, &x_sparse);
        let y_dense = csr_spmv(&a, &x_dense);
        for (i, &dense) in y_dense.iter().enumerate() {
            let s = y_sparse.get(i).unwrap_or(0.0);
            assert!((s - dense).abs() < 1e-9, "row {i}");
        }
        // Every stored output row must have been touched by a selected column.
        assert!(y_sparse.nnz() <= a.nnz());
    }

    #[test]
    fn empty_frontier_gives_empty_output() {
        let a = rmat_square(6, 4, 1).to_csc();
        let x = SparseVec::<f64>::zeros(a.ncols());
        assert_eq!(spmspv(&a, &x).nnz(), 0);
    }

    #[test]
    fn boolean_frontier_advance() {
        // 0 -> 1 -> 2 -> 3 path graph (edge (u, v) stored as A(v, u) so that
        // A·x pushes the frontier forward).
        let a: Csr<bool> = Coo::from_entries(4, 4, vec![(1, 0, true), (2, 1, true), (3, 2, true)])
            .unwrap()
            .to_csr_with::<OrAnd>();
        let a_csc = a.to_csc();
        let mut frontier = SparseVec::from_entries_with::<OrAnd>(4, vec![(0, true)]).unwrap();
        let mut order = Vec::new();
        for _ in 0..3 {
            frontier = spmspv_with::<OrAnd>(&a_csc, &frontier);
            order.push(frontier.indices().to_vec());
        }
        assert_eq!(order, vec![vec![1], vec![2], vec![3]]);
    }

    #[test]
    fn mask_removes_already_visited_rows() {
        let a: Csr<f64> = Coo::from_entries(3, 3, vec![(0, 0, 1.0), (1, 0, 1.0), (2, 0, 1.0)])
            .unwrap()
            .to_csr();
        let x = SparseVec::from_entries(3, vec![(0, 1.0)]).unwrap();
        let visited = SparseVec::from_entries(3, vec![(1, 1.0)]).unwrap();
        let y = spmspv_masked_with::<PlusTimes<f64>, f64>(&a.to_csc(), &x, &visited);
        assert_eq!(y.indices(), &[0, 2]);
    }

    #[test]
    fn duplicate_accumulation_across_columns() {
        // Both selected columns write to row 0; contributions must sum.
        let a: Csr<f64> = Coo::from_entries(2, 2, vec![(0, 0, 2.0), (0, 1, 3.0)])
            .unwrap()
            .to_csr();
        let x = SparseVec::from_entries(2, vec![(0, 1.0), (1, 1.0)]).unwrap();
        let y = spmspv(&a.to_csc(), &x);
        assert_eq!(y.get(0), Some(5.0));
        assert_eq!(y.nnz(), 1);
    }
}
