//! The worker pool: lazily-initialized global pool, dedicated pools built by
//! [`ThreadPoolBuilder`], block-claiming task execution, `join` and `scope`.
//!
//! # Execution model
//!
//! A pool of `n` threads consists of `n - 1` parked worker threads plus the
//! submitting thread itself.  A parallel operation splits its work into
//! *blocks* (see [`crate::iter`]), publishes a `TaskState` describing them
//! to the pool's injector queue, and then participates in its own task:
//! every participant (submitter and any workers that pick the task up)
//! claims block indices with a relaxed `fetch_add` on a shared cursor and
//! runs them until the cursor passes the goal — work-stealing-lite.  The
//! submitter finally waits until *finished* blocks (not just claimed ones)
//! reach the goal, so all borrowed stack data outlives every access.
//!
//! Because the submitter always participates, a task completes even when
//! every worker is busy with other tasks; nested parallel operations on a
//! worker thread therefore cannot deadlock — the worker just runs the inner
//! task's blocks itself, and idle siblings help when available.
//!
//! # Panic propagation
//!
//! A panicking block is caught on the thread that ran it, the first payload
//! is stashed in the task, remaining blocks still run (rayon semantics), and
//! the payload is re-thrown on the submitting thread once the task is done.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A type-erased participant entry point: `job(i)` runs block `i` of the
/// task.  Points at a closure on the submitting thread's stack whose real
/// lifetime was erased in [`TaskState::new`]; see the safety invariant on
/// [`TaskState`].
type Job = dyn Fn(usize) + Sync + 'static;

/// Shared state of one parallel operation.
///
/// # Safety invariant
///
/// `job` borrows the submitting call frame.  It is only ever invoked with a
/// block index `i < goal`, each index is handed out exactly once (the `next`
/// cursor is an atomic RMW), and the submitter does not return — keeping the
/// frame alive — until `done == goal`, i.e. until every participant that
/// received a valid index has finished running it.  Participants that lose
/// the claim race (index `>= goal`) touch only this heap-allocated struct,
/// never `job`.
pub(crate) struct TaskState {
    /// Next unclaimed block index.
    next: AtomicUsize,
    /// Number of blocks fully executed.
    done: AtomicUsize,
    /// Total number of blocks.
    goal: usize,
    /// Erased pointer to the submitter's block runner.
    job: *const Job,
    /// First panic payload raised by any block.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Completion flag + condvar the submitter waits on.
    complete: Mutex<bool>,
    complete_cv: Condvar,
}

// SAFETY: `job` is only dereferenced under the invariant documented on the
// struct; all other fields are Sync primitives.
unsafe impl Send for TaskState {}
unsafe impl Sync for TaskState {}

impl TaskState {
    fn new<'a>(goal: usize, job: &'a (dyn Fn(usize) + Sync + 'a)) -> Self {
        // SAFETY: this only erases the trait object's lifetime bound; both
        // sides are fat pointers of identical layout.  Validity of later
        // dereferences is upheld by the wait in `run_task` (see the
        // struct-level safety invariant).
        let job: *const Job = unsafe { std::mem::transmute(job) };
        TaskState {
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            goal,
            job,
            panic: Mutex::new(None),
            complete: Mutex::new(false),
            complete_cv: Condvar::new(),
        }
    }

    /// True once every block has been claimed (not necessarily finished).
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.goal
    }

    /// Claims and runs blocks until none are left.
    fn participate(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.goal {
                return;
            }
            // SAFETY: `i < goal`, so the submitter is still blocked in
            // `run_task` waiting for this block; the frame `job` borrows is
            // alive.
            let job = unsafe { &*self.job };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(i))) {
                let mut slot = self.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            // `Release` pairs with the `Acquire` read in `wait`: everything
            // this participant wrote while running the block (results,
            // flushed bins, ...) happens-before the submitter's return.
            if self.done.fetch_add(1, Ordering::Release) + 1 == self.goal {
                let mut flag = self.complete.lock().unwrap();
                *flag = true;
                self.complete_cv.notify_all();
            }
        }
    }

    /// Blocks until every block has finished executing.
    fn wait(&self) {
        if self.done.load(Ordering::Acquire) == self.goal {
            return;
        }
        let mut flag = self.complete.lock().unwrap();
        while !*flag {
            flag = self.complete_cv.wait(flag).unwrap();
        }
        drop(flag);
        // Unconditional `Acquire` re-load: the condvar mutex only
        // synchronizes the submitter with the *final* participant, but every
        // `fetch_add(1, Release)` is an RMW in the counter's release
        // sequence, so one Acquire read of the final value establishes
        // happens-before with *all* participants' block writes — without
        // this, a non-final worker's results could be read as stale data on
        // weakly-ordered hardware.
        let done = self.done.load(Ordering::Acquire);
        debug_assert_eq!(done, self.goal);
        let _ = done;
    }
}

/// Shared core of a pool: the injector queue and its workers' rendezvous.
pub(crate) struct PoolCore {
    /// Total thread count of the pool (workers + the submitting thread).
    nthreads: usize,
    /// Tasks with potentially unclaimed blocks.
    queue: Mutex<Vec<Arc<TaskState>>>,
    /// Signalled when a task is published or shutdown is requested.
    work_cv: Condvar,
    /// Set by [`ThreadPool::drop`]; workers exit at the next wakeup.
    shutdown: AtomicBool,
}

impl PoolCore {
    /// Creates the core and spawns `nthreads - 1` workers.
    fn start(nthreads: usize) -> (Arc<PoolCore>, Vec<JoinHandle<()>>) {
        let core = Arc::new(PoolCore {
            nthreads,
            queue: Mutex::new(Vec::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (1..nthreads)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("pb-rayon-{i}"))
                    .spawn(move || worker_loop(core))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        (core, handles)
    }

    /// The pool's thread count (what [`current_num_threads`] reports).
    pub(crate) fn num_threads(&self) -> usize {
        self.nthreads
    }

    /// Runs `goal` blocks of `job` on the pool, participating inline.
    ///
    /// Returns after every block has executed; re-raises the first panic.
    pub(crate) fn run_task<'a>(
        self: &Arc<Self>,
        goal: usize,
        job: &'a (dyn Fn(usize) + Sync + 'a),
    ) {
        if goal == 0 {
            return;
        }
        // Nothing to gain from the queue with no workers or a single block:
        // run inline (panics propagate naturally).
        if self.nthreads <= 1 || goal == 1 {
            for i in 0..goal {
                job(i);
            }
            return;
        }
        let task = Arc::new(TaskState::new(goal, job));
        self.publish(&task);
        task.participate();
        task.wait();
        self.retire(&task);
        let payload = task.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Publishes a task and wakes the workers.
    fn publish(&self, task: &Arc<TaskState>) {
        self.queue.lock().unwrap().push(Arc::clone(task));
        self.work_cv.notify_all();
    }

    /// Drops a task from the injector queue (idempotent).
    fn retire(&self, task: &Arc<TaskState>) {
        self.queue.lock().unwrap().retain(|t| !Arc::ptr_eq(t, task));
    }

    /// Starts `join`'s second closure as a 1-block task **without** waiting,
    /// so the caller can run the first closure concurrently.  The caller
    /// must `participate()` + `wait()` + `retire()` afterwards.
    fn spawn_task<'a>(self: &Arc<Self>, job: &'a (dyn Fn(usize) + Sync + 'a)) -> Arc<TaskState> {
        let task = Arc::new(TaskState::new(1, job));
        self.publish(&task);
        task
    }
}

/// Worker main loop: find a task with unclaimed blocks, help finish it.
fn worker_loop(core: Arc<PoolCore>) {
    CURRENT_POOL.with(|p| *p.borrow_mut() = Some(Arc::clone(&core)));
    loop {
        let task = {
            let mut queue = core.queue.lock().unwrap();
            loop {
                if core.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(t) = queue.iter().find(|t| !t.exhausted()) {
                    break Arc::clone(t);
                }
                queue = core.work_cv.wait(queue).unwrap();
            }
        };
        task.participate();
        if task.exhausted() {
            core.retire(&task);
        }
    }
}

thread_local! {
    /// The pool parallel operations on this thread submit to: the owning
    /// pool on worker threads, the installed pool inside
    /// [`ThreadPool::install`], the global pool otherwise.
    static CURRENT_POOL: std::cell::RefCell<Option<Arc<PoolCore>>> =
        const { std::cell::RefCell::new(None) };
}

/// Default thread count: the `PB_RAYON_THREADS` environment variable if set
/// to a positive integer, otherwise [`std::thread::available_parallelism`].
fn default_threads() -> usize {
    if let Ok(v) = std::env::var("PB_RAYON_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The lazily-initialized global pool (never shut down; its workers are
/// process-lifetime daemons, exactly like rayon's global registry).
fn global_pool() -> &'static Arc<PoolCore> {
    static GLOBAL: OnceLock<Arc<PoolCore>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let (core, handles) = PoolCore::start(default_threads());
        for h in handles {
            drop(h); // detach
        }
        core
    })
}

/// The pool the calling thread currently submits to.
pub(crate) fn current_pool() -> Arc<PoolCore> {
    CURRENT_POOL
        .with(|p| p.borrow().clone())
        .unwrap_or_else(|| Arc::clone(global_pool()))
}

/// Number of threads of the current pool: the dedicated pool inside
/// [`ThreadPool::install`] (including on its worker threads), the global
/// pool otherwise.  The global size honours `PB_RAYON_THREADS`, falling back
/// to the machine's available parallelism.
pub fn current_num_threads() -> usize {
    current_pool().num_threads()
}

/// Restores the previously-installed pool on drop (panic-safe).
struct InstallGuard {
    previous: Option<Arc<PoolCore>>,
}

impl InstallGuard {
    fn enter(core: Arc<PoolCore>) -> InstallGuard {
        let previous = CURRENT_POOL.with(|p| p.borrow_mut().replace(core));
        InstallGuard { previous }
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CURRENT_POOL.with(|p| *p.borrow_mut() = self.previous.take());
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`]; never produced by
/// this implementation.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Mirrors `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread count (0 = automatic: `PB_RAYON_THREADS` or the
    /// available parallelism).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds a dedicated pool: `n - 1` real worker threads plus the thread
    /// that calls [`ThreadPool::install`].
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        let (core, workers) = PoolCore::start(threads);
        Ok(ThreadPool { core, workers })
    }
}

/// A dedicated pool; mirrors `rayon::ThreadPool`.  Work submitted inside
/// [`install`](ThreadPool::install) runs on this pool's threads (plus the
/// installing thread).  Dropping the pool shuts its workers down.
pub struct ThreadPool {
    core: Arc<PoolCore>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.core.num_threads())
            .finish()
    }
}

impl ThreadPool {
    /// Runs `op` with this pool installed: every parallel operation `op`
    /// performs (directly or nested) executes on this pool's threads.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let _guard = InstallGuard::enter(Arc::clone(&self.core));
        op()
    }

    /// The number of threads work submitted to this pool runs on.
    pub fn current_num_threads(&self) -> usize {
        self.core.num_threads()
    }

    /// The configured thread count; identical to
    /// [`current_num_threads`](ThreadPool::current_num_threads) now that the
    /// pool is real (kept for callers that told the two apart under the old
    /// sequential shim).
    pub fn requested_threads(&self) -> usize {
        self.core.num_threads()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::Relaxed);
        // Take the queue lock so no worker is between its shutdown check and
        // its condvar wait when we signal.
        drop(self.core.queue.lock().unwrap());
        self.core.work_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Cell written by at most one task participant; see [`TaskState`]'s
/// claiming discipline.
pub(crate) struct SyncSlot<T>(std::cell::UnsafeCell<Option<T>>);

// SAFETY: each slot is read/written only by the unique participant that
// claimed its block index (plus the submitter strictly before publication /
// after completion of the task).
unsafe impl<T: Send> Sync for SyncSlot<T> {}

impl<T> SyncSlot<T> {
    pub(crate) fn new(value: T) -> Self {
        SyncSlot(std::cell::UnsafeCell::new(Some(value)))
    }

    pub(crate) fn empty() -> Self {
        SyncSlot(std::cell::UnsafeCell::new(None))
    }

    /// Moves the value out (unique-claimant discipline).
    pub(crate) fn take(&self) -> Option<T> {
        // SAFETY: exclusive access per the struct invariant.
        unsafe { (*self.0.get()).take() }
    }

    /// Stores a value (unique-claimant discipline).
    pub(crate) fn put(&self, value: T) {
        // SAFETY: exclusive access per the struct invariant.
        unsafe { *self.0.get() = Some(value) }
    }

    pub(crate) fn into_inner(self) -> Option<T> {
        self.0.into_inner()
    }
}

/// Runs both closures, potentially in parallel: `oper_b` is published to the
/// current pool while the calling thread runs `oper_a`; whoever gets there
/// first (an idle worker, or the caller once `oper_a` is done) runs
/// `oper_b`.  Panics from either closure propagate to the caller.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = current_pool();
    if pool.num_threads() <= 1 {
        return (oper_a(), oper_b());
    }
    let b_fn = SyncSlot::new(oper_b);
    let b_out: SyncSlot<RB> = SyncSlot::empty();
    let runner = |_i: usize| {
        let f = b_fn.take().expect("join block claimed twice");
        b_out.put(f());
    };
    let task = pool.spawn_task(&runner);
    let ra = catch_unwind(AssertUnwindSafe(oper_a));
    // Claim B ourselves if no worker got to it, then wait it out so the
    // borrows above stay valid even when `oper_a` panicked.
    task.participate();
    task.wait();
    pool.retire(&task);
    let b_panic = task.panic.lock().unwrap().take();
    match ra {
        Err(payload) => resume_unwind(payload),
        Ok(ra) => {
            if let Some(payload) = b_panic {
                resume_unwind(payload);
            }
            (ra, b_out.into_inner().expect("join block never ran"))
        }
    }
}

/// A queued scope task (boxed so heterogeneous spawns share one list).
pub(crate) type ScopeJob<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// A scope in which tasks can be spawned; spawned tasks run in parallel
/// waves after the scope body returns and may themselves spawn more tasks.
pub struct Scope<'scope> {
    jobs: Mutex<Vec<ScopeJob<'scope>>>,
}

impl<'scope> std::fmt::Debug for Scope<'scope> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

impl<'scope> Scope<'scope> {
    /// Queues `body` to run within the scope.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.jobs.lock().unwrap().push(Box::new(body));
    }
}

/// Creates a scope: runs `f`, then executes everything it spawned (and
/// everything those tasks spawn, transitively) on the current pool before
/// returning.  Panics from spawned tasks propagate.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let s = Scope {
        jobs: Mutex::new(Vec::new()),
    };
    let result = f(&s);
    loop {
        let batch = std::mem::take(&mut *s.jobs.lock().unwrap());
        if batch.is_empty() {
            break;
        }
        crate::iter::run_boxed_jobs(batch, &s);
    }
    result
}
