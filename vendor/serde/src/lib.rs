//! A minimal stand-in for the [serde] serialization framework.
//!
//! The build environment has no network access to crates.io, so the real
//! serde cannot be fetched. This shim supports the one pattern the
//! workspace uses: `#[derive(Serialize)]` on plain structs/enums, consumed
//! by `serde_json::to_string_pretty`. Instead of serde's visitor-based
//! `Serializer` API, the shim lowers every serializable value to a
//! self-describing [`Value`] tree which `serde_json` then prints.
//!
//! [serde]: https://docs.rs/serde

// Lets the generated `::serde::...` paths resolve inside this crate's own
// tests (the same trick real serde uses).
extern crate self as serde;

pub use serde_derive::Serialize;

/// A self-describing serialized value (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (from `Option::None` or non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (field order preserved, unlike a `HashMap`).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for missing keys and non-objects
    /// (mirrors `serde_json::Value::get`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (integers included), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Non-negative integer payload, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Types that can lower themselves to a [`Value`]; the shim's analogue of
/// `serde::Serialize`.
pub trait Serialize {
    /// Lowers `self` to the shim's data model.
    fn to_value(&self) -> Value;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);
impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-3i32).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("hi".to_value(), Value::Str("hi".into()));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(
            vec![1u32, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }

    #[test]
    fn derive_on_struct_and_enum() {
        #[derive(Serialize)]
        struct Point {
            x: f64,
            y: Option<u32>,
            label: &'static str,
        }

        #[derive(Serialize)]
        enum Kind {
            Fast,
            #[allow(dead_code)]
            Slow,
        }

        let p = Point {
            x: 1.0,
            y: None,
            label: "origin",
        };
        assert_eq!(
            Serialize::to_value(&p),
            Value::Object(vec![
                ("x".into(), Value::Float(1.0)),
                ("y".into(), Value::Null),
                ("label".into(), Value::Str("origin".into())),
            ])
        );
        assert_eq!(Serialize::to_value(&Kind::Fast), Value::Str("Fast".into()));
    }
}
