//! End-to-end graph-kernel tests: the application patterns from the paper's
//! introduction (triangle counting, multi-source BFS, shortest paths,
//! Markov-clustering expansion) built on top of the public SpGEMM API.

use pb_spgemm_suite::baseline::Baseline;
use pb_spgemm_suite::gen::{block_diagonal, rmat_square};
use pb_spgemm_suite::prelude::*;
use pb_spgemm_suite::sparse::reference::{add_csr_with, hadamard_csr_with, sum_values_with};

/// Engine-backed stand-in for the retired `pb_spgemm::multiply` free
/// function: call sites stay unchanged while routing through the unified
/// [`SpGemm`] engine.
fn multiply(a: &Csc<f64>, b: &Csr<f64>, cfg: &PbConfig) -> Csr<f64> {
    SpGemm::pb().config(cfg.clone()).multiply_csc(a, b)
}

/// Engine-backed stand-in for the retired `pb_spgemm::multiply_with`.
fn multiply_with<S: Semiring>(a: &Csc<S::Elem>, b: &Csr<S::Elem>, cfg: &PbConfig) -> Csr<S::Elem>
where
    S::Elem: Default,
{
    SpGemm::pb()
        .config(cfg.clone())
        .multiply_csc_with::<S>(a, b)
}

/// Builds a small undirected, loop-free, binary graph.
fn undirected_graph(scale: u32, edge_factor: u32, seed: u64) -> Csr<f64> {
    let raw = rmat_square(scale, edge_factor, seed);
    let sym = add_csr_with::<PlusTimes<f64>>(&raw, &raw.transpose());
    sym.prune(|r, c, _| r != c).map_values(|_| 1.0)
}

/// Brute-force triangle count.
fn triangles_oracle(a: &Csr<f64>) -> u64 {
    let mut count = 0u64;
    for u in 0..a.nrows() {
        let (nu, _) = a.row(u);
        for &v in nu {
            let v = v as usize;
            if v <= u {
                continue;
            }
            let (nv, _) = a.row(v);
            for &w in nv {
                let w = w as usize;
                if w > v && a.get(u, w).is_some() {
                    count += 1;
                }
            }
        }
    }
    count
}

#[test]
fn triangle_counting_via_spgemm_matches_oracle() {
    let a = undirected_graph(9, 6, 13);
    let expected = triangles_oracle(&a);

    let a2 = multiply(&a.to_csc(), &a, &PbConfig::default());
    let masked = hadamard_csr_with::<PlusTimes<f64>>(&a, &a2);
    let total = sum_values_with::<PlusTimes<f64>>(&masked);
    assert_eq!((total / 6.0).round() as u64, expected);

    // Same computation with a baseline algorithm gives the same count.
    let a2_hash = Baseline::HashVec.multiply(&a, &a);
    let total_hash =
        sum_values_with::<PlusTimes<f64>>(&hadamard_csr_with::<PlusTimes<f64>>(&a, &a2_hash));
    assert_eq!((total_hash / 6.0).round() as u64, expected);
}

#[test]
fn two_hop_reachability_under_boolean_semiring() {
    // For a path graph 0 -> 1 -> 2 -> ... -> n-1, A² reaches exactly i -> i+2.
    let n = 64usize;
    let entries: Vec<(usize, usize, bool)> = (0..n - 1).map(|i| (i, i + 1, true)).collect();
    let a = Coo::from_entries(n, n, entries)
        .unwrap()
        .to_csr_with::<OrAnd>();
    let a2 = multiply_with::<OrAnd>(&a.to_csc(), &a, &PbConfig::default());
    assert_eq!(a2.nnz(), n - 2);
    for i in 0..n - 2 {
        assert_eq!(a2.get(i, i + 2), Some(true));
    }
}

#[test]
fn min_plus_square_gives_shortest_two_hop_distances() {
    // Weighted cycle: 0 -> 1 -> 2 -> ... -> 0 with weight i+1 on edge i.
    let n = 32usize;
    let entries: Vec<(usize, usize, f64)> =
        (0..n).map(|i| (i, (i + 1) % n, (i + 1) as f64)).collect();
    let a = Coo::from_entries(n, n, entries).unwrap().to_csr();
    let d2 = multiply_with::<MinPlus>(&a.to_csc(), &a, &PbConfig::default());
    for i in 0..n {
        let j = (i + 2) % n;
        let expected = (i + 1) as f64 + (((i + 1) % n) + 1) as f64;
        assert_eq!(d2.get(i, j), Some(expected), "two-hop distance {i} -> {j}");
    }
    assert_eq!(d2.nnz(), n);
}

#[test]
fn mcl_expansion_preserves_block_structure() {
    // The MCL expansion step (M²) of a block-diagonal stochastic matrix must
    // never create entries across blocks.
    let m = block_diagonal(6, 16, 9);
    let m2 = multiply(&m.to_csc(), &m, &PbConfig::default());
    for (r, c, _) in m2.iter() {
        assert_eq!(
            r / 16,
            c / 16,
            "expansion leaked across blocks at ({r}, {c})"
        );
    }
    // And the column baselines agree entry-by-entry.
    let m2_heap = Baseline::Heap.multiply(&m, &m);
    assert!(pb_spgemm_suite::sparse::reference::csr_approx_eq(
        &m2, &m2_heap, 1e-9
    ));
}

#[test]
fn repeated_squaring_reaches_the_transitive_closure_pattern() {
    // For a directed path, repeatedly squaring (I + A) under the boolean
    // semiring converges to the full upper-triangular reachability pattern.
    let n = 33usize;
    let mut entries: Vec<(usize, usize, bool)> = (0..n - 1).map(|i| (i, i + 1, true)).collect();
    entries.extend((0..n).map(|i| (i, i, true)));
    let mut reach = Coo::from_entries(n, n, entries)
        .unwrap()
        .to_csr_with::<OrAnd>();
    let cfg = PbConfig::default();
    for _ in 0..6 {
        // 2^6 = 64 > 33 hops: converged.
        reach = multiply_with::<OrAnd>(&reach.to_csc(), &reach, &cfg);
    }
    assert_eq!(reach.nnz(), n * (n + 1) / 2);
    for i in 0..n {
        for j in i..n {
            assert_eq!(reach.get(i, j), Some(true));
        }
    }
}
