//! HeapSpGEMM: column/row SpGEMM with a k-way-merge (binary heap)
//! accumulator, as in Azad et al. (SISC 2016) and Nagasaka et al. (2019).
//!
//! For output row `i`, the rows `B(k, :)` selected by the nonzeros
//! `A(i, k)` are merged with a binary heap keyed on the column index, so the
//! output row is produced directly in sorted order.  The heap has at most
//! `nnz(A(i, :))` entries, giving the paper's `O(flop · log d)` complexity.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pb_sparse::semiring::{Numeric, PlusTimes, Semiring};
use pb_sparse::{Csr, Index};

use crate::util::rowwise_multiply;

/// One cursor of the k-way merge: the current column of list `list`, plus
/// the position within that list.  Ordered by `(col, list)` so the heap pops
/// equal columns consecutively and deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Cursor {
    col: Index,
    list: u32,
    pos: u32,
}

/// HeapSpGEMM under an arbitrary semiring.
pub fn heap_spgemm_with<S: Semiring>(a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem> {
    rowwise_multiply::<S, BinaryHeap<Reverse<Cursor>>, _, _>(a, b, BinaryHeap::new, |heap, i| {
        let (a_cols, a_vals) = a.row(i);
        heap.clear();
        // Seed the heap with the first entry of every selected B row.
        for (list, &k) in a_cols.iter().enumerate() {
            let (b_cols, _) = b.row(k as usize);
            if !b_cols.is_empty() {
                heap.push(Reverse(Cursor {
                    col: b_cols[0],
                    list: list as u32,
                    pos: 0,
                }));
            }
        }
        let mut out_cols: Vec<Index> = Vec::new();
        let mut out_vals: Vec<S::Elem> = Vec::new();
        while let Some(Reverse(cur)) = heap.pop() {
            let k = a_cols[cur.list as usize] as usize;
            let a_ik = a_vals[cur.list as usize];
            let (b_cols, b_vals) = b.row(k);
            let product = S::mul(a_ik, b_vals[cur.pos as usize]);
            match out_cols.last() {
                Some(&last) if last == cur.col => {
                    let slot = out_vals.last_mut().expect("values track columns");
                    *slot = S::add(*slot, product);
                }
                _ => {
                    out_cols.push(cur.col);
                    out_vals.push(product);
                }
            }
            // Advance this cursor within its list.
            let next = cur.pos as usize + 1;
            if next < b_cols.len() {
                heap.push(Reverse(Cursor {
                    col: b_cols[next],
                    list: cur.list,
                    pos: next as u32,
                }));
            }
        }
        (out_cols, out_vals)
    })
}

/// HeapSpGEMM with ordinary `+`/`×`.
pub fn heap_spgemm<T: Numeric>(a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    heap_spgemm_with::<PlusTimes<T>>(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::{erdos_renyi_square, rmat_square};
    use pb_sparse::reference::{csr_approx_eq, multiply_csr, multiply_csr_with};
    use pb_sparse::semiring::{MinPlus, OrAnd};
    use pb_sparse::Coo;

    #[test]
    fn matches_reference_on_small_dense_case() {
        let a = Coo::from_entries(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
        .to_csr();
        let c = heap_spgemm(&a, &a);
        assert!(csr_approx_eq(&c, &multiply_csr(&a, &a), 1e-12));
        assert!(c.has_sorted_indices());
    }

    #[test]
    fn matches_reference_on_er_and_rmat() {
        let er = erdos_renyi_square(8, 8, 1);
        let rm = rmat_square(8, 8, 2);
        for m in [&er, &rm] {
            let c = heap_spgemm(m, m);
            assert!(csr_approx_eq(&c, &multiply_csr(m, m), 1e-9));
        }
    }

    #[test]
    fn rectangular_product() {
        let a = erdos_renyi_square(7, 4, 3);
        // Build a rectangular B by dropping columns: take the transpose of a
        // different random matrix restricted to 64 columns.
        let b = pb_gen::erdos_renyi(&pb_gen::ErConfig {
            nrows: 128,
            ncols: 64,
            nnz_per_col: 4,
            seed: 5,
            random_values: true,
        });
        let c = heap_spgemm(&a, &b);
        assert_eq!(c.shape(), (128, 64));
        assert!(csr_approx_eq(&c, &multiply_csr(&a, &b), 1e-9));
    }

    #[test]
    fn works_under_other_semirings() {
        let a = rmat_square(7, 4, 9);
        let bool_a = a.map_values(|_| true);
        let pattern = heap_spgemm_with::<OrAnd>(&bool_a, &bool_a);
        let expected = multiply_csr_with::<OrAnd>(&bool_a, &bool_a);
        assert_eq!(pattern.rowptr(), expected.rowptr());
        assert_eq!(pattern.colidx(), expected.colidx());

        let dist = heap_spgemm_with::<MinPlus>(&a, &a);
        let expected = multiply_csr_with::<MinPlus>(&a, &a);
        assert!(csr_approx_eq(&dist, &expected, 1e-12));
    }

    #[test]
    fn empty_and_identity_edge_cases() {
        let empty: Csr<f64> = Csr::empty(5, 5);
        assert_eq!(heap_spgemm(&empty, &empty).nnz(), 0);
        let id = Csr::<f64>::identity(32);
        let a = erdos_renyi_square(5, 3, 4);
        assert!(csr_approx_eq(&heap_spgemm(&a, &id), &a, 1e-12));
        assert!(csr_approx_eq(&heap_spgemm(&id, &a), &a, 1e-12));
    }
}
