//! # pb-spmv — sparse matrix–vector multiplication kernels
//!
//! PB-SpGEMM's key idea, *propagation blocking*, was introduced by Beamer,
//! Asanović and Patterson for PageRank/SpMV ("Reducing PageRank communication
//! via propagation blocking", IPDPS 2017 — reference \[16\] of the paper).  This
//! crate implements that lineage so the workspace contains the substrate the
//! paper builds on and the iterative graph examples (PageRank, BFS sweeps)
//! have efficient matrix–vector kernels:
//!
//! * [`csr_spmv`] — the conventional row-parallel CSR kernel (`y = A·x`),
//!   perfectly streamed reads of `A` but *random* reads of `x`;
//! * [`csc_spmv`] — the column-major scatter kernel, streamed reads of `x`
//!   but random (per-thread-buffered) writes of `y`;
//! * [`pb_spmv`] — the propagation-blocking kernel: a streamed *expand* pass
//!   bins `(row, value)` updates by output-row range, then a per-bin
//!   *accumulate* pass applies them while the bin's slice of `y` stays in
//!   cache — the SpMV analogue of PB-SpGEMM's expand/sort/compress;
//! * [`spmspv`](mod@spmspv) — sparse-vector × sparse-matrix, the frontier-advance kernel
//!   of breadth-first search and other push-style graph traversals;
//! * [`pagerank`](mod@pagerank) — a PageRank power iteration driver that can run on any of
//!   the dense kernels, used by the examples and the ablation benches.
//!
//! All kernels are generic over a [`pb_sparse::Semiring`] and agree with the
//! dense reference implementation; the test suites check them against each
//! other.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod csc;
pub mod csr;
pub mod pagerank;
pub mod pb;
pub mod spmspv;

pub use csc::{csc_spmv, csc_spmv_with};
pub use csr::{csr_spmv, csr_spmv_into_with, csr_spmv_with};
pub use pagerank::{pagerank, PageRankConfig, PageRankResult};
pub use pb::{pb_spmv, pb_spmv_with, PbSpmvConfig};
pub use spmspv::{spmspv, spmspv_with};

use pb_sparse::semiring::Semiring;
use pb_sparse::{Csc, Csr};

/// Which dense SpMV kernel an algorithm driver (e.g. PageRank) should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpmvEngine {
    /// Row-parallel CSR kernel ([`csr_spmv`]).
    RowCsr,
    /// Column scatter kernel ([`csc_spmv`]).
    ColumnScatter,
    /// Propagation-blocking kernel ([`pb_spmv`]).
    PropagationBlocking,
}

impl SpmvEngine {
    /// All engines, for parameter sweeps.
    pub fn all() -> &'static [SpmvEngine] {
        &[
            SpmvEngine::RowCsr,
            SpmvEngine::ColumnScatter,
            SpmvEngine::PropagationBlocking,
        ]
    }

    /// Short human-readable name used in benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            SpmvEngine::RowCsr => "csr",
            SpmvEngine::ColumnScatter => "csc-scatter",
            SpmvEngine::PropagationBlocking => "pb",
        }
    }

    /// Runs `y = A·x` with this engine under an arbitrary semiring.
    ///
    /// `a_csr` and `a_csc` must describe the same matrix; each engine reads
    /// the format it streams best.  Both are required so engine choice does
    /// not silently pay a conversion that would skew benchmarks.
    pub fn run_with<S: Semiring>(
        &self,
        a_csr: &Csr<S::Elem>,
        a_csc: &Csc<S::Elem>,
        x: &[S::Elem],
    ) -> Vec<S::Elem> {
        match self {
            SpmvEngine::RowCsr => csr_spmv_with::<S>(a_csr, x),
            SpmvEngine::ColumnScatter => csc_spmv_with::<S>(a_csc, x),
            SpmvEngine::PropagationBlocking => {
                pb_spmv_with::<S>(a_csc, x, &PbSpmvConfig::default())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::rmat_square;
    use pb_sparse::PlusTimes;

    #[test]
    fn all_engines_agree() {
        let a = rmat_square(8, 6, 17);
        let a_csc = a.to_csc();
        let x: Vec<f64> = (0..a.ncols())
            .map(|i| (i % 13) as f64 * 0.25 - 1.0)
            .collect();
        let reference = csr_spmv(&a, &x);
        for engine in SpmvEngine::all() {
            let y = engine.run_with::<PlusTimes<f64>>(&a, &a_csc, &x);
            let max_diff = y
                .iter()
                .zip(&reference)
                .map(|(p, q)| (p - q).abs())
                .fold(0.0f64, f64::max);
            assert!(
                max_diff < 1e-9,
                "{} disagrees with the CSR kernel",
                engine.name()
            );
        }
        assert_eq!(SpmvEngine::all().len(), 3);
        assert_eq!(SpmvEngine::PropagationBlocking.name(), "pb");
    }
}
