//! Dense matrices, used only as an obviously-correct reference in tests and
//! examples (they are O(n²) in memory and never appear on a hot path).

use std::ops::{Index as StdIndex, IndexMut};

use crate::coo::Coo;
use crate::csr::Csr;
use crate::semiring::{Numeric, Semiring};
use crate::Scalar;

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense<T> {
    nrows: usize,
    ncols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Dense<T> {
    /// Creates a matrix with every element equal to `fill`.
    pub fn filled(nrows: usize, ncols: usize, fill: T) -> Self {
        Dense {
            nrows,
            ncols,
            data: vec![fill; nrows * ncols],
        }
    }

    /// Builds a dense matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            nrows * ncols,
            "dense data length must equal nrows * ncols"
        );
        Dense { nrows, ncols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// The underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Counts elements different from `zero`.
    pub fn count_nonzero(&self, zero: T) -> usize {
        self.data.iter().filter(|&&v| v != zero).count()
    }

    /// Converts to COO, keeping only elements different from `zero`.
    pub fn to_coo(&self, zero: T) -> Coo<T> {
        let mut coo = Coo::with_capacity(self.nrows, self.ncols, self.count_nonzero(zero))
            .expect("dense dims already validated");
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                let v = self[(i, j)];
                if v != zero {
                    coo.push(i, j, v).expect("in-bounds by construction");
                }
            }
        }
        coo
    }

    /// Dense matrix product under an arbitrary semiring (triple loop).
    pub fn multiply_with<S>(&self, other: &Dense<T>) -> Dense<T>
    where
        S: Semiring<Elem = T>,
    {
        assert_eq!(
            self.ncols,
            other.nrows,
            "dense multiply shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Dense::filled(self.nrows, other.ncols, S::zero());
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let a = self[(i, k)];
                if S::is_zero(&a) {
                    continue;
                }
                for j in 0..other.ncols {
                    let b = other[(k, j)];
                    if S::is_zero(&b) {
                        continue;
                    }
                    let cur = out[(i, j)];
                    out[(i, j)] = S::add(cur, S::mul(a, b));
                }
            }
        }
        out
    }
}

impl<T: Numeric> Dense<T> {
    /// Dense matrix product with ordinary `+`/`×`.
    pub fn multiply(&self, other: &Dense<T>) -> Dense<T> {
        self.multiply_with::<crate::semiring::PlusTimes<T>>(other)
    }

    /// Converts to CSR, dropping ordinary zeros.
    pub fn to_csr(&self) -> Csr<T> {
        self.to_coo(T::zero_value()).to_csr()
    }
}

impl Dense<f64> {
    /// Element-wise comparison within an absolute tolerance.
    pub fn approx_eq(&self, other: &Dense<f64>, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }
}

impl<T: Scalar> StdIndex<(usize, usize)> for Dense<T> {
    type Output = T;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i * self.ncols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Dense<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i * self.ncols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{MinPlus, OrAnd};

    #[test]
    fn indexing_and_rows() {
        let mut d = Dense::filled(2, 3, 0.0);
        d[(0, 1)] = 5.0;
        d[(1, 2)] = -2.0;
        assert_eq!(d.row(0), &[0.0, 5.0, 0.0]);
        assert_eq!(d.row(1), &[0.0, 0.0, -2.0]);
        assert_eq!(d.count_nonzero(0.0), 2);
    }

    #[test]
    #[should_panic(expected = "nrows * ncols")]
    fn from_vec_checks_length() {
        let _ = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn multiply_matches_hand_computation() {
        // [1 2]   [5 6]   [19 22]
        // [3 4] x [7 8] = [43 50]
        let a = Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Dense::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.multiply(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn multiply_rectangular() {
        let a = Dense::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0]);
        let b = Dense::from_vec(3, 2, vec![1.0, 1.0, 0.0, 2.0, 4.0, 0.0]);
        let c = a.multiply(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[9.0, 1.0, 0.0, 6.0]);
    }

    #[test]
    fn multiply_boolean_semiring_is_reachability() {
        // Path graph 0 -> 1 -> 2; two-hop reachability is only 0 -> 2.
        let a = Dense::from_vec(
            3,
            3,
            vec![false, true, false, false, false, true, false, false, false],
        );
        let c = a.multiply_with::<OrAnd>(&a);
        assert!(c[(0, 2)]);
        assert_eq!(c.data().iter().filter(|&&v| v).count(), 1);
    }

    #[test]
    fn multiply_min_plus_finds_shortest_two_hop_path() {
        let inf = f64::INFINITY;
        // 0 -> 1 (cost 1), 1 -> 2 (cost 2), 0 -> 2 direct is not an edge.
        let a = Dense::from_vec(3, 3, vec![inf, 1.0, inf, inf, inf, 2.0, inf, inf, inf]);
        let c = a.multiply_with::<MinPlus>(&a);
        assert_eq!(c[(0, 2)], 3.0);
        assert_eq!(c[(0, 1)], inf);
    }

    #[test]
    fn sparse_dense_roundtrip() {
        let d = Dense::from_vec(2, 3, vec![0.0, 1.0, 0.0, 2.0, 0.0, 3.0]);
        let csr = d.to_csr();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.to_dense(), d);
        let coo = d.to_coo(0.0);
        assert_eq!(coo.nnz(), 3);
        assert_eq!(coo.to_dense(), d);
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = Dense::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Dense::from_vec(1, 2, vec![1.0 + 1e-12, 2.0 - 1e-12]);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
        let c = Dense::from_vec(2, 1, vec![1.0, 2.0]);
        assert!(!a.approx_eq(&c, 1.0));
    }
}
