//! Planner regret sweep (`bench_pb --planner`).
//!
//! For every corpus point the sweep measures **all** candidate kernels
//! (best-of-reps), feeds those measurements into a fresh
//! [`Planner`] as calibration, and then asks the
//! planner to decide.  The gap between the planner's pick and the fastest
//! measured kernel — the *regret vs best-in-hindsight* — is what the CI
//! perf-gate bounds: a calibrated planner whose pick costs more than
//! [`PLANNER_REGRET_CEILING`] over the best kernel on any corpus point
//! fails the gate.
//!
//! The cold-start prior's pick is reported alongside (informational, not
//! gated): it shows what the planner would do on a host with no
//! calibration table yet.

use pb_spgemm::{PbConfig, PlannedKernel, Planner, Signals, SpGemm};
use serde::Serialize;

use crate::workloads::{er_matrix, rmat_matrix, Workload};

/// Maximum tolerated regret of the calibrated planner's pick versus the
/// fastest measured kernel, per corpus point (0.25 = pick may cost at most
/// 25% more than best-in-hindsight).  The CI perf-gate enforces this.
pub const PLANNER_REGRET_CEILING: f64 = 0.25;

/// One kernel's measurement on one corpus point.
#[derive(Debug, Clone, Serialize)]
pub struct KernelSeconds {
    /// Kernel name (paper terminology).
    pub kernel: String,
    /// Best wall-clock seconds over the repetitions.
    pub seconds: f64,
    /// Achieved GFLOPS at the best run.
    pub gflops: f64,
}

/// One corpus point of the regret sweep.
#[derive(Debug, Clone, Serialize)]
pub struct PlannerPoint {
    /// Workload name.
    pub workload: String,
    /// Matrix dimension (rows == cols).
    pub n: usize,
    /// Stored nonzeros of the input.
    pub nnz: usize,
    /// flop of the squaring.
    pub flop: u64,
    /// True compression factor `flop / nnz_c`.
    pub cf: f64,
    /// The planner's sampled compression-factor estimate.
    pub cf_estimate: f64,
    /// Row-nnz skew of `B` (max row nnz over mean).
    pub row_skew: f64,
    /// Projected bin-occupancy skew.
    pub bin_skew: f64,
    /// flop per input nonzero.
    pub flop_per_nnz: f64,
    /// Every candidate kernel's measurement, in candidate order.
    pub kernels: Vec<KernelSeconds>,
    /// The calibrated planner's pick for this point.
    pub chosen: String,
    /// Seconds of the chosen kernel (from the measurements above).
    pub chosen_seconds: f64,
    /// The fastest measured kernel.
    pub best: String,
    /// Seconds of that fastest kernel.
    pub best_seconds: f64,
    /// `chosen_seconds / best_seconds - 1` (0 = the planner picked the
    /// best kernel).  Gated against [`PLANNER_REGRET_CEILING`].
    pub regret: f64,
    /// What the uncalibrated prior would have picked (informational).
    pub prior: String,
    /// Regret of that prior pick (informational, not gated).
    pub prior_regret: f64,
}

/// The `planner` section of `BENCH_pb.json` (schema v4).
#[derive(Debug, Clone, Serialize)]
pub struct PlannerReport {
    /// Per-corpus-point measurements and decisions.
    pub points: Vec<PlannerPoint>,
    /// Largest calibrated regret across the corpus.
    pub max_regret: f64,
    /// Largest prior (cold-start) regret across the corpus.
    pub max_prior_regret: f64,
    /// The ceiling the perf-gate enforces on `max_regret`.
    pub regret_ceiling: f64,
    /// Thread count the measurements ran on.
    pub threads: usize,
}

/// The regret-sweep corpus: workloads spanning the planner's decision
/// regimes (low-cf sparse, skewed R-MAT, high edge-factor / high flop-per-
/// nnz, and a tiny input).  `quick` keeps CI runs small.
pub fn planner_corpus(quick: bool) -> Vec<Workload> {
    let s = if quick { 0 } else { 1 };
    vec![
        er_matrix(9 + s, 4, 42),
        rmat_matrix(9 + s, 8, 42),
        er_matrix(8 + s, 16, 42),
        er_matrix(6, 2, 42),
    ]
}

/// Times one planned kernel squaring `w`, best of `reps`, mirroring exactly
/// what the Auto engine would execute for that decision (the PB arm's
/// CSC conversion included).
fn time_kernel(kernel: PlannedKernel, w: &Workload, reps: usize) -> f64 {
    let engine = match kernel.baseline() {
        None => SpGemm::pb(),
        Some(b) => SpGemm::baseline(b),
    };
    let mut best = f64::MAX;
    for _ in 0..reps.max(1) {
        let t = std::time::Instant::now();
        let c = engine.multiply(&w.a, &w.a);
        let dt = t.elapsed().as_secs_f64();
        assert_eq!(c.nnz(), w.stats.nnz_c, "{} wrong product", kernel.name());
        best = best.min(dt);
    }
    best
}

/// Runs the regret sweep: measure every candidate on every corpus point,
/// calibrate a fresh planner per point from those measurements, and record
/// the regret of its decision.
pub fn run_planner_sweep(quick: bool, reps: usize) -> PlannerReport {
    let corpus = planner_corpus(quick);
    let mut points = Vec::with_capacity(corpus.len());
    for w in &corpus {
        let signals = Signals::measure(&w.a, &w.a, &PbConfig::default());
        // A fresh planner per point: its calibration is exactly this
        // point's measurements, so its decision is auditable against them.
        let planner = Planner::new();
        let prior = planner.prior(&signals);
        let mut kernels = Vec::new();
        let mut best_kernel = PlannedKernel::Unplanned;
        let mut best_seconds = f64::MAX;
        for &kernel in PlannedKernel::candidates() {
            let seconds = time_kernel(kernel, w, reps);
            planner.observe(kernel, &signals, seconds);
            if seconds < best_seconds {
                best_seconds = seconds;
                best_kernel = kernel;
            }
            kernels.push(KernelSeconds {
                kernel: kernel.name().to_string(),
                seconds,
                gflops: signals.flop as f64 / seconds / 1e9,
            });
        }
        let chosen = planner.decide(&signals);
        let seconds_of = |k: PlannedKernel| {
            kernels
                .iter()
                .find(|m| m.kernel == k.name())
                .map(|m| m.seconds)
                .expect("every candidate was measured")
        };
        let chosen_seconds = seconds_of(chosen);
        let prior_seconds = seconds_of(prior);
        points.push(PlannerPoint {
            workload: w.name.clone(),
            n: w.a.nrows(),
            nnz: w.a.nnz(),
            flop: signals.flop,
            cf: w.stats.cf,
            cf_estimate: signals.cf_estimate,
            row_skew: signals.row_skew,
            bin_skew: signals.bin_skew,
            flop_per_nnz: signals.flop_per_nnz,
            kernels,
            chosen: chosen.name().to_string(),
            chosen_seconds,
            best: best_kernel.name().to_string(),
            best_seconds,
            regret: chosen_seconds / best_seconds - 1.0,
            prior: prior.name().to_string(),
            prior_regret: prior_seconds / best_seconds - 1.0,
        });
    }
    let max = |f: fn(&PlannerPoint) -> f64| points.iter().map(f).fold(0.0f64, f64::max);
    PlannerReport {
        max_regret: max(|p| p.regret),
        max_prior_regret: max(|p| p.prior_regret),
        regret_ceiling: PLANNER_REGRET_CEILING,
        threads: rayon::current_num_threads(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_regret_is_within_the_gate_ceiling() {
        let report = run_planner_sweep(true, 1);
        assert_eq!(report.points.len(), planner_corpus(true).len());
        for p in &report.points {
            assert_eq!(p.kernels.len(), PlannedKernel::candidates().len());
            assert!(
                p.regret <= PLANNER_REGRET_CEILING,
                "{}: chose {} ({}s) vs best {} ({}s)",
                p.workload,
                p.chosen,
                p.chosen_seconds,
                p.best,
                p.best_seconds
            );
            assert!(p.best_seconds > 0.0 && p.chosen_seconds >= p.best_seconds);
        }
        assert!(report.max_regret <= PLANNER_REGRET_CEILING);
        let json = serde_json::to_string(&report).unwrap();
        for key in [
            "max_regret",
            "regret_ceiling",
            "cf_estimate",
            "prior_regret",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn corpus_spans_distinct_signal_regimes() {
        let corpus = planner_corpus(true);
        let cfs: Vec<f64> = corpus.iter().map(|w| w.stats.cf).collect();
        let lo = cfs.iter().cloned().fold(f64::MAX, f64::min);
        let hi = cfs.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            hi / lo > 1.5,
            "corpus compression factors too uniform: {cfs:?}"
        );
    }
}
