//! The Roofline model for SpGEMM (Sec. II-C, Fig. 3).
//!
//! Arithmetic intensity (AI) is flop per byte of memory traffic.  For
//! `C = A·B` with compression factor `cf` and `b` bytes per stored nonzero:
//!
//! * Eq. 1 — upper bound for *any* algorithm (inputs and output read/written
//!   once): `AI ≤ cf / b`;
//! * Eq. 3 — practical lower bound for column SpGEMM (columns of `A`
//!   re-read once per flop): `AI ≥ cf / ((2 + cf) · b)`;
//! * Eq. 4 — practical lower bound for outer-product ESC SpGEMM (the
//!   expanded matrix written and read once): `AI ≥ cf / ((3 + 2·cf) · b)`.
//!
//! Attainable performance is `β · AI` where `β` is the STREAM bandwidth.

use serde::Serialize;

use crate::BYTES_PER_NONZERO;

/// A Roofline model parameterised by the measured memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RooflineModel {
    /// Memory bandwidth `β` in GB/s (measured with [`crate::stream`]).
    pub bandwidth_gbps: f64,
    /// Bytes per stored nonzero (`b`, 16 by default).
    pub bytes_per_nonzero: f64,
}

/// One point of the attainable-performance curve of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RooflinePoint {
    /// Arithmetic intensity in flop/byte.
    pub ai: f64,
    /// Attainable performance in GFLOPS (`β · AI`).
    pub gflops: f64,
}

impl RooflineModel {
    /// Creates a model with the default 16-byte nonzeros.
    pub fn new(bandwidth_gbps: f64) -> Self {
        RooflineModel {
            bandwidth_gbps,
            bytes_per_nonzero: BYTES_PER_NONZERO as f64,
        }
    }

    /// Creates a model with an explicit per-nonzero byte count.
    pub fn with_bytes_per_nonzero(bandwidth_gbps: f64, bytes: f64) -> Self {
        RooflineModel {
            bandwidth_gbps,
            bytes_per_nonzero: bytes,
        }
    }

    /// Eq. 1: the AI upper bound `cf / b`.
    pub fn ai_upper_bound(&self, cf: f64) -> f64 {
        cf / self.bytes_per_nonzero
    }

    /// Eq. 3: the practical AI lower bound of column SpGEMM,
    /// `cf / ((2 + cf) · b)`.
    pub fn ai_column_lower_bound(&self, cf: f64) -> f64 {
        cf / ((2.0 + cf) * self.bytes_per_nonzero)
    }

    /// Eq. 4: the practical AI lower bound of outer-product ESC SpGEMM,
    /// `cf / ((3 + 2·cf) · b)`.
    pub fn ai_outer_lower_bound(&self, cf: f64) -> f64 {
        cf / ((3.0 + 2.0 * cf) * self.bytes_per_nonzero)
    }

    /// Attainable performance `β · AI` in GFLOPS for a given AI (flop/byte).
    pub fn attainable_gflops(&self, ai: f64) -> f64 {
        self.bandwidth_gbps * ai
    }

    /// Predicted peak GFLOPS for an SpGEMM with compression factor `cf`
    /// under the Eq. 1 upper bound.
    pub fn peak_gflops(&self, cf: f64) -> f64 {
        self.attainable_gflops(self.ai_upper_bound(cf))
    }

    /// Predicted GFLOPS of an ideal outer-product ESC algorithm (Eq. 4) —
    /// the paper's prediction for PB-SpGEMM.
    pub fn outer_predicted_gflops(&self, cf: f64) -> f64 {
        self.attainable_gflops(self.ai_outer_lower_bound(cf))
    }

    /// Predicted GFLOPS of a column SpGEMM algorithm with no locality on `A`
    /// (Eq. 3).
    pub fn column_predicted_gflops(&self, cf: f64) -> f64 {
        self.attainable_gflops(self.ai_column_lower_bound(cf))
    }

    /// Generates the bandwidth-bound roofline (Fig. 3's diagonal):
    /// `npoints` logarithmically spaced AI values between `ai_min` and
    /// `ai_max`, each with its attainable performance.
    pub fn curve(&self, ai_min: f64, ai_max: f64, npoints: usize) -> Vec<RooflinePoint> {
        assert!(ai_min > 0.0 && ai_max > ai_min && npoints >= 2);
        let log_min = ai_min.ln();
        let log_max = ai_max.ln();
        (0..npoints)
            .map(|i| {
                let t = i as f64 / (npoints - 1) as f64;
                let ai = (log_min + t * (log_max - log_min)).exp();
                RooflinePoint {
                    ai,
                    gflops: self.attainable_gflops(ai),
                }
            })
            .collect()
    }

    /// The three vertical markers of Fig. 3 for a given `cf`: the AI bounds
    /// of column SpGEMM, outer SpGEMM and the overall upper bound, with the
    /// performance attainable at each.
    pub fn markers(&self, cf: f64) -> [RooflinePoint; 3] {
        let ais = [
            self.ai_column_lower_bound(cf),
            self.ai_outer_lower_bound(cf),
            self.ai_upper_bound(cf),
        ];
        [
            RooflinePoint {
                ai: ais[0],
                gflops: self.attainable_gflops(ais[0]),
            },
            RooflinePoint {
                ai: ais[1],
                gflops: self.attainable_gflops(ais[1]),
            },
            RooflinePoint {
                ai: ais[2],
                gflops: self.attainable_gflops(ais[2]),
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_matrix_bounds_match_the_papers_numbers() {
        // The paper's running example: ER matrices have cf ~= 1 and b = 16,
        // so AI <= 1/16 and the outer-product lower bound is 1/80.
        let m = RooflineModel::new(50.0);
        assert!((m.ai_upper_bound(1.0) - 1.0 / 16.0).abs() < 1e-12);
        assert!((m.ai_outer_lower_bound(1.0) - 1.0 / 80.0).abs() < 1e-12);
        assert!((m.ai_column_lower_bound(1.0) - 1.0 / 48.0).abs() < 1e-12);

        // 50 GB/s * 1/16 = 3.125 GFLOPS peak (the paper's 3.13 GFLOPS).
        assert!((m.peak_gflops(1.0) - 3.125).abs() < 1e-9);
        // 50 GB/s * 1/80 = 0.625 GFLOPS, the paper's 625 MFLOPS estimate for
        // PB-SpGEMM at 50 GB/s sustained bandwidth.
        assert!((m.outer_predicted_gflops(1.0) - 0.625).abs() < 1e-9);
        // At 40 GB/s the same bound gives 500 MFLOPS.
        let m40 = RooflineModel::new(40.0);
        assert!((m40.outer_predicted_gflops(1.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn bounds_are_ordered() {
        let m = RooflineModel::new(100.0);
        for cf in [1.0, 1.5, 2.0, 4.0, 8.0, 16.0] {
            let lower_col = m.ai_column_lower_bound(cf);
            let lower_outer = m.ai_outer_lower_bound(cf);
            let upper = m.ai_upper_bound(cf);
            assert!(
                lower_outer < upper,
                "outer bound must stay below the upper bound"
            );
            assert!(lower_col < upper);
            assert!(lower_outer > 0.0 && lower_col > 0.0);
        }
    }

    #[test]
    fn column_beats_outer_only_for_large_cf() {
        // Eq. 3 vs Eq. 4: (2 + cf) vs (3 + 2 cf) denominators — column
        // SpGEMM's bound is always the larger AI, but the *gap* shrinks as cf
        // grows; the paper's observed crossover (cf ~ 4) comes from column
        // algorithms' latency costs, not from the bounds themselves.
        let m = RooflineModel::new(50.0);
        for cf in [1.0, 4.0, 16.0] {
            assert!(m.ai_column_lower_bound(cf) > m.ai_outer_lower_bound(cf));
        }
        let gap_small = m.ai_column_lower_bound(1.0) / m.ai_outer_lower_bound(1.0);
        let gap_large = m.ai_column_lower_bound(16.0) / m.ai_outer_lower_bound(16.0);
        assert!(
            gap_small < gap_large,
            "relative advantage of column SpGEMM grows with cf: {gap_small} vs {gap_large}"
        );
    }

    #[test]
    fn attainable_performance_scales_with_bandwidth() {
        let slow = RooflineModel::new(25.0);
        let fast = RooflineModel::new(100.0);
        assert!((fast.peak_gflops(2.0) / slow.peak_gflops(2.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_and_log_spaced() {
        let m = RooflineModel::new(50.0);
        let curve = m.curve(1.0 / 128.0, 0.25, 9);
        assert_eq!(curve.len(), 9);
        assert!((curve[0].ai - 1.0 / 128.0).abs() < 1e-12);
        assert!((curve[8].ai - 0.25).abs() < 1e-12);
        for w in curve.windows(2) {
            assert!(w[1].ai > w[0].ai);
            assert!(w[1].gflops > w[0].gflops);
        }
        // Log spacing: the ratio between consecutive AI values is constant.
        let r0 = curve[1].ai / curve[0].ai;
        let r7 = curve[8].ai / curve[7].ai;
        assert!((r0 - r7).abs() < 1e-9);
    }

    #[test]
    fn markers_are_ordered_by_ai() {
        let m = RooflineModel::new(50.0);
        let [col, outer, upper] = m.markers(1.0);
        assert!(outer.ai < col.ai && col.ai < upper.ai);
        assert!(outer.gflops < upper.gflops);
    }

    #[test]
    #[should_panic]
    fn curve_rejects_bad_ranges() {
        RooflineModel::new(50.0).curve(0.5, 0.1, 10);
    }
}
