//! Shared machinery for the row-parallel column SpGEMM baselines.

use pb_sparse::semiring::Semiring;
use pb_sparse::{Csr, Index, Scalar};
use rayon::prelude::*;

/// Assembles per-row `(columns, values)` pairs into a CSR matrix.
pub fn assemble_rows<T: Scalar>(
    nrows: usize,
    ncols: usize,
    rows: Vec<(Vec<Index>, Vec<T>)>,
) -> Csr<T> {
    debug_assert_eq!(rows.len(), nrows);
    let nnz: usize = rows.iter().map(|(c, _)| c.len()).sum();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    for (cols, vals) in rows {
        debug_assert_eq!(cols.len(), vals.len());
        colidx.extend(cols);
        values.extend(vals);
        rowptr.push(colidx.len());
    }
    Csr::from_parts_unchecked(nrows, ncols, rowptr, colidx, values)
}

/// Runs a row-wise Gustavson SpGEMM in parallel: `row_kernel` computes one
/// output row given a thread-private scratch structure created by
/// `make_scratch`.
///
/// The kernel must return the row's column indices sorted and
/// duplicate-free; `assemble_rows` then stitches the rows together.
pub fn rowwise_multiply<S, SC, M, K>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    make_scratch: M,
    row_kernel: K,
) -> Csr<S::Elem>
where
    S: Semiring,
    SC: Send,
    M: Fn() -> SC + Sync + Send,
    K: Fn(&mut SC, usize) -> (Vec<Index>, Vec<S::Elem>) + Sync + Send,
{
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "SpGEMM shape mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let rows: Vec<(Vec<Index>, Vec<S::Elem>)> = (0..a.nrows())
        .into_par_iter()
        .map_init(&make_scratch, |scratch, i| row_kernel(scratch, i))
        .collect();
    assemble_rows(a.nrows(), b.ncols(), rows)
}

/// Upper bound on the number of products contributing to row `i` of `C`
/// (the paper's per-row flop), used to size per-row accumulators.
#[inline]
pub fn row_flop<T: Scalar, U: Scalar>(a: &Csr<T>, b: &Csr<U>, i: usize) -> usize {
    let (cols, _) = a.row(i);
    cols.iter().map(|&k| b.row_nnz(k as usize)).sum()
}

/// The smallest power of two that is `>= n.max(1)`.
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_sparse::{Coo, PlusTimes};

    #[test]
    fn assemble_rows_builds_valid_csr() {
        let rows = vec![
            (vec![0, 2], vec![1.0, 2.0]),
            (vec![], vec![]),
            (vec![1], vec![3.0]),
        ];
        let m = assemble_rows(3, 3, rows);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 2), Some(2.0));
        assert_eq!(m.get(2, 1), Some(3.0));
        assert!(m.validate().is_ok());
    }

    #[test]
    fn row_flop_matches_manual_count() {
        let a = Coo::from_entries(2, 3, vec![(0, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0)])
            .unwrap()
            .to_csr();
        let b = Coo::from_entries(
            3,
            2,
            vec![(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (2, 1, 1.0)],
        )
        .unwrap()
        .to_csr();
        assert_eq!(row_flop(&a, &b, 0), 3);
        assert_eq!(row_flop(&a, &b, 1), 1);
    }

    #[test]
    fn next_pow2_rounds_up() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(16), 16);
        assert_eq!(next_pow2(17), 32);
    }

    #[test]
    fn rowwise_multiply_runs_kernel_per_row() {
        // A trivial kernel that emits the diagonal with the row index as the
        // value proves the plumbing works.
        let a: Csr<f64> = Csr::identity(4);
        let b: Csr<f64> = Csr::identity(4);
        let c = rowwise_multiply::<PlusTimes<f64>, (), _, _>(
            &a,
            &b,
            || (),
            |_, i| (vec![i as Index], vec![i as f64]),
        );
        assert_eq!(c.nnz(), 4);
        assert_eq!(c.get(3, 3), Some(3.0));
    }
}
