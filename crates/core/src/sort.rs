//! In-cache sorting of the binned tuples (Sec. III-D of the paper).
//!
//! Every bin is sorted independently — bins never share a `(row, col)` key —
//! so threads pick up whole bins in parallel and sort them while the bin is
//! resident in cache.  The sort key is the packed `(row-in-bin, col)` integer
//! produced by [`BinLayout::pack`](crate::bins::BinLayout::pack); the number
//! of radix passes adapts to the number of significant key bytes, which is
//! the paper's key-compression optimisation (usually 4 bytes or fewer, so 4
//! passes instead of 8).
//!
//! Three sorters are provided:
//!
//! * [`SortAlgorithm::LsdRadix`] — least-significant-digit radix sort with a
//!   scratch buffer (default);
//! * [`SortAlgorithm::AmericanFlag`] — in-place MSD byte sort (McIlroy,
//!   Bostic & McIlroy), the variant the paper cites;
//! * [`SortAlgorithm::Comparison`] — `sort_unstable_by_key`, the correctness
//!   oracle and an ablation point.
//!
//! # SIMD kernels, digit planning and software prefetch
//!
//! On any non-scalar [`Isa`] level, a bin above [`simd::SIMD_MIN_LEN`]
//! takes a *planned* LSD path: one [`simd::key_bits`] OR-reduction measures
//! the keys' actual significant width (packed bin keys are usually well
//! under their declared byte count), [`simd::plan_lsd`] schedules the
//! fewest balanced digit passes that cover it (e.g. two 10-bit passes for
//! 19-bit keys where the byte path takes three), and one
//! [`simd::fused_histograms`] sweep fills every pass's counting table
//! against a single vectorised read of the data.  The scatter passes write
//! through unchecked cursors — each cursor is bounded by the pass's own
//! histogram prefix sum, see `scatter_prefetched` — and hint the
//! destination stream with a software prefetch on every fourth entry,
//! peeking `SCATTER_PREFETCH_AHEAD` entries ahead.  Keys too wide for the
//! plan (over `FUSED_MAX_PASSES · FUSED_MAX_DIGIT_BITS` bits) fall back to
//! the classic per-byte passes, whose histogram still dispatches through
//! [`simd::byte_histogram`] (as does the american-flag MSD partition
//! count).  The scalar level runs the pre-SIMD per-byte code verbatim —
//! fallback and bitwise oracle: a stable LSD sort's result depends only on
//! the key order and input order, not on how the significant bits are cut
//! into digits, so the planned path is a bitwise no-op relative to scalar.
//! Every kernel invocation is counted into [`KernelCounters`] and merged
//! into [`PhaseStats::isa`](crate::profile::PhaseStats::isa), so telemetry
//! proves which path ran.  The safety argument for the intrinsics lives in
//! the [`simd`] module doc: the kernels here only ever pass in-bounds
//! slices, and the prefetch addresses are computed with `wrapping_add`
//! because prefetch hints are architecturally defined never to fault.

use rayon::prelude::*;

use crate::bins::{BinnedTuples, Entry};
use crate::config::SortAlgorithm;
use crate::profile::StatsCollector;
use crate::simd::{self, Isa, KernelCounters};
use crate::workspace::ScratchSlabs;

/// A bin smaller than this is never worth splitting across threads.
///
/// Note the in-bin parallel path is *doubly* gated: it also requires fewer
/// bins than pool threads (see [`sort_bins`]).  On the committed benchmark
/// corpus that first gate never opens — bins are sized to L2, so a
/// 2.3 Mflop smoke product needs ceil(2.3e6·16 B / 1 MiB) ≈ 35 bins, an
/// order of magnitude more than the 4-thread CI pool — which is why
/// `par_sorted_bins` is legitimately 0 on every committed corpus point.
/// The threshold itself is right where it should be: one bin of
/// `PAR_BIN_MIN` entries is ~256 KiB of tuples, below which the sequential
/// sorter finishes before the MSD partition pass would even pay for itself.
/// The few-huge-bins regime it protects is covered by the
/// `in_bin_parallel_sort_engages_on_few_huge_bins` regression test.
pub const PAR_BIN_MIN: usize = 1 << 14;

/// How many entries ahead of the write cursor the LSD scatter peeks to
/// prefetch its destination stream (non-scalar ISA levels only; one hint
/// per four entries — a 16-byte entry stream needs at most one hint per
/// destination cache line, and hinting every entry measurably costs more
/// than the misses it hides on cache-resident bins).
pub(crate) const SCATTER_PREFETCH_AHEAD: usize = 16;

/// Sorts every bin of the expanded matrix by its packed key, allocating
/// LSD-radix scratch per bin from the heap and dispatching SIMD kernels at
/// the process-wide [`simd::active`] level.
///
/// The pipeline itself runs [`sort_bins_slabbed_with`] instead, which
/// leases the scratch from the multiply's [`Workspace`](crate::Workspace)
/// slabs and resolves the ISA level from the config; this entry point
/// serves direct callers (benchmarks, tests) that have no workspace at
/// hand.
pub fn sort_bins<V: Copy + Send + Sync>(
    tuples: &mut BinnedTuples<V>,
    algorithm: SortAlgorithm,
    stats: &StatsCollector,
) {
    sort_bins_impl(tuples, algorithm, simd::active(), stats, None)
}

/// [`sort_bins`] at an explicit [`Isa`] dispatch level.
pub fn sort_bins_with<V: Copy + Send + Sync>(
    tuples: &mut BinnedTuples<V>,
    algorithm: SortAlgorithm,
    isa: Isa,
    stats: &StatsCollector,
) {
    sort_bins_impl(tuples, algorithm, isa, stats, None)
}

/// Sorts every bin, leasing LSD-radix scratch from per-NUMA-domain slabs,
/// at the process-wide [`simd::active`] dispatch level.
///
/// A worker sorting a bin draws scratch from *its own domain's* slab (see
/// [`ScratchSlabs::lease`]), so the sort phase's scratch streams stay
/// socket-local on a NUMA host even though the bins themselves are claimed
/// freely.  A lease that cannot be served (impossible under
/// [`scratch_target_len`](crate::workspace::scratch_target_len) sizing)
/// falls back to the heap and is *counted* into
/// [`PhaseStats::bytes_allocated`](crate::profile::PhaseStats::bytes_allocated).
pub fn sort_bins_slabbed<V: Copy + Send + Sync>(
    tuples: &mut BinnedTuples<V>,
    algorithm: SortAlgorithm,
    stats: &StatsCollector,
    slabs: &ScratchSlabs<'_, V>,
) {
    sort_bins_impl(tuples, algorithm, simd::active(), stats, Some(slabs))
}

/// [`sort_bins_slabbed`] at an explicit [`Isa`] dispatch level.
pub fn sort_bins_slabbed_with<V: Copy + Send + Sync>(
    tuples: &mut BinnedTuples<V>,
    algorithm: SortAlgorithm,
    isa: Isa,
    stats: &StatsCollector,
    slabs: &ScratchSlabs<'_, V>,
) {
    sort_bins_impl(tuples, algorithm, isa, stats, Some(slabs))
}

/// Sorts every bin of the expanded matrix by its packed key.
///
/// Whole bins are distributed across the pool's threads.  When there are
/// *fewer* bins than threads (small products, or a single-bin
/// configuration) per-bin parallelism cannot keep the pool busy, so large
/// bins are additionally sorted with in-bin parallelism: one MSD byte
/// partition whose 256 buckets are then sorted concurrently (radix
/// algorithms), or a parallel comparison sort.  Every bin taking the in-bin
/// parallel path is counted into `stats`
/// ([`PhaseStats::par_sorted_bins`](crate::profile::PhaseStats::par_sorted_bins)).
fn sort_bins_impl<V: Copy + Send + Sync>(
    tuples: &mut BinnedTuples<V>,
    algorithm: SortAlgorithm,
    isa: Isa,
    stats: &StatsCollector,
    slabs: Option<&ScratchSlabs<'_, V>>,
) {
    let key_bytes = tuples.layout.key_bytes() as usize;
    let nbins = tuples.layout.nbins;
    let split_within_bins = nbins < rayon::current_num_threads();

    // Split borrows: the offsets stay readable while the entry buffer is
    // carved into disjoint per-bin mutable slices (no staging clone).
    let BinnedTuples {
        entries,
        bin_offsets: offsets,
        ..
    } = tuples;
    let mut slices: Vec<&mut [Entry<V>]> = Vec::with_capacity(nbins);
    let mut rest: &mut [Entry<V>] = entries;
    let mut consumed = 0usize;
    for b in 0..nbins {
        let len = offsets[b + 1] - offsets[b];
        debug_assert_eq!(consumed, offsets[b]);
        let (seg, r) = rest.split_at_mut(len);
        slices.push(seg);
        rest = r;
        consumed += len;
    }

    // Bin claiming is deliberately *not* domain-routed: a bin's buffer
    // interleaves one sub-segment per domain (see `crate::symbolic`), so no
    // assignment of whole bins to domains could make the sort's *data*
    // reads local — every bin is a mixed-domain read regardless, and free
    // claiming keeps the phase's load balancing.  The scratch stream *is*
    // domain-local: each worker leases from its own domain's slab.
    slices.into_par_iter().for_each(|seg| {
        let scratch = lease_scratch(slabs, seg.len(), algorithm, stats);
        if split_within_bins && seg.len() >= PAR_BIN_MIN {
            stats.record_par_sorted_bin();
            par_sort_slice_in(seg, key_bytes, algorithm, isa, scratch, Some(stats))
        } else {
            // Kernel invocations accumulate in a thread-local counter and
            // merge once per bin — the hot loops never touch an atomic.
            let mut ctr = KernelCounters::default();
            sort_slice_in(seg, key_bytes, algorithm, isa, scratch, &mut ctr);
            stats.record_sort_kernels(&ctr);
        }
    });
}

/// Leases `len` scratch entries for one bin when the algorithm will use
/// them (LSD radix above the insertion-sort cutoff); counts the heap
/// fallback when the slabs cannot serve the lease.
fn lease_scratch<'s, V: Copy + Send>(
    slabs: Option<&ScratchSlabs<'s, V>>,
    len: usize,
    algorithm: SortAlgorithm,
    stats: &StatsCollector,
) -> Option<&'s mut [Entry<V>]> {
    if algorithm != SortAlgorithm::LsdRadix || len <= SMALL_SORT {
        return None;
    }
    let slabs = slabs?;
    let leased = slabs.lease(len);
    if leased.is_none() {
        // The sorter below will fall back to `to_vec`; account for it.
        stats.record_workspace((len * std::mem::size_of::<Entry<V>>()) as u64, 0, false);
    }
    leased
}

/// Sorts one large bin with in-bin parallelism (same result as
/// [`sort_slice`], different schedule), dispatching SIMD kernels at the
/// process-wide [`simd::active`] level.
///
/// For the radix algorithms the bin is partitioned once by its most
/// significant key byte — a counting pass plus in-place cycle permutation —
/// and the 256 resulting buckets, which are already mutually ordered, are
/// finished independently in parallel with the configured algorithm on the
/// remaining bytes.  The comparison sort delegates to the pool's parallel
/// quicksort.
pub fn par_sort_slice<V: Copy + Send>(
    seg: &mut [Entry<V>],
    key_bytes: usize,
    algorithm: SortAlgorithm,
) {
    par_sort_slice_in(seg, key_bytes, algorithm, simd::active(), None, None)
}

/// One MSD bucket of a parallel in-bin sort, paired with its (optional)
/// piece of the bin's leased scratch.
type BucketTask<'a, V> = (&'a mut [Entry<V>], Option<&'a mut [Entry<V>]>);

/// [`par_sort_slice`] with an explicit ISA level, optional pre-leased LSD
/// scratch of at least `seg.len()` entries (`None`, and the non-scratch
/// algorithms, allocate as before), and an optional collector to merge the
/// per-bucket kernel counters into.
fn par_sort_slice_in<V: Copy + Send>(
    seg: &mut [Entry<V>],
    key_bytes: usize,
    algorithm: SortAlgorithm,
    isa: Isa,
    scratch: Option<&mut [Entry<V>]>,
    stats: Option<&StatsCollector>,
) {
    let key_bytes = key_bytes.clamp(1, 8);
    match algorithm {
        SortAlgorithm::Comparison => seg.par_sort_unstable_by_key(|e| e.key),
        SortAlgorithm::LsdRadix | SortAlgorithm::AmericanFlag => {
            let mut top_ctr = KernelCounters::default();
            if key_bytes == 1 {
                // Single significant byte: the MSD partition *is* the sort.
                flag_sort_level(seg, 0, isa, &mut top_ctr);
                if let Some(stats) = stats {
                    stats.record_sort_kernels(&top_ctr);
                }
                return;
            }
            let top = (key_bytes - 1) as u32;
            let (starts, ends) = msd_partition(seg, top, isa, &mut top_ctr);
            if let Some(stats) = stats {
                stats.record_sort_kernels(&top_ctr);
            }
            // Carve the bucket sub-slices (disjoint by construction), and
            // the scratch into matching pieces when one was leased.
            let mut buckets: Vec<BucketTask<'_, V>> = Vec::with_capacity(256);
            let mut rest: &mut [Entry<V>] = seg;
            let mut scratch_rest: Option<&mut [Entry<V>]> = scratch;
            let mut consumed = 0usize;
            for bucket in 0..256 {
                let len = ends[bucket] - starts[bucket];
                let (b, r) = rest.split_at_mut(len);
                rest = r;
                let piece = match scratch_rest.take() {
                    Some(s) => {
                        let (piece, r) = s.split_at_mut(len);
                        scratch_rest = Some(r);
                        Some(piece)
                    }
                    None => None,
                };
                buckets.push((b, piece));
                consumed += len;
            }
            debug_assert_eq!(consumed, ends[255]);
            buckets.into_par_iter().for_each(|(b, piece)| {
                if b.len() > 1 {
                    let mut ctr = KernelCounters::default();
                    match algorithm {
                        // Buckets share the top byte, so ordering the
                        // remaining low bytes completes the sort.
                        SortAlgorithm::LsdRadix => {
                            lsd_radix_sort_in(b, key_bytes - 1, isa, piece, &mut ctr)
                        }
                        _ => flag_sort_level(b, top - 1, isa, &mut ctr),
                    }
                    if let Some(stats) = stats {
                        stats.record_sort_kernels(&ctr);
                    }
                }
            });
        }
    }
}

/// Sorts one bin's tuples by key with the selected algorithm, dispatching
/// SIMD kernels at the process-wide [`simd::active`] level.
pub fn sort_slice<V: Copy>(seg: &mut [Entry<V>], key_bytes: usize, algorithm: SortAlgorithm) {
    sort_slice_with(seg, key_bytes, algorithm, simd::active())
}

/// [`sort_slice`] at an explicit [`Isa`] dispatch level — the entry point
/// the differential tests iterate over every supported level.
pub fn sort_slice_with<V: Copy>(
    seg: &mut [Entry<V>],
    key_bytes: usize,
    algorithm: SortAlgorithm,
    isa: Isa,
) {
    let mut ctr = KernelCounters::default();
    sort_slice_in(seg, key_bytes, algorithm, isa, None, &mut ctr)
}

/// [`sort_slice_with`] with optional pre-leased LSD scratch, counting
/// kernel invocations into `ctr`.
fn sort_slice_in<V: Copy>(
    seg: &mut [Entry<V>],
    key_bytes: usize,
    algorithm: SortAlgorithm,
    isa: Isa,
    scratch: Option<&mut [Entry<V>]>,
    ctr: &mut KernelCounters,
) {
    match algorithm {
        SortAlgorithm::Comparison => seg.sort_unstable_by_key(|e| e.key),
        SortAlgorithm::LsdRadix => lsd_radix_sort_in(seg, key_bytes, isa, scratch, ctr),
        SortAlgorithm::AmericanFlag => american_flag_sort_with(seg, key_bytes, isa, ctr),
    }
}

/// Threshold below which radix sorters fall back to insertion sort.
/// `pub(crate)` so the pipeline can skip the scratch lease entirely for
/// products whose every bin insertion-sorts.
pub(crate) const SMALL_SORT: usize = 48;

fn insertion_sort<V: Copy>(seg: &mut [Entry<V>]) {
    for i in 1..seg.len() {
        let item = seg[i];
        let mut j = i;
        while j > 0 && seg[j - 1].key > item.key {
            seg[j] = seg[j - 1];
            j -= 1;
        }
        seg[j] = item;
    }
}

/// LSD radix sort: one stable counting-sort pass per significant key byte,
/// ping-ponging between the bin and a scratch buffer allocated here; SIMD
/// kernels dispatch at the process-wide [`simd::active`] level.
pub fn lsd_radix_sort<V: Copy>(seg: &mut [Entry<V>], key_bytes: usize) {
    let mut ctr = KernelCounters::default();
    lsd_radix_sort_in(seg, key_bytes, simd::active(), None, &mut ctr)
}

/// [`lsd_radix_sort`] with an explicit ISA level and an optional
/// caller-provided scratch buffer of at least `seg.len()` initialised
/// entries (a workspace slab lease); `None` allocates its own.
fn lsd_radix_sort_in<V: Copy>(
    seg: &mut [Entry<V>],
    key_bytes: usize,
    isa: Isa,
    scratch: Option<&mut [Entry<V>]>,
    ctr: &mut KernelCounters,
) {
    if seg.len() <= SMALL_SORT {
        insertion_sort(seg);
        return;
    }
    match scratch {
        Some(scratch) => lsd_radix_passes(seg, key_bytes, isa, &mut scratch[..seg.len()], ctr),
        None => {
            let mut scratch: Vec<Entry<V>> = seg.to_vec();
            lsd_radix_passes(seg, key_bytes, isa, &mut scratch, ctr);
        }
    }
}

/// The counting-sort passes shared by both scratch sources.
fn lsd_radix_passes<V: Copy>(
    seg: &mut [Entry<V>],
    key_bytes: usize,
    isa: Isa,
    scratch: &mut [Entry<V>],
    ctr: &mut KernelCounters,
) {
    debug_assert_eq!(seg.len(), scratch.len());
    let key_bytes = key_bytes.clamp(1, 8);
    if isa != Isa::Scalar
        && seg.len() >= simd::SIMD_MIN_LEN
        && fused_lsd_passes(seg, key_bytes, isa, scratch, ctr)
    {
        return;
    }
    // Tracks whether the current data lives in `seg` (true) or `scratch`.
    let mut data_in_seg = true;
    {
        let mut src: &mut [Entry<V>] = seg;
        let mut dst: &mut [Entry<V>] = scratch;
        for pass in 0..key_bytes {
            let shift = 8 * pass as u32;
            let counts = simd::byte_histogram(isa, src, shift, ctr);
            // Skip passes where every key shares the same byte value.
            if counts.contains(&src.len()) {
                continue;
            }
            let mut offsets = [0usize; 256];
            let mut acc = 0usize;
            for (o, &c) in offsets.iter_mut().zip(&counts) {
                *o = acc;
                acc += c;
            }
            if isa != Isa::Scalar && src.len() > SCATTER_PREFETCH_AHEAD {
                scatter_prefetched(src, dst, shift, 0xFF, &mut offsets, ctr);
            } else {
                for e in src.iter() {
                    let b = ((e.key >> shift) & 0xFF) as usize;
                    dst[offsets[b]] = *e;
                    offsets[b] += 1;
                }
            }
            std::mem::swap(&mut src, &mut dst);
            data_in_seg = !data_in_seg;
        }
    }
    if !data_in_seg {
        seg.copy_from_slice(scratch);
    }
}

/// The digit-planned fused LSD path (non-scalar levels, large bins).
/// Measures the keys' significant width, schedules the fewest balanced
/// digit passes that cover it, fills every pass's counting table in one
/// fused sweep, then runs the scatter passes.  Returns `false` (having
/// touched nothing but the width probe) when the width exceeds the plan's
/// reach and the caller must fall back to the per-byte passes.
///
/// Bit-identity with the scalar oracle: both are stable LSD sorts whose
/// digit sequences jointly cover every bit position on which any two keys
/// differ — the scalar path covers bits `[0, 8·key_bytes)` byte-wise, this
/// path covers `[0, B)` where `B` is the measured width (all keys agree,
/// on zero, at and above `B`; the engine-level clamp `min(B, 8·key_bytes)`
/// keeps even a mis-declared `key_bytes` behaviourally identical to the
/// scalar path, which cannot see those bits either).  A stable LSD sort's
/// final permutation depends only on the key order and the input order,
/// never on how the covered bits are cut into digits, so both paths place
/// the exact same entries in the exact same slots.
fn fused_lsd_passes<V: Copy>(
    seg: &mut [Entry<V>],
    key_bytes: usize,
    isa: Isa,
    scratch: &mut [Entry<V>],
    ctr: &mut KernelCounters,
) -> bool {
    let n = seg.len();
    let bits = simd::key_bits(isa, seg).min(8 * key_bytes as u32);
    // Cap the digit width at ⌊log2 n⌋ so the counting tables never dwarf
    // the bin they serve (a 4096-bucket table for a 1 K-entry bin would be
    // all setup and no counting).
    let digit_cap = (usize::BITS - 1 - n.leading_zeros()).min(simd::FUSED_MAX_DIGIT_BITS);
    let Some(plan) = simd::plan_lsd(bits, digit_cap) else {
        return false;
    };
    if plan.passes == 0 {
        // Every key is zero: stably sorted already.
        return true;
    }
    let mut tables: simd::FusedTables = [[0; simd::FUSED_RADIX]; simd::FUSED_MAX_PASSES];
    simd::fused_histograms(isa, seg, &plan, &mut tables, ctr);
    let mask = plan.digit_mask();
    let mut data_in_seg = true;
    {
        let mut src: &mut [Entry<V>] = seg;
        let mut dst: &mut [Entry<V>] = scratch;
        for (pass, counts) in tables[..plan.passes].iter().enumerate() {
            let counts = &counts[..plan.radix()];
            // Skip passes where every key shares the same digit value.
            if counts.contains(&n) {
                continue;
            }
            let mut offsets = [0usize; simd::FUSED_RADIX];
            let mut acc = 0usize;
            for (o, &c) in offsets[..plan.radix()].iter_mut().zip(counts) {
                *o = acc;
                acc += c;
            }
            scatter_prefetched(src, dst, plan.shift(pass), mask, &mut offsets, ctr);
            std::mem::swap(&mut src, &mut dst);
            data_in_seg = !data_in_seg;
        }
    }
    if !data_in_seg {
        seg.copy_from_slice(scratch);
    }
    true
}

/// One stable counting-scatter pass over the digit `(key >> shift) & mask`,
/// hinting the destination stream with a software prefetch on every fourth
/// entry: the writes land at roaming per-bucket cursors the hardware
/// prefetcher cannot track, and peeking at the key
/// [`SCATTER_PREFETCH_AHEAD`] entries ahead reveals the destination line
/// early enough to hint it.  A hinted address may be stale by the time the
/// write lands (other buckets advance the cursor) — that only wastes the
/// hint, never correctness — and the pointer is computed with
/// `wrapping_add` because prefetch hints cannot fault (see `crate::simd`).
///
/// The data writes go through unchecked cursors.
///
/// # Safety (discharged internally)
///
/// `offsets` must be the exclusive prefix sum of the digit histogram of
/// *this* `src` under *this* `(shift, mask)` — exactly how both callers
/// build it.  Bucket `b`'s cursor then starts at `starts[b]`, is
/// incremented once per entry whose digit is `b` (of which the histogram
/// counted exactly `counts[b]`), and therefore never reaches
/// `starts[b] + counts[b] = starts[b+1] ≤ dst.len()`: every write is in
/// bounds by construction, which is why the bound check can be elided on
/// this, the single hottest store in the whole multiply.
fn scatter_prefetched<V: Copy>(
    src: &[Entry<V>],
    dst: &mut [Entry<V>],
    shift: u32,
    mask: u64,
    offsets: &mut [usize],
    ctr: &mut KernelCounters,
) {
    let n = src.len();
    debug_assert_eq!(n, dst.len());
    debug_assert!(src
        .iter()
        .all(|e| ((e.key >> shift) & mask) < offsets.len() as u64));
    ctr.prefetched_scatters += 1;
    let dst_base = dst.as_mut_ptr();
    for i in 0..n {
        if i % 4 == 0 && i + SCATTER_PREFETCH_AHEAD < n {
            let ahead = ((src[i + SCATTER_PREFETCH_AHEAD].key >> shift) & mask) as usize;
            simd::prefetch_write(dst.as_ptr().wrapping_add(offsets[ahead]));
        }
        let e = src[i];
        let b = ((e.key >> shift) & mask) as usize;
        // SAFETY: offsets[b] < dst.len() by the prefix-sum invariant above.
        unsafe { *dst_base.add(offsets[b]) = e };
        offsets[b] += 1;
    }
}

/// In-place MSD radix sort ("American flag sort"): permutes entries into 256
/// buckets of the most significant byte, then recurses into each bucket;
/// SIMD kernels dispatch at the process-wide [`simd::active`] level.
pub fn american_flag_sort<V: Copy>(seg: &mut [Entry<V>], key_bytes: usize) {
    let mut ctr = KernelCounters::default();
    american_flag_sort_with(seg, key_bytes, simd::active(), &mut ctr)
}

/// [`american_flag_sort`] with an explicit ISA level, counting kernel
/// invocations into `ctr`.
fn american_flag_sort_with<V: Copy>(
    seg: &mut [Entry<V>],
    key_bytes: usize,
    isa: Isa,
    ctr: &mut KernelCounters,
) {
    let key_bytes = key_bytes.clamp(1, 8);
    flag_sort_level(seg, (key_bytes - 1) as u32, isa, ctr);
}

/// Partitions `seg` into 256 buckets of key byte `byte` (in-place
/// cycle-following permutation); returns each bucket's `[start, end)`
/// boundaries.
fn msd_partition<V: Copy>(
    seg: &mut [Entry<V>],
    byte: u32,
    isa: Isa,
    ctr: &mut KernelCounters,
) -> ([usize; 256], [usize; 256]) {
    let shift = 8 * byte;
    let counts = simd::byte_histogram(isa, seg, shift, ctr);
    let mut starts = [0usize; 256];
    let mut ends = [0usize; 256];
    let mut acc = 0usize;
    for i in 0..256 {
        starts[i] = acc;
        acc += counts[i];
        ends[i] = acc;
    }
    // Cycle-following permutation: place every element into its bucket.
    let mut heads = starts;
    for bucket in 0..256 {
        while heads[bucket] < ends[bucket] {
            let mut e = seg[heads[bucket]];
            loop {
                let target = ((e.key >> shift) & 0xFF) as usize;
                if target == bucket {
                    break;
                }
                let dst = heads[target];
                heads[target] += 1;
                std::mem::swap(&mut seg[dst], &mut e);
            }
            seg[heads[bucket]] = e;
            heads[bucket] += 1;
        }
    }
    (starts, ends)
}

fn flag_sort_level<V: Copy>(seg: &mut [Entry<V>], byte: u32, isa: Isa, ctr: &mut KernelCounters) {
    if seg.len() <= SMALL_SORT {
        insertion_sort(seg);
        return;
    }
    let (starts, ends) = msd_partition(seg, byte, isa, ctr);
    if byte > 0 {
        for bucket in 0..256 {
            let (lo, hi) = (starts[bucket], ends[bucket]);
            if hi - lo > 1 {
                flag_sort_level(&mut seg[lo..hi], byte - 1, isa, ctr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::BinLayout;
    use crate::config::BinMapping;
    use pb_gen::Xoshiro256pp;

    fn random_entries(n: usize, key_bits: u32, seed: u64) -> Vec<Entry<u64>> {
        let mut rng = Xoshiro256pp::new(seed);
        (0..n)
            .map(|i| {
                let key = rng.next_u64() & ((1u64 << key_bits) - 1);
                Entry { key, val: i as u64 }
            })
            .collect()
    }

    fn is_sorted<V>(seg: &[Entry<V>]) -> bool {
        seg.windows(2).all(|w| w[0].key <= w[1].key)
    }

    #[test]
    fn all_sorters_agree_with_comparison_sort() {
        for &bits in &[8u32, 20, 31, 48, 63] {
            let original = random_entries(3000, bits, bits as u64);
            let key_bytes = (bits as usize).div_ceil(8);

            let mut expected = original.clone();
            expected.sort_by_key(|e| e.key);
            let expected_keys: Vec<u64> = expected.iter().map(|e| e.key).collect();

            for algo in [
                SortAlgorithm::LsdRadix,
                SortAlgorithm::AmericanFlag,
                SortAlgorithm::Comparison,
            ] {
                let mut data = original.clone();
                sort_slice(&mut data, key_bytes, algo);
                assert!(is_sorted(&data), "{algo:?} failed to sort {bits}-bit keys");
                let keys: Vec<u64> = data.iter().map(|e| e.key).collect();
                assert_eq!(
                    keys, expected_keys,
                    "{algo:?} produced a different permutation"
                );
            }
        }
    }

    #[test]
    fn all_isa_levels_sort_bitwise_identically() {
        // The tentpole's core promise: every dispatch level, under every
        // algorithm, is a *bitwise* no-op relative to the scalar oracle —
        // not just "also sorted" (radix sorts are stable, so the full
        // entry permutation must match, values included).
        for &bits in &[8u32, 20, 31, 48] {
            let original = random_entries(20_000, bits, 400 + bits as u64);
            let key_bytes = (bits as usize).div_ceil(8);
            for algo in [
                SortAlgorithm::LsdRadix,
                SortAlgorithm::AmericanFlag,
                SortAlgorithm::Comparison,
            ] {
                let mut oracle = original.clone();
                sort_slice_with(&mut oracle, key_bytes, algo, Isa::Scalar);
                for isa in Isa::supported() {
                    let mut data = original.clone();
                    sort_slice_with(&mut data, key_bytes, algo, isa);
                    assert_eq!(data, oracle, "{algo:?} under {isa} diverged from scalar");
                }
            }
        }
    }

    #[test]
    fn sort_telemetry_proves_the_dispatched_path() {
        // One large single-byte-key bin: big enough for the SIMD histogram
        // cutoff and the prefetched scatter.  The counters must say which
        // path ran — that is the whole point of the IsaDispatch record.
        let layout = BinLayout::new(30, 16, 1, BinMapping::Range);
        let mut rng = Xoshiro256pp::new(21);
        let n = 20_000usize;
        let entries: Vec<Entry<u64>> = (0..n)
            .map(|i| Entry {
                key: rng.next_u64() & 0xFF,
                val: i as u64,
            })
            .collect();
        for isa in Isa::supported() {
            let mut tuples = BinnedTuples {
                entries: entries.clone(),
                bin_offsets: vec![0, n],
                compressed_len: vec![n],
                layout: layout.clone(),
            };
            let stats = StatsCollector::new();
            sort_bins_with(&mut tuples, SortAlgorithm::LsdRadix, isa, &stats);
            assert!(is_sorted(&tuples.entries));
            let snap = stats.snapshot();
            if isa == Isa::Scalar {
                assert!(snap.isa.scalar_histograms > 0);
                assert_eq!(snap.isa.simd_histograms, 0);
                assert_eq!(snap.isa.prefetched_scatters, 0);
            } else {
                assert!(snap.isa.simd_histograms > 0, "{isa} must count SIMD");
                assert!(snap.isa.prefetched_scatters > 0, "{isa} must prefetch");
            }
        }
    }

    #[test]
    fn radix_sorts_keep_key_value_pairs_together() {
        // Values encode the original key so any mismatch is detected.
        let mut rng = Xoshiro256pp::new(3);
        let original: Vec<Entry<u64>> = (0..5000)
            .map(|_| {
                let key = rng.next_u64() & 0xFFFF_FFFF;
                Entry {
                    key,
                    val: key ^ 0xDEAD_BEEF,
                }
            })
            .collect();
        for algo in [SortAlgorithm::LsdRadix, SortAlgorithm::AmericanFlag] {
            for isa in Isa::supported() {
                let mut data = original.clone();
                sort_slice_with(&mut data, 4, algo, isa);
                assert!(data.iter().all(|e| e.val == e.key ^ 0xDEAD_BEEF));
            }
        }
    }

    #[test]
    fn small_and_degenerate_inputs() {
        for algo in [
            SortAlgorithm::LsdRadix,
            SortAlgorithm::AmericanFlag,
            SortAlgorithm::Comparison,
        ] {
            let mut empty: Vec<Entry<f64>> = Vec::new();
            sort_slice(&mut empty, 4, algo);

            let mut one = vec![Entry { key: 7, val: 1.0 }];
            sort_slice(&mut one, 4, algo);
            assert_eq!(one[0].key, 7);

            let mut dup = vec![Entry { key: 5, val: 1.0 }; 100];
            sort_slice(&mut dup, 4, algo);
            assert!(is_sorted(&dup));

            let mut rev: Vec<Entry<u32>> = (0..200)
                .rev()
                .map(|k| Entry {
                    key: k as u64,
                    val: k,
                })
                .collect();
            sort_slice(&mut rev, 1, algo);
            assert!(is_sorted(&rev));
            assert_eq!(rev[0].val, 0);
        }
    }

    #[test]
    fn sort_bins_sorts_each_bin_independently() {
        // Three bins with interleaved keys; after sorting, each bin is
        // ordered but bins keep their own ranges.
        // 4 row bits + 4 column bits per key: one significant key byte.
        let layout = BinLayout::new(30, 16, 3, BinMapping::Range);
        assert_eq!(layout.key_bytes(), 1);
        let mut rng = Xoshiro256pp::new(9);
        let mut entries = Vec::new();
        let mut bin_offsets = vec![0usize];
        for _bin in 0..3 {
            for _ in 0..200 {
                entries.push(Entry {
                    key: rng.next_u64() & 0xFF,
                    val: 1.0f64,
                });
            }
            bin_offsets.push(entries.len());
        }
        let mut tuples = BinnedTuples {
            entries,
            bin_offsets: bin_offsets.clone(),
            compressed_len: vec![200, 200, 200],
            layout,
        };
        sort_bins(
            &mut tuples,
            SortAlgorithm::LsdRadix,
            &crate::profile::StatsCollector::new(),
        );
        for b in 0..3 {
            assert!(is_sorted(
                &tuples.entries[bin_offsets[b]..bin_offsets[b + 1]]
            ));
        }
    }

    #[test]
    fn in_bin_parallel_sort_engages_on_few_huge_bins() {
        // Regression guard for the `par_sorted_bins` path (satellite of
        // ISSUE 7): the corpus never reaches it because bins sized to L2
        // always outnumber the pool threads (see the `PAR_BIN_MIN` doc),
        // so this synthetic few-huge-bins input is the only coverage that
        // the double gate — fewer bins than threads AND a bin at least
        // `PAR_BIN_MIN` entries — actually opens and gets counted.
        let layout = BinLayout::new(30, 16, 2, BinMapping::Range);
        let mut rng = Xoshiro256pp::new(17);
        let per_bin = PAR_BIN_MIN; // exactly at the threshold: >= engages
        let mut entries = Vec::new();
        let mut bin_offsets = vec![0usize];
        for _bin in 0..2 {
            for _ in 0..per_bin {
                entries.push(Entry {
                    key: rng.next_u64() & 0xFF,
                    val: 1.0f64,
                });
            }
            bin_offsets.push(entries.len());
        }
        let mut tuples = BinnedTuples {
            entries,
            bin_offsets: bin_offsets.clone(),
            compressed_len: vec![per_bin, per_bin],
            layout,
        };
        let stats = crate::profile::StatsCollector::new();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        pool.install(|| sort_bins(&mut tuples, SortAlgorithm::LsdRadix, &stats));
        assert_eq!(
            stats.snapshot().par_sorted_bins,
            2,
            "two huge bins under a 4-thread pool must both take the in-bin parallel path"
        );
        for b in 0..2 {
            assert!(is_sorted(
                &tuples.entries[bin_offsets[b]..bin_offsets[b + 1]]
            ));
        }
    }

    #[test]
    fn par_sort_slice_agrees_with_sequential_sort() {
        for &bits in &[8u32, 20, 31, 48] {
            let original = random_entries(60_000, bits, 1000 + bits as u64);
            let key_bytes = (bits as usize).div_ceil(8);
            let mut expected = original.clone();
            expected.sort_by_key(|e| e.key);
            let expected_keys: Vec<u64> = expected.iter().map(|e| e.key).collect();
            for threads in [1usize, 2, 4] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                for algo in [
                    SortAlgorithm::LsdRadix,
                    SortAlgorithm::AmericanFlag,
                    SortAlgorithm::Comparison,
                ] {
                    let mut data = original.clone();
                    pool.install(|| par_sort_slice(&mut data, key_bytes, algo));
                    let keys: Vec<u64> = data.iter().map(|e| e.key).collect();
                    assert_eq!(
                        keys, expected_keys,
                        "{algo:?} with {threads} threads on {bits}-bit keys"
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_pass_count_handles_keys_wider_than_declared() {
        // Keys fit in 3 bytes; telling the sorter 3 bytes must be enough.
        let original = random_entries(2000, 24, 77);
        let mut a = original.clone();
        lsd_radix_sort(&mut a, 3);
        let mut b = original.clone();
        american_flag_sort(&mut b, 3);
        assert!(is_sorted(&a));
        assert!(is_sorted(&b));
    }
}
