//! Column-wise expand–sort–compress (ESC) SpGEMM.
//!
//! This is the GPU-style ESC algorithm of Dalton et al. adapted to
//! multicore, included because the paper's access-pattern analysis
//! (Table II, second row) characterises it: the full expanded matrix `Ĉ` is
//! materialised in memory (one write and one read of `flop` tuples) before
//! it is sorted and compressed row by row.
//!
//! Unlike PB-SpGEMM there is no propagation blocking: tuples are grouped by
//! the *output row that produced them* (which is free, because the expansion
//! walks `A` row by row), not re-bucketed by row ranges sized to the cache.

use pb_sparse::semiring::{Numeric, PlusTimes, Semiring};
use pb_sparse::stats::flop_rows;
use pb_sparse::{Csr, Index};
use rayon::prelude::*;

/// Column-wise ESC SpGEMM under an arbitrary semiring.
pub fn esc_column_spgemm_with<S: Semiring>(a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem> {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "SpGEMM shape mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let nrows = a.nrows();
    let ncols = b.ncols();

    // ----- Symbolic: size the expanded matrix Ĉ --------------------------
    let per_row = flop_rows(a, b);
    let mut offsets = Vec::with_capacity(nrows + 1);
    offsets.push(0u64);
    for &f in &per_row {
        offsets.push(offsets.last().unwrap() + f);
    }
    let flop = *offsets.last().unwrap() as usize;

    // ----- Expand: write all tuples of Ĉ, grouped by output row ----------
    let mut expanded: Vec<(Index, S::Elem)> = vec![(0, S::zero()); flop];
    {
        // Hand each row its own disjoint segment of the expanded buffer.
        let mut segments: Vec<&mut [(Index, S::Elem)]> = Vec::with_capacity(nrows);
        let mut rest: &mut [(Index, S::Elem)] = &mut expanded;
        for &len in per_row.iter().take(nrows) {
            let (seg, r) = rest.split_at_mut(len as usize);
            segments.push(seg);
            rest = r;
        }
        segments.into_par_iter().enumerate().for_each(|(i, seg)| {
            let (a_cols, a_vals) = a.row(i);
            let mut w = 0usize;
            for (&k, &a_ik) in a_cols.iter().zip(a_vals) {
                let (b_cols, b_vals) = b.row(k as usize);
                for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
                    seg[w] = (j, S::mul(a_ik, b_kj));
                    w += 1;
                }
            }
            debug_assert_eq!(w, seg.len());
        });
    }

    // ----- Sort + compress each row segment of Ĉ --------------------------
    let rows: Vec<(Vec<Index>, Vec<S::Elem>)> = {
        let mut segments: Vec<&mut [(Index, S::Elem)]> = Vec::with_capacity(nrows);
        let mut rest: &mut [(Index, S::Elem)] = &mut expanded;
        for &len in per_row.iter().take(nrows) {
            let (seg, r) = rest.split_at_mut(len as usize);
            segments.push(seg);
            rest = r;
        }
        segments
            .into_par_iter()
            .map(|seg| {
                seg.sort_unstable_by_key(|&(c, _)| c);
                let mut cols: Vec<Index> = Vec::new();
                let mut vals: Vec<S::Elem> = Vec::new();
                for &(c, v) in seg.iter() {
                    match cols.last() {
                        Some(&last) if last == c => {
                            let slot = vals.last_mut().expect("values track cols");
                            *slot = S::add(*slot, v);
                        }
                        _ => {
                            cols.push(c);
                            vals.push(v);
                        }
                    }
                }
                (cols, vals)
            })
            .collect()
    };

    crate::util::assemble_rows(nrows, ncols, rows)
}

/// Column-wise ESC SpGEMM with ordinary `+`/`×`.
pub fn esc_column_spgemm<T: Numeric>(a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    esc_column_spgemm_with::<PlusTimes<T>>(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::{banded, erdos_renyi_square, rmat_square};
    use pb_sparse::reference::{csr_approx_eq, multiply_csr};

    #[test]
    fn matches_reference_on_random_matrices() {
        let er = erdos_renyi_square(8, 4, 21);
        let rm = rmat_square(8, 8, 22);
        let bd = banded(256, 11, 23);
        for m in [&er, &rm, &bd] {
            let expected = multiply_csr(m, m);
            assert!(csr_approx_eq(&esc_column_spgemm(m, m), &expected, 1e-9));
        }
    }

    #[test]
    fn output_is_canonical() {
        let a = rmat_square(7, 6, 24);
        let c = esc_column_spgemm(&a, &a);
        assert!(c.has_sorted_indices());
        assert!(!c.has_duplicates());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn empty_rows_are_handled() {
        let a = erdos_renyi_square(6, 1, 25);
        let expected = multiply_csr(&a, &a);
        assert!(csr_approx_eq(&esc_column_spgemm(&a, &a), &expected, 1e-9));

        let empty: Csr<f64> = Csr::empty(8, 8);
        assert_eq!(esc_column_spgemm(&empty, &empty).nnz(), 0);
    }
}
