//! Column-major scatter SpMV.
//!
//! The dual of the CSR kernel: the matrix is traversed column by column, so
//! reads of `A` and `x` both stream, but every nonzero scatters an update to
//! `y[row]` at a data-dependent position.  Running this in parallel requires
//! either atomics or per-thread copies of `y`; this implementation uses the
//! per-thread-copy (fold/reduce) formulation, which is exactly the
//! "unblocked" baseline that propagation blocking ([`crate::pb`]) improves
//! on: the reduction re-reads `nthreads` full-length vectors from memory.

use pb_sparse::semiring::{Numeric, PlusTimes, Semiring};
use pb_sparse::Csc;
use rayon::prelude::*;

/// Computes `y = A·x` under a semiring with `A` in CSC.
pub fn csc_spmv_with<S: Semiring>(a: &Csc<S::Elem>, x: &[S::Elem]) -> Vec<S::Elem> {
    assert_eq!(
        x.len(),
        a.ncols(),
        "x must have one element per matrix column"
    );
    let nrows = a.nrows();
    (0..a.ncols())
        .into_par_iter()
        .fold(
            || vec![S::zero(); nrows],
            |mut y, j| {
                let xj = x[j];
                let (rows, vals) = a.col(j);
                for (&r, &v) in rows.iter().zip(vals) {
                    let slot = &mut y[r as usize];
                    *slot = S::add(*slot, S::mul(v, xj));
                }
                y
            },
        )
        .reduce(
            || vec![S::zero(); nrows],
            |mut acc, partial| {
                for (a_i, p_i) in acc.iter_mut().zip(partial) {
                    *a_i = S::add(*a_i, p_i);
                }
                acc
            },
        )
}

/// Computes `y = A·x` with ordinary `+`/`×` over a numeric type.
pub fn csc_spmv<T: Numeric>(a: &Csc<T>, x: &[T]) -> Vec<T> {
    csc_spmv_with::<PlusTimes<T>>(a, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::csr_spmv;
    use pb_gen::{erdos_renyi_square, rmat_square};
    use pb_sparse::semiring::OrAnd;
    use pb_sparse::{Coo, Csr};

    #[test]
    fn small_matrix_by_hand() {
        let a = Coo::from_entries(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap();
        let y = csc_spmv(&a.to_csc(), &[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn agrees_with_the_csr_kernel() {
        for (scale, ef, seed) in [(7u32, 4u32, 1u64), (8, 8, 2)] {
            let a = erdos_renyi_square(scale, ef, seed);
            let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).sin()).collect();
            let y_csr = csr_spmv(&a, &x);
            let y_csc = csc_spmv(&a.to_csc(), &x);
            for (p, q) in y_csr.iter().zip(&y_csc) {
                assert!((p - q).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rectangular_shapes() {
        let a = pb_gen::erdos_renyi(&pb_gen::ErConfig {
            nrows: 40,
            ncols: 17,
            nnz_per_col: 3,
            seed: 5,
            random_values: true,
        });
        let x = vec![1.0; 17];
        let y = csc_spmv(&a.to_csc(), &x);
        assert_eq!(y.len(), 40);
        let expected = csr_spmv(&a, &x);
        for (p, q) in y.iter().zip(&expected) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn boolean_reachability_matches_csr() {
        let a = rmat_square(6, 4, 3).map_values(|_| true);
        let frontier: Vec<bool> = (0..a.ncols()).map(|i| i % 5 == 0).collect();
        assert_eq!(
            csc_spmv_with::<OrAnd>(&a.to_csc(), &frontier),
            crate::csr::csr_spmv_with::<OrAnd>(&a, &frontier)
        );
    }

    #[test]
    fn empty_matrix_yields_zero_vector() {
        let a = Csr::<f64>::empty(5, 3).to_csc();
        assert_eq!(csc_spmv(&a, &[1.0, 1.0, 1.0]), vec![0.0; 5]);
    }
}
