//! Minimal JSON emitter over the vendored serde shim.
//!
//! Supports the subset the workspace uses: [`to_string`] and
//! [`to_string_pretty`] over anything implementing the shim's
//! `serde::Serialize`. Output matches real `serde_json` conventions:
//! 2-space pretty indentation, `null` for `Option::None`, non-finite
//! floats serialized as `null`, and standard string escaping.

use serde::{Serialize, Value};

/// Serialization error; the shim's lowering is infallible, so this is never
/// produced, but the `Result` return keeps call sites source-compatible
/// with real `serde_json`.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: always include a decimal point or
                // exponent so the token re-parses as a float.
                let s = x.to_string();
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    out.push_str(&s);
                } else {
                    out.push_str(&s);
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_prints_nested_object() {
        #[derive(serde::Serialize)]
        struct Row {
            name: String,
            gflops: f64,
            threads: usize,
            note: Option<String>,
        }
        let row = Row {
            name: "pb".into(),
            gflops: 2.0,
            threads: 8,
            note: None,
        };
        let text = super::to_string_pretty(&row).unwrap();
        assert_eq!(
            text,
            "{\n  \"name\": \"pb\",\n  \"gflops\": 2.0,\n  \"threads\": 8,\n  \"note\": null\n}"
        );
    }

    #[test]
    fn compact_array_and_escaping() {
        let v = vec!["a\"b".to_string(), "c\nd".to_string()];
        assert_eq!(super::to_string(&v).unwrap(), "[\"a\\\"b\",\"c\\nd\"]");
    }
}
