//! # pb-spgemm — bandwidth-optimised SpGEMM with propagation blocking
//!
//! This crate implements **PB-SpGEMM**, the outer-product
//! expand–sort–compress sparse matrix–matrix multiplication of
//!
//! > Gu, Moreira, Edelsohn, Azad — *Bandwidth-Optimized Parallel Algorithms
//! > for Sparse Matrix-Matrix Multiplication using Propagation Blocking*,
//! > SPAA 2020.
//!
//! The multiplication `C = A·B` proceeds in four phases (Algorithm 2 of the
//! paper), each of which streams memory and therefore runs at close to the
//! machine's STREAM bandwidth:
//!
//! 1. **Symbolic** ([`symbolic`]) — a streaming pass over the offset arrays
//!    counts the flop of the multiplication, derives the number of
//!    propagation bins so that one bin fits in L2 cache, and sizes each bin
//!    exactly.
//! 2. **Expand** ([`expand`]) — outer products `A(:,i) × B(i,:)` generate
//!    `(row, col, value)` tuples which are *propagation-blocked*: buffered
//!    in small thread-private local bins and flushed to the per-row-range
//!    global bins in cache-line-sized chunks.
//! 3. **Sort** ([`sort`]) — every bin is radix-sorted in cache on a packed
//!    `(row, col)` key whose width adapts to the bin geometry.
//! 4. **Compress** ([`compress`]) + **assemble** ([`assemble`]) — duplicates
//!    are merged with a two-pointer scan and the result is written out as
//!    CSR.
//!
//! # Quick start
//!
//! There is exactly one blessed way to multiply: the [`SpGemm`] engine.
//!
//! ```
//! use pb_spgemm::SpGemm;
//! use pb_sparse::{Coo, Csr};
//!
//! let a: Csr<f64> = Coo::from_entries(4, 4, vec![
//!     (0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0), (3, 0, 5.0),
//! ]).unwrap().to_csr();
//!
//! let c = SpGemm::pb().multiply(&a, &a);
//! assert_eq!(c.nnz(), 4);                  // a permutation squared
//! assert_eq!(c.get(0, 2), Some(6.0));      // 2.0 * 3.0 along 0 -> 1 -> 2
//! ```
//!
//! `SpGemm::auto()` instead lets the telemetry-driven [`Planner`] pick
//! between PB-SpGEMM and the column baselines per multiply, from cheap
//! symbolic signals plus a persisted per-host calibration table.  The
//! algorithm is generic over a [`pb_sparse::Semiring`], so the same kernel
//! serves numeric SpGEMM, boolean reachability, tropical (min-plus)
//! products and counting semirings — see [`SpGemm::multiply_with`].
//!
//! The pre-engine free functions (`multiply`, `multiply_with`, …) have been
//! removed after their one-release deprecation window; `docs/API.md` keeps
//! the historical migration table mapping each one to its engine
//! equivalent.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assemble;
pub mod bins;
pub mod compress;
pub mod config;
pub mod engine;
pub mod error;
pub mod expand;
pub mod masked;
pub mod partitioned;
pub mod planner;
pub mod profile;
pub mod simd;
pub mod sort;
pub mod symbolic;
pub mod tiled;
pub mod topology;
pub mod trace;
pub mod workspace;

pub use bins::{BinLayout, BinnedTuples, Entry};
pub use config::{AutoTune, BinMapping, CompressSplit, ExpandStrategy, PbConfig, SortAlgorithm};
pub use engine::{Algorithm, Masked, ProfileSink, SpGemm, ALGORITHM_ENV};
pub use error::{validate_env, PbError};
pub use partitioned::{multiply_partitioned, multiply_partitioned_with};
pub use planner::{PlannedKernel, Planner, Signals};
pub use profile::{IsaDispatch, Phase, PhaseStats, PhaseTimings, SpGemmProfile, StatsCollector};
pub use simd::{Isa, SIMD_ENV};
pub use tiled::{TileKey, TileStore, TiledConfig, TiledReport, OOC_BUDGET_ENV};
pub use topology::{NumaDomain, Topology, TopologySource};
pub use trace::{
    ChromeTraceSummary, EventKind, HistogramSnapshot, LatencyHistogram, SpanName, TraceEvent,
    TraceSnapshot, LATENCY_BUCKETS, TRACE_ENV, TRACE_EVENTS_ENV,
};
pub use workspace::{Workspace, DECAY_AFTER_LOW_LEASES};

use std::time::Instant;

use pb_sparse::semiring::Semiring;
use pb_sparse::{Csc, Csr};

/// The PB pipeline primitive: `A` in CSC, `B` in CSR, result plus per-phase
/// profile.  Everything — the [`SpGemm`] engine's PB arm and the
/// row-partitioned multiply — funnels through here, so there is exactly one
/// implementation to trust.
pub(crate) fn pb_multiply_with_profile<S: Semiring>(
    a: &Csc<S::Elem>,
    b: &Csr<S::Elem>,
    config: &PbConfig,
) -> (Csr<S::Elem>, SpGemmProfile) {
    install_config_pool(config, || run_phases::<S>(a, b, config))
}

/// Runs `f` on the pool `config` requests: a dedicated pool of
/// [`PbConfig::threads`] threads when set (labelled with
/// [`PbConfig::numa_domains`] when that is set too, so the worker↔domain
/// labels match the bin partition; 0 = discover via `PB_NUMA_DOMAINS` /
/// sysfs), the calling thread's current pool otherwise.  Shared by the
/// plain and the masked multiply so both honour the same knobs.
pub(crate) fn install_config_pool<R>(config: &PbConfig, f: impl FnOnce() -> R) -> R {
    match config.threads {
        Some(t) => {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .domains(config.numa_domains.unwrap_or(0))
                .build()
                .expect("failed to build rayon pool");
            // The closure may run on a pool worker: forward the caller's
            // correlation id so the phase spans emitted inside still carry
            // the originating request.
            let corr = trace::current_corr();
            pool.install(|| trace::with_corr(corr, f))
        }
        None => f(),
    }
}

fn run_phases<S: Semiring>(
    a: &Csc<S::Elem>,
    b: &Csr<S::Elem>,
    config: &PbConfig,
) -> (Csr<S::Elem>, SpGemmProfile) {
    let tuple_bytes = BinnedTuples::<S::Elem>::tuple_bytes();
    let stats = StatsCollector::new();
    // Resolve the SIMD dispatch level once per multiply and stamp it into
    // the telemetry; the kernel counters recorded below prove it ran.
    let isa = config.resolve_simd();
    stats.record_isa(isa);
    // The multiply's working memory: recycled from the configured
    // workspace, or fresh throwaway buffers — the *same* pipeline code runs
    // either way, so reuse can never change the product.
    let mut lease = workspace::WorkspaceLease::<S::Elem>::acquire(config.workspace.clone());

    // Each phase span brackets exactly the `Instant` window feeding
    // `PhaseTimings`, so the trace and the aggregate telemetry agree on
    // what "the expand phase" cost (tests hold them to within 5%).
    let span = trace::span(trace::SpanName::PhaseSymbolic);
    let t0 = Instant::now();
    let sym = symbolic::symbolic(a, b, config, tuple_bytes);
    let t_symbolic = t0.elapsed();
    drop(span);
    stats.record_bin_flop(&sym.bin_flop);
    stats.record_numa(sym.domains, &sym.domain_flop);

    let span = trace::span(trace::SpanName::PhaseExpand);
    let t1 = Instant::now();
    let mut tuples = expand::expand::<S>(a, b, &sym, config, &stats, &mut lease);
    let t_expand = t1.elapsed();
    drop(span);

    let span = trace::span(trace::SpanName::PhaseSort);
    let t2 = Instant::now();
    sort_with_lease::<S>(&mut tuples, &sym, config, &stats, &mut lease);
    let t_sort = t2.elapsed();
    drop(span);

    let span = trace::span(trace::SpanName::PhaseCompress);
    let t3 = Instant::now();
    compress::compress_bins::<S>(&mut tuples, config.compress_split, &stats);
    let t_compress = t3.elapsed();
    drop(span);

    let span = trace::span(trace::SpanName::PhaseAssemble);
    let t4 = Instant::now();
    let c = assemble::assemble_reusing(&tuples, &stats, &mut lease);
    let t_assemble = t4.elapsed();
    drop(span);
    lease.release(tuples);

    let profile = SpGemmProfile {
        timings: PhaseTimings {
            symbolic: t_symbolic,
            expand: t_expand,
            sort: t_sort,
            compress: t_compress,
            assemble: t_assemble,
        },
        flop: sym.flop,
        nnz_a: a.nnz(),
        nnz_b: b.nnz(),
        nnz_c: c.nnz(),
        nbins: sym.layout.nbins,
        key_bytes: sym.layout.key_bytes(),
        tuple_bytes,
        coo_bytes: pb_sparse::stats::bytes_per_tuple::<S::Elem>(),
        stats: stats.snapshot(),
    };
    // Close the feedback loop: an auto-tuned config adapts its local-bin
    // width from this multiply's telemetry before the next one runs.
    if let Some(tuner) = config.auto_tune() {
        tuner.observe(&profile);
    }
    (c, profile)
}

/// Runs the sort phase with workspace-leased, per-NUMA-domain scratch slabs
/// when the lease is actually backed by a persistent [`Workspace`] and the
/// configured algorithm uses scratch at all (LSD radix on bins above the
/// insertion-sort threshold).  The slab pages are first-touched by their
/// owning domain's workers (see [`workspace`]), so on a real NUMA host the
/// sort phase's scratch streams stay socket-local.
///
/// Fresh (workspace-less) leases keep the classic lazy per-bin scratch
/// inside [`sort::sort_bins`]: the slab's upfront zero-fill of
/// `flop + domains·max_bin` entries only pays for itself when amortised
/// across multiplies, and on a throwaway buffer it would roughly double
/// the sort phase's memory traffic for nothing.
pub(crate) fn sort_with_lease<S: Semiring>(
    tuples: &mut BinnedTuples<S::Elem>,
    sym: &symbolic::Symbolic,
    config: &PbConfig,
    stats: &StatsCollector,
    lease: &mut workspace::WorkspaceLease<S::Elem>,
) {
    let isa = config.resolve_simd();
    let needs_scratch = lease.is_pooled()
        && config.sort == SortAlgorithm::LsdRadix
        && sym.bin_flop.iter().any(|&f| f as usize > sort::SMALL_SORT);
    if !needs_scratch {
        sort::sort_bins_with(tuples, config.sort, isa, stats);
        return;
    }
    let max_bin = sym.bin_flop.iter().copied().max().unwrap_or(0) as usize;
    let target = workspace::scratch_target_len(sym.flop as usize, sym.domains, max_bin);
    let zero = Entry {
        key: 0,
        val: S::zero(),
    };
    lease.prepare_scratch(target, sym.domains, zero, stats);
    let slabs = lease.scratch_slabs(sym.domains);
    sort::sort_bins_slabbed_with(tuples, config.sort, isa, stats, &slabs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_baseline::Baseline;
    use pb_gen::{banded, erdos_renyi_square, rmat_square, standin_scaled};
    use pb_sparse::reference::{
        csr_approx_eq, multiply_csr as reference_multiply, multiply_csr_with,
    };
    use pb_sparse::semiring::{MinPlus, OrAnd, PlusTimes};
    use pb_sparse::Coo;

    /// A PB engine with the given configuration — the test-suite spelling
    /// of "run the pipeline with these knobs".
    fn pb(config: &PbConfig) -> SpGemm {
        SpGemm::pb().config(config.clone())
    }

    fn check_against_reference(a: &Csr<f64>, config: &PbConfig) {
        let expected = reference_multiply(a, a);
        let c = pb(config).multiply_csc(&a.to_csc(), a);
        assert!(
            csr_approx_eq(&c, &expected, 1e-9),
            "PB-SpGEMM disagrees with the reference (config {config:?})"
        );
    }

    #[test]
    fn matches_reference_on_er_matrices() {
        for (scale, ef, seed) in [(7u32, 4u32, 1u64), (8, 8, 2), (9, 2, 3)] {
            let a = erdos_renyi_square(scale, ef, seed);
            check_against_reference(&a, &PbConfig::default());
        }
    }

    #[test]
    fn matches_reference_on_rmat_and_banded_matrices() {
        let rm = rmat_square(8, 8, 4);
        check_against_reference(&rm, &PbConfig::default());
        let bd = banded(300, 19, 5);
        check_against_reference(&bd, &PbConfig::default());
    }

    #[test]
    fn matches_reference_on_table_vi_standins() {
        for name in ["scircuit", "mc2depi"] {
            let a = standin_scaled(name, 0.005, 6);
            check_against_reference(&a, &PbConfig::default());
        }
    }

    #[test]
    fn all_configuration_combinations_agree() {
        let a = erdos_renyi_square(7, 6, 7);
        let expected = reference_multiply(&a, &a);
        for mapping in [BinMapping::Range, BinMapping::Modulo, BinMapping::Balanced] {
            for strategy in [ExpandStrategy::Reserved, ExpandStrategy::ThreadLocal] {
                for sort in [
                    SortAlgorithm::LsdRadix,
                    SortAlgorithm::AmericanFlag,
                    SortAlgorithm::Comparison,
                ] {
                    for nbins in [1usize, 3, 16, 128] {
                        let cfg = PbConfig::default()
                            .with_bin_mapping(mapping)
                            .with_expand(strategy)
                            .with_sort(sort)
                            .with_nbins(nbins);
                        let c = pb(&cfg).multiply_csc(&a.to_csc(), &a);
                        assert!(
                            csr_approx_eq(&c, &expected, 1e-9),
                            "mismatch for {mapping:?}/{strategy:?}/{sort:?}/nbins={nbins}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn agrees_with_all_baselines() {
        let a = rmat_square(8, 6, 8);
        let pb = SpGemm::pb().multiply(&a, &a);
        for baseline in Baseline::all() {
            let other = SpGemm::baseline(*baseline).multiply(&a, &a);
            assert!(
                csr_approx_eq(&pb, &other, 1e-9),
                "PB-SpGEMM disagrees with {}",
                baseline.name()
            );
        }
    }

    #[test]
    fn rectangular_multiplication() {
        // 128x64 times 64x32.
        let a = pb_gen::erdos_renyi(&pb_gen::ErConfig {
            nrows: 128,
            ncols: 64,
            nnz_per_col: 4,
            seed: 9,
            random_values: true,
        });
        let b = pb_gen::erdos_renyi(&pb_gen::ErConfig {
            nrows: 64,
            ncols: 32,
            nnz_per_col: 3,
            seed: 10,
            random_values: true,
        });
        let expected = reference_multiply(&a, &b);
        let c = SpGemm::pb().multiply(&a, &b);
        assert_eq!(c.shape(), (128, 32));
        assert!(csr_approx_eq(&c, &expected, 1e-9));
    }

    #[test]
    fn other_semirings() {
        let a = erdos_renyi_square(7, 4, 11);
        let a_csc = a.to_csc();

        let bool_a = a.map_values(|_| true);
        let pattern = SpGemm::pb().multiply_with::<OrAnd>(&bool_a, &bool_a);
        let expected = multiply_csr_with::<OrAnd>(&bool_a, &bool_a);
        assert_eq!(pattern.rowptr(), expected.rowptr());
        assert_eq!(pattern.colidx(), expected.colidx());

        let dist = SpGemm::pb().multiply_csc_with::<MinPlus>(&a_csc, &a);
        let expected = multiply_csr_with::<MinPlus>(&a, &a);
        assert!(csr_approx_eq(&dist, &expected, 1e-12));
    }

    #[test]
    fn explicit_thread_counts_give_identical_structure() {
        let a = erdos_renyi_square(8, 4, 12);
        let expected = reference_multiply(&a, &a);
        for threads in [1usize, 2, 4] {
            let c = SpGemm::pb().threads(threads).multiply(&a, &a);
            assert!(csr_approx_eq(&c, &expected, 1e-9), "threads = {threads}");
        }
    }

    #[test]
    fn profile_reports_consistent_statistics() {
        let a = erdos_renyi_square(8, 8, 13);
        let cfg = PbConfig::default().with_nbins(32);
        let (c, profile) = pb(&cfg).multiply_csc_with_profile::<PlusTimes<f64>>(&a.to_csc(), &a);
        assert_eq!(profile.nnz_c, c.nnz());
        assert_eq!(profile.nnz_a, a.nnz());
        assert_eq!(profile.flop, pb_sparse::stats::flop_csr(&a, &a));
        assert_eq!(profile.nbins, 32);
        assert!(profile.cf() >= 1.0);
        assert!(profile.timings.total().as_nanos() > 0);
        assert!(profile.gflops() > 0.0);
        assert!(profile.summary().contains("nbins=32"));
    }

    #[test]
    fn auto_tuned_config_adapts_capacity_across_repeated_multiplies() {
        // Start the tuner from a deliberately tiny local bin (1 cache line
        // = 4 f64 tuples): every flush is tiny, so the policy must grow the
        // width between multiplies until flushes amortise (8 lines), then
        // hold steady — all while every product stays correct.
        let a = erdos_renyi_square(8, 8, 21);
        let a_csc = a.to_csc();
        let expected = reference_multiply(&a, &a);
        let cfg = PbConfig::auto_tuned_from_lines(1);
        assert_eq!(cfg.effective_local_bin_bytes(), 64);
        let engine = pb(&cfg);

        let mut capacities = Vec::new();
        for _ in 0..6 {
            let (c, profile) = engine.multiply_csc_with_profile::<PlusTimes<f64>>(&a_csc, &a);
            assert!(csr_approx_eq(&c, &expected, 1e-9));
            capacities.push(profile.stats.local_bin_capacity);
        }
        // The expand phase measurably ran with growing capacities...
        assert_eq!(
            capacities[0], 4,
            "first multiply uses the initial 1-line bins"
        );
        assert!(
            capacities.windows(2).all(|w| w[1] >= w[0]),
            "capacity adapts monotonically upward: {capacities:?}"
        );
        // ...and converged to the paper's default width (8 lines = 32
        // tuples), a fixed point of the policy.
        assert_eq!(*capacities.last().unwrap(), 32, "{capacities:?}");
        let tuner = cfg.auto_tune().unwrap();
        assert_eq!(tuner.lines(), 8);
        assert_eq!(tuner.observations(), 6);
        assert_eq!(tuner.adjustments(), 3, "1 -> 2 -> 4 -> 8 lines");
    }

    #[test]
    fn numa_partitioned_multiply_matches_reference_and_reports_locality() {
        let a = rmat_square(8, 8, 41);
        let a_csc = a.to_csc();
        let expected = reference_multiply(&a, &a);
        let single =
            pb(&PbConfig::default().with_threads(4).with_numa_domains(1)).multiply_csc(&a_csc, &a);
        for domains in [2usize, 4] {
            let cfg = PbConfig::default()
                .with_threads(4)
                .with_numa_domains(domains)
                .with_nbins(16);
            let (c, profile) = pb(&cfg).multiply_csc_with_profile::<PlusTimes<f64>>(&a_csc, &a);
            assert!(csr_approx_eq(&c, &expected, 1e-9), "domains = {domains}");
            // Structure is exactly that of the unpartitioned product.
            assert_eq!(c.rowptr(), single.rowptr(), "domains = {domains}");
            assert_eq!(c.colidx(), single.colidx(), "domains = {domains}");
            // Telemetry reports the partition and accounts all flush traffic.
            let s = &profile.stats;
            assert_eq!(s.numa_domains, domains);
            assert_eq!(s.domain_occupancy().iter().sum::<u64>(), profile.flop);
            assert_eq!(s.local_flushes + s.remote_flushes, s.flushes);
            let f = s.local_flush_fraction();
            assert!((0.0..=1.0).contains(&f), "fraction {f}");
        }
    }

    #[test]
    fn auto_tuned_bin_count_adapts_to_skewed_occupancy() {
        // Identity plus one dense row: almost all flop lands in the dense
        // row's bin, so the occupancy skew stays far above the split
        // threshold and the boost should double the derived bin count on
        // every multiply until its clamp.
        let n = 2048usize;
        let mut entries: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 1.0)).collect();
        entries.extend((1..n).map(|j| (0usize, j, 1.0)));
        let a = Coo::from_entries(n, n, entries).unwrap().to_csr();
        let a_csc = a.to_csc();
        let expected = reference_multiply(&a, &a);

        // A small assumed L2 keeps the derived bin count well above one on
        // this deliberately small workload, so the skew is observable.
        let cfg = PbConfig::auto_tuned().with_l2_bytes(4096);
        let engine = pb(&cfg);
        let mut nbins_seen = Vec::new();
        for _ in 0..5 {
            let (c, profile) = engine.multiply_csc_with_profile::<PlusTimes<f64>>(&a_csc, &a);
            assert!(csr_approx_eq(&c, &expected, 1e-9));
            nbins_seen.push(profile.nbins);
            assert!(
                profile.stats.occupancy_skew() >= crate::config::AUTOTUNE_SKEW_SPLIT,
                "workload must stay skewed: {}",
                profile.stats.occupancy_skew()
            );
        }
        let tuner = cfg.auto_tune().unwrap();
        assert_eq!(
            tuner.nbins_boost(),
            crate::config::AUTOTUNE_MAX_NBINS_BOOST,
            "boost saturates on a persistently skewed workload"
        );
        assert!(
            nbins_seen.windows(2).all(|w| w[1] >= w[0]),
            "bin count adapts monotonically upward: {nbins_seen:?}"
        );
        assert!(
            *nbins_seen.last().unwrap() >= nbins_seen[0] * 4,
            "boost visibly multiplies the derived bin count: {nbins_seen:?}"
        );
    }

    #[test]
    fn split_compress_matches_unsplit_and_reference() {
        // Single-bin configuration with a product big enough to cross the
        // split threshold: Always must split (visible in the telemetry) and
        // agree bit-for-bit with Never on unit values.
        let a = rmat_square(9, 8, 23).map_values(|_| 1.0);
        let a_csc = a.to_csc();
        let expected = reference_multiply(&a, &a);
        let base = PbConfig::default().with_nbins(1);
        let (unsplit, _) = pb(&base.clone().with_compress_split(CompressSplit::Never))
            .multiply_csc_with_profile::<PlusTimes<f64>>(&a_csc, &a);
        let (split, profile) = pb(&base.with_compress_split(CompressSplit::Always))
            .multiply_csc_with_profile::<PlusTimes<f64>>(&a_csc, &a);
        assert!(profile.flop as usize >= compress::SPLIT_MIN_TUPLES);
        assert_eq!(profile.stats.split_bins, 1, "the single bin was split");
        assert!(profile.stats.split_chunks >= 2);
        assert_eq!(split.rowptr(), unsplit.rowptr());
        assert_eq!(split.colidx(), unsplit.colidx());
        assert_eq!(split.values(), unsplit.values());
        assert!(csr_approx_eq(&split, &expected, 1e-9));
    }

    #[test]
    fn workspace_reuse_is_allocation_free_and_exact_in_steady_state() {
        // Unit values make the merged sums order-independent, so the reused
        // and fresh products can be compared bit-for-bit even on a real
        // multi-thread pool.
        let a = rmat_square(8, 6, 51).map_values(|_| 1.0);
        let a_csc = a.to_csc();
        let fresh = SpGemm::pb().multiply_csc(&a_csc, &a);
        let ws = std::sync::Arc::new(Workspace::new());
        let engine = SpGemm::pb().workspace(std::sync::Arc::clone(&ws));
        let mut profiles = Vec::new();
        for _ in 0..4 {
            let (c, p) = engine.multiply_csc_with_profile::<PlusTimes<f64>>(&a_csc, &a);
            assert_eq!(c.rowptr(), fresh.rowptr());
            assert_eq!(c.colidx(), fresh.colidx());
            assert_eq!(c.values(), fresh.values());
            profiles.push(p);
        }
        // First multiply populates the workspace...
        assert!(profiles[0].stats.bytes_allocated > 0);
        assert_eq!(profiles[0].stats.bytes_reused, 0);
        // ...and every repeat runs the expand + sort phases without heap
        // allocation, serving all buffers from recycled capacity.
        for p in &profiles[1..] {
            assert_eq!(p.stats.bytes_allocated, 0, "steady state allocates");
            assert!(p.stats.bytes_reused > 0);
            assert!(p.stats.workspace_hits > 0);
        }
        assert_eq!(ws.leases(), 4);
        assert_eq!(ws.bypasses(), 0);
        assert!(ws.total_bytes_reused() > 0);
    }

    #[test]
    fn forced_isa_levels_produce_bitwise_identical_products_and_prove_dispatch() {
        // The success criterion of the SIMD work: every dispatch level the
        // host supports yields a *bit-identical* product (the kernels only
        // reorder bookkeeping, never arithmetic), and the telemetry proves
        // which path actually ran rather than trusting the build flags.
        let a = rmat_square(8, 8, 61).map_values(|_| 1.0);
        let a_csc = a.to_csc();
        let oracle_cfg = PbConfig::default().with_simd(simd::Isa::Scalar);
        let (oracle, _) = pb_multiply_with_profile::<pb_sparse::semiring::PlusTimes<f64>>(
            &a_csc,
            &a,
            &oracle_cfg,
        );
        for isa in simd::Isa::supported() {
            let cfg = PbConfig::default().with_simd(isa);
            let (c, profile) =
                pb_multiply_with_profile::<pb_sparse::semiring::PlusTimes<f64>>(&a_csc, &a, &cfg);
            assert_eq!(c.rowptr(), oracle.rowptr(), "{isa}: rowptr differs");
            assert_eq!(c.colidx(), oracle.colidx(), "{isa}: colidx differs");
            assert_eq!(c.values(), oracle.values(), "{isa}: values differ");
            let d = profile.stats.isa;
            assert_eq!(d.isa, isa, "telemetry must stamp the forced level");
            if isa == simd::Isa::Scalar {
                assert_eq!(d.simd_histograms, 0);
                assert_eq!(d.prefetched_scatters, 0);
                assert_eq!(d.prefetched_flushes, 0);
            } else {
                assert!(d.simd_histograms > 0, "{isa}: no SIMD histogram ran");
                assert!(d.prefetched_scatters > 0, "{isa}: no scatter prefetch");
                assert!(d.prefetched_flushes > 0, "{isa}: no flush prefetch");
            }
        }
    }

    #[test]
    fn identity_and_permutation_products() {
        let id = Csr::<f64>::identity(64);
        let a = erdos_renyi_square(6, 4, 15);
        let c = SpGemm::pb().multiply(&id, &a);
        assert!(csr_approx_eq(&c, &a, 1e-12));
        let c = SpGemm::pb().multiply(&a, &id);
        assert!(csr_approx_eq(&c, &a, 1e-12));
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Csr<f64> = Csr::empty(10, 10);
        let c = SpGemm::pb().multiply(&empty, &empty);
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.shape(), (10, 10));

        let single = Coo::from_entries(1, 1, vec![(0, 0, 3.0)]).unwrap().to_csr();
        let c = SpGemm::pb().multiply(&single, &single);
        assert_eq!(c.get(0, 0), Some(9.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_panic() {
        let a: Csr<f64> = Csr::empty(4, 5);
        let b: Csr<f64> = Csr::empty(6, 4);
        let _ = SpGemm::pb().multiply_csc(&a.to_csc(), &b);
    }
}
