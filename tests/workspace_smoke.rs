//! Workspace-wiring smoke test.
//!
//! Everything here is reached exclusively through `pb_spgemm_suite::prelude`
//! so that the façade's re-export surface (generator → PB-SpGEMM → baseline →
//! reference oracle) can never silently break: if a `pub use` is dropped or a
//! crate is unwired from the workspace, this file stops compiling.

use pb_spgemm_suite::prelude::*;

#[test]
fn prelude_covers_generate_multiply_and_compare() {
    // Generate a small R-MAT matrix deterministically.
    let a = rmat_square(6, 6, 42);
    assert!(a.nnz() > 0, "generator produced an empty matrix");

    // Multiply with the paper's PB-SpGEMM through the unified engine.
    let c_pb = SpGemm::pb().config(PbConfig::default()).multiply(&a, &a);

    // Multiply with one of the column baselines.
    let c_hash = Baseline::Hash.multiply(&a, &a);

    // Both must agree with the reference oracle.
    let expected = reference::multiply_csr(&a, &a);
    assert!(
        reference::csr_approx_eq(&c_pb, &expected, 1e-9),
        "PB-SpGEMM disagrees with the reference multiply"
    );
    assert!(
        reference::csr_approx_eq(&c_hash, &expected, 1e-9),
        "Hash baseline disagrees with the reference multiply"
    );
}

#[test]
fn prelude_exposes_the_spmv_and_model_surface() {
    // SpMV path: y = A·x through the re-exported kernel.
    let a = erdos_renyi_square(6, 4, 7);
    let x = vec![1.0f64; a.ncols()];
    let y = csr_spmv(&a, &x);
    assert_eq!(y.len(), a.nrows());

    // Model path: the roofline type is constructible from the prelude.
    let machine = MachineInfo::detect();
    assert!(machine.logical_cpus >= 1);
}
