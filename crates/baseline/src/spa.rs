//! SpaSpGEMM: column/row SpGEMM with a dense sparse-accumulator (SPA),
//! the formulation of Gilbert, Moler & Schreiber used by MATLAB and
//! CombBLAS.
//!
//! Each thread owns a dense value array of length `ncols(B)`, a dense
//! "occupied" marker array and a list of the columns touched by the current
//! row.  Scattering a product is O(1); gathering the output row costs one
//! pass over the touched columns plus a sort.  The SPA costs O(ncols)
//! memory per thread, which is exactly the drawback the paper attributes to
//! the approach for very large matrices.

use pb_sparse::semiring::{Numeric, PlusTimes, Semiring};
use pb_sparse::{Csr, Index};

use crate::util::rowwise_multiply;

/// Thread-private dense accumulator.
#[derive(Debug)]
struct Spa<V> {
    values: Vec<V>,
    occupied: Vec<bool>,
    touched: Vec<Index>,
}

impl<V: Copy> Spa<V> {
    fn new(ncols: usize, zero: V) -> Self {
        Spa {
            values: vec![zero; ncols],
            occupied: vec![false; ncols],
            touched: Vec::new(),
        }
    }
}

/// SpaSpGEMM under an arbitrary semiring.
pub fn spa_spgemm_with<S: Semiring>(a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem> {
    let ncols = b.ncols();
    rowwise_multiply::<S, Spa<S::Elem>, _, _>(
        a,
        b,
        move || Spa::new(ncols, S::zero()),
        |spa, i| {
            let (a_cols, a_vals) = a.row(i);
            for (&k, &a_ik) in a_cols.iter().zip(a_vals) {
                let (b_cols, b_vals) = b.row(k as usize);
                for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
                    let product = S::mul(a_ik, b_kj);
                    let j_us = j as usize;
                    if spa.occupied[j_us] {
                        spa.values[j_us] = S::add(spa.values[j_us], product);
                    } else {
                        spa.occupied[j_us] = true;
                        spa.values[j_us] = product;
                        spa.touched.push(j);
                    }
                }
            }
            // Gather and reset the touched entries.
            spa.touched.sort_unstable();
            let cols = std::mem::take(&mut spa.touched);
            let vals: Vec<S::Elem> = cols
                .iter()
                .map(|&j| {
                    let j = j as usize;
                    spa.occupied[j] = false;
                    spa.values[j]
                })
                .collect();
            (cols, vals)
        },
    )
}

/// SpaSpGEMM with ordinary `+`/`×`.
pub fn spa_spgemm<T: Numeric>(a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    spa_spgemm_with::<PlusTimes<T>>(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::{banded, erdos_renyi_square, rmat_square};
    use pb_sparse::reference::{csr_approx_eq, multiply_csr, multiply_csr_with};
    use pb_sparse::semiring::MinPlus;

    #[test]
    fn matches_reference_on_random_matrices() {
        for (scale, ef, seed) in [(7u32, 4u32, 1u64), (8, 8, 2)] {
            let a = erdos_renyi_square(scale, ef, seed);
            let expected = multiply_csr(&a, &a);
            assert!(csr_approx_eq(&spa_spgemm(&a, &a), &expected, 1e-9));
        }
        let rm = rmat_square(8, 8, 3);
        assert!(csr_approx_eq(
            &spa_spgemm(&rm, &rm),
            &multiply_csr(&rm, &rm),
            1e-9
        ));
    }

    #[test]
    fn matches_reference_on_banded_matrix() {
        let a = banded(300, 15, 4);
        assert!(csr_approx_eq(
            &spa_spgemm(&a, &a),
            &multiply_csr(&a, &a),
            1e-9
        ));
    }

    #[test]
    fn output_is_canonical() {
        let a = rmat_square(7, 6, 5);
        let c = spa_spgemm(&a, &a);
        assert!(c.has_sorted_indices());
        assert!(!c.has_duplicates());
    }

    #[test]
    fn min_plus_semiring() {
        let a = erdos_renyi_square(6, 3, 7);
        let c = spa_spgemm_with::<MinPlus>(&a, &a);
        let expected = multiply_csr_with::<MinPlus>(&a, &a);
        assert!(csr_approx_eq(&c, &expected, 1e-12));
    }

    #[test]
    fn empty_matrix() {
        let empty: Csr<f64> = Csr::empty(4, 6);
        let b: Csr<f64> = Csr::empty(6, 3);
        let c = spa_spgemm(&empty, &b);
        assert_eq!(c.shape(), (4, 3));
        assert_eq!(c.nnz(), 0);
    }
}
