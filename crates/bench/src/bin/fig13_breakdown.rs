//! Fig. 13: per-phase scaling breakdown of PB-SpGEMM (symbolic / expand /
//! sort / compress / assemble times per thread count, ER and R-MAT).

use pb_bench::figures::scaling_breakdown;
use pb_bench::{print_table, quick_mode};

fn main() {
    // `--smoke` shrinks the workloads to CI size (sets PB_BENCH_QUICK).
    pb_bench::smoke_from_args();
    let table = scaling_breakdown(quick_mode());
    print_table(&table);
    println!(
        "expected shape (paper Fig. 13): expand dominates and scales with threads; sort and \
         compress scale as well because bins are processed independently; the serial symbolic \
         phase is negligible."
    );
}
