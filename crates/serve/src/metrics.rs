//! The `/metrics`-style text endpoint.
//!
//! Renders server counters, catalog occupancy, aggregated workspace
//! telemetry, the latest multiply's [`PhaseStats`](pb_spgemm::PhaseStats) (planner decision, ISA
//! dispatch, NUMA routing) and planner progress in the conventional
//! `name{label="v"} value` text format, one sample per line.  The `metrics`
//! op returns this text in the `text` field of a normal JSON response, so
//! the protocol stays one-line-per-message.

use std::sync::atomic::{AtomicU64, Ordering};

use pb_spgemm::Workspace;

use crate::catalog::Catalog;

/// Monotonic server-side counters (every field is a `_total` metric).
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Requests accepted, by outcome.
    pub requests: AtomicU64,
    /// Requests answered with `ok: false` (parse errors included).
    pub errors: AtomicU64,
    /// Multiply requests answered from a shared batch execution (batch
    /// members beyond the first).
    pub batched: AtomicU64,
    /// Largest multiply batch executed so far.
    pub max_batch: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
}

impl ServerCounters {
    /// Records the size of one executed multiply batch.
    pub fn record_batch(&self, size: usize) {
        if size > 1 {
            self.batched.fetch_add(size as u64 - 1, Ordering::Relaxed);
        }
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }
}

fn sample(out: &mut String, name: &str, value: u64) {
    out.push_str(name);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

fn sample_f64(out: &mut String, name: &str, value: f64) {
    out.push_str(name);
    out.push(' ');
    out.push_str(&format!("{value:.6}"));
    out.push('\n');
}

/// Renders the whole metrics page.  `catalog` is read under its lock by the
/// caller; counters are lock-free.
pub fn render(counters: &ServerCounters, catalog: &Catalog) -> String {
    let mut out = String::with_capacity(2048);

    // Server request counters.
    sample(
        &mut out,
        "pb_serve_requests_total",
        counters.requests.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "pb_serve_errors_total",
        counters.errors.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "pb_serve_batched_requests_total",
        counters.batched.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "pb_serve_max_batch",
        counters.max_batch.load(Ordering::Relaxed),
    );
    sample(
        &mut out,
        "pb_serve_connections_total",
        counters.connections.load(Ordering::Relaxed),
    );

    // Catalog occupancy.
    sample(&mut out, "pb_serve_catalog_entries", catalog.len() as u64);
    sample(
        &mut out,
        "pb_serve_catalog_bytes_used",
        catalog.bytes_used() as u64,
    );
    sample(
        &mut out,
        "pb_serve_catalog_bytes_budget",
        catalog.budget_bytes() as u64,
    );
    sample(
        &mut out,
        "pb_serve_catalog_evictions_total",
        catalog.evictions(),
    );

    // Workspace telemetry aggregated over every resident entry, including
    // the decay policy's counters.
    sample(
        &mut out,
        "pb_workspace_leases_total",
        catalog.sum_workspaces(Workspace::leases),
    );
    sample(
        &mut out,
        "pb_workspace_hits_total",
        catalog.sum_workspaces(Workspace::total_hits),
    );
    sample(
        &mut out,
        "pb_workspace_bytes_allocated_total",
        catalog.sum_workspaces(Workspace::total_bytes_allocated),
    );
    sample(
        &mut out,
        "pb_workspace_bytes_reused_total",
        catalog.sum_workspaces(Workspace::total_bytes_reused),
    );
    sample(
        &mut out,
        "pb_workspace_bytes_released_total",
        catalog.sum_workspaces(Workspace::total_bytes_released),
    );
    sample(
        &mut out,
        "pb_workspace_decay_events_total",
        catalog.sum_workspaces(Workspace::decay_events),
    );

    // Planner progress (shared across every entry engine).
    if let Some(profile) = catalog.sink().latest() {
        let planner_name = profile.stats.planned_algorithm.name();
        out.push_str(&format!(
            "pb_planner_last_decision{{kernel=\"{planner_name}\"}} 1\n"
        ));
        sample_f64(&mut out, "pb_spgemm_last_cf", profile.cf());
        sample_f64(&mut out, "pb_spgemm_last_gflops", profile.gflops());
        sample(&mut out, "pb_spgemm_last_flop", profile.flop);
        sample(
            &mut out,
            "pb_spgemm_last_numa_domains",
            profile.stats.numa_domains as u64,
        );
        sample(
            &mut out,
            "pb_spgemm_last_bytes_allocated",
            profile.stats.bytes_allocated,
        );
        sample(
            &mut out,
            "pb_spgemm_last_bytes_reused",
            profile.stats.bytes_reused,
        );
        let isa = profile.stats.isa.isa.name();
        out.push_str(&format!("pb_simd_dispatch{{isa=\"{isa}\"}} 1\n"));
    }

    // Host-wide active ISA (what the dispatcher would pick right now).
    let active = pb_spgemm::simd::active().name();
    out.push_str(&format!("pb_simd_active{{isa=\"{active}\"}} 1\n"));

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_spgemm::Algorithm;

    #[test]
    fn renders_required_families() {
        let counters = ServerCounters::default();
        counters.requests.fetch_add(3, Ordering::Relaxed);
        counters.record_batch(4);
        let catalog = Catalog::new(1 << 20, Algorithm::Pb);
        let text = render(&counters, &catalog);
        for family in [
            "pb_serve_requests_total 3",
            "pb_serve_errors_total 0",
            "pb_serve_batched_requests_total 3",
            "pb_serve_max_batch 4",
            "pb_serve_catalog_entries 0",
            "pb_serve_catalog_bytes_budget 1048576",
            "pb_serve_catalog_evictions_total 0",
            "pb_workspace_bytes_released_total 0",
            "pb_workspace_decay_events_total 0",
            "pb_simd_active{isa=",
        ] {
            assert!(text.contains(family), "missing `{family}` in:\n{text}");
        }
    }
}
