//! Table IV: hardware configuration of the evaluation platform.
//!
//! The paper lists the Skylake-SP and POWER9 testbeds; this binary prints
//! the equivalent description of the machine actually running the
//! reproduction.

use pb_bench::{print_table, write_json, Table};
use pb_model::MachineInfo;

fn main() {
    // `--smoke` shrinks the workloads to CI size (sets PB_BENCH_QUICK).
    pb_bench::smoke_from_args();
    let info = MachineInfo::detect();
    let mut table = Table::new(
        "Table IV — evaluation platform (this machine)",
        &["field", "value"],
    );
    for (k, v) in info.table_rows() {
        table.push_row(vec![k, v]);
    }
    print_table(&table);
    write_json("table4_machine", &info);
    println!(
        "note: the paper used a 2x24-core Skylake-SP (100 GB/s) and a 2x20-core POWER9 \
         (250 GB/s); absolute numbers in the other figures scale with this machine's bandwidth."
    );
}
