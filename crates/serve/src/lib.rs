//! # pb-serve — the resident PB-SpGEMM service
//!
//! The paper's bandwidth-optimisation machinery (propagation-blocked
//! binning, NUMA routing, SIMD sort kernels, the regret-gated planner,
//! zero-allocation workspaces) pays off most in a **long-lived process**,
//! where workspaces amortise, the planner calibrates to the host, and
//! AutoTune adapts *across* requests instead of being rebuilt per
//! invocation.  This crate is that process:
//!
//! * a TCP server speaking a line-delimited JSON [`protocol`] (one request
//!   per line, one response per line), driven by the vendored
//!   [`miniloop`] event loop — no crates.io runtime;
//! * a byte-budgeted LRU [`catalog`] of named resident
//!   matrices, each with its own [`SpGemm`](pb_spgemm::SpGemm) engine
//!   (entry-private workspace, server-shared planner and profile sink);
//! * a request router dispatching `multiply`/`mcl`/`bc`/`apsp` through the
//!   graph crate's builder API, **batching same-key multiply requests** so
//!   one engine call (one workspace lease) answers all of them;
//! * a `/metrics`-style text endpoint ([`metrics`]) exposing `PhaseStats`,
//!   planner and ISA telemetry, per-op request-latency histograms and
//!   catalog occupancy, with a vendored [`exposition`] parser to consume
//!   it;
//! * end-to-end request tracing: every request carries a correlation id
//!   through `accept → parse → queue → handle → respond` (and down into
//!   the engine's phase spans), exported as Chrome trace-event JSON by the
//!   `trace` op and surfaced by the `PB_SERVE_SLOW_MS` slow-request log.
//!
//! ```no_run
//! use pb_serve::{ServeConfig, Server};
//!
//! let server = Server::start(ServeConfig::default()).expect("bind");
//! println!("serving on {}", server.addr());
//! // … connect with any line-oriented TCP client …
//! server.join();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod config;
pub mod exposition;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use catalog::{Catalog, Entry, EntryInfo};
pub use config::{ServeConfig, ADDR_ENV, BUDGET_ENV, SLOW_MS_ENV, WORKERS_ENV};
pub use exposition::Exposition;
pub use metrics::{OpLatencies, ServerCounters, OP_NAMES};
pub use protocol::{fingerprint, parse_request, GenKind, Request};
pub use server::{Server, BATCH_LIMIT};
