//! Access-pattern characterisation of SpGEMM algorithm classes (Table II)
//! and the memory-traffic estimates behind the practical AI bounds.

use pb_sparse::stats::MultiplyStats;
use serde::Serialize;

use crate::BYTES_PER_NONZERO;

/// The three algorithm classes of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AlgorithmClass {
    /// Column SpGEMM with heap / hash / SPA accumulators.
    ColumnAccumulator,
    /// Column-wise expand–sort–compress.
    ColumnEsc,
    /// Outer-product expand–sort–compress with propagation blocking
    /// (PB-SpGEMM).
    OuterEsc,
}

impl AlgorithmClass {
    /// All classes in Table II order.
    pub fn all() -> &'static [AlgorithmClass] {
        &[
            AlgorithmClass::ColumnAccumulator,
            AlgorithmClass::ColumnEsc,
            AlgorithmClass::OuterEsc,
        ]
    }

    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmClass::ColumnAccumulator => "Column SpGEMM (Heap/Hash/SPA)",
            AlgorithmClass::ColumnEsc => "ESC (column-wise)",
            AlgorithmClass::OuterEsc => "ESC (outer product)",
        }
    }
}

/// One row of Table II: how many times each matrix is accessed, whether the
/// accesses stream, and whether full cache lines are used, when multiplying
/// two ER matrices with `d` nonzeros per column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AccessRow {
    /// Algorithm class this row describes.
    pub class: AlgorithmClass,
    /// Number of times `A` is read (in units of `nnz(A)`).
    pub reads_a: f64,
    /// Number of times `B` is read.
    pub reads_b: f64,
    /// Number of times the expanded matrix `Ĉ` is read or written from
    /// memory.
    pub accesses_chat: f64,
    /// Number of times `C` is written.
    pub writes_c: f64,
    /// Whether accesses to `A` stream (sequential, latency-free).
    pub streams_a: bool,
    /// Whether accesses to `Ĉ` stream.
    pub streams_chat: bool,
    /// Whether reads of `A` use full cache lines (false when `d < 8` for
    /// column algorithms, which fetch short columns at random).
    pub full_lines_a: bool,
}

/// Builds Table II for ER matrices with `d` nonzeros per column.
pub fn access_table(d: f64) -> Vec<AccessRow> {
    vec![
        AccessRow {
            class: AlgorithmClass::ColumnAccumulator,
            reads_a: d,
            reads_b: 1.0,
            accesses_chat: 0.0,
            writes_c: 1.0,
            streams_a: false,
            streams_chat: true,
            full_lines_a: d >= 8.0,
        },
        AccessRow {
            class: AlgorithmClass::ColumnEsc,
            reads_a: d,
            reads_b: 1.0,
            accesses_chat: 2.0,
            writes_c: 1.0,
            streams_a: false,
            streams_chat: false,
            full_lines_a: d >= 8.0,
        },
        AccessRow {
            class: AlgorithmClass::OuterEsc,
            reads_a: 1.0,
            reads_b: 1.0,
            accesses_chat: 2.0,
            writes_c: 1.0,
            streams_a: true,
            streams_chat: true,
            full_lines_a: true,
        },
    ]
}

/// Estimated memory traffic (bytes) and arithmetic intensity of a concrete
/// multiplication under each algorithm class's worst-case access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TrafficEstimate {
    /// Algorithm class.
    pub class: AlgorithmClass,
    /// Estimated bytes moved to/from memory.
    pub bytes: u64,
    /// Resulting arithmetic intensity (flop / bytes).
    pub ai: f64,
}

/// Computes the Table II traffic estimates for a concrete multiplication.
///
/// * Column accumulator (Eq. 3's numerator): `A` is read once per flop, `B`
///   and `C` once.
/// * Column ESC: additionally writes and reads `Ĉ`.
/// * Outer ESC (Eq. 4): `A` and `B` once, `Ĉ` written + read, `C` once.
pub fn traffic_estimates(stats: &MultiplyStats) -> Vec<TrafficEstimate> {
    let b = BYTES_PER_NONZERO as u64;
    let flop = stats.flop;
    let nnz_a = stats.nnz_a as u64;
    let nnz_b = stats.nnz_b as u64;
    let nnz_c = stats.nnz_c as u64;

    let column = b * (flop + nnz_b + nnz_c);
    let column_esc = b * (flop + nnz_b + 2 * flop + nnz_c);
    let outer = b * (nnz_a + nnz_b + 2 * flop + nnz_c);

    [
        (AlgorithmClass::ColumnAccumulator, column),
        (AlgorithmClass::ColumnEsc, column_esc),
        (AlgorithmClass::OuterEsc, outer),
    ]
    .into_iter()
    .map(|(class, bytes)| TrafficEstimate {
        class,
        bytes,
        ai: if bytes == 0 {
            0.0
        } else {
            flop as f64 / bytes as f64
        },
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::erdos_renyi_square;

    #[test]
    fn table_ii_structure_matches_the_paper() {
        let rows = access_table(4.0);
        assert_eq!(rows.len(), 3);
        let column = &rows[0];
        let esc = &rows[1];
        let outer = &rows[2];

        // Column algorithms read A d times; outer product reads it once.
        assert_eq!(column.reads_a, 4.0);
        assert_eq!(outer.reads_a, 1.0);
        // Only the ESC variants touch the expanded matrix from memory.
        assert_eq!(column.accesses_chat, 0.0);
        assert_eq!(esc.accesses_chat, 2.0);
        assert_eq!(outer.accesses_chat, 2.0);
        // Outer product streams everything; column algorithms do not stream A.
        assert!(outer.streams_a && outer.streams_chat && outer.full_lines_a);
        assert!(!column.streams_a);
        assert!(!esc.streams_chat);
        // With d = 4 < 8, column algorithms waste cache lines on A.
        assert!(!column.full_lines_a);
        // With d = 16 they do not.
        assert!(access_table(16.0)[0].full_lines_a);
    }

    #[test]
    fn traffic_estimates_respect_the_ai_bounds() {
        // The closed-form Eq. 3 / Eq. 4 expressions are *lower* bounds (they
        // over-count `nnz(B)` as `nnz(C)`), and Eq. 1 is the upper bound; the
        // per-matrix traffic estimates must fall between them.
        let a = erdos_renyi_square(10, 4, 3);
        let stats = MultiplyStats::compute(&a, &a);
        let est = traffic_estimates(&stats);
        let outer = est
            .iter()
            .find(|e| e.class == AlgorithmClass::OuterEsc)
            .unwrap();
        let column = est
            .iter()
            .find(|e| e.class == AlgorithmClass::ColumnAccumulator)
            .unwrap();

        let cf = stats.cf;
        let eq1 = cf / 16.0;
        let eq3 = cf / ((2.0 + cf) * 16.0);
        let eq4 = cf / ((3.0 + 2.0 * cf) * 16.0);
        assert!(
            column.ai >= eq3 * 0.999 && column.ai <= eq1,
            "column AI {} vs Eq.3 {eq3}",
            column.ai
        );
        assert!(
            outer.ai >= eq4 * 0.999 && outer.ai <= eq1,
            "outer AI {} vs Eq.4 {eq4}",
            outer.ai
        );
        // The column estimate has strictly higher AI than the outer estimate
        // (it does not pay for Ĉ), which is why column SpGEMM has the higher
        // roofline in Fig. 3.
        assert!(column.ai > outer.ai);
        // Outer ESC always moves more bytes than column accumulators when
        // cf is small.
        assert!(outer.bytes > column.bytes);
    }

    #[test]
    fn class_names_are_distinct() {
        let names: Vec<_> = AlgorithmClass::all().iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 3);
        assert!(names.iter().all(|n| !n.is_empty()));
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
    }

    #[test]
    fn empty_multiplication_yields_zero_ai() {
        let stats = MultiplyStats {
            nrows: 0,
            ncols: 0,
            inner: 0,
            nnz_a: 0,
            nnz_b: 0,
            flop: 0,
            nnz_c: 0,
            cf: 1.0,
            d_a: 0.0,
        };
        let est = traffic_estimates(&stats);
        assert!(est.iter().all(|e| e.ai == 0.0 && e.bytes == 0));
    }
}
