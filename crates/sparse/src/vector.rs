//! Sparse and dense vector helpers.
//!
//! The SpMV crate (`pb-spmv`) and the iterative graph kernels (PageRank,
//! breadth-first search frontiers) operate on vectors next to the sparse
//! matrices.  [`SparseVec`] stores the nonzero entries of a length-`n` vector
//! in sorted coordinate form — the vector analogue of a single CSR row — and
//! the free functions at the bottom provide the handful of dense-vector
//! reductions the examples need without pulling in a linear-algebra crate.

use crate::error::SparseError;
use crate::semiring::{Numeric, PlusTimes, Semiring};
use crate::{Index, Scalar, MAX_DIM};

/// A sparse vector: sorted, duplicate-free indices with one value each.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec<T> {
    len: usize,
    idx: Vec<Index>,
    vals: Vec<T>,
}

impl<T: Scalar> SparseVec<T> {
    /// An empty (all-zero) vector of logical length `len`.
    pub fn zeros(len: usize) -> Self {
        SparseVec {
            len,
            idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Builds a sparse vector from `(index, value)` pairs.
    ///
    /// Entries may arrive in any order; duplicate indices are merged with the
    /// semiring's `add`.  Returns an error if any index is out of bounds or
    /// `len` exceeds [`MAX_DIM`].
    pub fn from_entries_with<S>(len: usize, entries: Vec<(usize, T)>) -> Result<Self, SparseError>
    where
        S: Semiring<Elem = T>,
    {
        if len > MAX_DIM {
            return Err(SparseError::DimensionTooLarge { dim: len });
        }
        let mut pairs: Vec<(Index, T)> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            if i >= len {
                return Err(SparseError::IndexOutOfBounds {
                    row: i,
                    col: 0,
                    nrows: len,
                    ncols: 1,
                });
            }
            pairs.push((i as Index, v));
        }
        pairs.sort_by_key(|&(i, _)| i);
        let mut idx: Vec<Index> = Vec::with_capacity(pairs.len());
        let mut vals: Vec<T> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if idx.last() == Some(&i) {
                let last = vals.last_mut().expect("idx and vals stay in lock step");
                *last = S::add(*last, v);
            } else {
                idx.push(i);
                vals.push(v);
            }
        }
        Ok(SparseVec { len, idx, vals })
    }

    /// Builds a sparse vector from `(index, value)` pairs, merging duplicates
    /// with ordinary `+`.
    pub fn from_entries(len: usize, entries: Vec<(usize, T)>) -> Result<Self, SparseError>
    where
        T: Numeric,
    {
        Self::from_entries_with::<PlusTimes<T>>(len, entries)
    }

    /// Builds a sparse vector from a dense slice, storing every element that
    /// is not `zero`.
    pub fn from_dense(dense: &[T], zero: T) -> Self {
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v != zero {
                idx.push(i as Index);
                vals.push(v);
            }
        }
        SparseVec {
            len: dense.len(),
            idx,
            vals,
        }
    }

    /// Expands to a dense vector, filling missing positions with `zero`.
    pub fn to_dense(&self, zero: T) -> Vec<T> {
        let mut out = vec![zero; self.len];
        for (&i, &v) in self.idx.iter().zip(&self.vals) {
            out[i as usize] = v;
        }
        out
    }

    /// Logical length of the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the logical length is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored (nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// The stored indices (sorted, duplicate-free).
    #[inline]
    pub fn indices(&self) -> &[Index] {
        &self.idx
    }

    /// The stored values, parallel to [`SparseVec::indices`].
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Looks up position `i`; `None` when it is not stored.
    pub fn get(&self, i: usize) -> Option<T> {
        self.idx
            .binary_search(&(i as Index))
            .ok()
            .map(|k| self.vals[k])
    }

    /// Iterates over stored `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, T)> + '_ {
        self.idx.iter().zip(&self.vals).map(|(&i, &v)| (i, v))
    }

    /// Applies `f` to every stored value, keeping the structure.
    pub fn map_values<U: Scalar>(&self, f: impl Fn(T) -> U) -> SparseVec<U> {
        SparseVec {
            len: self.len,
            idx: self.idx.clone(),
            vals: self.vals.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Keeps only the stored entries for which `keep` returns `true`.
    pub fn filter(&self, keep: impl Fn(Index, T) -> bool) -> SparseVec<T> {
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for (&i, &v) in self.idx.iter().zip(&self.vals) {
            if keep(i, v) {
                idx.push(i);
                vals.push(v);
            }
        }
        SparseVec {
            len: self.len,
            idx,
            vals,
        }
    }

    /// Sparse-sparse dot product under a semiring (`⊕` over `x_i ⊗ y_i`).
    pub fn dot_with<S>(&self, other: &SparseVec<T>) -> T
    where
        S: Semiring<Elem = T>,
    {
        assert_eq!(self.len, other.len, "dot product requires equal lengths");
        let mut acc = S::zero();
        let (mut p, mut q) = (0usize, 0usize);
        while p < self.idx.len() && q < other.idx.len() {
            match self.idx[p].cmp(&other.idx[q]) {
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
                std::cmp::Ordering::Equal => {
                    acc = S::add(acc, S::mul(self.vals[p], other.vals[q]));
                    p += 1;
                    q += 1;
                }
            }
        }
        acc
    }

    /// Sparse-sparse dot product with ordinary `+`/`×`.
    pub fn dot(&self, other: &SparseVec<T>) -> T
    where
        T: Numeric,
    {
        self.dot_with::<PlusTimes<T>>(other)
    }

    /// Element-wise sum of two sparse vectors under a semiring's `add`.
    pub fn add_with<S>(&self, other: &SparseVec<T>) -> SparseVec<T>
    where
        S: Semiring<Elem = T>,
    {
        assert_eq!(
            self.len, other.len,
            "element-wise add requires equal lengths"
        );
        let mut idx = Vec::with_capacity(self.nnz() + other.nnz());
        let mut vals = Vec::with_capacity(self.nnz() + other.nnz());
        let (mut p, mut q) = (0usize, 0usize);
        while p < self.idx.len() && q < other.idx.len() {
            match self.idx[p].cmp(&other.idx[q]) {
                std::cmp::Ordering::Less => {
                    idx.push(self.idx[p]);
                    vals.push(self.vals[p]);
                    p += 1;
                }
                std::cmp::Ordering::Greater => {
                    idx.push(other.idx[q]);
                    vals.push(other.vals[q]);
                    q += 1;
                }
                std::cmp::Ordering::Equal => {
                    idx.push(self.idx[p]);
                    vals.push(S::add(self.vals[p], other.vals[q]));
                    p += 1;
                    q += 1;
                }
            }
        }
        idx.extend_from_slice(&self.idx[p..]);
        vals.extend_from_slice(&self.vals[p..]);
        idx.extend_from_slice(&other.idx[q..]);
        vals.extend_from_slice(&other.vals[q..]);
        SparseVec {
            len: self.len,
            idx,
            vals,
        }
    }
}

// ---------------------------------------------------------------------------
// Dense-vector helpers
// ---------------------------------------------------------------------------

/// Dense dot product `Σ x_i · y_i`.
pub fn dense_dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot product requires equal lengths");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn dense_norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Sum of absolute values `‖x‖₁`.
pub fn dense_norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// `y ← α·x + y` in place.
pub fn dense_axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal lengths");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scales every element of `x` by `alpha` in place.
pub fn dense_scale(alpha: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Largest absolute difference between two vectors of equal length.
pub fn dense_max_diff(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "comparison requires equal lengths");
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{MinPlus, OrAnd};

    #[test]
    fn from_entries_sorts_and_merges_duplicates() {
        let v = SparseVec::from_entries(10, vec![(7, 1.0), (2, 3.0), (7, 2.0), (0, -1.0)]).unwrap();
        assert_eq!(v.len(), 10);
        assert_eq!(v.nnz(), 3);
        assert_eq!(v.indices(), &[0, 2, 7]);
        assert_eq!(v.get(7), Some(3.0));
        assert_eq!(v.get(1), None);
        assert_eq!(v.iter().count(), 3);
    }

    #[test]
    fn out_of_bounds_entries_are_rejected() {
        let err = SparseVec::from_entries(4, vec![(4, 1.0)]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn dense_roundtrip() {
        let dense = vec![0.0, 1.5, 0.0, 0.0, -2.0, 0.0];
        let v = SparseVec::from_dense(&dense, 0.0);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.to_dense(0.0), dense);
        assert_eq!(SparseVec::<f64>::zeros(3).to_dense(0.0), vec![0.0; 3]);
    }

    #[test]
    fn map_and_filter() {
        let v = SparseVec::from_entries(8, vec![(1, 2.0), (3, -4.0), (6, 1.0)]).unwrap();
        let doubled = v.map_values(|x| x * 2.0);
        assert_eq!(doubled.get(3), Some(-8.0));
        let positive = v.filter(|_, x| x > 0.0);
        assert_eq!(positive.nnz(), 2);
        assert_eq!(positive.get(3), None);
        let pattern = v.map_values(|_| true);
        assert_eq!(pattern.get(6), Some(true));
    }

    #[test]
    fn sparse_dot_products() {
        let x = SparseVec::from_entries(6, vec![(0, 1.0), (2, 2.0), (5, 3.0)]).unwrap();
        let y = SparseVec::from_entries(6, vec![(2, 4.0), (3, 7.0), (5, -1.0)]).unwrap();
        assert_eq!(x.dot(&y), 2.0 * 4.0 + -3.0);
        assert_eq!(x.dot(&SparseVec::zeros(6)), 0.0);
        // Min-plus dot: min over shared indices of (x_i + y_i).
        assert_eq!(x.dot_with::<MinPlus>(&y), (2.0f64 + 4.0).min(3.0 - 1.0));
        // Boolean overlap test.
        let px = x.map_values(|_| true);
        let py = y.map_values(|_| true);
        assert!(px.dot_with::<OrAnd>(&py));
    }

    #[test]
    fn sparse_add_unions_structures() {
        let x = SparseVec::from_entries(6, vec![(0, 1.0), (2, 2.0)]).unwrap();
        let y = SparseVec::from_entries(6, vec![(2, 4.0), (5, 7.0)]).unwrap();
        let z = x.add_with::<PlusTimes<f64>>(&y);
        assert_eq!(z.nnz(), 3);
        assert_eq!(z.get(2), Some(6.0));
        assert_eq!(z.get(5), Some(7.0));
        assert_eq!(z.to_dense(0.0), vec![1.0, 0.0, 6.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn dense_helpers() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![4.0, -5.0, 6.0];
        assert_eq!(dense_dot(&x, &y), 4.0 - 10.0 + 18.0);
        assert!((dense_norm2(&x) - 14.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(dense_norm1(&y), 15.0);
        let mut z = y.clone();
        dense_axpy(2.0, &x, &mut z);
        assert_eq!(z, vec![6.0, -1.0, 12.0]);
        dense_scale(0.5, &mut z);
        assert_eq!(z, vec![3.0, -0.5, 6.0]);
        assert_eq!(dense_max_diff(&x, &[1.0, 2.5, 2.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn length_mismatch_panics() {
        let x = SparseVec::<f64>::zeros(3);
        let y = SparseVec::<f64>::zeros(4);
        let _ = x.dot(&y);
    }
}
