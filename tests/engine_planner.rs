//! The cross-algorithm oracle matrix for the unified [`SpGemm`] engine:
//! every selectable kernel (auto/PB/all six baselines/reference) is run
//! through the same four scenarios — unit-valued exact products, masked
//! products, workspace-reused iteration, and a 4-thread / 2-domain pool —
//! and must agree with the sequential reference oracle in each.  A final
//! set of tests pins down the planner: identical signals and identical
//! calibration must produce identical decisions, and the `PB_ALGORITHM`
//! environment selector (CI's fifth test-suite mode) must never change a
//! product.
//!
//! Unit-valued inputs make the agreement *bit*-exact: every merged sum adds
//! only 1.0s, so float reassociation cannot blur the comparison and any
//! divergence is a real kernel bug.

use std::sync::Arc;

use pb_spgemm_suite::baseline::Baseline;
use pb_spgemm_suite::gen::{erdos_renyi_square, rmat_square};
use pb_spgemm_suite::prelude::*;
use pb_spgemm_suite::sparse::ops::mask_by_pattern;
use pb_spgemm_suite::sparse::reference;

/// Every engine the oracle matrix sweeps: the planner, forced PB, all six
/// column baselines, and the reference implementation itself (which must
/// trivially agree with the oracle — a harness sanity check).
fn all_engines() -> Vec<SpGemm> {
    let mut engines = vec![SpGemm::auto(), SpGemm::pb()];
    engines.extend(Baseline::all().iter().map(|&b| SpGemm::baseline(b)));
    engines.push(SpGemm::reference());
    engines
}

fn unit(a: Csr<f64>) -> Csr<f64> {
    a.map_values(|_| 1.0)
}

fn assert_bit_identical(got: &Csr<f64>, want: &Csr<f64>, what: &str) {
    assert_eq!(got.rowptr(), want.rowptr(), "{what}: rowptr differs");
    assert_eq!(got.colidx(), want.colidx(), "{what}: colidx differs");
    assert_eq!(got.values(), want.values(), "{what}: values differ");
}

#[test]
fn oracle_matrix_unit_valued_products_are_bit_exact() {
    let inputs = [
        ("rmat", unit(rmat_square(8, 8, 21))),
        ("er", unit(erdos_renyi_square(8, 4, 22))),
    ];
    for (name, a) in &inputs {
        let expected = reference::multiply_csr(a, a);
        for engine in all_engines() {
            let c = engine.multiply(a, a);
            assert_bit_identical(&c, &expected, &format!("{}/{name}", engine.name()));
        }
    }
}

#[test]
fn oracle_matrix_masked_products_agree() {
    // Triangle-counting shape: mask = the input's own pattern.
    let a = unit(rmat_square(8, 6, 23));
    let expected = mask_by_pattern(&reference::multiply_csr(&a, &a), &a);
    for engine in all_engines() {
        let c = engine.mask(&a).multiply(&a, &a);
        assert_bit_identical(&c, &expected, &format!("{}/masked", engine.name()));
    }
}

#[test]
fn oracle_matrix_workspace_reuse_never_changes_a_product() {
    let a = unit(erdos_renyi_square(8, 6, 24));
    let expected = reference::multiply_csr(&a, &a);
    for engine in all_engines() {
        let name = engine.name().to_string();
        let engine = engine.with_iteration_workspace();
        for round in 0..3 {
            let c = engine.multiply(&a, &a);
            assert_bit_identical(&c, &expected, &format!("{name}/reuse round {round}"));
        }
        // A forced-PB engine must actually reuse.  Auto also carries the
        // workspace but only touches it when the planner picks PB, so only
        // presence is asserted there; baselines and the reference carry none.
        match engine.kind() {
            Algorithm::Pb => {
                let ws = engine.workspace_handle().expect("PB gained a workspace");
                assert!(
                    ws.total_bytes_reused() > 0,
                    "{name}: iteration workspace never reused"
                );
            }
            Algorithm::Auto => assert!(engine.workspace_handle().is_some(), "{name}"),
            _ => assert!(engine.workspace_handle().is_none(), "{name}"),
        }
    }
}

#[test]
fn oracle_matrix_four_threads_two_domains_agree() {
    let a = unit(rmat_square(8, 8, 25));
    let expected = reference::multiply_csr(&a, &a);
    for engine in all_engines() {
        let name = engine.name().to_string();
        let engine = engine.config(PbConfig::default().with_threads(4).with_numa_domains(2));
        let c = engine.multiply(&a, &a);
        assert_bit_identical(&c, &expected, &format!("{name}/t4/d2"));
    }
}

#[test]
fn planner_decisions_are_deterministic() {
    let a = rmat_square(8, 8, 26);
    let signals = Signals::measure(&a, &a, &PbConfig::default());

    // The same signals measured twice are identical (sampling is seeded by
    // structure, not by a clock).
    let again = Signals::measure(&a, &a, &PbConfig::default());
    assert_eq!(signals.cf_estimate, again.cf_estimate);
    assert_eq!(signals.row_skew, again.row_skew);
    assert_eq!(signals.bin_skew, again.bin_skew);
    assert_eq!(signals.flop, again.flop);

    // Two planners fed the same calibration decide identically, every time.
    let feed = |planner: &Planner| {
        for (i, &k) in PlannedKernel::candidates().iter().enumerate() {
            planner.observe(k, &signals, 0.010 + 0.002 * i as f64);
        }
    };
    let p1 = Planner::new();
    let p2 = Planner::new();
    feed(&p1);
    feed(&p2);
    let d1 = p1.decide(&signals);
    for _ in 0..8 {
        assert_eq!(p1.decide(&signals), d1, "a planner flip-flopped");
        assert_eq!(
            p2.decide(&signals),
            d1,
            "identically calibrated planners disagree"
        );
    }

    // The cold-start prior is deterministic too.
    assert_eq!(
        Planner::new().prior(&signals),
        Planner::new().prior(&signals)
    );
}

#[test]
fn calibration_table_roundtrips_through_its_text_form() {
    let a = rmat_square(7, 6, 27);
    let signals = Signals::measure(&a, &a, &PbConfig::default());
    let planner = Planner::new();
    for &k in PlannedKernel::candidates() {
        planner.observe(k, &signals, 0.005);
    }
    let dump = planner.dump_calibration();
    let restored = Planner::new();
    restored.load_calibration(&dump);
    assert_eq!(
        planner.decide(&signals),
        restored.decide(&signals),
        "a reloaded calibration table changed the decision"
    );
}

#[test]
fn env_selected_engine_matches_the_reference_oracle() {
    // CI's fifth suite mode runs everything under PB_ALGORITHM=auto; this
    // test keeps the env entry point itself honest in every mode — whatever
    // the variable selects (or doesn't), the product must be right.
    let a = unit(erdos_renyi_square(8, 5, 28));
    let expected = reference::multiply_csr(&a, &a);
    let engine = SpGemm::from_env();
    let c = engine.multiply(&a, &a);
    assert_bit_identical(&c, &expected, &format!("from_env -> {}", engine.name()));
}

#[test]
fn shared_planner_accumulates_observations_across_engines() {
    let planner = Arc::new(Planner::new());
    let a = unit(erdos_renyi_square(7, 4, 29));
    let e1 = SpGemm::auto().planner(planner.clone());
    let e2 = SpGemm::auto().planner(planner.clone());
    let expected = reference::multiply_csr(&a, &a);
    assert_bit_identical(&e1.multiply(&a, &a), &expected, "shared planner e1");
    assert_bit_identical(&e2.multiply(&a, &a), &expected, "shared planner e2");
    assert_eq!(planner.decisions(), 2);
    assert_eq!(planner.observations(), 2);
}
