//! Timed algorithm runs shared by all figure/table binaries, and the
//! JSON-facing [`Telemetry`] view of a multiplication's
//! [`PhaseStats`](pb_spgemm::PhaseStats).

use std::time::Instant;

use pb_baseline::Baseline;
use pb_spgemm::{PbConfig, SpGemmProfile};
use serde::Serialize;

use crate::workloads::Workload;

/// An algorithm under test: PB-SpGEMM with a particular configuration, or
/// one of the column baselines.
#[derive(Debug, Clone, PartialEq)]
pub enum Algorithm {
    /// PB-SpGEMM with the given configuration.
    Pb(PbConfig),
    /// A column SpGEMM baseline.
    Baseline(Baseline),
}

impl Algorithm {
    /// The four algorithms the paper's performance figures compare.
    pub fn paper_set() -> Vec<Algorithm> {
        let mut v = vec![Algorithm::Pb(PbConfig::default())];
        v.extend(
            Baseline::paper_set()
                .iter()
                .map(|&b| Algorithm::Baseline(b)),
        );
        v
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Pb(_) => "PB-SpGEMM",
            Algorithm::Baseline(b) => b.name(),
        }
    }
}

/// One timed measurement of one algorithm on one workload.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Workload name.
    pub workload: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Number of worker threads requested (the sweep key in scaling runs).
    pub threads: usize,
    /// Number of worker threads that actually executed.  The vendored pool
    /// is real, so an explicit request is honoured exactly (a dedicated
    /// pool of that size runs the work); only `None` requests depend on the
    /// environment (`PB_RAYON_THREADS` or the machine's parallelism).  The
    /// field is kept alongside `threads` so JSON consumers spanning old
    /// (sequential-shim) and new records keep a consistent schema.
    pub threads_effective: usize,
    /// Best wall-clock time over the repetitions, in seconds.
    pub seconds: f64,
    /// Achieved MFLOPS (`flop / seconds / 1e6`).
    pub mflops: f64,
    /// flop of the multiplication.
    pub flop: u64,
    /// nnz of the output.
    pub nnz_c: usize,
    /// Compression factor.
    pub cf: f64,
}

/// Runs `algorithm` on `workload` `reps` times and reports the best run.
///
/// `threads = None` uses the global rayon pool (all cores); otherwise a
/// dedicated pool of that size is used for baselines and the PB
/// configuration is updated accordingly.
pub fn measure(
    workload: &Workload,
    algorithm: &Algorithm,
    reps: usize,
    threads: Option<usize>,
) -> Measurement {
    // One dedicated pool for all repetitions, built outside the timed
    // region: thread spawning is measurement noise, not multiplication.
    let pool = threads.map(|t| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(t.max(1))
            .build()
            .expect("rayon pool")
    });
    measure_in(workload, algorithm, reps, threads, pool.as_ref())
}

/// [`measure`] on a caller-provided pool, so one dedicated pool can serve
/// several measurements of the same width (the baseline sweep reuses one
/// pool per sweep point for both the timed runs and the profiled run,
/// instead of building a pool per consumer).
pub fn measure_in(
    workload: &Workload,
    algorithm: &Algorithm,
    reps: usize,
    threads: Option<usize>,
    pool: Option<&rayon::ThreadPool>,
) -> Measurement {
    let reps = reps.max(1);
    let mut best = f64::MAX;
    let mut nnz_c = 0usize;
    for _ in 0..reps {
        let (dt, nnz) = run_once(workload, algorithm, pool);
        best = best.min(dt);
        nnz_c = nnz;
    }
    let flop = workload.stats.flop;
    Measurement {
        workload: workload.name.clone(),
        algorithm: algorithm.name().to_string(),
        threads: threads.unwrap_or_else(rayon::current_num_threads).max(1),
        threads_effective: effective_threads(threads),
        seconds: best,
        mflops: flop as f64 / best / 1e6,
        flop,
        nnz_c,
        cf: workload.stats.cf,
    }
}

/// The thread count a request actually executes on.  Explicit requests are
/// honoured exactly — `run_once` installs a dedicated pool of that size —
/// and `None` uses the current (global) pool.  The old sequential-shim
/// special case is gone: the vendored pool reports the count that really
/// runs, so the shim's `current_num_threads()` and this function agree by
/// construction.
fn effective_threads(requested: Option<usize>) -> usize {
    requested.unwrap_or_else(rayon::current_num_threads).max(1)
}

fn run_once(
    workload: &Workload,
    algorithm: &Algorithm,
    pool: Option<&rayon::ThreadPool>,
) -> (f64, usize) {
    let run = || match algorithm {
        Algorithm::Pb(cfg) => {
            // The pool is installed around the call, so the config itself
            // must not request a second, nested pool.
            let cfg = PbConfig {
                threads: None,
                ..cfg.clone()
            };
            let engine = pb_spgemm::SpGemm::pb().config(cfg);
            let t = Instant::now();
            let c = engine.multiply_csc(&workload.a_csc, &workload.a);
            (t.elapsed().as_secs_f64(), c.nnz())
        }
        Algorithm::Baseline(b) => {
            let t = Instant::now();
            let c = b.multiply(&workload.a, &workload.a);
            (t.elapsed().as_secs_f64(), c.nnz())
        }
    };
    match pool {
        Some(pool) => pool.install(run),
        None => run(),
    }
}

/// Runs PB-SpGEMM once and returns its per-phase profile (used by the
/// bandwidth and breakdown figures).
pub fn measure_pb_profile(workload: &Workload, config: &PbConfig) -> SpGemmProfile {
    let (_, profile) = pb_spgemm::SpGemm::pb()
        .config(config.clone())
        .multiply_csc_with_profile::<pb_sparse::PlusTimes<f64>>(&workload.a_csc, &workload.a);
    profile
}

/// The serializable view of one multiplication's runtime telemetry,
/// emitted per sweep point into `BENCH_pb.json` (`telemetry` section).
///
/// Raw counters come straight from
/// [`PhaseStats`](pb_spgemm::PhaseStats); the derived rates are
/// pre-computed here so JSON consumers (plots, CI checks) need no
/// knowledge of the histogram conventions.
#[derive(Debug, Clone, Serialize)]
pub struct Telemetry {
    /// Local-bin capacity (tuples) the expand phase used.
    pub local_bin_capacity: usize,
    /// Total local-bin flushes across all threads.
    pub flushes: u64,
    /// Total tuples moved by those flushes.
    pub flushed_tuples: u64,
    /// Mean tuples per flush.
    pub mean_flush_tuples: f64,
    /// Fraction of flushes that were capacity-triggered.
    pub full_flush_fraction: f64,
    /// Histogram of flush sizes by fill-fraction eighth of the capacity.
    pub flush_fill_hist: Vec<u64>,
    /// Expand fold segments that reported flush counts.
    pub expand_segments: usize,
    /// Fewest flushes any one segment performed.
    pub min_segment_flushes: u64,
    /// Most flushes any one segment performed.
    pub max_segment_flushes: u64,
    /// Expanded tuples landing in the fullest bin.
    pub max_bin_flop: u64,
    /// Bin occupancy skew (fullest bin / mean bin).
    pub bin_occupancy_skew: f64,
    /// Bins sorted with in-bin parallelism.
    pub par_sorted_bins: usize,
    /// Bins the compress phase split at key boundaries.
    pub split_bins: usize,
    /// Total chunks those split bins became.
    pub split_chunks: usize,
    /// Output rows holding at least one nonzero.
    pub nonempty_rows: usize,
    /// NUMA partition and flush-locality telemetry.
    pub numa: NumaTelemetry,
    /// Workspace buffer traffic of the run (schema v3).
    pub workspace: WorkspaceTelemetry,
    /// SIMD dispatch proof of the run (schema v5).
    pub isa: IsaTelemetry,
}

/// The `isa` section of one sweep point: which SIMD dispatch level the
/// multiply resolved to and the kernel invocation counters that *prove* the
/// path executed — the gate checks these instead of trusting build flags.
#[derive(Debug, Clone, Serialize)]
pub struct IsaTelemetry {
    /// Name of the dispatched level (`avx512` | `avx2` | `neon` | `scalar`).
    pub isa: String,
    /// Radix histogram invocations that ran a SIMD kernel.
    pub simd_histograms: u64,
    /// Radix histogram invocations that ran the scalar loop.
    pub scalar_histograms: u64,
    /// Radix scatter passes that issued destination prefetch hints.
    pub prefetched_scatters: u64,
    /// Expand-phase bin flushes that prefetched their destination lines.
    pub prefetched_flushes: u64,
}

impl IsaTelemetry {
    /// Extracts the ISA section from a profiled run's stats.
    pub fn from_stats(s: &pb_spgemm::PhaseStats) -> Self {
        IsaTelemetry {
            isa: s.isa.isa.name().to_string(),
            simd_histograms: s.isa.simd_histograms,
            scalar_histograms: s.isa.scalar_histograms,
            prefetched_scatters: s.isa.prefetched_scatters,
            prefetched_flushes: s.isa.prefetched_flushes,
        }
    }
}

/// The `workspace` section of one sweep point: how much of the multiply's
/// working memory (expand tuple buffer, sort scratch, staging) came from a
/// persistent [`Workspace`](pb_spgemm::Workspace) versus the heap.  Fresh
/// (workspace-less) runs report allocation traffic and zero reuse.
#[derive(Debug, Clone, Serialize)]
pub struct WorkspaceTelemetry {
    /// Bytes of workspace-managed buffers newly allocated by this multiply.
    pub bytes_allocated: u64,
    /// Bytes served from recycled workspace capacity.
    pub bytes_reused: u64,
    /// Buffer acquisitions served entirely from recycled capacity.
    pub workspace_hits: u64,
}

impl WorkspaceTelemetry {
    /// Extracts the workspace section from a profiled run's stats.
    pub fn from_stats(s: &pb_spgemm::PhaseStats) -> Self {
        WorkspaceTelemetry {
            bytes_allocated: s.bytes_allocated,
            bytes_reused: s.bytes_reused,
            workspace_hits: s.workspace_hits,
        }
    }
}

/// The `numa` section of one sweep point: how the bins were partitioned
/// over NUMA domains and how local the expand-phase flush traffic actually
/// was (measured, not assumed — remote flushes come from cross-domain work
/// stealing, so this is the number that *proves* socket-locality).
#[derive(Debug, Clone, Serialize)]
pub struct NumaTelemetry {
    /// Domains the multiplication's bins were partitioned over (1 = no
    /// partitioning).
    pub domains: usize,
    /// Flushes whose destination sub-segment belonged to the flushing
    /// worker's own domain.
    pub local_flushes: u64,
    /// Flushes that crossed domains.
    pub remote_flushes: u64,
    /// `local_flushes / (local + remote)`; 1.0 when nothing flushed.
    pub local_flush_fraction: f64,
    /// Tuples moved by domain-local flushes.
    pub local_flushed_tuples: u64,
    /// Tuples moved by cross-domain flushes.
    pub remote_flushed_tuples: u64,
    /// Expanded tuples owned by each domain's bin segments (one entry per
    /// domain that ran).
    pub domain_occupancy: Vec<u64>,
}

impl NumaTelemetry {
    /// Extracts the NUMA section from a profiled run's stats.
    pub fn from_stats(s: &pb_spgemm::PhaseStats) -> Self {
        NumaTelemetry {
            domains: s.numa_domains,
            local_flushes: s.local_flushes,
            remote_flushes: s.remote_flushes,
            local_flush_fraction: s.local_flush_fraction(),
            local_flushed_tuples: s.local_flushed_tuples,
            remote_flushed_tuples: s.remote_flushed_tuples,
            domain_occupancy: s.domain_occupancy().to_vec(),
        }
    }
}

impl Telemetry {
    /// Extracts the JSON-facing telemetry from a profiled run.
    pub fn from_profile(profile: &SpGemmProfile) -> Self {
        let s = &profile.stats;
        Telemetry {
            local_bin_capacity: s.local_bin_capacity,
            flushes: s.flushes,
            flushed_tuples: s.flushed_tuples,
            mean_flush_tuples: s.mean_flush_tuples(),
            full_flush_fraction: s.full_flush_fraction(),
            flush_fill_hist: s.flush_fill_hist.to_vec(),
            expand_segments: s.expand_segments,
            min_segment_flushes: s.min_segment_flushes,
            max_segment_flushes: s.max_segment_flushes,
            max_bin_flop: s.max_bin_flop,
            bin_occupancy_skew: s.occupancy_skew(),
            par_sorted_bins: s.par_sorted_bins,
            split_bins: s.split_bins,
            split_chunks: s.split_chunks,
            nonempty_rows: s.nonempty_rows,
            numa: NumaTelemetry::from_stats(s),
            workspace: WorkspaceTelemetry::from_stats(s),
            isa: IsaTelemetry::from_stats(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::er_matrix;

    #[test]
    fn measurements_are_positive_and_consistent() {
        let w = er_matrix(8, 4, 5);
        for algo in Algorithm::paper_set() {
            let m = measure(&w, &algo, 1, Some(1));
            assert!(m.seconds > 0.0);
            assert!(m.mflops > 0.0);
            assert_eq!(m.flop, w.stats.flop);
            assert_eq!(
                m.nnz_c, w.stats.nnz_c,
                "{} produced the wrong nnz",
                m.algorithm
            );
            assert_eq!(m.threads, 1);
        }
    }

    #[test]
    fn paper_set_has_pb_and_three_baselines() {
        let set = Algorithm::paper_set();
        assert_eq!(set.len(), 4);
        assert_eq!(set[0].name(), "PB-SpGEMM");
    }

    #[test]
    fn profile_measurement_reports_phases() {
        let w = er_matrix(8, 4, 6);
        let p = measure_pb_profile(&w, &PbConfig::default());
        assert_eq!(p.flop, w.stats.flop);
        assert!(p.timings.total().as_nanos() > 0);
    }

    #[test]
    fn telemetry_mirrors_the_profile_stats() {
        let w = er_matrix(8, 6, 7);
        let p = measure_pb_profile(&w, &PbConfig::default());
        let t = Telemetry::from_profile(&p);
        // The default Reserved strategy flushes every expanded tuple.
        assert_eq!(t.flushed_tuples, p.flop);
        assert!(t.flushes > 0);
        assert_eq!(t.flush_fill_hist.iter().sum::<u64>(), t.flushes);
        assert!(t.mean_flush_tuples > 0.0);
        assert!(t.bin_occupancy_skew >= 1.0);
        assert!(t.nonempty_rows > 0);
        // And it serializes with the field names downstream plots expect.
        let json = serde_json::to_string(&t).unwrap();
        for key in [
            "local_bin_capacity",
            "mean_flush_tuples",
            "full_flush_fraction",
            "flush_fill_hist",
            "bin_occupancy_skew",
            "split_bins",
            "\"numa\"",
            "local_flush_fraction",
            "domain_occupancy",
            "\"workspace\"",
            "bytes_allocated",
            "bytes_reused",
            "workspace_hits",
            "\"isa\"",
            "simd_histograms",
            "scalar_histograms",
            "prefetched_scatters",
            "prefetched_flushes",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        // A fresh (workspace-less) run allocates and never reuses.
        assert!(t.workspace.bytes_allocated > 0);
        assert_eq!(t.workspace.bytes_reused, 0);
        assert_eq!(t.workspace.workspace_hits, 0);
        // The ISA section names the process-wide dispatch level and its
        // counters agree with it: a SIMD level proves itself with SIMD
        // histogram invocations, forced scalar with scalar ones.
        assert_eq!(t.isa.isa, pb_spgemm::simd::active().name());
        if pb_spgemm::simd::active() == pb_spgemm::Isa::Scalar {
            assert_eq!(t.isa.simd_histograms, 0);
            assert_eq!(t.isa.prefetched_flushes, 0);
        } else {
            assert!(t.isa.simd_histograms + t.isa.scalar_histograms > 0);
            assert_eq!(t.isa.prefetched_flushes, t.flushes);
        }
    }

    #[test]
    fn workspace_telemetry_reports_reuse_on_repeat_multiplies() {
        let w = er_matrix(8, 6, 11);
        let cfg = PbConfig::reusing();
        let first = Telemetry::from_profile(&measure_pb_profile(&w, &cfg));
        let second = Telemetry::from_profile(&measure_pb_profile(&w, &cfg));
        assert!(first.workspace.bytes_allocated > 0);
        assert_eq!(second.workspace.bytes_allocated, 0, "steady state");
        assert!(second.workspace.bytes_reused > 0);
        assert!(second.workspace.workspace_hits > 0);
    }

    #[test]
    fn numa_telemetry_accounts_the_partition() {
        let w = er_matrix(8, 6, 9);
        let cfg = PbConfig::default().with_threads(2).with_numa_domains(2);
        let p = measure_pb_profile(&w, &cfg);
        let t = Telemetry::from_profile(&p);
        assert_eq!(t.numa.domains, 2);
        assert_eq!(t.numa.domain_occupancy.len(), 2);
        assert_eq!(t.numa.domain_occupancy.iter().sum::<u64>(), p.flop);
        assert_eq!(
            t.numa.local_flushes + t.numa.remote_flushes,
            t.flushes,
            "every flush is local or remote"
        );
        assert!((0.0..=1.0).contains(&t.numa.local_flush_fraction));
        // An unpartitioned run is all-local by definition.
        let p1 = measure_pb_profile(
            &w,
            &PbConfig::default().with_threads(2).with_numa_domains(1),
        );
        let t1 = Telemetry::from_profile(&p1);
        assert_eq!(t1.numa.domains, 1);
        assert_eq!(t1.numa.remote_flushes, 0);
        assert_eq!(t1.numa.local_flush_fraction, 1.0);
    }
}
