//! Semiring abstractions used by every SpGEMM kernel in the workspace.
//!
//! The paper's algorithms only ever combine values in two places — the
//! multiplication that produces an expanded tuple and the addition that
//! merges tuples sharing a `(row, col)` key — so all of them are generic over
//! a [`Semiring`].  The conventional numeric product uses [`PlusTimes`];
//! graph kernels such as triangle counting or breadth-first expansion use
//! [`PlusTimes<u64>`] or [`OrAnd`], and shortest-path style products use
//! [`MinPlus`].

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::Scalar;

/// An algebraic semiring `(⊕, ⊗, 0)` over the element type `Self::Elem`.
///
/// Implementations are zero-sized marker types; all operations are associated
/// functions so kernels monomorphise to straight-line arithmetic with no
/// dynamic dispatch.
///
/// # Laws
///
/// Kernels rely on the usual semiring laws:
///
/// * `add` is associative and commutative with identity `zero()`;
/// * `mul` is associative;
/// * `mul(x, zero()) == zero()` and `mul(zero(), x) == zero()` (annihilation).
///
/// Floating point `+` only satisfies these approximately; the test suites
/// compare against reference implementations that apply the operations in a
/// deterministic order and accept a small tolerance.
pub trait Semiring: Copy + Send + Sync + Debug + Default + 'static {
    /// Element type the semiring operates on.
    type Elem: Scalar;

    /// Human-readable name, used in benchmark reports.
    const NAME: &'static str;

    /// The additive identity (the implicit value of matrix zeros).
    fn zero() -> Self::Elem;

    /// The "addition" used to merge duplicate entries.
    fn add(a: Self::Elem, b: Self::Elem) -> Self::Elem;

    /// The "multiplication" used when expanding `A(i, k) ⊗ B(k, j)`.
    fn mul(a: Self::Elem, b: Self::Elem) -> Self::Elem;

    /// Whether a value is the additive identity.  Used by kernels that drop
    /// explicit zeros from the output (disabled by default in this
    /// reproduction so that nnz counts match the paper's accounting).
    fn is_zero(v: &Self::Elem) -> bool {
        *v == Self::zero()
    }
}

/// Helper trait describing primitive numeric types usable with [`PlusTimes`]
/// and [`MaxTimes`].
pub trait Numeric:
    Scalar + std::ops::Add<Output = Self> + std::ops::Mul<Output = Self> + PartialOrd
{
    /// Additive identity of the plain numeric type.
    fn zero_value() -> Self;
    /// Multiplicative identity of the plain numeric type.
    fn one_value() -> Self;
}

macro_rules! impl_numeric {
    ($($t:ty => ($z:expr, $o:expr)),* $(,)?) => {
        $(
            impl Numeric for $t {
                #[inline]
                fn zero_value() -> Self { $z }
                #[inline]
                fn one_value() -> Self { $o }
            }
        )*
    };
}

impl_numeric!(
    f64 => (0.0, 1.0),
    f32 => (0.0, 1.0),
    i64 => (0, 1),
    i32 => (0, 1),
    u64 => (0, 1),
    u32 => (0, 1),
);

/// The conventional arithmetic semiring `(+, ×, 0)` over a numeric type.
///
/// This is the semiring the paper evaluates: double-precision values, plain
/// addition for merging and plain multiplication for expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlusTimes<T>(PhantomData<T>);

impl<T> Default for PlusTimes<T> {
    fn default() -> Self {
        PlusTimes(PhantomData)
    }
}

impl<T: Numeric> Semiring for PlusTimes<T> {
    type Elem = T;
    const NAME: &'static str = "plus-times";

    #[inline]
    fn zero() -> T {
        T::zero_value()
    }

    #[inline]
    fn add(a: T, b: T) -> T {
        a + b
    }

    #[inline]
    fn mul(a: T, b: T) -> T {
        a * b
    }
}

/// The tropical / shortest-path semiring `(min, +, +∞)` over `f64`.
///
/// `C = A ⊗ B` under this semiring computes, for every `(i, j)`, the length
/// of the shortest two-hop path `i → k → j`.  Used by the all-pairs
/// shortest-path example.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type Elem = f64;
    const NAME: &'static str = "min-plus";

    #[inline]
    fn zero() -> f64 {
        f64::INFINITY
    }

    #[inline]
    fn add(a: f64, b: f64) -> f64 {
        a.min(b)
    }

    #[inline]
    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }
}

/// The boolean semiring `(∨, ∧, false)`.
///
/// `C = A ⊗ B` under this semiring computes structural reachability in two
/// hops — the sparsity pattern of the numeric product.  Used by the symbolic
/// reference implementation and by the multi-source BFS example.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrAnd;

impl Semiring for OrAnd {
    type Elem = bool;
    const NAME: &'static str = "or-and";

    #[inline]
    fn zero() -> bool {
        false
    }

    #[inline]
    fn add(a: bool, b: bool) -> bool {
        a || b
    }

    #[inline]
    fn mul(a: bool, b: bool) -> bool {
        a && b
    }
}

/// The `(max, ×)` semiring over a numeric type, with `0` as the additive
/// identity (valid for non-negative inputs such as probabilities).
///
/// Used by the Markov-clustering example, where expansion multiplies column
/// stochastic matrices and the dominant transition is of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxTimes<T>(PhantomData<T>);

impl<T> Default for MaxTimes<T> {
    fn default() -> Self {
        MaxTimes(PhantomData)
    }
}

impl<T: Numeric> Semiring for MaxTimes<T> {
    type Elem = T;
    const NAME: &'static str = "max-times";

    #[inline]
    fn zero() -> T {
        T::zero_value()
    }

    #[inline]
    fn add(a: T, b: T) -> T {
        if a > b {
            a
        } else {
            b
        }
    }

    #[inline]
    fn mul(a: T, b: T) -> T {
        a * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_f64_laws() {
        type S = PlusTimes<f64>;
        assert_eq!(S::zero(), 0.0);
        assert_eq!(S::add(2.0, 3.0), 5.0);
        assert_eq!(S::mul(2.0, 3.0), 6.0);
        assert_eq!(S::mul(2.0, S::zero()), 0.0);
        assert!(S::is_zero(&0.0));
        assert!(!S::is_zero(&1.0));
        assert_eq!(S::NAME, "plus-times");
    }

    #[test]
    fn plus_times_integer_types() {
        assert_eq!(<PlusTimes<u64> as Semiring>::mul(6, 7), 42);
        assert_eq!(<PlusTimes<i32> as Semiring>::add(-2, 5), 3);
        assert_eq!(<PlusTimes<u32> as Semiring>::zero(), 0);
        assert_eq!(<PlusTimes<f32> as Semiring>::mul(0.5, 4.0), 2.0);
        assert_eq!(<PlusTimes<i64> as Semiring>::mul(-3, 3), -9);
    }

    #[test]
    fn min_plus_behaves_like_shortest_path() {
        assert_eq!(MinPlus::zero(), f64::INFINITY);
        // Two parallel two-hop paths of length 5 and 3: merging keeps 3.
        assert_eq!(MinPlus::add(5.0, 3.0), 3.0);
        // Path concatenation adds lengths.
        assert_eq!(MinPlus::mul(2.0, 1.0), 3.0);
        // The annihilator: going through a non-edge costs infinity.
        assert_eq!(MinPlus::mul(2.0, MinPlus::zero()), f64::INFINITY);
        assert!(MinPlus::is_zero(&f64::INFINITY));
    }

    #[test]
    fn or_and_is_boolean_reachability() {
        assert!(!OrAnd::zero());
        assert!(OrAnd::add(true, false));
        assert!(!OrAnd::add(false, false));
        assert!(OrAnd::mul(true, true));
        assert!(!OrAnd::mul(true, false));
    }

    #[test]
    fn max_times_keeps_dominant_path() {
        type S = MaxTimes<f64>;
        assert_eq!(S::add(0.3, 0.4), 0.4);
        assert_eq!(S::mul(0.5, 0.5), 0.25);
        assert_eq!(S::zero(), 0.0);
    }

    #[test]
    fn add_is_commutative_and_associative_for_integers() {
        type S = PlusTimes<i64>;
        let vals = [-4i64, 0, 3, 17, 1000];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(S::add(a, b), S::add(b, a));
                for &c in &vals {
                    assert_eq!(S::add(S::add(a, b), c), S::add(a, S::add(b, c)));
                    assert_eq!(S::mul(S::mul(a, b), c), S::mul(a, S::mul(b, c)));
                }
            }
        }
    }
}
