//! PageRank power iteration on top of the SpMV kernels.
//!
//! PageRank is the application Beamer et al. introduced propagation blocking
//! for, which makes it the natural end-to-end driver for comparing
//! [`crate::csr_spmv`], [`crate::csc_spmv`] and [`crate::pb_spmv`]: the same
//! iteration runs on any engine, and the per-iteration work is dominated by
//! one SpMV over the transition matrix.

use pb_sparse::ops;
use pb_sparse::vector::{dense_norm1, dense_scale};
use pb_sparse::{Csc, Csr};

use crate::pb::{pb_spmv, PbSpmvConfig};
use crate::{csc_spmv, csr_spmv, SpmvEngine};

/// Configuration of the PageRank power iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor `d` (the probability of following an out-edge).
    pub damping: f64,
    /// Convergence threshold on the L1 change between iterations.
    pub tolerance: f64,
    /// Hard cap on the number of iterations.
    pub max_iterations: usize,
    /// Which SpMV kernel performs the per-iteration multiplication.
    pub engine: SpmvEngine,
    /// Configuration of the propagation-blocking kernel (ignored by the
    /// other engines).
    pub pb: PbSpmvConfig,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tolerance: 1e-10,
            max_iterations: 200,
            engine: SpmvEngine::PropagationBlocking,
            pb: PbSpmvConfig::default(),
        }
    }
}

impl PageRankConfig {
    /// Selects the SpMV engine.
    pub fn with_engine(mut self, engine: SpmvEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the damping factor (clamped to `(0, 1)`).
    pub fn with_damping(mut self, damping: f64) -> Self {
        self.damping = damping.clamp(1e-6, 1.0 - 1e-6);
        self
    }

    /// Sets the convergence tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance.max(0.0);
        self
    }

    /// Sets the iteration cap.
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters.max(1);
        self
    }
}

/// Result of a PageRank computation.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankResult {
    /// Final score per vertex; scores sum to one.
    pub scores: Vec<f64>,
    /// Number of power iterations performed.
    pub iterations: usize,
    /// L1 change of the final iteration.
    pub residual: f64,
    /// Whether the iteration reached the tolerance before the cap.
    pub converged: bool,
}

impl PageRankResult {
    /// Vertices ordered by decreasing score.
    pub fn ranking(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.scores.len()).collect();
        order.sort_by(|&a, &b| {
            self.scores[b]
                .partial_cmp(&self.scores[a])
                .expect("scores are finite")
                .then(a.cmp(&b))
        });
        order
    }
}

/// Computes PageRank scores for the directed graph whose adjacency matrix is
/// `adjacency` (`adjacency(u, v)` stored ⇔ edge `u → v`; values are ignored).
///
/// Vertices with no out-edges (dangling nodes) distribute their mass
/// uniformly, the standard correction.
pub fn pagerank(adjacency: &Csr<f64>, config: &PageRankConfig) -> PageRankResult {
    assert_eq!(
        adjacency.nrows(),
        adjacency.ncols(),
        "PageRank needs a square adjacency matrix"
    );
    let n = adjacency.nrows();
    if n == 0 {
        return PageRankResult {
            scores: Vec::new(),
            iterations: 0,
            residual: 0.0,
            converged: true,
        };
    }

    // Transition matrix M = normalise(Aᵀ): M(v, u) = 1/outdeg(u) for u → v,
    // so that y = M·r pushes rank along the edges.  Column u of M corresponds
    // to vertex u's out-edges, hence column-stochastic normalisation.
    let pattern = adjacency.map_values(|_| 1.0f64);
    let transition: Csr<f64> = ops::column_stochastic(&pattern.transpose());
    let transition_csc: Csc<f64> = transition.to_csc();
    let out_degree: Vec<f64> = (0..n).map(|u| pattern.row_nnz(u) as f64).collect();

    let d = config.damping;
    let mut rank = vec![1.0 / n as f64; n];
    let mut iterations = 0;
    let mut residual = f64::INFINITY;

    while iterations < config.max_iterations {
        // Mass parked on dangling vertices is redistributed uniformly.
        let dangling_mass: f64 = rank
            .iter()
            .zip(&out_degree)
            .filter(|&(_, &deg)| deg == 0.0)
            .map(|(&r, _)| r)
            .sum();

        let mut next = match config.engine {
            SpmvEngine::RowCsr => csr_spmv(&transition, &rank),
            SpmvEngine::ColumnScatter => csc_spmv(&transition_csc, &rank),
            SpmvEngine::PropagationBlocking => pb_spmv(&transition_csc, &rank, &config.pb),
        };
        dense_scale(d, &mut next);
        let teleport = (1.0 - d) / n as f64 + d * dangling_mass / n as f64;
        for v in next.iter_mut() {
            *v += teleport;
        }

        residual = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        rank = next;
        iterations += 1;
        if residual < config.tolerance {
            break;
        }
    }

    // Guard against drift: renormalise so the scores report as a distribution.
    let total = dense_norm1(&rank);
    if total > 0.0 {
        dense_scale(1.0 / total, &mut rank);
    }

    PageRankResult {
        scores: rank,
        iterations,
        residual,
        converged: residual < config.tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::rmat_square;
    use pb_sparse::Coo;

    /// A 4-vertex graph with a clear importance ordering: everything points
    /// at vertex 0, vertex 3 is dangling.
    fn star() -> Csr<f64> {
        Coo::from_entries(
            4,
            4,
            vec![(1, 0, 1.0), (2, 0, 1.0), (0, 1, 1.0), (2, 1, 1.0)],
        )
        .unwrap()
        .to_csr()
    }

    #[test]
    fn scores_form_a_distribution_and_rank_the_hub_first() {
        let g = star();
        let result = pagerank(&g, &PageRankConfig::default());
        assert!(result.converged);
        assert!((result.scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(
            result.ranking()[0],
            0,
            "the vertex every edge points to ranks first"
        );
        assert!(
            result.scores.iter().all(|&s| s > 0.0),
            "teleportation keeps all scores positive"
        );
    }

    #[test]
    fn all_engines_converge_to_the_same_scores() {
        let g = rmat_square(7, 6, 77).map_values(|_| 1.0);
        let mut reference: Option<Vec<f64>> = None;
        for &engine in SpmvEngine::all() {
            let result = pagerank(&g, &PageRankConfig::default().with_engine(engine));
            assert!(result.converged, "{} did not converge", engine.name());
            match &reference {
                None => reference = Some(result.scores),
                Some(expected) => {
                    let max_diff = result
                        .scores
                        .iter()
                        .zip(expected)
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0f64, f64::max);
                    assert!(
                        max_diff < 1e-8,
                        "{} diverges from the reference",
                        engine.name()
                    );
                }
            }
        }
    }

    #[test]
    fn symmetric_cycle_gives_uniform_scores() {
        // A directed 5-cycle: perfectly symmetric, so all scores are 1/5.
        let n = 5;
        let entries: Vec<(usize, usize, f64)> = (0..n).map(|u| (u, (u + 1) % n, 1.0)).collect();
        let g = Coo::from_entries(n, n, entries).unwrap().to_csr();
        let result = pagerank(&g, &PageRankConfig::default());
        for &s in &result.scores {
            assert!((s - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn dangling_only_graph_degenerates_to_uniform() {
        let g = Csr::<f64>::empty(6, 6);
        let result = pagerank(&g, &PageRankConfig::default());
        for &s in &result.scores {
            assert!((s - 1.0 / 6.0).abs() < 1e-9);
        }
    }

    #[test]
    fn iteration_cap_is_respected() {
        let g = rmat_square(6, 4, 3).map_values(|_| 1.0);
        let cfg = PageRankConfig::default()
            .with_tolerance(0.0)
            .with_max_iterations(5);
        let result = pagerank(&g, &cfg);
        assert_eq!(result.iterations, 5);
        assert!(!result.converged);
    }

    #[test]
    fn damping_extremes_behave() {
        let g = star();
        // Almost no damping: scores approach uniform regardless of structure.
        let low = pagerank(&g, &PageRankConfig::default().with_damping(1e-9));
        for &s in &low.scores {
            assert!((s - 0.25).abs() < 1e-3);
        }
        // Builder clamps out-of-range values.
        let cfg = PageRankConfig::default().with_damping(5.0);
        assert!(cfg.damping < 1.0);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::<f64>::empty(0, 0);
        let result = pagerank(&g, &PageRankConfig::default());
        assert!(result.scores.is_empty());
        assert!(result.converged);
    }
}
