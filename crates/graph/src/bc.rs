//! Betweenness centrality via batched, matrix-formulated Brandes.
//!
//! Brandes' algorithm runs one BFS per source and then accumulates
//! "dependency" values backwards through the BFS DAG.  The matrix formulation
//! (Buluç, Gilbert — reference \[1\] of the paper) processes a *batch* of
//! sources at once: the frontier of all searches is an `n × s` sparse matrix,
//! and both the forward (path-counting) sweep and the backward (dependency)
//! sweep advance by one SpGEMM per level — exactly the tall-and-skinny
//! products the paper's introduction mentions.
//!
//! This implementation handles unweighted, undirected graphs (directed input
//! is symmetrised) and computes exact betweenness when `sources` covers every
//! vertex, or a source-sampled approximation otherwise.

use pb_sparse::{Coo, Csr};

use crate::triangles::to_simple_undirected;
use pb_spgemm::SpGemm;

/// Computes (optionally source-sampled) betweenness centrality.
///
/// * `adjacency` — adjacency matrix of the graph (symmetrised internally);
/// * `sources` — the batch of source vertices; pass `0..n` for exact scores;
/// * `batch_size` — how many sources are processed per SpGEMM batch;
/// * `engine` — which SpGEMM implementation advances the frontiers.
///
/// Undirected conventions: each shortest path is counted once per unordered
/// endpoint pair, so exact scores match the usual definition of
/// `Σ_{s≠v≠t} σ_st(v)/σ_st` over unordered `{s, t}`.
pub fn betweenness_centrality<T: pb_sparse::Scalar>(
    adjacency: &Csr<T>,
    sources: &[usize],
    batch_size: usize,
    engine: &SpGemm,
) -> Vec<f64> {
    crate::Bc::new()
        .engine(engine.clone())
        .sources(sources.iter().copied())
        .batch_size(batch_size)
        .run(adjacency)
}

pub(crate) fn betweenness_centrality_impl<T: pb_sparse::Scalar>(
    adjacency: &Csr<T>,
    sources: &[usize],
    batch_size: usize,
    engine: &SpGemm,
) -> Vec<f64> {
    let a = to_simple_undirected(adjacency);
    let n = a.nrows();
    let mut centrality = vec![0.0f64; n];
    if n == 0 || sources.is_empty() {
        return centrality;
    }
    for &src in sources {
        assert!(
            src < n,
            "source vertex {src} is out of bounds for {n} vertices"
        );
    }

    let batch = batch_size.max(1);
    for chunk in sources.chunks(batch) {
        accumulate_batch(&a, chunk, engine, &mut centrality);
    }

    // Each unordered pair {s, t} is visited once from s and once from t when
    // sources cover both endpoints, so halve to match the standard undirected
    // definition.
    for c in centrality.iter_mut() {
        *c /= 2.0;
    }
    centrality
}

/// Runs the forward and backward sweeps for one batch of sources and adds the
/// resulting dependencies into `centrality`.
fn accumulate_batch(a: &Csr<f64>, sources: &[usize], engine: &SpGemm, centrality: &mut [f64]) {
    let n = a.nrows();
    let s = sources.len();

    // sigma[v][k]: number of shortest paths from sources[k] to v.
    // depth[v][k]: BFS level of v from sources[k], -1 if undiscovered.
    let mut sigma = vec![vec![0.0f64; s]; n];
    let mut depth = vec![vec![-1i64; s]; n];
    for (k, &src) in sources.iter().enumerate() {
        sigma[src][k] = 1.0;
        depth[src][k] = 0;
    }

    // Frontier matrices per level; F_d(v, k) = σ contribution of v discovered
    // at level d.
    let f0: Csr<f64> = Coo::from_entries(
        n,
        s,
        sources
            .iter()
            .enumerate()
            .map(|(k, &src)| (src, k, 1.0))
            .collect::<Vec<_>>(),
    )
    .expect("sources are validated by the caller")
    .to_csr();
    let mut frontiers: Vec<Csr<f64>> = vec![f0];

    // ----- Forward sweep: count shortest paths level by level. -------------
    loop {
        let d = frontiers.len() as i64;
        let advanced = engine.multiply(a, frontiers.last().expect("at least the source frontier"));
        let fresh = advanced.prune(|v, k, _| depth[v as usize][k as usize] == -1);
        if fresh.nnz() == 0 {
            break;
        }
        for (v, k, paths) in fresh.iter() {
            sigma[v as usize][k as usize] += paths;
            depth[v as usize][k as usize] = d;
        }
        frontiers.push(fresh);
        if d as usize > n {
            break;
        }
    }

    // ----- Backward sweep: accumulate dependencies level by level. ----------
    let mut delta = vec![vec![0.0f64; s]; n];
    for d in (1..frontiers.len()).rev() {
        // Coefficient matrix over the level-d vertices: (1 + δ(w)) / σ(w).
        let coeff_entries: Vec<(usize, usize, f64)> = frontiers[d]
            .iter()
            .map(|(w, k, _)| {
                let (w, k) = (w as usize, k as usize);
                (w, k, (1.0 + delta[w][k]) / sigma[w][k])
            })
            .collect();
        if coeff_entries.is_empty() {
            continue;
        }
        let coeff: Csr<f64> = Coo::from_entries(n, s, coeff_entries)
            .expect("indices come from frontier entries")
            .to_csr();
        let pushed = engine.multiply(a, &coeff);
        for (v, k, sum) in pushed.iter() {
            let (v, k) = (v as usize, k as usize);
            if depth[v][k] == d as i64 - 1 {
                delta[v][k] += sigma[v][k] * sum;
            }
        }
    }

    for (k, &src) in sources.iter().enumerate() {
        for v in 0..n {
            if v != src {
                centrality[v] += delta[v][k];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::erdos_renyi_square;
    use pb_sparse::Coo;

    /// Queue-based Brandes oracle (exact, all sources, undirected).
    fn oracle(adjacency: &Csr<f64>) -> Vec<f64> {
        let a = to_simple_undirected(adjacency);
        let n = a.nrows();
        let mut bc = vec![0.0f64; n];
        for s in 0..n {
            let mut stack = Vec::new();
            let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
            let mut sigma = vec![0.0f64; n];
            let mut dist = vec![-1i64; n];
            sigma[s] = 1.0;
            dist[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(v) = queue.pop_front() {
                stack.push(v);
                for &w in a.row(v).0 {
                    let w = w as usize;
                    if dist[w] < 0 {
                        dist[w] = dist[v] + 1;
                        queue.push_back(w);
                    }
                    if dist[w] == dist[v] + 1 {
                        sigma[w] += sigma[v];
                        preds[w].push(v);
                    }
                }
            }
            let mut delta = vec![0.0f64; n];
            while let Some(w) = stack.pop() {
                for &v in &preds[w] {
                    delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
                }
                if w != s {
                    bc[w] += delta[w];
                }
            }
        }
        for c in bc.iter_mut() {
            *c /= 2.0;
        }
        bc
    }

    fn path_graph(n: usize) -> Csr<f64> {
        let entries: Vec<(usize, usize, f64)> = (0..n - 1).map(|u| (u, u + 1, 1.0)).collect();
        Coo::from_entries(n, n, entries).unwrap().to_csr()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn path_graph_centrality_is_known_in_closed_form() {
        // On a path of 5 vertices, vertex i lies on i*(n-1-i) shortest paths.
        let g = path_graph(5);
        let all: Vec<usize> = (0..5).collect();
        let bc = betweenness_centrality(&g, &all, 2, &SpGemm::pb());
        assert_close(&bc, &[0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn star_centre_carries_all_paths() {
        let g = Coo::from_entries(5, 5, (1..5).map(|v| (0usize, v, 1.0)).collect::<Vec<_>>())
            .unwrap()
            .to_csr();
        let all: Vec<usize> = (0..5).collect();
        let bc = betweenness_centrality(&g, &all, 5, &SpGemm::pb());
        // Centre: C(4, 2) = 6 pairs of leaves; leaves: 0.
        assert_close(&bc, &[6.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn matches_the_oracle_on_random_graphs_for_all_engines() {
        for seed in [1u64, 5] {
            let g = erdos_renyi_square(5, 3, seed);
            let expected = oracle(&g);
            let all: Vec<usize> = (0..g.nrows()).collect();
            for engine in SpGemm::paper_set() {
                let bc = betweenness_centrality(&g, &all, 8, &engine);
                assert_close(&bc, &expected);
            }
        }
    }

    #[test]
    fn batch_size_does_not_change_the_result() {
        let g = erdos_renyi_square(5, 4, 7);
        let all: Vec<usize> = (0..g.nrows()).collect();
        let reference = betweenness_centrality(&g, &all, usize::MAX, &SpGemm::pb());
        for batch in [1usize, 3, 8, 17] {
            let bc = betweenness_centrality(&g, &all, batch, &SpGemm::pb());
            assert_close(&bc, &reference);
        }
    }

    #[test]
    fn sampled_sources_give_partial_scores() {
        let g = path_graph(6);
        let bc = betweenness_centrality(&g, &[0], 1, &SpGemm::pb());
        // Only paths starting at vertex 0 are counted (and halved): vertex 1
        // lies on the paths to 2, 3, 4, 5.
        assert_close(&bc, &[0.0, 2.0, 1.5, 1.0, 0.5, 0.0]);
    }

    #[test]
    fn empty_inputs() {
        let g = Csr::<f64>::empty(4, 4);
        let bc = betweenness_centrality(&g, &[0, 1, 2, 3], 2, &SpGemm::pb());
        assert_eq!(bc, vec![0.0; 4]);
        let none = betweenness_centrality(&path_graph(4), &[], 2, &SpGemm::pb());
        assert_eq!(none, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn invalid_source_panics() {
        let _ = betweenness_centrality(&path_graph(3), &[9], 1, &SpGemm::pb());
    }
}
